"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work in
offline environments without the ``wheel`` package."""

from setuptools import setup

setup()
