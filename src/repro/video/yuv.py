"""Raw planar YUV 4:2:0 file I/O (the format used by JM and VCEG test sets)."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.codec.frames import YuvFrame


def frame_bytes(width: int, height: int) -> int:
    """Bytes per 4:2:0 frame."""
    return width * height * 3 // 2


def write_yuv420(path: str | Path, frames: list[YuvFrame]) -> None:
    """Write frames as concatenated planar YUV 4:2:0."""
    with open(path, "wb") as fh:
        for f in frames:
            fh.write(f.y.tobytes())
            fh.write(f.u.tobytes())
            fh.write(f.v.tobytes())


def read_yuv420(
    path: str | Path, width: int, height: int, count: int | None = None
) -> list[YuvFrame]:
    """Read planar YUV 4:2:0 frames from a raw file.

    Parameters
    ----------
    count:
        Number of frames to read; ``None`` reads all complete frames.
    """
    fsize = os.path.getsize(path)
    per = frame_bytes(width, height)
    avail = fsize // per
    n = avail if count is None else min(count, avail)
    ysz = width * height
    csz = ysz // 4
    frames: list[YuvFrame] = []
    with open(path, "rb") as fh:
        for _ in range(n):
            buf = fh.read(per)
            if len(buf) < per:
                break
            y = np.frombuffer(buf, dtype=np.uint8, count=ysz).reshape(height, width)
            u = np.frombuffer(buf, dtype=np.uint8, count=csz, offset=ysz).reshape(
                height // 2, width // 2
            )
            v = np.frombuffer(
                buf, dtype=np.uint8, count=csz, offset=ysz + csz
            ).reshape(height // 2, width // 2)
            frames.append(YuvFrame(y.copy(), u.copy(), v.copy()))
    return frames
