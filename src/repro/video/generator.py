"""Synthetic test-sequence generation.

Produces deterministic 4:2:0 sequences with the ingredients that matter to
an inter-loop encoder: a textured background with global pan (exercises
large coherent MVs), several independently moving textured objects
(exercises per-partition MVs and mode decision), and optional sensor noise
(exercises residual coding and keeps bit counts realistic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codec.frames import YuvFrame
from repro.util.validation import check_multiple_of, check_positive


@dataclass(frozen=True)
class MovingObject:
    """A textured rectangle translating at constant velocity (px/frame)."""

    y0: float
    x0: float
    height: int
    width: int
    vy: float
    vx: float
    seed: int

    def texture(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        # Smooth blobby texture: low-frequency cosine mix + mild noise.
        yy, xx = np.mgrid[0 : self.height, 0 : self.width]
        tex = (
            128
            + 60 * np.cos(2 * np.pi * yy / max(self.height, 8))
            + 40 * np.sin(2 * np.pi * xx / max(self.width, 8))
            + rng.normal(0, 6, size=(self.height, self.width))
        )
        return np.clip(tex, 0, 255).astype(np.uint8)


@dataclass
class SyntheticSequence:
    """Deterministic synthetic sequence generator.

    Parameters
    ----------
    width, height:
        Luma dimensions (multiples of 16).
    n_objects:
        Number of independently moving textured rectangles.
    pan:
        Background pan velocity ``(vy, vx)`` in px/frame.
    noise_sigma:
        Std-dev of per-frame Gaussian sensor noise added to luma.
    seed:
        Master seed; every frame is reproducible given (seed, index).
    """

    width: int = 352
    height: int = 288
    n_objects: int = 4
    pan: tuple[float, float] = (0.5, 1.5)
    noise_sigma: float = 2.0
    seed: int = 7

    _objects: list[MovingObject] = field(default_factory=list, repr=False)
    _background: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_multiple_of("width", self.width, 16)
        check_multiple_of("height", self.height, 16)
        check_positive("n_objects + 1", self.n_objects + 1)
        rng = np.random.default_rng(self.seed)
        self._objects = []
        for i in range(self.n_objects):
            oh = int(rng.integers(24, max(25, self.height // 3)))
            ow = int(rng.integers(24, max(25, self.width // 3)))
            self._objects.append(
                MovingObject(
                    y0=float(rng.uniform(0, self.height - oh)),
                    x0=float(rng.uniform(0, self.width - ow)),
                    height=oh,
                    width=ow,
                    vy=float(rng.uniform(-3, 3)),
                    vx=float(rng.uniform(-4, 4)),
                    seed=self.seed * 1000 + i,
                )
            )
        # Background: tiled smooth texture twice the frame size (for panning).
        byy, bxx = np.mgrid[0 : 2 * self.height, 0 : 2 * self.width]
        bg = (
            110
            + 45 * np.sin(2 * np.pi * byy / 97.0)
            + 35 * np.cos(2 * np.pi * bxx / 131.0)
            + 20 * np.sin(2 * np.pi * (byy + bxx) / 53.0)
        )
        self._background = np.clip(bg, 0, 255).astype(np.uint8)

    def frame(self, index: int) -> YuvFrame:
        """Render frame ``index`` (deterministic; frames are independent)."""
        if index < 0:
            raise ValueError("frame index must be >= 0")
        assert self._background is not None
        h, w = self.height, self.width
        oy = int(round(self.pan[0] * index)) % h
        ox = int(round(self.pan[1] * index)) % w
        y = self._background[oy : oy + h, ox : ox + w].copy()

        for obj in self._objects:
            ty = int(round(obj.y0 + obj.vy * index)) % (h - obj.height + 1)
            tx = int(round(obj.x0 + obj.vx * index)) % (w - obj.width + 1)
            y[ty : ty + obj.height, tx : tx + obj.width] = obj.texture()

        if self.noise_sigma > 0:
            rng = np.random.default_rng(self.seed * 65_537 + index)
            noise = rng.normal(0, self.noise_sigma, size=y.shape)
            y = np.clip(y.astype(np.float64) + noise, 0, 255).astype(np.uint8)

        # Chroma: smooth gradients following the pan (subsampled 2×2 mean).
        y16 = y.astype(np.uint16)
        sub = (
            y16[0::2, 0::2] + y16[0::2, 1::2] + y16[1::2, 0::2] + y16[1::2, 1::2] + 2
        ) >> 2
        u = np.clip(96 + (sub.astype(np.int32) - 128) // 4, 0, 255).astype(np.uint8)
        v = np.clip(160 - (sub.astype(np.int32) - 128) // 4, 0, 255).astype(np.uint8)
        return YuvFrame(y, u, v)

    def frames(self, count: int, start: int = 0) -> list[YuvFrame]:
        """Render ``count`` consecutive frames starting at ``start``."""
        return [self.frame(start + i) for i in range(count)]


def moving_objects_sequence(
    width: int = 352,
    height: int = 288,
    count: int = 10,
    seed: int = 7,
    noise_sigma: float = 2.0,
) -> list[YuvFrame]:
    """Convenience: render ``count`` frames of the default synthetic scene."""
    seq = SyntheticSequence(
        width=width, height=height, seed=seed, noise_sigma=noise_sigma
    )
    return seq.frames(count)
