"""Synthetic video sources and raw YUV 4:2:0 I/O.

The paper evaluates on the 1080p "Toys and Calendar" and "Rolling Tomatoes"
sequences; since FSBM makes encoding time content-independent (paper §IV),
any sequence with moving structure exercises the same code paths. The
generators here synthesize textured moving objects over a panning background
plus sensor noise, at any MB-aligned resolution.
"""

from repro.video.generator import SyntheticSequence, moving_objects_sequence
from repro.video.yuv import read_yuv420, write_yuv420

__all__ = [
    "SyntheticSequence",
    "moving_objects_sequence",
    "read_yuv420",
    "write_yuv420",
]
