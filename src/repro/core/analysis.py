"""Performance analysis: utilization, efficiency and convergence diagnostics.

Post-processing over :class:`FrameReport` sequences — the numbers a systems
paper's evaluation section is built from:

- per-resource utilization (busy fraction of compute/copy engines);
- parallel efficiency against the *ideal aggregate* bound (every
  distributable module perfectly split across devices, R\\* on the fastest
  one, zero transfer cost);
- convergence: how many frames the load balancer needs to settle.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.codec.config import CodecConfig
from repro.core.coding_manager import FrameReport
from repro.hw.device import DeviceSpec
from repro.hw.topology import Platform


@dataclass(frozen=True)
class UtilizationSummary:
    """Mean busy fractions over a window of frames."""

    per_resource: dict[str, float]

    def compute_utilization(self, device: str) -> float:
        """Busy fraction of a device's compute engine."""
        return self.per_resource.get(f"{device}.compute", 0.0)

    def busiest(self) -> tuple[str, float]:
        if not self.per_resource:
            return ("", 0.0)
        name = max(self.per_resource, key=lambda k: self.per_resource[k])
        return name, self.per_resource[name]


def utilization_summary(
    reports: list[FrameReport], skip: int = 2
) -> UtilizationSummary:
    """Average per-resource utilization over ``reports[skip:]``."""
    window = reports[skip:] if len(reports) > skip else reports
    if not window:
        raise ValueError("no reports to analyze")
    acc: dict[str, list[float]] = {}
    for rep in window:
        # One pass per report via the timeline's memoized per-resource
        # busy table (identical sums to the old per-resource scans).
        # sorted(): set iteration order would otherwise decide the key
        # insertion order of `per_resource`, which leaks into exported
        # summaries under different hash seeds (REP102).
        for res in sorted(rep.timeline.busy_by_resource()):
            acc.setdefault(res, []).append(rep.timeline.utilization(res))
    return UtilizationSummary(
        per_resource={k: sum(v) / len(v) for k, v in acc.items()}
    )


def ideal_aggregate_fps(
    platform: Platform, cfg: CodecConfig, active_refs: int | None = None
) -> float:
    """Upper bound: perfect splits, zero transfers, R* on the fastest device.

    For each distributable module the pooled rate is the sum of device
    rates (harmonic combination of per-row times); ME and INT can overlap
    with nothing else, so the bound simply chains the pooled module times
    plus the best R* block. Real FEVES can approach but never beat this.

    The bound is a pure function of the device specs and the codec
    config (all frozen), so it is memoized on exactly that key — service
    sweeps and efficiency plots call it per frame per stream.
    """
    refs = active_refs if active_refs is not None else cfg.num_ref_frames
    specs = tuple(dev.spec for dev in platform.devices)
    return _ideal_aggregate_fps_cached(specs, cfg, refs)


@lru_cache(maxsize=256)
def _ideal_aggregate_fps_cached(
    specs: tuple[DeviceSpec, ...], cfg: CodecConfig, refs: int
) -> float:
    n = cfg.mb_rows
    total = 0.0
    for module in ("me", "int", "sme"):
        pooled_rate = 0.0
        for spec in specs:
            r = spec.rates
            per_row = {
                "me": r.me_row_s(cfg, refs),
                "int": r.int_row_s(cfg),
                "sme": r.sme_row_s(cfg),
            }[module]
            pooled_rate += 1.0 / per_row
        if pooled_rate <= 0:
            raise ValueError(f"platform has no usable rate for {module}")
        total += n / pooled_rate
    total += min(spec.rates.rstar_frame_s(cfg) for spec in specs)
    return 1.0 / total


def parallel_efficiency(
    measured_fps: float, platform: Platform, cfg: CodecConfig,
    active_refs: int | None = None,
) -> float:
    """Measured throughput as a fraction of the ideal aggregate bound."""
    bound = ideal_aggregate_fps(platform, cfg, active_refs)
    if bound <= 0:
        raise ValueError("ideal bound must be positive")
    return measured_fps / bound


def convergence_frame(frame_times_s: list[float], rel_tol: float = 0.02) -> int:
    """First 1-based frame index from which times stay within ``rel_tol``
    of the final steady value (-1 if the trace never settles)."""
    if not frame_times_s:
        raise ValueError("empty trace")
    steady = frame_times_s[-1]
    for i, t in enumerate(frame_times_s):
        tail = frame_times_s[i:]
        if all(abs(x - steady) <= rel_tol * steady for x in tail):
            return i + 1
    return -1


def communication_volume(reports: list[FrameReport], skip: int = 2) -> dict[str, float]:
    """Mean per-frame transferred bytes by direction (steady state)."""
    window = reports[skip:] if len(reports) > skip else reports
    if not window:
        raise ValueError("no reports to analyze")
    out = {"h2d": 0.0, "d2h": 0.0}
    for rep in window:
        for direction in out:
            out[direction] += rep.transfer_plan.total_bytes(direction)
    return {k: v / len(window) for k, v in out.items()}
