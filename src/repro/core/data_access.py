"""Data Access Management: buffer states and automatic transfer planning.

Implements paper Fig. 5: given a :class:`LoadDecision`, produce the exact
host↔device transfers each accelerator needs in each synchronization phase,
maximizing reuse of data already on the device:

- phase 1 (…τ1): newest RF in (unless the device reconstructed it locally
  by running R* last frame), CF rows for ME, extra CF rows for SME (Δm),
  the deferred SF remainder of the previous frame (σʳ⁻¹), own SF band out,
  own ME MVs out;
- phase 2 (τ1…τ2): Δl SF rows in, Δm MVs in, SME MVs out; the R* device
  additionally streams in the remaining CF (full YUV) and SF for MC;
- phase 3 (τ2…τtot): R* device gets the missing SME MVs and sends the new
  RF back; other accelerators receive as much of the still-missing SF as
  fits (σ), deferring the rest (σʳ) to the next frame.

The manager also carries the cross-frame state: which device holds the
newest RF, and each accelerator's σʳ backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.load_balancing import LoadDecision
from repro.core.perf_model import buffer_row_bytes
from repro.hw.interconnect import BufferSizes
from repro.hw.topology import Platform


@dataclass(frozen=True)
class TransferItem:
    """One host↔device transfer of whole MB rows of a logical buffer."""

    device: str
    buffer: str          # cf | cf_full | rf | sf | mv
    direction: str       # h2d | d2h
    rows: int
    nbytes: int
    phase: int           # 1, 2 or 3
    label: str

    def __post_init__(self) -> None:
        if self.rows < 0 or self.nbytes < 0:
            raise ValueError(f"negative transfer size: {self}")
        if self.direction not in ("h2d", "d2h"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.phase not in (1, 2, 3):
            raise ValueError(f"bad phase {self.phase}")


@dataclass
class TransferPlan:
    """All transfers of one frame, grouped per accelerator."""

    items: list[TransferItem] = field(default_factory=list)

    def for_device(self, device: str, phase: int | None = None) -> list[TransferItem]:
        return [
            t
            for t in self.items
            if t.device == device and (phase is None or t.phase == phase)
        ]

    def total_bytes(self, direction: str | None = None) -> int:
        return sum(
            t.nbytes
            for t in self.items
            if direction is None or t.direction == direction
        )


class DataAccessManager:
    """Plans transfers and tracks cross-frame device buffer state."""

    def __init__(
        self, platform: Platform, sizes: BufferSizes, enable_parking: bool = True
    ) -> None:
        self.platform = platform
        self.sizes = sizes
        self.enable_parking = enable_parking
        #: device name → rows of SF deferred from the previous frame.
        self.sigma_r_rows: dict[str, int] = {
            d.name: 0 for d in platform.devices if d.is_accelerator
        }
        #: which device reconstructed the newest RF (None = host/CPU).
        self.rf_holder: str | None = None
        #: accelerators with no assigned work whose SF mirror has gone
        #: stale (no σ maintenance); reactivating one costs a full SF
        #: refetch. Prevents idle devices from dragging τ1 with pointless
        #: catch-up transfers over slow links.
        self.parked: set[str] = set()

    @staticmethod
    def _has_work(decision: LoadDecision, index: int) -> bool:
        return (
            decision.m.rows[index] + decision.l.rows[index] + decision.s.rows[index]
        ) > 0

    def needs_rf(self) -> dict[str, bool]:
        """Per accelerator: whether the newest RF must be sent h2d."""
        return {
            d.name: d.name != self.rf_holder
            for d in self.platform.devices
            if d.is_accelerator
        }

    def plan(
        self,
        decision: LoadDecision,
        rstar_device: str,
        live: frozenset[str] | set[str] | None = None,
    ) -> TransferPlan:
        """Build the transfer plan of one frame from the load decision.

        ``live`` (None = all) drops every transfer to/from devices outside
        it — used on the frame a fault strikes, when the decision still
        assigns the faulted device rows but its link is gone.
        """
        plan = TransferPlan()
        sizes = self.sizes
        n = decision.m.total
        needs = self.needs_rf()

        def add(dev: str, buf: str, direction: str, rows: int, phase: int, label: str) -> None:
            if rows <= 0:
                return
            plan.items.append(
                TransferItem(
                    device=dev,
                    buffer=buf,
                    direction=direction,
                    rows=rows,
                    nbytes=rows * buffer_row_bytes(buf, sizes),
                    phase=phase,
                    label=label,
                )
            )

        for i, dev in enumerate(self.platform.devices):
            if not dev.is_accelerator:
                continue
            name = dev.name
            if live is not None and name not in live:
                continue
            m_i = decision.m.rows[i]
            l_i = decision.l.rows[i]
            s_i = decision.s.rows[i]
            dm = decision.delta_m[i].rows
            dl = decision.delta_l[i].rows
            is_rstar = name == rstar_device
            active = (
                self._has_work(decision, i)
                or is_rstar
                or not self.enable_parking
            )
            if not active:
                continue  # parked: no transfers at all this frame

            # A parked device rejoining the computation must refetch the
            # SF it stopped mirroring (approximated as one full SF).
            sigma_r_eff = self.sigma_r_rows.get(name, 0)
            if name in self.parked:
                sigma_r_eff = n

            # --- phase 1 -----------------------------------------------------
            if needs[name]:
                add(name, "rf", "h2d", n, 1, "RF")
            add(name, "cf", "h2d", m_i, 1, "CF->ME")
            add(name, "cf", "h2d", dm, 1, "CF->SME")
            add(name, "sf", "h2d", sigma_r_eff, 1, "SF(RF-1)->SME")
            add(name, "sf", "d2h", l_i, 1, "SF(RF)->host")
            add(name, "mv", "d2h", m_i, 1, "MV->SME")

            # --- phase 2 -----------------------------------------------------
            add(name, "sf", "h2d", dl, 2, "SF(RF)->SME")
            add(name, "mv", "h2d", dm, 2, "MV->SME")
            if is_rstar:
                add(name, "cf_full", "h2d", max(0, n - m_i - dm), 2, "CF->MC")
                add(name, "sf", "h2d", max(0, n - l_i - dl), 2, "SF->MC")
            else:
                add(name, "mv", "d2h", s_i, 2, "MV(SME)->host")

            # --- phase 3 -----------------------------------------------------
            if is_rstar:
                add(name, "mv", "h2d", max(0, n - s_i), 3, "MV->MC")
                add(name, "rf", "d2h", n, 3, "RF+1->host")
            else:
                sg = decision.sigma.get(name)
                add(name, "sf", "h2d", sg.rows if sg else 0, 3, "SF->SME+1")
        return plan

    def reset_after_intra(self) -> None:
        """Invalidate accelerator buffer state after an intra refresh.

        The new RF is reconstructed on the host and every previously
        transferred SF belongs to the discarded reference window, so all
        accelerators must refetch from scratch.
        """
        self.rf_holder = None
        self.parked.clear()  # the new GOP starts with an empty SF store
        for name in self.sigma_r_rows:
            self.sigma_r_rows[name] = 0

    def evict(self, name: str) -> None:
        """Drop a faulted device from the cross-frame buffer state.

        Its SF mirror is treated as gone (parked ⇒ full refetch on
        re-admission) and, if it held the newest RF, the holder resets —
        the host always keeps a copy (RF streams d2h every frame), so
        survivors simply refetch over their own links.
        """
        dev = self.platform.device(name)
        if not dev.is_accelerator:
            return
        self.parked.add(name)
        self.sigma_r_rows[name] = 0
        if self.rf_holder == name:
            self.rf_holder = None

    def commit(
        self,
        decision: LoadDecision,
        rstar_device: str,
        live: frozenset[str] | set[str] | None = None,
    ) -> None:
        """Advance cross-frame state after the frame executed.

        Devices outside ``live`` are treated as parked (stale mirrors),
        exactly like :meth:`evict`.
        """
        rstar_is_accel = self.platform.device(rstar_device).is_accelerator
        self.rf_holder = rstar_device if rstar_is_accel else None
        for i, dev in enumerate(self.platform.devices):
            if not dev.is_accelerator:
                continue
            name = dev.name
            if live is not None and name not in live:
                self.parked.add(name)
                self.sigma_r_rows[name] = 0
                continue
            if self.enable_parking and not (
                self._has_work(decision, i) or name == rstar_device
            ):
                self.parked.add(name)
                self.sigma_r_rows[name] = 0
                continue
            self.parked.discard(name)
            if name == rstar_device:
                self.sigma_r_rows[name] = 0
            else:
                rem = decision.sigma_r.get(name)
                self.sigma_r_rows[name] = rem.rows if rem else 0
