"""Load Balancing: the linear program of paper Algorithm 2.

Distributes the ME / INT / SME loads (vectors ``m``, ``l``, ``s`` in MB
rows) across all devices to minimize the total inter-loop time τtot,
subject to per-synchronization-point feasibility of every compute engine
and copy engine, using the measured Performance Characterization.

The Δm/Δl data-reuse terms (MS_BOUNDS/LS_BOUNDS) depend on the very
distributions being solved for, so — as in the paper — they enter the LP
as constants and are refined by a short fixed-point iteration: solve LP →
recompute Δ from the solution → re-solve. The continuous solution is then
rounded to whole MB rows (largest-remainder, sum-preserving), and the SF
catch-up transfers σ/σʳ are sized from the predicted τtot − τ2 window
(paper eqs. (14)–(15)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations as _combinations

import numpy as np
from scipy.optimize import linprog

from repro.codec.config import CodecConfig
from repro.core.bounds import ExtraTransfers, ls_bounds, ms_bounds, sf_remainder_segments
from repro.core.config import FrameworkConfig
from repro.core.distribution import Distribution, round_preserving_sum
from repro.core.perf_model import PerformanceCharacterization
from repro.hw.interconnect import BufferSizes
from repro.hw.topology import Platform
from repro.util.profiling import PhaseProfiler


@dataclass
class LoadDecision:
    """Complete per-frame scheduling decision."""

    m: Distribution
    l: Distribution
    s: Distribution
    delta_m: list[ExtraTransfers]
    delta_l: list[ExtraTransfers]
    sigma: dict[str, ExtraTransfers] = field(default_factory=dict)
    sigma_r: dict[str, ExtraTransfers] = field(default_factory=dict)
    tau1_pred: float = 0.0
    tau2_pred: float = 0.0
    tau_tot_pred: float = 0.0
    used_lp: bool = False

    def rows_for(self, module: str, device_index: int) -> int:
        dist = {"me": self.m, "int": self.l, "sme": self.s}[module]
        return dist.rows[device_index]


def _empty_extra() -> ExtraTransfers:
    return ExtraTransfers(segments=(), rows=0)


class LPSolveCache:
    """Exact-keyed memo of HiGHS solves — the warm-start fast path.

    The per-frame LP changes only through its K-parameter coefficients;
    in steady state (and between the Δ fixed-point iterations once the
    fixed point is reached) consecutive solves receive byte-identical
    constraint systems. The cache keys on the exact bytes of every array
    entering :func:`scipy.optimize.linprog` plus the bounds tuple, so a
    hit returns precisely what the cold solve would have returned (HiGHS
    is deterministic) — bit-identical by construction, no tolerance
    involved.

    One instance may be shared across balancers: the service layer hands
    every session the same cache, which batches the structurally
    identical per-session solves of a scheduling round into one HiGHS
    call per *unique* constraint system (sessions holding equal capacity
    shares measure equal Ks and therefore build equal systems).

    Infeasible outcomes are cached as ``None`` — re-proving
    infeasibility is as wasteful as re-solving.
    """

    __slots__ = ("max_entries", "hits", "misses", "_table")

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._table: dict[tuple, np.ndarray | None] = {}

    def solve(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        bounds: list[tuple],
    ) -> np.ndarray | None:
        key = (
            a_ub.shape,
            c.tobytes(),
            a_ub.tobytes(),
            b_ub.tobytes(),
            a_eq.tobytes(),
            b_eq.tobytes(),
            tuple(bounds),
        )
        if key in self._table:
            self.hits += 1
            return self._table[key]
        self.misses += 1
        res = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=bounds, method="highs",
        )
        x: np.ndarray | None = None
        if res.success:
            x = res.x
            x.setflags(write=False)  # shared across hits — must stay frozen
        if len(self._table) >= self.max_entries:
            self._table.pop(next(iter(self._table)))  # FIFO eviction
        self._table[key] = x
        return x

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LoadBalancer:
    """Builds and solves the Algorithm-2 LP for one platform."""

    def __init__(
        self,
        platform: Platform,
        codec_cfg: CodecConfig,
        fw_cfg: FrameworkConfig,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.platform = platform
        self.codec_cfg = codec_cfg
        self.fw_cfg = fw_cfg
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.sizes = BufferSizes(width=codec_cfg.width, height=codec_cfg.height)
        if fw_cfg.sf_halo_rows is None:
            self.halo = -(-(codec_cfg.search_range + 1) // 16)
        else:
            self.halo = fw_cfg.sf_halo_rows
        self._cache_ks: np.ndarray | None = None
        self._cache_key: tuple | None = None
        self._cache_decision: LoadDecision | None = None
        self._seed: tuple[Distribution, Distribution, Distribution] | None = None
        # Exact decision reuse is only sound when the seeded subset's Δ
        # fixed point converged in the cached solve (a converged fixed
        # point is stationary: re-solving from the stored seed reproduces
        # the same rows and taus; see DESIGN.md → Performance).
        self._lp_converged = False
        self.lp_cache: LPSolveCache | None = (
            LPSolveCache() if fw_cfg.lp_warm_start else None
        )
        # Characterization-derived tables, keyed on perf.version (bumped
        # on every observation/invalidation — a version match proves the
        # cached values are current).
        self._kt_cache_version: int | None = None
        self._kt_cache: dict[tuple[str, str, str], float | None] = {}

    def use_lp_cache(self, cache: LPSolveCache) -> None:
        """Adopt a shared solve cache (cross-session LP batching)."""
        if self.fw_cfg.lp_warm_start:
            self.lp_cache = cache

    def note_live_set_change(self) -> None:
        """Invalidate per-frame caches after an eviction or re-admission.

        The decision cache and the fixed-point seed both encode the old
        live set's converged operating point; reusing either across a
        live-set change would let a pre-fault decision leak into the
        post-fault (or post-readmit) schedule. Dropping them makes the
        next solve behave exactly like a fresh balancer. The LP solve
        cache stays — its keys are the full constraint bytes, which
        already encode the live set.
        """
        from repro.sanitizers.protocols.journal import record as _journal

        _journal(self, "invalidate")
        self._cache_ks = None
        self._cache_key = None
        self._cache_decision = None
        self._seed = None
        self._lp_converged = False

    # --- public API ----------------------------------------------------------

    def equidistant(self, live: frozenset[str] | set[str] | None = None) -> LoadDecision:
        """Initialization-phase decision (Algorithm 1, line 3).

        ``live`` restricts the split to the surviving devices — evicted
        ones get zero rows; ``None`` means every platform device.
        """
        n = self.codec_cfg.mb_rows
        devices = self.platform.devices
        idx = [i for i, dev in enumerate(devices) if live is None or dev.name in live]
        if not idx:
            raise ValueError("no live devices to distribute over")
        per = Distribution.equidistant(n, len(idx))
        rows = [0] * len(devices)
        for k, i in enumerate(idx):
            rows[i] = per.rows[k]
        dist = Distribution(rows=tuple(rows), total=n)
        return self._finalize(dist, dist, dist, tau=(0.0, 0.0, 0.0), used_lp=False)

    def solve(
        self,
        perf: PerformanceCharacterization,
        rstar_device: str,
        needs_rf: dict[str, bool],
        sigma_r_prev: dict[str, int],
        live: frozenset[str] | set[str] | None = None,
    ) -> LoadDecision:
        """Iterative-phase decision (Algorithm 1, line 8).

        Parameters
        ----------
        perf:
            Current characterization.
        rstar_device:
            Device selected for the R* block this frame.
        needs_rf:
            Per accelerator: does it need the newest RF via h2d (False for
            the accelerator that produced it locally by running R*).
        sigma_r_prev:
            Per accelerator: SF rows deferred from the previous frame
            (σʳ⁻¹ in Algorithm 2), transferred during this frame's τ1.
        live:
            Names of devices allowed work this frame (None = all).
            Evicted devices get zero rows everywhere. Live devices that
            are not yet characterized — start-up, or re-admitted after a
            fault cleared their measurements — are *warming*: the LP
            plans over the measured survivors only, and each warming
            device is granted ``fw_cfg.warmup_rows`` rows per module so
            it re-characterizes without risking the frame time.
        """
        devices = self.platform.devices
        live_set = frozenset(
            dev.name for dev in devices if live is None or dev.name in live
        )
        if not live_set:
            raise ValueError("no live devices to distribute over")
        from repro.sanitizers.protocols.journal import record as _journal

        _journal(self, "solve", detail=",".join(sorted(live_set)))
        live_idx = [i for i, dev in enumerate(devices) if dev.name in live_set]
        ready_idx = [i for i in live_idx if self._characterized(perf, devices[i])]
        warming_idx = [i for i in live_idx if i not in ready_idx]
        if not ready_idx:
            return self.equidistant(live=live_set)
        n = self.codec_cfg.mb_rows
        d = len(devices)
        if len(ready_idx) == 1:
            # Degenerate survivor set: no LP needed, everything runs on the
            # one characterized device (minus warm-up grants for any device
            # currently re-characterizing).
            dist = Distribution.single_device(n, d, ready_idx[0])
            m, l, s = self._grant_warmup(dist, dist, dist, warming_idx)
            return self._finalize(m, l, s, (0, 0, 0), used_lp=False)

        dead = frozenset(i for i in range(d) if i not in ready_idx)
        names = [devices[i].name for i in ready_idx]
        accel = [devices[i].name for i in ready_idx if devices[i].is_accelerator]

        # Decision cache: if no measured K moved beyond the tolerance and
        # the discrete inputs are identical, the previous decision is still
        # optimal — skip the solve (keeps steady-state scheduling overhead
        # at bookkeeping level; any real load change re-solves this frame).
        ks = self._k_vector(perf, names, accel)
        key = (
            rstar_device,
            live_set,
            tuple(names),
            tuple(sorted(needs_rf.items())),
            tuple(sorted(sigma_r_prev.items())),
        )
        rtol = self.fw_cfg.lb_cache_rtol
        if (
            self._cache_decision is not None
            and self._cache_key == key
            and self._cache_ks is not None
            and self._cache_ks.shape == ks.shape
        ):
            # Exact reuse (warm start): with bit-identical Ks and a
            # converged fixed point, re-solving provably reproduces the
            # cached decision — skipping the solve is not approximation.
            if (
                self.fw_cfg.lp_warm_start
                and self._lp_converged
                and np.array_equal(ks, self._cache_ks)
            ):
                return self._cache_decision
            if rtol > 0 and np.all(
                np.abs(ks - self._cache_ks) <= rtol * np.abs(self._cache_ks)
            ):
                return self._cache_decision

        # Activity-subset search: devices whose steady-state SF maintenance
        # cost exceeds their contribution are better "parked" entirely (an
        # option the base LP cannot express because the maintenance term is
        # gated by participation). Enumerate active subsets of the parkable
        # accelerators (non-R* GPUs) and keep the best steady-state τtot.
        parkable = [
            i
            for i in ready_idx
            if devices[i].is_accelerator and devices[i].name != rstar_device
        ]
        if not self.fw_cfg.enable_parking:
            parkable = []
        subsets: list[frozenset[int]]
        if len(parkable) <= 3:
            subsets = [
                frozenset(c)
                for k in range(len(parkable) + 1)
                for c in _combinations(parkable, k)
            ]
        else:  # all-active plus leave-one-out (keeps solve count linear)
            subsets = [frozenset()] + [frozenset((i,)) for i in parkable]

        best = None
        # Exact decision reuse needs the next cold solve to be provably
        # stationary. Subsets with parked or dead devices start from the
        # equidistant split — pure functions of (ks, key), always
        # reproducible. The all-active subset starts from the seed, which
        # this solve is about to overwrite with the winning rows; a
        # re-solve reproduces it only if the winner *is* the all-active
        # subset and its Δ fixed point converged (stationary at the
        # seed). With dead devices no subset consults the seed at all.
        reusable = bool(dead)
        for parked in subsets:
            result = self._solve_with_fixed_point(
                perf, rstar_device, needs_rf, sigma_r_prev, parked | dead
            )
            if result is None:
                continue
            m, l, s, taus, converged = result
            if best is None or taus[2] < best[3][2]:
                best = (m, l, s, taus)
                if not dead:
                    reusable = (not parked) and converged
        if best is None:
            return self._heuristic(perf, ready_idx, warming_idx)
        m, l, s, taus = best
        self._seed = (m, l, s)
        m, l, s = self._grant_warmup(m, l, s, warming_idx)
        with self.profiler.phase("distribution"):
            decision = self._finalize(
                m, l, s, taus, used_lp=True, perf=perf, rstar_device=rstar_device
            )
        self._cache_ks = ks
        self._cache_key = key
        self._cache_decision = decision
        self._lp_converged = reusable
        return decision

    def _characterized(self, perf: PerformanceCharacterization, dev) -> bool:
        """Does the LP have every K it needs for this device?"""
        if any(
            perf.k_compute(dev.name, module) is None
            for module in ("me", "int", "sme")
        ):
            return False
        if dev.is_accelerator and (
            perf.bandwidth(dev.name, "h2d") is None
            or perf.bandwidth(dev.name, "d2h") is None
        ):
            return False
        return True

    def _grant_warmup(
        self,
        m: Distribution,
        l: Distribution,  # noqa: E741
        s: Distribution,
        warming_idx: list[int],
    ) -> tuple[Distribution, Distribution, Distribution]:
        """Carve warm-up rows for re-characterizing devices.

        Each warming device takes ``fw_cfg.warmup_rows`` rows per module
        from whichever device currently holds the most — a deliberate tiny
        probe workload (paper's initialization measurements, re-run online)
        that yields fresh K values next frame while bounding the damage a
        still-unknown device can do to τtot.
        """
        want = self.fw_cfg.warmup_rows
        if not warming_idx or want <= 0:
            return m, l, s
        out = []
        for dist in (m, l, s):
            rows = list(dist.rows)
            for w in warming_idx:
                donor = max(range(len(rows)), key=lambda i: rows[i])
                grant = min(want, rows[donor] - 1)
                if grant <= 0:
                    continue
                rows[donor] -= grant
                rows[w] += grant
            out.append(Distribution(rows=tuple(rows), total=dist.total))
        return out[0], out[1], out[2]

    def _solve_with_fixed_point(
        self,
        perf: PerformanceCharacterization,
        rstar_device: str,
        needs_rf: dict[str, bool],
        sigma_r_prev: dict[str, int],
        parked: frozenset[int],
    ):
        """Δ fixed-point iteration of the LP for one active subset.

        Returns ``(m, l, s, taus, converged)`` or None; ``converged``
        records whether the iteration reached its fixed point (rows
        stable across consecutive solves), which gates exact decision
        reuse in :meth:`solve`.
        """
        n = self.codec_cfg.mb_rows
        d = len(self.platform.devices)
        if self._seed is not None and self._seed[0].n_devices == d and not parked:
            m, l, s = self._seed
        else:
            active = [i for i in range(d) if i not in parked]
            rows = [0] * d
            per = Distribution.equidistant(n, len(active))
            for k, i in enumerate(active):
                rows[i] = per.rows[k]
            m = l = s = Distribution(rows=tuple(rows), total=n)
        solution = None
        prev_rows: tuple | None = None
        converged = False
        for _ in range(self.fw_cfg.lp_delta_iterations):
            with self.profiler.phase("bounds"):
                dm = [ms_bounds(m, s, i).rows for i in range(d)]
                dl = [ls_bounds(l, s, i, self.halo).rows for i in range(d)]
            solution = self._solve_lp(
                perf, rstar_device, needs_rf, sigma_r_prev, dm, dl, parked
            )
            if solution is None:
                return None
            mf, lf, sf, taus = solution
            with self.profiler.phase("distribution"):
                m = Distribution(rows=round_preserving_sum(mf, n), total=n)
                l = Distribution(rows=round_preserving_sum(lf, n), total=n)
                s = Distribution(rows=round_preserving_sum(sf, n), total=n)
            rows = (m.rows, l.rows, s.rows)
            if rows == prev_rows:  # Δ fixed point reached
                converged = True
                break
            prev_rows = rows
        return m, l, s, taus, converged

    # --- internals -----------------------------------------------------------

    def _k_vector(
        self,
        perf: PerformanceCharacterization,
        names: list[str],
        accel: list[str],
    ) -> np.ndarray:
        """All measured speeds the LP consumes, flattened (for the cache)."""
        vals: list[float] = []
        for name in names:
            for module in ("me", "int", "sme"):
                vals.append(perf.k_compute(name, module) or 0.0)
            vals.append(perf.rstar_frame_s(name) or 0.0)
        for name in accel:
            vals.append(perf.bandwidth(name, "h2d") or 0.0)
            vals.append(perf.bandwidth(name, "d2h") or 0.0)
        return np.array(vals)

    def _heuristic(
        self,
        perf: PerformanceCharacterization,
        active_idx: list[int] | None = None,
        warming_idx: list[int] | None = None,
    ) -> LoadDecision:
        """Speed-proportional fallback when the LP is infeasible.

        Only ``active_idx`` devices receive speed-proportional shares
        (None = all); warming devices get their warm-up grants on top.
        """
        n = self.codec_cfg.mb_rows
        devices = self.platform.devices
        if active_idx is None:
            active_idx = list(range(len(devices)))
        dists = []
        for module in ("me", "int", "sme"):
            speed = np.zeros(len(devices))
            for i in active_idx:
                k = perf.k_compute(devices[i].name, module) or 1.0
                speed[i] = 1.0 / max(k, 1e-12)
            dists.append(
                Distribution(
                    rows=round_preserving_sum(speed, n), total=n
                )
            )
        m, l, s = self._grant_warmup(
            dists[0], dists[1], dists[2], warming_idx or []
        )
        return self._finalize(m, l, s, (0, 0, 0), used_lp=False)

    def _finalize(
        self,
        m: Distribution,
        l: Distribution,
        s: Distribution,
        tau: tuple[float, float, float],
        used_lp: bool,
        perf: PerformanceCharacterization | None = None,
        rstar_device: str | None = None,
    ) -> LoadDecision:
        devices = self.platform.devices
        d = len(devices)
        delta_m = [
            ms_bounds(m, s, i) if devices[i].is_accelerator else _empty_extra()
            for i in range(d)
        ]
        delta_l = [
            ls_bounds(l, s, i, self.halo) if devices[i].is_accelerator else _empty_extra()
            for i in range(d)
        ]
        sigma: dict[str, ExtraTransfers] = {}
        sigma_r: dict[str, ExtraTransfers] = {}
        tau1, tau2, tau_tot = tau
        for i, dev in enumerate(devices):
            if not dev.is_accelerator:
                continue
            if rstar_device is not None and dev.name == rstar_device:
                # The R* accelerator receives the complete SF for MC in
                # phase 2 — nothing is deferred (paper Fig. 5(b)).
                continue
            if m.rows[i] + l.rows[i] + s.rows[i] == 0:
                # Idle ("parked") accelerator: stop mirroring the SF; the
                # Data Access Manager charges a full refetch if the device
                # is reactivated later.
                continue
            if perf is not None:
                # LP path: σ must fit the *predicted* τ2..τtot window. When
                # the prediction leaves no window (τtot ≤ τ2 happens when
                # R* collapses into τ2's slack) nothing can be caught up
                # this frame — defer everything to σʳ rather than sizing σ
                # from a non-positive budget.
                budget = 0
                if tau_tot > tau2:
                    k_sf = perf.k_transfer(dev.name, "sf", "h2d", self.sizes)
                    if k_sf and k_sf > 0:
                        budget = max(0, int((tau_tot - tau2) / k_sf))
            else:
                budget = self.codec_cfg.mb_rows
            sg, rem = sf_remainder_segments(l, s, i, self.halo, budget)
            sigma[dev.name] = sg
            sigma_r[dev.name] = rem
        return LoadDecision(
            m=m,
            l=l,
            s=s,
            delta_m=delta_m,
            delta_l=delta_l,
            sigma=sigma,
            sigma_r=sigma_r,
            tau1_pred=tau1,
            tau2_pred=tau2,
            tau_tot_pred=tau_tot,
            used_lp=used_lp,
        )

    def _solve_lp(
        self,
        perf: PerformanceCharacterization,
        rstar_device: str,
        needs_rf: dict[str, bool],
        sigma_r_prev: dict[str, int],
        dm: list[int],
        dl: list[int],
        parked: frozenset[int] = frozenset(),
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[float, float, float]] | None:
        """One LP solve with Δ terms fixed. Returns (m, l, s, taus) or None.

        Splits into constraint build (:meth:`_build_lp`) and the HiGHS
        call, separately attributed by the profiler; the solve goes
        through :class:`LPSolveCache` when warm starting is enabled.
        """
        with self.profiler.phase("lp_build"):
            built = self._build_lp(
                perf, rstar_device, needs_rf, sigma_r_prev, dm, dl, parked
            )
        if built is None:
            return None
        c, a_ub, b_ub, a_eq, b_eq, bounds, taus_idx = built
        d = len(self.platform.devices)
        with self.profiler.phase("lp_solve"):
            if self.lp_cache is not None:
                x = self.lp_cache.solve(c, a_ub, b_ub, a_eq, b_eq, bounds)
            else:
                res = linprog(
                    c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                    bounds=bounds, method="highs",
                )
                x = res.x if res.success else None
        if x is None:
            return None
        i_t1, i_t2, i_tt = taus_idx
        taus = (float(x[i_t1]), float(x[i_t2]), float(x[i_tt]))
        return x[0:d], x[d : 2 * d], x[2 * d : 3 * d], taus

    def _kt_lookup(self, perf: PerformanceCharacterization):
        """Per-row transfer-K accessor, cached on the perf version.

        ``k_transfer`` re-derives bytes-per-row ÷ bandwidth on every call;
        the LP asks for the same (device, buffer, direction) triples up to
        eight times per frame × fixed-point iterations × subsets. The
        memo is keyed on :attr:`PerformanceCharacterization.version`,
        which bumps on every observation or invalidation, so a version
        match proves each cached K equals what a fresh call would return.
        """
        sizes = self.sizes
        if not self.fw_cfg.char_cache:
            return lambda name, buf, dr: perf.k_transfer(name, buf, dr, sizes)
        ver = perf.version
        if self._kt_cache_version != ver:
            self._kt_cache.clear()
            self._kt_cache_version = ver
        table = self._kt_cache

        def kt(name: str, buf: str, dr: str) -> float | None:
            key = (name, buf, dr)
            if key in table:
                return table[key]
            val = perf.k_transfer(name, buf, dr, sizes)
            table[key] = val
            return val

        return kt

    def _build_lp(
        self,
        perf: PerformanceCharacterization,
        rstar_device: str,
        needs_rf: dict[str, bool],
        sigma_r_prev: dict[str, int],
        dm: list[int],
        dl: list[int],
        parked: frozenset[int],
    ):
        """Assemble the constraint system. Returns None if a K is missing.

        ``parked`` devices are excluded entirely (zero rows, no transfer
        obligations). Every *active* non-R* accelerator additionally gets a
        σ variable and the steady-state SF-maintenance constraint: the SF
        rows it neither interpolated nor fetched as Δl must flow in either
        during τ2..τtot (σ) or during the next frame's τ1 (the backlog),
        which is what stops the LP from myopically assigning work to
        devices behind links too slow to keep their SF mirror warm.
        """
        devices = self.platform.devices
        d = len(devices)
        n = self.codec_cfg.mb_rows
        # σ variables for active non-R* accelerators.
        sigma_devs = [
            i
            for i, dev in enumerate(devices)
            if dev.is_accelerator and dev.name != rstar_device and i not in parked
        ]
        nv = 3 * d + 3 + len(sigma_devs)
        i_m = lambda i: i                    # noqa: E731
        i_l = lambda i: d + i                # noqa: E731
        i_s = lambda i: 2 * d + i            # noqa: E731
        i_t1, i_t2, i_tt = 3 * d, 3 * d + 1, 3 * d + 2
        i_sig = {dev_i: 3 * d + 3 + k for k, dev_i in enumerate(sigma_devs)}

        a_ub: list[np.ndarray] = []
        b_ub: list[float] = []

        def add(coef: dict[int, float], rhs: float) -> None:
            row = np.zeros(nv)
            for k, v in coef.items():
                row[k] += v
            a_ub.append(row)
            b_ub.append(rhs)

        kt = self._kt_lookup(perf)

        for i, dev in enumerate(devices):
            name = dev.name
            if i in parked:
                continue  # zero bounds below; no constraints needed
            km = perf.k_compute(name, "me")
            kl = perf.k_compute(name, "int")
            ks = perf.k_compute(name, "sme")
            if km is None or kl is None or ks is None:
                return None
            # (2)-style compute capacity before τ1: INT + ME share the engine.
            add({i_m(i): km, i_l(i): kl, i_t1: -1.0}, 0.0)
            # (3)-style: SME fits in τ1..τ2.
            add({i_s(i): ks, i_t1: 1.0, i_t2: -1.0}, 0.0)

            if not dev.is_accelerator:
                if name == rstar_device:
                    trs = perf.rstar_frame_s(name) or 0.0
                    add({i_t2: 1.0, i_tt: -1.0}, -trs)
                continue

            k_cf = kt(name, "cf", "h2d")
            k_cff = kt(name, "cf_full", "h2d")
            k_rf_hd = kt(name, "rf", "h2d")
            k_rf_dh = kt(name, "rf", "d2h")
            k_sf_hd = kt(name, "sf", "h2d")
            k_sf_dh = kt(name, "sf", "d2h")
            k_mv_hd = kt(name, "mv", "h2d")
            k_mv_dh = kt(name, "mv", "d2h")
            if None in (k_cf, k_cff, k_rf_hd, k_rf_dh, k_sf_hd, k_sf_dh, k_mv_hd, k_mv_dh):
                return None
            rf_rows = n if needs_rf.get(name, True) else 0
            fixed1 = (
                rf_rows * k_rf_hd
                + dm[i] * k_cf
                + sigma_r_prev.get(name, 0) * k_sf_hd
            )
            single = dev.copy_h2d is dev.copy_d2h
            if single:
                # (4)–(6)/(10)–(12): one engine moves everything before τ1.
                add(
                    {i_m(i): k_cf + k_mv_dh, i_l(i): k_sf_dh, i_t1: -1.0},
                    -fixed1,
                )
            else:
                add({i_m(i): k_cf, i_t1: -1.0}, -fixed1)          # h2d engine
                add({i_m(i): k_mv_dh, i_l(i): k_sf_dh, i_t1: -1.0}, 0.0)  # d2h
            # Critical paths through compute: RF→CF→ME→MV_out, RF→INT→SF_out.
            add({i_m(i): k_cf + km + k_mv_dh, i_t1: -1.0}, -rf_rows * k_rf_hd)
            add({i_l(i): kl + k_sf_dh, i_t1: -1.0}, -rf_rows * k_rf_hd)

            fixed2 = dl[i] * k_sf_hd + dm[i] * k_mv_hd
            if name == rstar_device:
                # (8): MC inputs stream in during SME on the R* accelerator.
                add(
                    {
                        i_m(i): -k_cff,
                        i_l(i): -k_sf_hd,
                        i_t1: 1.0,
                        i_t2: -1.0,
                    },
                    -(fixed2 + n * k_cff + n * k_sf_hd - dm[i] * k_cff - dl[i] * k_sf_hd),
                )
                # Path: Δ in, SME compute (MVs stay local).
                add({i_s(i): ks, i_t1: 1.0, i_t2: -1.0}, -fixed2)
                # (9): missing MVs in, R* block, RF back to host.
                trs = perf.rstar_frame_s(name) or 0.0
                add(
                    {i_s(i): -k_mv_hd, i_t2: 1.0, i_tt: -1.0},
                    -(n * k_mv_hd + trs + n * k_rf_dh),
                )
            else:
                # (13): Δ in, SME, SME MVs out, all within τ1..τ2.
                add(
                    {i_s(i): ks + k_mv_dh, i_t1: 1.0, i_t2: -1.0},
                    -fixed2,
                )
                if single:
                    add({i_s(i): k_mv_dh, i_t1: 1.0, i_t2: -1.0}, -fixed2)
                # Steady-state SF maintenance ((14)/(15) made endogenous):
                # σ_i fits in the τ2..τtot window, never exceeds what is
                # still missing, and the remainder (the next frame's σʳ
                # backlog) must fit the phase-1 copy engine alongside the
                # regular phase-1 traffic.
                sig = i_sig[i]
                add({sig: k_sf_hd, i_t2: 1.0, i_tt: -1.0}, 0.0)     # (14)
                add({sig: 1.0, i_l(i): 1.0}, float(n - dl[i]))      # σ ≤ missing
                backlog_fixed = rf_rows * k_rf_hd + dm[i] * k_cf + (n - dl[i]) * k_sf_hd
                if single:
                    add(
                        {
                            i_m(i): k_cf + k_mv_dh,
                            i_l(i): k_sf_dh - k_sf_hd,
                            sig: -k_sf_hd,
                            i_t1: -1.0,
                        },
                        -backlog_fixed,
                    )
                else:
                    add(
                        {
                            i_m(i): k_cf,
                            i_l(i): -k_sf_hd,
                            sig: -k_sf_hd,
                            i_t1: -1.0,
                        },
                        -backlog_fixed,
                    )

        # τ ordering.
        add({i_t1: 1.0, i_t2: -1.0}, 0.0)
        add({i_t2: 1.0, i_tt: -1.0}, 0.0)

        a_eq = np.zeros((3, nv))
        a_eq[0, 0:d] = 1.0
        a_eq[1, d : 2 * d] = 1.0
        a_eq[2, 2 * d : 3 * d] = 1.0
        b_eq = np.array([n, n, n], dtype=float)

        lo = float(self.fw_cfg.min_rows_per_device)
        bounds = [(lo, float(n))] * (3 * d) + [(0.0, None)] * 3
        bounds += [(0.0, float(n))] * len(sigma_devs)
        # sorted(): `parked` is a set; the pinned bounds are disjoint so
        # order cannot change the LP, but deterministic iteration keeps
        # the constraint build reproducible by construction (REP102).
        for i in sorted(parked):
            for idx in (i_m(i), i_l(i), i_s(i)):
                bounds[idx] = (0.0, 0.0)
        c = np.zeros(nv)
        c[i_tt] = 1.0
        return (
            c,
            np.array(a_ub),
            np.array(b_ub),
            a_eq,
            b_eq,
            bounds,
            (i_t1, i_t2, i_tt),
        )
