"""MS_BOUNDS and LS_BOUNDS: data-reuse-aware additional-transfer sizing.

Paper Algorithm 2, constraints (16)–(17): when two modules access the same
buffer with different distributions — ME and SME share the CF and the ME
MVs; INT and SME share the SF — a device already holds the rows its first
module touched, and must only fetch the *difference* for the second module.
These routines compute, per accelerator, the extra row count Δ and the
concrete row segments, "taking into account the relative distance between
distributions for the same device and the offsets from the previously
enumerated devices" (paper §III.B.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distribution import Distribution, missing_segments


@dataclass(frozen=True)
class ExtraTransfers:
    """Additional rows a device needs for its SME band.

    ``segments`` are absolute half-open MB-row intervals; ``rows`` is their
    total length (the Δ value entering the LP).
    """

    segments: tuple[tuple[int, int], ...]
    rows: int

    @classmethod
    def from_segments(cls, segs: list[tuple[int, int]]) -> "ExtraTransfers":
        return cls(
            segments=tuple(segs), rows=sum(b - a for a, b in segs)
        )


def _expand(band: tuple[int, int], halo: int, total: int) -> tuple[int, int]:
    """Expand a band by ``halo`` rows on each side, clipped to the frame."""
    if band[0] >= band[1]:
        return band
    return max(0, band[0] - halo), min(total, band[1] + halo)


def ms_bounds(
    m: Distribution, s: Distribution, device: int
) -> ExtraTransfers:
    """MS_BOUNDS: extra CF/MV rows for SME relative to the device's ME band.

    The SME of rows ``[s_{i-1}, s_i)`` needs the CF rows and the ME MVs of
    exactly those rows; the device already holds the CF rows it fetched for
    ME and the MVs it computed itself.
    """
    need = s.band(device)
    have = m.band(device)
    return ExtraTransfers.from_segments(missing_segments(need, have))


def ls_bounds(
    l: Distribution, s: Distribution, device: int, halo: int = 0
) -> ExtraTransfers:
    """LS_BOUNDS: extra SF rows for SME relative to the device's INT band.

    SME candidates may reach ``halo`` MB rows above/below the band
    (vertical MV range), so the needed SF interval is the SME band expanded
    by the halo. The device holds the SF rows it interpolated itself.
    """
    if halo < 0:
        raise ValueError(f"halo must be >= 0, got {halo}")
    need = _expand(s.band(device), halo, s.total)
    have = l.band(device)
    return ExtraTransfers.from_segments(missing_segments(need, have))


def sf_remainder_segments(
    l: Distribution,
    s: Distribution,
    device: int,
    halo: int,
    budget_rows: int,
) -> tuple[ExtraTransfers, ExtraTransfers]:
    """Split the SF rows still missing on a device into (σ, σʳ).

    After phase 2 the device holds its own INT band plus the Δl rows
    fetched for SME. Everything else of the SF must eventually arrive so
    the device can run SME against this reference in later frames. σ is
    the part transferred in the τ2→τtot window of the *current* frame
    (limited to ``budget_rows`` — paper (14)); σʳ is the remainder deferred
    to the next frame's τ1 period (paper (15)).
    """
    if budget_rows < 0:
        raise ValueError(f"budget_rows must be >= 0, got {budget_rows}")
    total = l.total
    held = [l.band(device)]
    held += list(ls_bounds(l, s, device, halo).segments)
    # Missing = complement of held segments within [0, total).
    held = sorted((a, b) for a, b in held if b > a)
    missing: list[tuple[int, int]] = []
    cursor = 0
    for a, b in held:
        if a > cursor:
            missing.append((cursor, a))
        cursor = max(cursor, b)
    if cursor < total:
        missing.append((cursor, total))

    sigma: list[tuple[int, int]] = []
    remainder: list[tuple[int, int]] = []
    budget = budget_rows
    for a, b in missing:
        take = min(budget, b - a)
        if take > 0:
            sigma.append((a, a + take))
            budget -= take
        if take < b - a:
            remainder.append((a + take, b))
    return ExtraTransfers.from_segments(sigma), ExtraTransfers.from_segments(remainder)
