"""R* module mapping: pick the device that runs MC+TQ+TQ⁻¹+DBL.

The paper assigns the entire R* block to a single (fastest) device "by
applying the Dijkstra algorithm [9]": build a stage graph whose nodes are
(stage, device) pairs, with edge weights combining per-stage compute time
and the cost of migrating the intermediate buffers when consecutive stages
run on different devices, and take the shortest source→sink path. Because
migration costs dwarf the R* compute times (<3 % of the loop), the optimal
path stays on one device — which is exactly why the paper concludes the
whole block belongs on the fastest one.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.codec.config import CodecConfig
from repro.hw.interconnect import BufferSizes
from repro.hw.topology import Platform

#: R* stages and their nominal share of the block time (from the paper's
#: workload characterization: DBL dominates, MC+TQ+TQ⁻¹ < 3 % of the loop).
RSTAR_STAGES: tuple[tuple[str, float], ...] = (
    ("mc", 0.35),
    ("tq", 0.20),
    ("itq", 0.15),
    ("dbl", 0.30),
)


@dataclass(frozen=True)
class RStarDecision:
    """Outcome of the mapping."""

    device: str
    path: tuple[tuple[str, str], ...]  # (stage, device) along the best path
    total_s: float


def _migration_cost(
    platform: Platform, src: str, dst: str, payload_bytes: float
) -> float:
    """Time to move the inter-stage payload from ``src`` to ``dst``.

    Devices communicate through host DRAM: an accelerator→accelerator hop
    costs a d2h on the source link plus an h2d on the destination link; a
    CPU endpoint contributes nothing on its side.
    """
    if src == dst:
        return 0.0
    cost = 0.0
    s_dev = platform.device(src)
    d_dev = platform.device(dst)
    if s_dev.is_accelerator:
        cost += s_dev.transfer_s(payload_bytes, "d2h")
    if d_dev.is_accelerator:
        cost += d_dev.transfer_s(payload_bytes, "h2d")
    return cost


def select_rstar_device(
    platform: Platform,
    rstar_estimates: dict[str, float],
    cfg: CodecConfig,
) -> RStarDecision:
    """Dijkstra over the stage/device graph.

    Parameters
    ----------
    rstar_estimates:
        Estimated full-R*-block seconds per device (from Performance
        Characterization probes). Devices missing an estimate are excluded.
    """
    devices = [d.name for d in platform.devices if d.name in rstar_estimates]
    if not devices:
        raise ValueError("no device has an R* estimate")
    sizes = BufferSizes(width=cfg.width, height=cfg.height)
    payload = float(sizes.rf_frame) * 2.0  # residual + partial reconstruction

    g = nx.DiGraph()
    g.add_node("src")
    g.add_node("sink")
    prev_nodes: list[tuple[str, str]] = []
    for si, (stage, share) in enumerate(RSTAR_STAGES):
        nodes = [(stage, d) for d in devices]
        for stage_d in nodes:
            _, d = stage_d
            stage_cost = rstar_estimates[d] * share
            if si == 0:
                g.add_edge("src", stage_d, weight=stage_cost)
            else:
                for prev in prev_nodes:
                    _, pd = prev
                    w = stage_cost + _migration_cost(platform, pd, d, payload)
                    g.add_edge(prev, stage_d, weight=w)
        prev_nodes = nodes
    for stage_d in prev_nodes:
        g.add_edge(stage_d, "sink", weight=0.0)

    length, path = nx.single_source_dijkstra(g, "src", "sink", weight="weight")
    stage_path = tuple(n for n in path if n not in ("src", "sink"))

    # Collapse to one device (the paper's single-device assignment): the
    # device carrying the largest share of stage time along the path.
    share_by_dev: dict[str, float] = {}
    for (stage, dev), (_, frac) in zip(stage_path, RSTAR_STAGES, strict=True):
        share_by_dev[dev] = share_by_dev.get(dev, 0.0) + frac
    best = max(share_by_dev.items(), key=lambda kv: (kv[1], -devices.index(kv[0])))
    return RStarDecision(device=best[0], path=stage_path, total_s=float(length))
