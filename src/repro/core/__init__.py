"""FEVES core: the paper's contribution.

- :mod:`repro.core.framework` — Framework Control (paper Algorithm 1):
  initialization with equidistant partitioning, then the adaptive
  iterative phase.
- :mod:`repro.core.coding_manager` — Video Coding Manager (Fig. 4): builds
  the per-frame DAG of kernels and transfers with the τ1/τ2/τtot
  synchronization structure, for GPU- and CPU-centric configurations and
  single/dual copy engines.
- :mod:`repro.core.data_access` — Data Access Management (Fig. 5): device
  buffer states, transfer coalescing and the deferred-SF σ/σʳ machinery.
- :mod:`repro.core.load_balancing` — the linear program of Algorithm 2
  with the MS_BOUNDS/LS_BOUNDS data-reuse terms.
- :mod:`repro.core.perf_model` — online Performance Characterization.
- :mod:`repro.core.rstar` — Dijkstra-based mapping of the R* modules.
"""

from repro.core.analysis import (
    ideal_aggregate_fps,
    parallel_efficiency,
    utilization_summary,
)
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework, FrameOutcome

__all__ = [
    "FevesFramework",
    "FrameOutcome",
    "FrameworkConfig",
    "ideal_aggregate_fps",
    "parallel_efficiency",
    "utilization_summary",
]
