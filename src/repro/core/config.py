"""Framework configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.noise import FaultSchedule, NoiseModel
from repro.util.validation import check_range

#: Execution modes: ``"model"`` advances only simulated time (benchmarks);
#: ``"real"`` additionally runs the NumPy codec kernels and produces the
#: actual encoded output (tests, examples).
COMPUTE_MODES = ("model", "real")

#: R* placement policies: ``"auto"`` runs the Dijkstra mapping each GOP,
#: ``"gpu"``/``"cpu"`` force the paper's GPU-/CPU-centric configurations.
CENTRIC_MODES = ("auto", "gpu", "cpu")

#: Execution backends: ``"sim"`` runs the collaborative schedule on the
#: DES (and, in real mode, executes kernels serially on the host);
#: ``"process"`` really executes ME/INT/SME on a persistent
#: multiprocessing worker pool over shared-memory frame buffers.
BACKENDS = ("sim", "process")


@dataclass
class FrameworkConfig:
    """Tunables of the FEVES framework itself (not of the codec).

    Parameters
    ----------
    compute:
        ``"model"`` or ``"real"`` (see :data:`COMPUTE_MODES`).
    centric:
        R* placement policy (see :data:`CENTRIC_MODES`).
    gop_size:
        Real mode: insert an I frame every ``gop_size`` frames (periodic
        intra refresh, resetting the reference window and the accelerator
        buffer states); 0 = single leading I frame (the paper's IPPP).
    ewma_alpha:
        Weight of the newest measurement when updating the Performance
        Characterization; 1.0 = trust the last frame entirely (the paper's
        single-frame recovery behaviour), lower = smoother.
    lp_delta_iterations:
        Fixed-point iterations between the LP solve and the Δm/Δl
        (MS_BOUNDS/LS_BOUNDS) recomputation.
    sf_halo_rows:
        Extra SF MB rows fetched above/below an SME band so vertical MV
        components stay inside transferred data; ``None`` derives
        ``ceil((search_range + 1) / 16)`` from the codec config.
    noise:
        Load-fluctuation model applied to simulated durations.
    min_rows_per_device:
        Floor on LP-assigned rows (0 allows devices to idle, the paper's
        behaviour when a device would only add overhead).
    lb_cache_rtol:
        When every measured K changed by less than this relative tolerance
        since the last LP solve, the previous decision is reused instead of
        re-solving — steady-state scheduling overhead drops to bookkeeping
        cost while any real load change (beyond the tolerance) still
        triggers a fresh solve the same frame. 0 disables caching.
    parallel_workers:
        Real mode: run the codec kernels on this many threads, dispatching
        each op when its DAG dependencies complete (NumPy releases the GIL,
        so the collaborative execution is literally parallel). 0/1 =
        serial; output is bit-identical either way.
    enable_parking:
        Allow the balancer to take accelerators fully offline (see
        DESIGN.md → device parking). Disable to reproduce the paper's
        always-participating behaviour (the robustness ablation).
    rstar_parallel:
        Model-mode what-if: distribute the R* block per-slice across
        devices (requires ``num_slices > 1`` and
        ``deblock_across_slices=False`` in the codec config — the slice
        configuration that makes DBL parallel). Quantifies the alternative
        the paper rejected in favour of single-device R*.
    faults:
        Device-fault injection plan (dropout / hang / degrade / copy_fail
        events; see :class:`~repro.hw.noise.FaultSchedule`). Empty by
        default. Event device names are validated against the platform
        when the framework is constructed.
    fault_detection_timeout_s:
        Simulated watchdog time charged on the frame a dropout/hang is
        detected: the fault frame stalls this long before the faulted
        device's bands are redone on a survivor.
    warmup_rows:
        MB rows per module granted to a re-admitted device whose
        characterization was cleared, so it re-measures online without
        the LP having to gamble on unknown speeds.
    lp_warm_start:
        Warm-start the per-frame LP: memoize HiGHS solves on the exact
        bytes of the constraint system and reuse the previous decision
        outright when every K parameter is bit-identical and the Δ fixed
        point had converged. Exact by construction — results are
        bit-identical to cold solves (see DESIGN.md → Performance);
        disable only to benchmark the cold path.
    char_cache:
        Cache derived characterization products (K vectors, per-buffer
        transfer-K tables, calibration fits) keyed on the
        characterization version counter, which bumps on every
        observation and invalidation — so a hit is provably current.
    des_fast:
        Use the index-based DES fast path (deque scheduling + vectorized
        overlap validation). Event order and arithmetic are identical to
        the reference loop; disable only to benchmark it.
    backend:
        ``"sim"`` (the DES) or ``"process"`` (really-parallel execution
        on a multiprocessing worker pool over shared-memory buffers; see
        :data:`BACKENDS` and :mod:`repro.exec`). ``"process"`` requires
        ``compute="real"`` and an empty fault schedule — faults are a
        simulation concept.
    exec_workers:
        Process backend: worker-pool size. 0 = one worker per CPU core.
    calibrate:
        Process backend: feed *measured* per-module spans into the
        Performance Characterization so the LP schedules from real rates.
        False feeds the model rates instead, so the accuracy report
        quantifies the uncalibrated model error.
    """

    compute: str = "model"
    centric: str = "auto"
    gop_size: int = 0
    ewma_alpha: float = 1.0
    lp_delta_iterations: int = 2
    sf_halo_rows: int | None = None
    noise: NoiseModel = field(default_factory=NoiseModel)
    min_rows_per_device: int = 0
    lb_cache_rtol: float = 0.02
    parallel_workers: int = 0
    enable_parking: bool = True
    rstar_parallel: bool = False
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    fault_detection_timeout_s: float = 0.040
    warmup_rows: int = 2
    lp_warm_start: bool = True
    char_cache: bool = True
    des_fast: bool = True
    backend: str = "sim"
    exec_workers: int = 0
    calibrate: bool = True

    def __post_init__(self) -> None:
        if self.compute not in COMPUTE_MODES:
            raise ValueError(
                f"compute must be one of {COMPUTE_MODES}, got {self.compute!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.backend == "process":
            if self.compute != "real":
                raise ValueError("backend='process' requires compute='real'")
            if not self.faults.empty:
                raise ValueError(
                    "backend='process' cannot inject faults (simulation-only)"
                )
        check_range("exec_workers", self.exec_workers, 0, 64)
        if self.centric not in CENTRIC_MODES:
            raise ValueError(
                f"centric must be one of {CENTRIC_MODES}, got {self.centric!r}"
            )
        if self.gop_size < 0:
            raise ValueError("gop_size must be >= 0")
        check_range("ewma_alpha", self.ewma_alpha, 0.01, 1.0)
        check_range("lp_delta_iterations", self.lp_delta_iterations, 1, 10)
        if self.sf_halo_rows is not None:
            check_range("sf_halo_rows", self.sf_halo_rows, 0, 64)
        check_range("min_rows_per_device", self.min_rows_per_device, 0, 8)
        check_range("lb_cache_rtol", self.lb_cache_rtol, 0.0, 0.5)
        check_range("parallel_workers", self.parallel_workers, 0, 64)
        check_range(
            "fault_detection_timeout_s", self.fault_detection_timeout_s, 0.0, 10.0
        )
        check_range("warmup_rows", self.warmup_rows, 1, 16)
