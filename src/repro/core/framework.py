"""Framework Control: paper Algorithm 1.

Ties everything together:

1. **Initialization phase** (first inter frame): detect devices, configure
   the Video Coding Manager and Data Access Management, distribute the ME /
   INT / SME loads *equidistantly*, execute, record times, and build the
   initial Performance Characterization (including R* probes for the
   Dijkstra mapping).
2. **Iterative phase** (every subsequent inter frame): ask the Load
   Balancing LP for new distributions based on the measured
   characterization, execute collaboratively, and fold the new
   measurements back in — adapting to load changes within one frame.

Two run modes share this control loop: ``compute="model"`` advances only
simulated time (1080p benchmark sweeps), ``compute="real"`` also executes
the NumPy codec and returns bit-exact encoded frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.config import CodecConfig
import numpy as np

from repro.codec.encoder import EncodedFrame, deblock_frame
from repro.codec.frames import YuvFrame
from repro.codec.intra import intra_encode_frame
from repro.codec.quality import frame_psnr
from repro.codec.gop import ReferenceStore
from repro.core.coding_manager import FrameReport, RealContext, VideoCodingManager
from repro.core.config import FrameworkConfig
from repro.core.data_access import DataAccessManager, TransferPlan
from repro.core.distribution import Distribution
from repro.core.load_balancing import LoadDecision
from repro.hw.timeline import FaultLogEntry, FrameTimeline
from repro.core.load_balancing import LoadBalancer
from repro.core.perf_model import PerformanceCharacterization
from repro.core.rstar import select_rstar_device
from repro.hw.interconnect import BufferSizes
from repro.hw.timeline import EncodingTrace
from repro.hw.topology import Platform
from repro.util.profiling import PhaseProfiler
from repro.util.timing import WallTimer


@dataclass
class FrameOutcome:
    """Per-frame result surfaced to callers."""

    report: FrameReport
    encoded: EncodedFrame | None = None

    @property
    def time_s(self) -> float:
        return self.report.tau_tot

    @property
    def fps(self) -> float:
        return 1.0 / self.report.tau_tot if self.report.tau_tot > 0 else 0.0


class FevesFramework:
    """The FEVES unified collaborative video-encoding framework."""

    def __init__(
        self,
        platform: Platform,
        codec_cfg: CodecConfig,
        fw_cfg: FrameworkConfig | None = None,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.platform = platform
        self.codec_cfg = codec_cfg
        self.fw_cfg = fw_cfg or FrameworkConfig()
        sizes = BufferSizes(width=codec_cfg.width, height=codec_cfg.height)

        # Phase-attributed wall-clock accounting (`repro profile`).
        self.profiler = profiler if profiler is not None else PhaseProfiler()

        # Algorithm 1, lines 1-2: "detect" devices and instantiate blocks.
        self.perf = PerformanceCharacterization(alpha=self.fw_cfg.ewma_alpha)
        self.balancer = LoadBalancer(
            platform, codec_cfg, self.fw_cfg, profiler=self.profiler
        )
        if self.fw_cfg.backend == "process":
            # Lazy import: repro.exec depends on the coding manager (for
            # the run_frame contract), never the other way round.
            from repro.exec.backend import ProcessBackend

            self.manager: VideoCodingManager | ProcessBackend = ProcessBackend(
                platform, codec_cfg, self.fw_cfg, profiler=self.profiler
            )
        else:
            self.manager = VideoCodingManager(
                platform, codec_cfg, self.fw_cfg, profiler=self.profiler
            )
        self.dam = DataAccessManager(
            platform, sizes, enable_parking=self.fw_cfg.enable_parking
        )

        # Fault model: validate the schedule against real device names and
        # start with every device live.
        for name in self.fw_cfg.faults.devices():
            platform.device(name)  # raises on unknown device
        self._live: dict[str, bool] = {d.name: True for d in platform.devices}
        self.fault_log: list[FaultLogEntry] = []

        self._inter_frames_done = 0
        self._frames_since_intra = 0
        self._rstar_device = self._initial_rstar_device()
        self.lb_timer = WallTimer()
        self.trace = EncodingTrace(platform=platform.name)
        self.reports: list[FrameReport] = []

        # Real-compute state.
        self._store = ReferenceStore(max_refs=codec_cfg.num_ref_frames)

    # -------------------------------------------------------------------------

    def _initial_rstar_device(self) -> str:
        """Default R* placement before any characterization exists."""
        gpus = self.platform.gpus
        cpu = self.platform.cpu
        if self.fw_cfg.centric == "cpu" and cpu is not None:
            return cpu.name
        if gpus:
            return gpus[0].name
        assert cpu is not None
        return cpu.name

    @property
    def rstar_device(self) -> str:
        return self._rstar_device

    def _maybe_reselect_rstar(self) -> None:
        """After init (or a live-set change), map R* via Dijkstra (auto).

        Only live devices compete: an evicted device keeps its last R*
        estimate as a prior, but it cannot host the block.
        """
        if self.fw_cfg.centric != "auto":
            return
        estimates = {
            d.name: t
            for d in self.platform.devices
            if self._live.get(d.name, True)
            and (t := self.perf.rstar_frame_s(d.name)) is not None
        }
        if len(estimates) < 2:
            return
        decision = select_rstar_device(self.platform, estimates, self.codec_cfg)
        self._rstar_device = decision.device

    def _rstar_fallback(self, survivors: frozenset[str]) -> str:
        """R* placement when the selected device died.

        Survival overrides a forced centric policy: the Dijkstra mapping
        re-runs over characterized survivors; with fewer than two
        estimates the fastest (or only) measured survivor wins, and with
        no measurements at all the CPU — else the first surviving device —
        takes the block.
        """
        # Iterate platform device order, not the survivor set (REP102):
        # frozenset order varies with PYTHONHASHSEED, and the insertion
        # order of `estimates` must stay canonical so no downstream
        # consumer (min() tie-breaks, serialization) can ever observe a
        # hash-seed-dependent order.
        estimates = {
            d.name: t
            for d in self.platform.devices
            if d.name in survivors
            and (t := self.perf.rstar_frame_s(d.name)) is not None
        }
        if len(estimates) >= 2:
            return select_rstar_device(
                self.platform, estimates, self.codec_cfg
            ).device
        if estimates:
            return min(estimates, key=lambda k: estimates[k])
        cpu = self.platform.cpu
        if cpu is not None and cpu.name in survivors:
            return cpu.name
        return next(d.name for d in self.platform.devices if d.name in survivors)

    def _fault_fallback(self, survivors: frozenset[str]) -> str:
        """Survivor that redoes a dying device's bands (CPU preferred —
        the data is already in host memory)."""
        cpu = self.platform.cpu
        if cpu is not None and cpu.name in survivors:
            return cpu.name
        return next(d.name for d in self.platform.devices if d.name in survivors)

    # ------------------------- model mode ------------------------------------

    def run_model(self, n_inter_frames: int) -> list[FrameOutcome]:
        """Encode ``n_inter_frames`` in model mode (timing only).

        Frame indices are 1-based to match the paper's Fig. 7 (frame 1 is
        the equidistant initialization frame).
        """
        if n_inter_frames < 1:
            raise ValueError("need at least one inter frame")
        return [self.encode_next_inter() for _ in range(n_inter_frames)]

    def encode_next_inter(self) -> FrameOutcome:
        """Encode one more inter frame in model mode (stepping API).

        Exactly one iteration of :meth:`run_model`'s loop. The
        multi-stream service layer uses this to interleave frames of many
        sessions on a shared platform: it adjusts each device's capacity
        share between calls and advances one frame at a time.
        """
        return self._encode_inter(None)

    # ------------------------- real mode --------------------------------------

    def encode(self, frames: list[YuvFrame]) -> list[FrameOutcome]:
        """Encode a sequence in real mode.

        Frame 0 — and, when ``gop_size`` is set, every ``gop_size``-th
        frame — is coded intra on the host (the paper's evaluation, like
        ours, times only the inter loop), resetting the reference window
        and the accelerators' buffer state; all other frames run the
        collaborative inter loop.
        """
        if self.fw_cfg.compute != "real":
            raise RuntimeError('encode() requires FrameworkConfig(compute="real")')
        return [self.encode_frame_at(cur, f) for f, cur in enumerate(frames)]

    def encode_frame_at(self, cur: YuvFrame, index: int) -> FrameOutcome:
        """Encode one frame of a real-mode sequence (stepping API).

        Exactly one iteration of :meth:`encode`'s loop, keyed by the
        source frame index: 0 (and every ``gop_size``-th index) is coded
        intra, everything else runs the collaborative inter loop. The
        service layer uses this to interleave *really-executed* frames
        of many streams (process backend), the way
        :meth:`encode_next_inter` interleaves simulated ones.
        """
        if self.fw_cfg.compute != "real":
            raise RuntimeError(
                'encode_frame_at() requires FrameworkConfig(compute="real")'
            )
        gop = self.fw_cfg.gop_size
        if index == 0 or (gop > 0 and index % gop == 0):
            return self._encode_intra_host(cur, index)
        return self._encode_inter(cur)

    # ------------------------- backend lifecycle ------------------------------

    def close(self) -> None:
        """Release backend resources (worker pool, shared memory).

        No-op for the sim backend; idempotent. Use the framework as a
        context manager to make this automatic.
        """
        closer = getattr(self.manager, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "FevesFramework":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def accuracy_report(self):
        """The process backend's predicted-vs-measured report (else None)."""
        return getattr(self.manager, "accuracy", None)

    def _encode_intra_host(self, cur: YuvFrame, index: int) -> FrameOutcome:
        """Code an I frame on the host (untimed) and reset device state.

        A new GOP discards the reference window: the reconstructed RF lives
        in host memory, so every accelerator must refetch it and the
        deferred-SF backlog is void (Data Access Management reset).
        """
        result = intra_encode_frame(cur, self.codec_cfg)
        h, w = cur.y.shape
        intra4 = np.ones((h // 4, w // 4), dtype=bool)
        mv4 = np.zeros((h // 4, w // 4, 2), dtype=np.int32)
        ref4 = np.full((h // 4, w // 4), -1, dtype=np.int32)
        from repro.codec.slices import dbl_skip_luma_rows

        recon = deblock_frame(result.recon, mv4, ref4, result.cnz4, intra4,
                              self.codec_cfg.qp_i,
                              skip_luma_rows=dbl_skip_luma_rows(self.codec_cfg))
        self._store.reset(recon)
        self.dam.reset_after_intra()
        self._frames_since_intra = 0
        encoded = EncodedFrame(
            index=index,
            is_intra=True,
            bits=result.bits,
            psnr=frame_psnr(cur, recon),
            recon=recon,
        )
        return FrameOutcome(report=_intra_report(), encoded=encoded)

    # ------------------------- shared control loop ----------------------------

    def _encode_inter(self, cur: YuvFrame | None) -> FrameOutcome:
        self._inter_frames_done += 1
        idx = self._inter_frames_done
        is_init = idx == 1
        n_devices = len(self.platform.devices)
        faults = self.fw_cfg.faults
        reasons: list[tuple[str, str]] = []

        # --- fault lifecycle (before planning) ---------------------------
        # Re-admit devices whose outage window ended: their demoted priors
        # (or a warm-up grant, if characterization was cleared) bring them
        # back into the LP this very frame.
        readmitted: list[str] = []
        for name, alive in self._live.items():
            if not alive and faults.down(idx, name) is None:
                self._live[name] = True
                # A re-admission changes the live set the cached decision
                # and fixed-point seed were computed for; a fresh balancer
                # would hold neither, so drop both before the next solve
                # (stale-state bugfix).
                self.balancer.note_live_set_change()
                readmitted.append(name)
                reasons.append((name, "outage ended; re-admitted"))
        live = frozenset(n for n, a in self._live.items() if a)
        # Devices dying *during* this frame: planning still counts them
        # (the fault is only discovered at execution), but their transfers
        # are skipped and their bands redone on a survivor.
        newly_down = frozenset(
            n for n in live if faults.down(idx, n) is not None
        )
        survivors = live - newly_down
        if not survivors:
            raise RuntimeError(
                f"all devices faulted at inter frame {idx}; cannot continue"
            )
        if readmitted:
            self._maybe_reselect_rstar()
        if self._rstar_device not in survivors:
            old = self._rstar_device
            self._rstar_device = self._rstar_fallback(survivors)
            reasons.append((old, f"R* host down; moved to {self._rstar_device}"))

        # Active references ramp up at the start of each GOP (Fig. 7(b)).
        self._frames_since_intra += 1
        active_refs = min(self._frames_since_intra, self.codec_cfg.num_ref_frames)

        # Algorithm 1 line 3 / line 8 (the <2 ms scheduling overhead the
        # paper reports is exactly the work timed here). The balancer
        # falls back to an equidistant split over the live set until every
        # live device is characterized.
        with self.lb_timer:
            if is_init:
                decision = self.balancer.equidistant(live=live)
            else:
                decision = self.balancer.solve(
                    perf=self.perf,
                    rstar_device=self._rstar_device,
                    needs_rf=self.dam.needs_rf(),
                    sigma_r_prev=dict(self.dam.sigma_r_rows),
                    live=live,
                )
            with self.profiler.phase("plan"):
                plan = self.dam.plan(decision, self._rstar_device, live=survivors)

        # Degradation faults enter as genuine slowdowns, never as events:
        # the characterization measures them like any other load change.
        for dev in self.platform.devices:
            dev.set_fault_scales(
                compute=faults.compute_factor(idx, dev.name),
                copy=faults.copy_factor(idx, dev.name),
            )

        ctx = self._build_ctx(cur, idx) if cur is not None else None
        report = self.manager.run_frame(
            frame_index=idx,
            decision=decision,
            rstar_device=self._rstar_device,
            plan=plan,
            active_refs=active_refs,
            perf=self.perf,
            ctx=ctx,
            probe_rstar=is_init and n_devices > 1,
            live=live,
            faulted_now=newly_down,
            fault_timeout_s=self.fw_cfg.fault_detection_timeout_s,
            fallback_device=(
                self._fault_fallback(survivors) if newly_down else None
            ),
        )
        self.dam.commit(decision, self._rstar_device, live=survivors)
        if (
            self.fw_cfg.rstar_parallel
            and self.codec_cfg.num_slices > 1
            and not self.codec_cfg.deblock_across_slices
        ):
            # Parallel R*: the new RF is reassembled on the host, so no
            # single accelerator holds it.
            self.dam.rf_holder = None

        # --- fault lifecycle (after execution) ---------------------------
        for name in sorted(newly_down):
            ev = faults.down(idx, name)
            assert ev is not None
            self._live[name] = False
            # Mirror the perf/DAM eviction in the balancer: its decision
            # cache and seed describe the pre-fault live set.
            self.balancer.note_live_set_change()
            # A hang keeps the pre-fault estimates as priors (one-frame
            # re-warm on re-admission); clear_characterization forgets the
            # device so it must re-probe through warm-up rows.
            self.perf.invalidate(name, keep_prior=not ev.clear_characterization)
            self.dam.evict(name)
            why = f"{ev.kind} at frame {ev.frame}"
            if ev.duration:
                why += f" for {ev.duration} frames"
            reasons.append((name, why))
        if is_init:
            self._maybe_reselect_rstar()

        self.fault_log.append(
            FaultLogEntry(
                frame_index=idx,
                live=tuple(sorted(live)),
                evicted=tuple(sorted(newly_down)),
                readmitted=tuple(readmitted),
                reasons=tuple(reasons),
                time_lost_s=report.fault_time_lost_s,
                used_lp=decision.used_lp,
                rstar_device=self._rstar_device,
            )
        )

        if ctx is not None and ctx.encoded is not None:
            assert ctx.sf_new is not None
            self._store.push_sf(ctx.sf_new)
            self._store.push(ctx.encoded.recon)

        self.trace.add(report.timeline)
        self.reports.append(report)
        return FrameOutcome(report=report, encoded=ctx.encoded if ctx else None)

    def _build_ctx(self, cur: YuvFrame, idx: int) -> RealContext:
        store = self._store
        refs = store.active_refs()
        # SFs of all active refs except the newest (interpolated this frame).
        sfs_prev = store.sfs[: max(0, store.num_active - 1)]
        return RealContext(
            cur=cur,
            refs_y=[r.y for r in refs],
            rf_new_y=store.frames[0].y,
            sfs_prev=list(sfs_prev),
            chroma=store.active_chroma(),
            cfg=self.codec_cfg,
            qp=self.codec_cfg.qp_p,
            frame_index=idx,
        )

    # ------------------------- reporting --------------------------------------

    @property
    def scheduling_overhead_ms(self) -> float:
        """Mean wall-clock milliseconds of LB + transfer planning per frame."""
        return self.lb_timer.mean_s * 1e3

    def frame_times_ms(self) -> list[float]:
        """Simulated τtot per inter frame, in ms (paper Fig. 7 y-axis)."""
        return [t * 1e3 for t in self.trace.frame_times_s]

    def steady_state_fps(self, warmup: int = 2) -> float:
        """fps once the load balancing has converged (paper Fig. 6)."""
        return self.trace.steady_state_fps(warmup=warmup)

    def summary(self) -> dict:
        """Headline numbers of the run so far (for logs and notebooks).

        Keys: ``platform``, ``frames``, ``steady_fps``, ``realtime``
        (≥25 fps), ``rstar_device``, ``lb_overhead_ms``, per-module final
        distributions, and steady-state compute utilization per device.
        """
        if not self.reports:
            raise RuntimeError("nothing encoded yet")
        from repro.core.analysis import utilization_summary

        last = self.reports[-1].decision
        names = [d.name for d in self.platform.devices]
        util = utilization_summary(self.reports)
        fps = self.steady_state_fps()
        return {
            "platform": self.platform.name,
            "frames": len(self.reports),
            "steady_fps": fps,
            "realtime": fps >= 25.0,
            "rstar_device": self._rstar_device,
            "live_devices": sorted(n for n, a in self._live.items() if a),
            "fault_events": sum(1 for e in self.fault_log if e.eventful),
            "fault_time_lost_s": sum(e.time_lost_s for e in self.fault_log),
            "lb_overhead_ms": self.scheduling_overhead_ms,
            "distribution": {
                "devices": names,
                "me": last.m.rows,
                "int": last.l.rows,
                "sme": last.s.rows,
            },
            "compute_utilization": {
                name: util.compute_utilization(name) for name in names
            },
        }


def _intra_report() -> FrameReport:
    """Placeholder report for the (untimed) intra frame."""
    dist = Distribution(rows=(0,), total=0)
    decision = LoadDecision(m=dist, l=dist, s=dist, delta_m=[], delta_l=[])
    return FrameReport(
        frame_index=0,
        tau1=0.0,
        tau2=0.0,
        tau_tot=0.0,
        timeline=FrameTimeline(frame_index=0, records=[]),
        decision=decision,
        rstar_device="",
        transfer_plan=TransferPlan(),
    )
