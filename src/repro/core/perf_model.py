"""Performance Characterization: online measurement of device and link speeds.

Paper §III.C: the LP consumes per-device/module processing times per MB row
(K^m, K^l, K^s), the R* block time (T^R*), and per-buffer transfer times per
MB row in each direction (K^{cf hd}, K^{sf dh}, …). All of them are
*measured* — recorded after every frame (Algorithm 1 lines 5/10) — never
assumed, which is what lets the framework adapt to non-dedicated systems.

Link characterization follows Algorithm 1 line 6: we estimate the
*asymmetric bandwidth* of each accelerator's interconnect from all observed
transfers in a direction, then derive every per-buffer K from the known
bytes-per-row of that buffer. This fills in K values for buffer types that
happened not to move during a frame (e.g. Δ MVs under equidistant splits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.interconnect import BufferSizes

#: Compute modules characterized per MB row.
COMPUTE_MODULES = ("me", "int", "sme")

#: Logical buffers whose transfers the framework schedules.
BUFFERS = ("cf", "cf_full", "rf", "sf", "mv")


def buffer_row_bytes(buf: str, sizes: BufferSizes) -> int:
    """Bytes per MB row of a logical buffer."""
    table = {
        "cf": sizes.cf_row,
        "cf_full": sizes.cf_row_full,
        "rf": sizes.rf_row,
        "sf": sizes.sf_row,
        "mv": sizes.mv_row,
    }
    try:
        return table[buf]
    except KeyError:
        raise ValueError(f"unknown buffer {buf!r}; expected one of {BUFFERS}") from None


@dataclass
class _DeviceState:
    """Mutable characterization of one device.

    ``priors`` holds the keys (module names, ``"rstar"``, directions)
    whose current value is a *prior* — a calibration estimate or a stale
    pre-fault measurement — rather than a fresh online observation.
    """

    k_compute: dict[str, float] = field(default_factory=dict)  # module -> s/row
    rstar_frame_s: float | None = None
    bw: dict[str, float] = field(default_factory=dict)  # "h2d"/"d2h" -> B/s
    priors: set[str] = field(default_factory=set)


class PerformanceCharacterization:
    """EWMA-updated speed estimates for every device and link.

    Parameters
    ----------
    alpha:
        Weight of the newest observation (1.0 = last frame wins, giving the
        paper's one-frame recovery after load spikes).

    Priors vs observations
    ----------------------
    Estimates marked as *priors* — seeded from calibration
    (``prior=True``) or demoted by :meth:`invalidate` after a device
    fault — keep the LP solvable but carry no online evidence. The first
    real observation for a prior-valued key therefore **replaces** the
    estimate outright instead of blending at the steady-state ``alpha``:
    with a smoothed characterization (``alpha`` < 1), blending against a
    stale prior would stretch Fig. 7's one-frame absorption over many
    frames.

    Version counter
    ---------------
    :attr:`version` increments on every state mutation — each accepted
    observation, installed prior, and invalidation. Consumers caching
    anything derived from the characterization (K vectors, per-buffer
    transfer tables, analysis summaries) key their caches on it: a
    version match proves the cached value equals a fresh recomputation,
    so version-keyed caching is exact by construction.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._devices: dict[str, _DeviceState] = {}
        self.version = 0

    def _state(self, device: str) -> _DeviceState:
        return self._devices.setdefault(device, _DeviceState())

    def _blend(self, st: _DeviceState, key: str, old: float | None, new: float) -> float:
        if old is None or key in st.priors:
            # First (or first-after-fault) observation seeds outright.
            st.priors.discard(key)
            return new
        return self.alpha * new + (1.0 - self.alpha) * old

    # --- observations -------------------------------------------------------

    def observe_compute(
        self, device: str, module: str, rows: int, seconds: float,
        prior: bool = False,
    ) -> None:
        """Record a compute op: ``rows`` MB rows of ``module`` in ``seconds``.

        ``prior=True`` installs a calibration estimate: it only fills a
        gap (never overrides online data) and is replaced outright by the
        first real observation.
        """
        if module not in COMPUTE_MODULES:
            raise ValueError(f"unknown module {module!r}")
        if rows <= 0 or seconds < 0:
            return
        st = self._state(device)
        if prior:
            if module not in st.k_compute:
                st.k_compute[module] = seconds / rows
                st.priors.add(module)
                self.version += 1
            return
        st.k_compute[module] = self._blend(
            st, module, st.k_compute.get(module), seconds / rows
        )
        self.version += 1

    def observe_rstar(self, device: str, seconds: float, prior: bool = False) -> None:
        """Record a full R* block execution (``prior`` as in observe_compute)."""
        if seconds < 0:
            return
        st = self._state(device)
        if prior:
            if st.rstar_frame_s is None:
                st.rstar_frame_s = seconds
                st.priors.add("rstar")
                self.version += 1
            return
        st.rstar_frame_s = self._blend(st, "rstar", st.rstar_frame_s, seconds)
        self.version += 1

    def observe_transfer(
        self, device: str, direction: str, nbytes: float, seconds: float,
        prior: bool = False,
    ) -> None:
        """Record one transfer; updates the directional bandwidth estimate."""
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"direction must be h2d/d2h, got {direction!r}")
        if nbytes <= 0 or seconds <= 0:
            return
        st = self._state(device)
        if prior:
            if direction not in st.bw:
                st.bw[direction] = nbytes / seconds
                st.priors.add(direction)
                self.version += 1
            return
        st.bw[direction] = self._blend(
            st, direction, st.bw.get(direction), nbytes / seconds
        )
        self.version += 1

    # --- fault bookkeeping --------------------------------------------------

    def invalidate(self, device: str, keep_prior: bool = True) -> None:
        """React to a device fault.

        ``keep_prior=True`` (hang/transient outage): demote every current
        estimate to a prior — the LP can still plan with the pre-fault
        numbers on re-admission, and the first post-recovery observation
        replaces them outright. ``keep_prior=False`` (dropout, or a device
        that rebooted): forget the device entirely; it must be re-probed
        before the LP will schedule it again.
        """
        st = self._devices.get(device)
        if st is None:
            return
        self.version += 1
        if not keep_prior:
            del self._devices[device]
            return
        st.priors.update(st.k_compute.keys())
        st.priors.update(st.bw.keys())
        if st.rstar_frame_s is not None:
            st.priors.add("rstar")

    def is_prior(self, device: str, key: str) -> bool:
        """Whether the estimate under ``key`` is a prior (test/log helper)."""
        st = self._devices.get(device)
        return st is not None and key in st.priors

    # --- queries ------------------------------------------------------------

    def k_compute(self, device: str, module: str) -> float | None:
        """Seconds per MB row for a module on a device (None if unmeasured)."""
        return self._state(device).k_compute.get(module)

    def rstar_frame_s(self, device: str) -> float | None:
        """Measured R* block seconds on a device."""
        return self._state(device).rstar_frame_s

    def bandwidth(self, device: str, direction: str) -> float | None:
        """Estimated link bandwidth (bytes/s) of a device in a direction."""
        return self._state(device).bw.get(direction)

    def k_transfer(
        self, device: str, buf: str, direction: str, sizes: BufferSizes
    ) -> float | None:
        """Seconds per MB row to move a buffer in a direction.

        Derived as ``bytes_per_row / measured_bandwidth`` so one observed
        transfer in a direction characterizes every buffer type.
        """
        bw = self.bandwidth(device, direction)
        if bw is None:
            return None
        return buffer_row_bytes(buf, sizes) / bw

    def ready_for_lp(
        self, device_names: list[str], accel_names: list[str]
    ) -> bool:
        """True when every K the LP needs has at least one measurement."""
        for name in device_names:
            st = self._devices.get(name)
            if st is None:
                return False
            for module in COMPUTE_MODULES:
                if module not in st.k_compute:
                    return False
        for name in accel_names:
            st = self._devices.get(name)
            if st is None or "h2d" not in st.bw or "d2h" not in st.bw:
                return False
        return True

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Flat copy of every estimate (for logging/EXPERIMENTS.md)."""
        out: dict[str, dict[str, float]] = {}
        for name, st in self._devices.items():
            d: dict[str, float] = {f"k_{m}": v for m, v in st.k_compute.items()}
            if st.rstar_frame_s is not None:
                d["rstar_frame_s"] = st.rstar_frame_s
            for direction, bw in st.bw.items():
                d[f"bw_{direction}"] = bw
            out[name] = d
        return out
