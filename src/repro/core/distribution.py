"""Distribution vectors: MB-row workload splits across devices.

The framework distributes each computationally intensive module at MB-row
granularity: ``m`` for ME, ``l`` for INT and ``s`` for SME (paper §III.A).
A distribution assigns each device a *contiguous band* of rows in device
enumeration order — bands are prefix intervals, which is what makes the
Data Access Management offsets (``m_{i-1}``, ``s_{i-1}`` … in Fig. 5) well
defined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Distribution:
    """Rows-per-device assignment for one module, in device order."""

    rows: tuple[int, ...]
    total: int

    def __post_init__(self) -> None:
        if any(r < 0 for r in self.rows):
            raise ValueError(f"negative row counts: {self.rows}")
        if sum(self.rows) != self.total:
            raise ValueError(
                f"distribution {self.rows} sums to {sum(self.rows)}, "
                f"expected {self.total}"
            )

    @property
    def n_devices(self) -> int:
        return len(self.rows)

    def band(self, i: int) -> tuple[int, int]:
        """``(row0, row0 + nrows)`` half-open band of device ``i``."""
        start = sum(self.rows[:i])
        return start, start + self.rows[i]

    def bands(self) -> list[tuple[int, int]]:
        """All device bands in order."""
        return [self.band(i) for i in range(self.n_devices)]

    @classmethod
    def equidistant(cls, total: int, n_devices: int) -> "Distribution":
        """The initialization-phase split: as equal as integer rows allow."""
        if n_devices < 1:
            raise ValueError("need at least one device")
        base = total // n_devices
        extra = total % n_devices
        rows = tuple(base + (1 if i < extra else 0) for i in range(n_devices))
        return cls(rows=rows, total=total)

    @classmethod
    def single_device(cls, total: int, n_devices: int, device: int) -> "Distribution":
        """All rows on one device (single-device baselines)."""
        rows = [0] * n_devices
        rows[device] = total
        return cls(rows=tuple(rows), total=total)


def round_preserving_sum(fractions: np.ndarray, total: int) -> tuple[int, ...]:
    """Largest-remainder rounding of non-negative reals to integers summing
    to ``total`` (converts the LP's continuous solution to whole MB rows).

    Degenerate inputs are handled rather than rejected: LP outputs may be
    negative within the solver's feasibility tolerance (~1e-7 for HiGHS,
    looser than a naive zero check), so values above ``-1e-6`` are clamped
    to zero and only genuinely negative inputs raise. A zero-sum vector
    (all devices idle, or ``total == 0``) falls back to an equidistant
    split, a single entry gets everything, and remainder ties break toward
    the lower device index deterministically.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    frac = np.atleast_1d(np.asarray(fractions, dtype=np.float64))
    if frac.size == 0:
        if total != 0:
            raise ValueError(f"cannot distribute {total} rows over zero devices")
        return ()
    if (frac < -1e-6).any():
        raise ValueError(f"negative fractions: {frac}")
    frac = np.clip(frac, 0.0, None)
    if total == 0:
        return (0,) * len(frac)
    if len(frac) == 1:
        return (total,)
    s = frac.sum()
    if s == 0:
        return tuple(Distribution.equidistant(total, len(frac)).rows)
    with np.errstate(invalid="ignore", over="ignore"):
        frac = frac * (total / s)
    if not np.isfinite(frac).all():  # guard subnormal inputs overflowing
        return tuple(Distribution.equidistant(total, len(frac)).rows)
    floor = np.floor(frac).astype(int)
    # Float error can make the scaled sum land a hair above ``total``;
    # floors then already cover it and there is nothing left to hand out.
    short = max(0, total - int(floor.sum()))
    # Stable sort: equal remainders go to the lower device index, keeping
    # the rounded vector deterministic across numpy versions.
    order = np.argsort(-(frac - floor), kind="stable")
    out = floor.copy()
    for k in range(short):
        out[order[k % len(out)]] += 1
    return tuple(int(x) for x in out)


def overlap_rows(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Length of the intersection of two half-open row intervals."""
    return max(0, min(a[1], b[1]) - max(a[0], b[0]))


def missing_segments(
    need: tuple[int, int], have: tuple[int, int]
) -> list[tuple[int, int]]:
    """Sub-intervals of ``need`` not covered by ``have`` (≤ 2 segments).

    This is the geometric core of MS_BOUNDS/LS_BOUNDS: the rows a device
    must additionally fetch when two modules' bands over the same buffer
    differ (paper Fig. 5's upper/bottom region pairs).
    """
    out: list[tuple[int, int]] = []
    if need[0] >= need[1]:
        return out
    if have[0] >= have[1]:
        return [need]
    if need[0] < have[0]:
        out.append((need[0], min(need[1], have[0])))
    if need[1] > have[1]:
        out.append((max(need[0], have[1]), need[1]))
    return out
