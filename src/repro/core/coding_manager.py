"""Video Coding Manager: per-frame orchestration of kernels and transfers.

Builds the Fig.-4 op DAG for one inter frame — per accelerator engine
queues, the τ1/τ2 synchronization barriers, the R* block on its selected
device — runs it on the DES, and harvests the measurements that feed the
Performance Characterization. In ``compute="real"`` mode the ops carry
thunks executing the actual NumPy codec kernels, and the barriers stitch
the per-device bands back together, so the collaborative output can be
compared bit-exactly against the reference encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.codec.config import CodecConfig
from repro.codec.encoder import (
    EncodedFrame,
    deblock_frame,
    encode_inter_residual_full,
)
from repro.codec.entropy import get_coder
from repro.codec.frames import YuvFrame
from repro.codec.interpolation import interpolate_rows
from repro.codec.mc import motion_compensate
from repro.codec.me import MotionField, motion_estimate_rows
from repro.codec.quality import frame_psnr
from repro.codec.sme import SubpelField, subpel_refine_rows
from repro.core.config import FrameworkConfig
from repro.core.data_access import TransferPlan
from repro.core.load_balancing import LoadDecision
from repro.core.perf_model import PerformanceCharacterization
from repro.hw.des import Op, Resource, Simulator
from repro.hw.timeline import FrameTimeline
from repro.hw.topology import Platform
from repro.util.profiling import PhaseProfiler


@dataclass
class RealContext:
    """Shared state of one real-compute frame (filled in by op thunks)."""

    cur: YuvFrame
    refs_y: list[np.ndarray]
    rf_new_y: np.ndarray
    sfs_prev: list[np.ndarray]
    chroma: list[tuple[np.ndarray, np.ndarray]]
    cfg: CodecConfig
    qp: int
    frame_index: int
    sf_bands: dict[int, np.ndarray] = field(default_factory=dict)
    me_bands: dict[int, MotionField] = field(default_factory=dict)
    sme_bands: dict[int, SubpelField] = field(default_factory=dict)
    sf_new: np.ndarray | None = None
    me_field: MotionField | None = None
    sme_field: SubpelField | None = None
    sfs: list[np.ndarray] = field(default_factory=list)
    encoded: EncodedFrame | None = None


@dataclass
class FrameReport:
    """Everything observed while encoding one inter frame.

    ``faulted`` names the devices that died *during* this frame; their
    stall (detection timeout) plus host-side redo work is accounted in
    ``fault_time_lost_s``.
    """

    frame_index: int
    tau1: float
    tau2: float
    tau_tot: float
    timeline: FrameTimeline
    decision: LoadDecision
    rstar_device: str
    transfer_plan: TransferPlan
    encoded: EncodedFrame | None = None
    faulted: tuple[str, ...] = ()
    fault_time_lost_s: float = 0.0


class VideoCodingManager:
    """Executes one frame's collaborative schedule on the platform."""

    def __init__(
        self,
        platform: Platform,
        codec_cfg: CodecConfig,
        fw_cfg: FrameworkConfig,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.platform = platform
        self.codec_cfg = codec_cfg
        self.fw_cfg = fw_cfg
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.host = Resource("host.sync")
        resources = [self.host]
        for dev in platform.devices:
            resources.extend(dev.resources())
        self.sim = Simulator(resources)

    # -------------------------------------------------------------------------

    def run_frame(
        self,
        frame_index: int,
        decision: LoadDecision,
        rstar_device: str,
        plan: TransferPlan,
        active_refs: int,
        perf: PerformanceCharacterization,
        ctx: RealContext | None = None,
        probe_rstar: bool = False,
        live: frozenset[str] | set[str] | None = None,
        faulted_now: frozenset[str] | set[str] = frozenset(),
        fault_timeout_s: float = 0.0,
        fallback_device: str | None = None,
    ) -> FrameReport:
        """Build, simulate and (optionally) really-execute one inter frame.

        Parameters
        ----------
        active_refs:
            Reference frames available to this frame's ME (ramps up to the
            configured count at the start of a GOP — paper Fig. 7(b)).
        ctx:
            Real-compute context; ``None`` runs in model mode.
        probe_rstar:
            Issue tiny 1-row R* probe ops on every non-selected device to
            bootstrap the Dijkstra mapping (initialization frame only).
        live:
            Devices participating this frame (None = all). Evicted devices
            have zero rows in ``decision`` already; they also get no probe
            or R*-slice ops.
        faulted_now:
            Devices dying *during* this frame: the decision still assigns
            them rows, but instead of their kernels a detection stall
            (category ``"fault"``, ``fault_timeout_s`` long) occupies
            their compute engine, and their bands are redone on
            ``fallback_device`` — keyed by the original device index, so
            the band merge (and the real-mode bitstream) is unchanged.
        fallback_device:
            Survivor that redoes the faulted bands; required when
            ``faulted_now`` is non-empty.
        """
        self.sim.reset()
        # The op-DAG build is timed as "des_build" up to each sim.run call
        # (manual section because the build spans two exit points).
        _build = self.profiler.phase("des_build")
        _build.__enter__()
        cfg = self.codec_cfg
        noise = self.fw_cfg.noise
        devices = self.platform.devices
        live_set = (
            frozenset(d.name for d in devices) if live is None else frozenset(live)
        )
        faulted = frozenset(faulted_now)
        live_eff = live_set - faulted
        if rstar_device not in live_eff:
            raise ValueError(
                f"R* device {rstar_device!r} is not a live survivor this frame"
            )
        fb_dev = None
        if faulted:
            if fallback_device is None or fallback_device not in live_eff:
                raise ValueError(
                    "faulted_now requires a live fallback_device, got "
                    f"{fallback_device!r}"
                )
            fb_dev = self.platform.device(fallback_device)

        phase1: list[Op] = []
        phase2: list[Op] = []
        me_ops: dict[int, Op] = {}
        int_ops: dict[int, Op] = {}
        sme_ops: dict[int, Op] = {}
        transfer_ops: list[tuple[Op, Any]] = []
        fault_ops: list[Op] = []  # stalls + redo work (never harvested)
        redo_sme: list[tuple[int, tuple[int, int], int]] = []

        def scale(dev_name: str) -> float:
            # Load noise, active compute degradation, and the session's
            # multi-stream capacity share: all three are *measured* by the
            # characterization, never reported to it.
            dev = self.platform.device(dev_name)
            fault = dev.fault_compute_scale * dev.share_scale
            return noise.scale(frame_index, dev_name) * fault

        # ------------------------- phase 1 ----------------------------------
        rf_ops: dict[str, Op] = {}
        for i, dev in enumerate(devices):
            name = dev.name
            if name not in live_set:
                continue
            m_i = decision.m.rows[i]
            l_i = decision.l.rows[i]
            m_band = decision.m.band(i)
            l_band = decision.l.band(i)

            if name in faulted:
                # The device dies mid-frame: its engine shows only the
                # watchdog stall, and its phase-1 bands are redone on the
                # fallback survivor once the fault is detected.
                assert fb_dev is not None
                stall = Op(
                    label=f"FAULT[{name}]",
                    resource=dev.compute,
                    duration=fault_timeout_s,
                    category="fault",
                )
                phase1.append(stall)
                fault_ops.append(stall)
                if l_i > 0:
                    redo_int = Op(
                        label=f"INT-redo[{name}->{fb_dev.name}]",
                        resource=fb_dev.compute,
                        duration=fb_dev.spec.rates.int_row_s(cfg)
                        * l_i
                        * scale(fb_dev.name),
                        deps=[stall],
                        thunk=self._int_thunk(ctx, i, l_band) if ctx else None,
                    )
                    phase1.append(redo_int)
                    fault_ops.append(redo_int)
                if m_i > 0:
                    redo_me = Op(
                        label=f"ME-redo[{name}->{fb_dev.name}]",
                        resource=fb_dev.compute,
                        duration=fb_dev.spec.rates.me_row_s(cfg, active_refs)
                        * m_i
                        * scale(fb_dev.name),
                        deps=[stall],
                        thunk=self._me_thunk(ctx, i, m_band) if ctx else None,
                    )
                    phase1.append(redo_me)
                    fault_ops.append(redo_me)
                if decision.s.rows[i] > 0:
                    redo_sme.append((i, decision.s.band(i), decision.s.rows[i]))
                continue

            cf_me_op: Op | None = None
            if dev.is_accelerator:
                for item in plan.for_device(name, phase=1):
                    if item.direction != "h2d":
                        continue
                    op = Op(
                        label=f"{item.label}[{name}]",
                        resource=dev.copy_h2d,
                        duration=dev.transfer_s(item.nbytes, "h2d"),
                        category="h2d",
                    )
                    transfer_ops.append((op, item))
                    phase1.append(op)
                    if item.label == "RF":
                        rf_ops[name] = op
                    if item.label == "CF->ME":
                        cf_me_op = op

            if l_i > 0:
                deps = [rf_ops[name]] if name in rf_ops else []
                int_op = Op(
                    label=f"INT[{name}]",
                    resource=dev.compute,
                    duration=dev.spec.rates.int_row_s(cfg) * l_i * scale(name),
                    deps=deps,
                    thunk=self._int_thunk(ctx, i, l_band) if ctx else None,
                )
                int_ops[i] = int_op
                phase1.append(int_op)
            if m_i > 0:
                deps = [d for d in (rf_ops.get(name), cf_me_op) if d is not None]
                me_op = Op(
                    label=f"ME[{name}]",
                    resource=dev.compute,
                    duration=dev.spec.rates.me_row_s(cfg, active_refs)
                    * m_i
                    * scale(name),
                    deps=deps,
                    thunk=self._me_thunk(ctx, i, m_band) if ctx else None,
                )
                me_ops[i] = me_op
                phase1.append(me_op)

            if dev.is_accelerator:
                for item in plan.for_device(name, phase=1):
                    if item.direction != "d2h":
                        continue
                    if item.label.startswith("SF"):
                        deps = [int_ops[i]] if i in int_ops else []
                    else:  # MV->SME
                        deps = [me_ops[i]] if i in me_ops else []
                    op = Op(
                        label=f"{item.label}[{name}]",
                        resource=dev.copy_d2h,
                        duration=dev.transfer_s(item.nbytes, "d2h"),
                        deps=deps,
                        category="d2h",
                    )
                    transfer_ops.append((op, item))
                    phase1.append(op)

        tau1_op = Op(
            label="tau1",
            resource=self.host,
            duration=0.0,
            deps=list(phase1),
            thunk=self._tau1_thunk(ctx, decision) if ctx else None,
        )

        # ------------------------- phase 2 ----------------------------------
        assert fb_dev is not None or not redo_sme
        for i, s_band, s_i in redo_sme:
            redo_op = Op(
                label=f"SME-redo[{devices[i].name}->{fb_dev.name}]",
                resource=fb_dev.compute,
                duration=fb_dev.spec.rates.sme_row_s(cfg) * s_i * scale(fb_dev.name),
                deps=[tau1_op],
                thunk=self._sme_thunk(ctx, i, s_band) if ctx else None,
            )
            phase2.append(redo_op)
            fault_ops.append(redo_op)
        for i, dev in enumerate(devices):
            name = dev.name
            if name not in live_eff:
                continue
            s_i = decision.s.rows[i]
            s_band = decision.s.band(i)
            in_ops: list[Op] = [tau1_op]
            if dev.is_accelerator:
                for item in plan.for_device(name, phase=2):
                    if item.direction != "h2d":
                        continue
                    op = Op(
                        label=f"{item.label}[{name}]",
                        resource=dev.copy_h2d,
                        duration=dev.transfer_s(item.nbytes, "h2d"),
                        deps=[tau1_op],
                        category="h2d",
                    )
                    transfer_ops.append((op, item))
                    phase2.append(op)
                    if item.label in ("SF(RF)->SME", "MV->SME"):
                        in_ops.append(op)
            if s_i > 0:
                sme_op = Op(
                    label=f"SME[{name}]",
                    resource=dev.compute,
                    duration=dev.spec.rates.sme_row_s(cfg) * s_i * scale(name),
                    deps=in_ops,
                    thunk=self._sme_thunk(ctx, i, s_band) if ctx else None,
                )
                sme_ops[i] = sme_op
                phase2.append(sme_op)
            if dev.is_accelerator:
                for item in plan.for_device(name, phase=2):
                    if item.direction != "d2h":
                        continue
                    deps = [sme_ops[i]] if i in sme_ops else [tau1_op]
                    op = Op(
                        label=f"{item.label}[{name}]",
                        resource=dev.copy_d2h,
                        duration=dev.transfer_s(item.nbytes, "d2h"),
                        deps=deps,
                        category="d2h",
                    )
                    transfer_ops.append((op, item))
                    phase2.append(op)

        tau2_op = Op(
            label="tau2",
            resource=self.host,
            duration=0.0,
            deps=list(phase2) + [tau1_op],
            thunk=self._tau2_thunk(ctx, decision) if ctx else None,
        )

        # ------------------------- phase 3 ----------------------------------
        if self._rstar_parallel_possible(ctx):
            tail_ops, rstar_like_ops = self._build_parallel_rstar(
                decision, rstar_device, tau2_op, transfer_ops, scale, live_eff
            )
            probe_ops = {}
            _build.__exit__()
            with self.profiler.phase("des"):
                records = self.sim.run(
                    execute_thunks=ctx is not None,
                    parallel_workers=self.fw_cfg.parallel_workers,
                    fast=self.fw_cfg.des_fast,
                )
            tau1 = float(tau1_op.end or 0.0)
            tau2 = float(tau2_op.end or 0.0)
            tau_tot = max(float(op.end or 0.0) for op in tail_ops + [tau2_op])
            self._harvest(
                perf, decision, me_ops, int_ops, sme_ops, transfer_ops,
                rstar_like_ops, rstar_device, probe_ops, cfg,
            )
            timeline = FrameTimeline(
                frame_index=frame_index, records=records,
                tau1=tau1, tau2=tau2, tau_tot=tau_tot,
            )
            return FrameReport(
                frame_index=frame_index, tau1=tau1, tau2=tau2,
                tau_tot=tau_tot, timeline=timeline, decision=decision,
                rstar_device=rstar_device, transfer_plan=plan,
                encoded=ctx.encoded if ctx else None,
                faulted=tuple(sorted(faulted)),
                fault_time_lost_s=sum(op.duration for op in fault_ops),
            )

        rstar_dev = self.platform.device(rstar_device)
        rstar_deps: list[Op] = [tau2_op]
        rstar_pre: list[Op] = []
        if rstar_dev.is_accelerator:
            for item in plan.for_device(rstar_device, phase=3):
                if item.direction != "h2d":
                    continue
                op = Op(
                    label=f"{item.label}[{rstar_device}]",
                    resource=rstar_dev.copy_h2d,
                    duration=rstar_dev.transfer_s(item.nbytes, "h2d"),
                    deps=[tau2_op],
                    category="h2d",
                )
                transfer_ops.append((op, item))
                rstar_pre.append(op)
        rstar_op = Op(
            label=f"R*[{rstar_device}]",
            resource=rstar_dev.compute,
            duration=rstar_dev.spec.rates.rstar_frame_s(cfg) * scale(rstar_device),
            deps=rstar_deps + rstar_pre,
            thunk=self._rstar_thunk(ctx) if ctx else None,
        )
        tail_ops: list[Op] = [rstar_op]
        if rstar_dev.is_accelerator:
            for item in plan.for_device(rstar_device, phase=3):
                if item.direction != "d2h":
                    continue
                op = Op(
                    label=f"{item.label}[{rstar_device}]",
                    resource=rstar_dev.copy_d2h,
                    duration=rstar_dev.transfer_s(item.nbytes, "d2h"),
                    deps=[rstar_op],
                    category="d2h",
                )
                transfer_ops.append((op, item))
                tail_ops.append(op)
        for i, dev in enumerate(devices):
            if not dev.is_accelerator or dev.name == rstar_device:
                continue
            for item in plan.for_device(dev.name, phase=3):
                op = Op(
                    label=f"{item.label}[{dev.name}]",
                    resource=dev.copy_h2d,
                    duration=dev.transfer_s(item.nbytes, "h2d"),
                    deps=[tau2_op],
                    category="h2d",
                )
                transfer_ops.append((op, item))
                tail_ops.append(op)

        probe_ops: dict[str, Op] = {}
        if probe_rstar:
            for dev in devices:
                if dev.name == rstar_device or dev.name not in live_eff:
                    continue
                probe_ops[dev.name] = Op(
                    label=f"R*probe[{dev.name}]",
                    resource=dev.compute,
                    duration=dev.spec.rates.rstar_row_s(cfg) * scale(dev.name),
                    deps=[tau2_op],
                )

        # ------------------------- run & harvest ----------------------------
        _build.__exit__()
        with self.profiler.phase("des"):
            records = self.sim.run(
                execute_thunks=ctx is not None,
                parallel_workers=self.fw_cfg.parallel_workers,
                fast=self.fw_cfg.des_fast,
            )
        tau1 = float(tau1_op.end or 0.0)
        tau2 = float(tau2_op.end or 0.0)
        tau_tot = max(float(op.end or 0.0) for op in tail_ops + [tau2_op])

        # Feed the Performance Characterization (Algorithm 1, lines 5/10).
        for i, dev in enumerate(devices):
            if i in me_ops:
                perf.observe_compute(
                    dev.name, "me", decision.m.rows[i], me_ops[i].duration
                )
            if i in int_ops:
                perf.observe_compute(
                    dev.name, "int", decision.l.rows[i], int_ops[i].duration
                )
            if i in sme_ops:
                perf.observe_compute(
                    dev.name, "sme", decision.s.rows[i], sme_ops[i].duration
                )
        perf.observe_rstar(rstar_device, rstar_op.duration)
        for name, op in probe_ops.items():
            perf.observe_rstar(name, op.duration * cfg.mb_rows)
        for op, item in transfer_ops:
            perf.observe_transfer(item.device, item.direction, item.nbytes, op.duration)

        timeline = FrameTimeline(
            frame_index=frame_index,
            records=records,
            tau1=tau1,
            tau2=tau2,
            tau_tot=tau_tot,
        )
        return FrameReport(
            frame_index=frame_index,
            tau1=tau1,
            tau2=tau2,
            tau_tot=tau_tot,
            timeline=timeline,
            decision=decision,
            rstar_device=rstar_device,
            transfer_plan=plan,
            encoded=ctx.encoded if ctx else None,
            faulted=tuple(sorted(faulted)),
            fault_time_lost_s=sum(op.duration for op in fault_ops),
        )

    def _rstar_parallel_possible(self, ctx) -> bool:
        """Slice-parallel R* applies only in model mode with parallel DBL."""
        return (
            self.fw_cfg.rstar_parallel
            and ctx is None
            and self.codec_cfg.num_slices > 1
            and not self.codec_cfg.deblock_across_slices
            and len(self.platform.devices) > 1
        )

    def _build_parallel_rstar(
        self, decision, rstar_device, tau2_op, transfer_ops, scale, live_eff
    ):
        """Distribute the R* block per-slice across the devices.

        Each participating device processes whole slices: it receives the
        CF (full YUV), SF and MVs of its slice rows (unless it is the
        nominal R* device, which holds them from phase 2), runs
        MC+TQ+TQ⁻¹+DBL on them, and returns its piece of the new RF. The
        reassembled RF lives on the host afterwards.
        """
        from repro.codec.slices import slice_bounds
        from repro.core.perf_model import buffer_row_bytes
        from repro.hw.interconnect import BufferSizes

        cfg = self.codec_cfg
        sizes = BufferSizes(width=cfg.width, height=cfg.height)
        bounds = slice_bounds(cfg.mb_rows, cfg.num_slices)
        devices = self.platform.devices
        # Fastest-first assignment: slices round-robin over devices sorted
        # by R* speed (rate-model order is stable and known to the DES).
        order = sorted(
            (i for i in range(len(devices)) if devices[i].name in live_eff),
            key=lambda i: devices[i].spec.rates.rstar_row_s(cfg),
        )
        assignment: dict[int, list[tuple[int, int]]] = {}
        for k, sl in enumerate(bounds):
            assignment.setdefault(order[k % len(order)], []).append(sl)

        tail_ops = []
        rstar_like = []
        for i, slices in assignment.items():
            dev = devices[i]
            rows = sum(b - a for a, b in slices)
            pre = []
            if dev.is_accelerator:
                if dev.name == rstar_device:
                    # Holds the full CF/SF from phase 2; only MVs missing.
                    in_bytes = rows * buffer_row_bytes("mv", sizes)
                else:
                    in_bytes = rows * (
                        buffer_row_bytes("cf_full", sizes)
                        + buffer_row_bytes("sf", sizes)
                        + buffer_row_bytes("mv", sizes)
                    )
                op_in = Op(
                    label=f"R*in[{dev.name}]",
                    resource=dev.copy_h2d,
                    duration=dev.transfer_s(in_bytes, "h2d"),
                    deps=[tau2_op],
                    category="h2d",
                )
                pre.append(op_in)
            comp = Op(
                label=f"R*slice[{dev.name}]",
                resource=dev.compute,
                duration=dev.spec.rates.rstar_row_s(cfg) * rows * scale(dev.name),
                deps=[tau2_op] + pre,
            )
            rstar_like.append((dev.name, rows, comp))
            tail_ops.append(comp)
            if dev.is_accelerator:
                out = Op(
                    label=f"RFpiece[{dev.name}]",
                    resource=dev.copy_d2h,
                    duration=dev.transfer_s(
                        rows * buffer_row_bytes("rf", sizes), "d2h"
                    ),
                    deps=[comp],
                    category="d2h",
                )
                tail_ops.append(out)
        return tail_ops, rstar_like

    def _harvest(
        self, perf, decision, me_ops, int_ops, sme_ops, transfer_ops,
        rstar_like, rstar_device, probe_ops, cfg,
    ):
        """Feed measurements for the parallel-R* variant."""
        for i, dev in enumerate(self.platform.devices):
            if i in me_ops:
                perf.observe_compute(
                    dev.name, "me", decision.m.rows[i], me_ops[i].duration
                )
            if i in int_ops:
                perf.observe_compute(
                    dev.name, "int", decision.l.rows[i], int_ops[i].duration
                )
            if i in sme_ops:
                perf.observe_compute(
                    dev.name, "sme", decision.s.rows[i], sme_ops[i].duration
                )
        for name, rows, op in rstar_like:
            # Scale the partial block to a full-frame estimate.
            perf.observe_rstar(name, op.duration * cfg.mb_rows / max(1, rows))
        for op, item in transfer_ops:
            perf.observe_transfer(
                item.device, item.direction, item.nbytes, op.duration
            )

    # ------------------------- real-compute thunks ---------------------------

    def _int_thunk(self, ctx: RealContext | None, i: int, band: tuple[int, int]):
        assert ctx is not None

        def thunk(_op: Op) -> None:
            ctx.sf_bands[i] = interpolate_rows(ctx.rf_new_y, band[0], band[1] - band[0])

        return thunk

    def _me_thunk(self, ctx: RealContext | None, i: int, band: tuple[int, int]):
        assert ctx is not None

        def thunk(_op: Op) -> None:
            ctx.me_bands[i] = motion_estimate_rows(
                ctx.cur.y, ctx.refs_y, band[0], band[1] - band[0], ctx.cfg
            )

        return thunk

    def _tau1_thunk(self, ctx: RealContext | None, decision: LoadDecision):
        assert ctx is not None

        def thunk(_op: Op) -> None:
            ctx.sf_new = np.concatenate(
                [ctx.sf_bands[i] for i in sorted(ctx.sf_bands)], axis=0
            )
            ctx.sfs = [ctx.sf_new] + ctx.sfs_prev
            ctx.me_field = MotionField.merge(
                [ctx.me_bands[i] for i in sorted(ctx.me_bands)]
            )

        return thunk

    def _sme_thunk(self, ctx: RealContext | None, i: int, band: tuple[int, int]):
        assert ctx is not None

        def thunk(_op: Op) -> None:
            assert ctx.me_field is not None
            ctx.sme_bands[i] = subpel_refine_rows(
                ctx.cur.y, ctx.sfs, ctx.me_field, band[0], band[1] - band[0], ctx.cfg
            )

        return thunk

    def _tau2_thunk(self, ctx: RealContext | None, decision: LoadDecision):
        assert ctx is not None

        def thunk(_op: Op) -> None:
            ctx.sme_field = SubpelField.merge(
                [ctx.sme_bands[i] for i in sorted(ctx.sme_bands)]
            )

        return thunk

    def _rstar_thunk(self, ctx: RealContext | None):
        assert ctx is not None

        def thunk(_op: Op) -> None:
            execute_rstar(ctx)

        return thunk


def execute_rstar(ctx: RealContext) -> None:
    """The R* block (MC → T/Q/T⁻¹/Q⁻¹ → entropy → DBL) on one context.

    Shared by both execution backends: the sim backend calls it from the
    R* op thunk, the process backend calls it directly on the host after
    the τ2 barrier. Fills ``ctx.encoded``.
    """
    assert ctx.sme_field is not None
    mc = motion_compensate(
        ctx.cur, ctx.sme_field, ctx.sfs, ctx.chroma, ctx.cfg, ctx.qp
    )
    res = encode_inter_residual_full(
        ctx.cur, mc.pred, ctx.qp, coder=get_coder(ctx.cfg.entropy_coder)
    )
    recon, res_bits, cnz4 = res.recon, res.bits, res.cnz4
    h, w = ctx.cur.y.shape
    intra4 = np.zeros((h // 4, w // 4), dtype=bool)
    from repro.codec.slices import dbl_skip_luma_rows

    recon = deblock_frame(
        recon, mc.mv4, mc.ref4, cnz4, intra4, ctx.qp,
        skip_luma_rows=dbl_skip_luma_rows(ctx.cfg),
    )
    hist: dict[tuple[int, int], int] = {}
    for mode_i, shape in enumerate(ctx.sme_field.mode_shapes):
        hist[shape] = int((mc.mode_idx == mode_i).sum())
    ctx.encoded = EncodedFrame(
        index=ctx.frame_index,
        is_intra=False,
        bits=res_bits + mc.header_bits,
        psnr=frame_psnr(ctx.cur, recon),
        recon=recon,
        mode_histogram=hist,
    )
