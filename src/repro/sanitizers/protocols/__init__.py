"""Protocol lint: layer 5 of the analysis stack.

Lifecycle/protocol rules over the runtime stack's stateful objects,
built on the layer-3 CFG/worklist engine and the layer-4 call graph.
The rules compile from the declarative specs in :mod:`spec` — the same
declarations the SAN-G runtime monitor (:mod:`journal` + :mod:`monitor`)
replays, so the static and dynamic halves cannot drift:

REP301
    Object-lifecycle typestate: no ``step()`` after ``retire()``, no
    ``view()`` after ``close()``, ``close`` before ``unlink``, pool
    used only between construction and shutdown — on every CFG path,
    including exception edges (:mod:`typestate`).
REP302
    Monotone-clock discipline: simulated clocks may advance and
    compare, never rewind or cross-assign between domains
    (:mod:`clocks`).
REP303
    Queue/admission conservation: every dequeue reaches a disposition
    (place/park/reject) on every normal exit path — the stranded-stream
    class (:mod:`conservation`).
REP304
    Invalidation-before-solve: a live-set mutation must be followed by
    ``note_live_set_change()`` before the next reachable solve — the
    stale-decision-cache class (:mod:`invalidation`).

The dynamic cross-check is SAN-G (:meth:`TimelineSanitizer.
check_protocols`): instrumented classes journal lifecycle events under
``REPRO_SANITIZE`` and the monitor replays them against the same specs
(SAN-G1 illegal transition / clock regression, SAN-G2 unmet
obligation / missing shutdown).

Scoping/``select``/``only`` semantics, ``# noqa: REPxxx`` and the
findings baseline all match the dataflow and concurrency layers.
Rule-module imports are lazy so importing this package (which the
instrumented runtime classes do transitively via :mod:`journal`) does
not pull the analysis engine.
"""

from __future__ import annotations

import ast
import re
import time
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sanitizers.dataflow.engine import AnalyzerError
    from repro.sanitizers.lint import LintViolation

PROTOCOL_RULES: dict[str, str] = {
    "REP301": "object lifecycle violates its protocol state machine",
    "REP302": "clock rewound or cross-assigned between clock domains",
    "REP303": "dequeued stream can exit without place/park/reject",
    "REP304": "live-set mutated without note_live_set_change before solve",
}

#: Where each rule is meaningful. Lifecycles live wherever tracked
#: classes are constructed or driven; clocks in the DES tiers; queue
#: conservation in the dispatch/admission tiers; cache invalidation in
#: the framework core.
RULE_SCOPES: dict[str, re.Pattern[str]] = {
    "REP301": re.compile(r"repro/(service|cluster|exec|core)/"),
    "REP302": re.compile(r"repro/(service|cluster|core)/"),
    "REP303": re.compile(r"repro/(service|cluster)/"),
    "REP304": re.compile(r"repro/core/"),
}


def _make_rule(rule: str):
    # Lazy imports: see module docstring.
    if rule == "REP301":
        from repro.sanitizers.protocols.typestate import TypestateRule

        return TypestateRule()
    if rule == "REP302":
        from repro.sanitizers.protocols.clocks import ClockRule

        return ClockRule()
    if rule == "REP303":
        from repro.sanitizers.protocols.conservation import ConservationRule

        return ConservationRule()
    if rule == "REP304":
        from repro.sanitizers.protocols.invalidation import InvalidationRule

        return InvalidationRule()
    raise ValueError(f"unknown protocol rule {rule!r}")


def rules_for_path(display: str) -> list[str]:
    posix = display.replace("\\", "/")
    return [
        rule
        for rule in sorted(PROTOCOL_RULES)
        if RULE_SCOPES[rule].search(posix)
    ]


def analyze_source(
    source: str,
    display: str,
    *,
    graph: object | None = None,
    select: list[str] | None = None,
    only: list[str] | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    """Run the scoped (or selected) protocol rules over one module.

    ``graph`` carries the layer-4 call graph (REP304's solve
    reachability); when omitted a graph over just this module is built.
    """
    from repro.sanitizers.dataflow.engine import AnalyzerError, Emitter
    from repro.sanitizers.lint import _noqa_codes

    rules = select if select is not None else rules_for_path(display)
    if only is not None:
        rules = [r for r in rules if r in only]
    if not rules:
        return [], []
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError:
        return [], []  # the per-line lint already reports REP000
    if graph is None:
        from repro.sanitizers.concurrency.callgraph import build_graph

        graph = build_graph([(display, tree)])
    noqa = _noqa_codes(source)

    violations: list[LintViolation] = []
    errors: list[AnalyzerError] = []
    for rule in rules:
        t0 = time.perf_counter()
        emitter = Emitter(rule=rule, display=display)
        try:
            _make_rule(rule).run(tree, display, graph, emitter)
        except AnalyzerError as exc:
            errors.append(exc)
        except RecursionError as exc:
            errors.append(AnalyzerError(
                path=display, function="<module>", rule=rule,
                detail=f"recursion limit: {exc}",
            ))
        except Exception as exc:  # noqa: BLE001 - surfaced as exit code 2
            errors.append(AnalyzerError(
                path=display, function="<module>", rule=rule,
                detail=f"{type(exc).__name__}: {exc}",
            ))
        if timings is not None:
            timings[rule] = (
                timings.get(rule, 0.0) + time.perf_counter() - t0
            )
        for v in emitter.findings:
            codes = noqa.get(v.line, frozenset())
            if codes is None or v.rule in codes:
                continue
            violations.append(v)
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations, errors


def analyze_file(
    path: Path,
    root: Path | None = None,
    *,
    select: list[str] | None = None,
    only: list[str] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    display = str(path.relative_to(root)) if root else str(path)
    return analyze_source(path.read_text(), display, select=select, only=only)


def analyze_paths(
    targets: list[Path],
    *,
    select: list[str] | None = None,
    only: list[str] | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    """Two-pass protocol lint over files/directories.

    Pass 1 parses everything and assembles one call graph spanning all
    analyzed modules (so REP304's solve-reachability sees cross-module
    edges); pass 2 runs the rules per file against that graph.
    """
    from repro.sanitizers.concurrency.callgraph import build_graph
    from repro.sanitizers.lint import iter_python_files

    modules: list[tuple[str, ast.Module, str]] = []
    for target in targets:
        for path in iter_python_files(target):
            try:
                source = path.read_text()
            except (OSError, UnicodeDecodeError):
                continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            modules.append((str(path), tree, source))
    graph = build_graph([(d, t) for d, t, _s in modules])

    violations: list[LintViolation] = []
    errors: list[AnalyzerError] = []
    for display, _tree, source in modules:
        v, e = analyze_source(
            source, display, graph=graph, select=select, only=only,
            timings=timings,
        )
        violations.extend(v)
        errors.extend(e)
    return violations, errors


__all__ = [
    "PROTOCOL_RULES",
    "RULE_SCOPES",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "rules_for_path",
]
