"""Runtime lifecycle journal: the event stream SAN-G replays.

Instrumented classes (sessions, nodes, the dispatcher, the shared frame
store, the kernel pool, the load balancer) call :func:`record` at each
lifecycle transition; under ``REPRO_SANITIZE`` (or an explicit
:meth:`ProtocolJournal.enable`) the event is appended to the global
:data:`JOURNAL`, and :meth:`TimelineSanitizer.check_protocols` replays
the stream against the declarative specs in
:mod:`repro.sanitizers.protocols.spec`.

Design constraints:

- **Zero repro imports.** The hot runtime modules (and forked/spawned
  pool workers) import this file; it must not pull the analysis stack
  or any numpy-heavy module.
- **Determinism.** Object labels are assigned in first-recorded order
  (``Node#0``, ``Node#1`` …) and sequence numbers are dense, so a
  deterministic run produces a byte-identical journal across
  ``PYTHONHASHSEED`` (pinned by the determinism regression tests).
  Strong references are kept for labeled objects so ``id()`` reuse can
  never alias two objects to one label.
- **Near-zero cost when off.** ``record`` is a single env check when
  sanitizing is disabled.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Same switch as every other sanitizer layer.
SANITIZE_ENV = "REPRO_SANITIZE"


def _env_on() -> bool:
    return os.environ.get(SANITIZE_ENV, "").lower() in ("1", "strict")


@dataclass(frozen=True)
class ProtocolEvent:
    """One journaled lifecycle event."""

    seq: int
    cls: str      # tracked class name ("Node", "KernelPool", ...)
    obj: str      # stable per-run label ("Node#0", ...)
    event: str    # transition/observer/obligation event name
    clock: float  # the object's own clock at the event (0.0 if none)
    detail: str = ""  # stream id / slot key / live-set signature

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "cls": self.cls,
            "obj": self.obj,
            "event": self.event,
            "clock": repr(self.clock),
            "detail": self.detail,
        }


class ProtocolJournal:
    """Global, append-only event journal (one per process)."""

    def __init__(self) -> None:
        self._events: list[ProtocolEvent] = []
        self._labels: dict[int, str] = {}
        self._keep: list[object] = []  # pin ids against reuse
        self._counts: dict[str, int] = {}
        self._forced = False

    # -- switches ------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._forced or _env_on()

    def enable(self) -> None:
        """Force journaling on regardless of the environment."""
        self._forced = True

    def disable(self) -> None:
        self._forced = False

    def reset(self) -> None:
        """Drop every event and label (test isolation)."""
        self._events.clear()
        self._labels.clear()
        self._keep.clear()
        self._counts.clear()

    # -- recording -----------------------------------------------------

    def label_of(self, obj: object) -> str:
        key = id(obj)
        label = self._labels.get(key)
        if label is None:
            cls = type(obj).__name__
            k = self._counts.get(cls, 0)
            self._counts[cls] = k + 1
            label = f"{cls}#{k}"
            self._labels[key] = label
            self._keep.append(obj)
        return label

    def record(
        self, obj: object, event: str, clock: float = 0.0, detail: str = ""
    ) -> None:
        if not self.active:
            return
        self._events.append(
            ProtocolEvent(
                seq=len(self._events),
                cls=type(obj).__name__,
                obj=self.label_of(obj),
                event=event,
                clock=float(clock),
                detail=detail,
            )
        )

    # -- consumption ---------------------------------------------------

    def drain(self) -> list[ProtocolEvent]:
        """Return and clear the journal (labels survive for continuity)."""
        out, self._events = self._events, []
        return out

    def snapshot(self) -> list[ProtocolEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


#: The process-wide journal every instrumented class records into.
JOURNAL = ProtocolJournal()


def record(
    obj: object, event: str, clock: float = 0.0, detail: str = ""
) -> None:
    """Journal one lifecycle event on the global journal (cheap no-op
    unless sanitizing is enabled)."""
    JOURNAL.record(obj, event, clock, detail)


__all__ = ["JOURNAL", "ProtocolEvent", "ProtocolJournal", "record"]
