"""Declarative protocol specs: one source of truth for REP3xx and SAN-G.

A :class:`ProtocolSpec` is a small state machine over one tracked class:
named states, transition methods (``method: sources -> target``),
observer methods legal only in some states, terminal states, and
paired-op :class:`Obligation`\\ s (a trigger event that must be matched
by a discharge event). The *same* spec object compiles two ways:

- the static REP301 typestate domain walks CFG paths with the
  transition table (:mod:`repro.sanitizers.protocols.typestate`);
- the dynamic SAN-G monitor replays runtime journals against it
  (:mod:`repro.sanitizers.protocols.monitor`).

Because both halves read one declaration, they cannot drift: adding a
state or renaming a transition updates the lint and the sanitizer in
the same edit.

Specs validate eagerly at construction (so a malformed spec fails at
import, not mid-analysis) with named-token errors: ``unknown state``,
``duplicate transition``, ``unreachable terminal``.

This module is dependency-free on purpose — the runtime journal and the
instrumented service/cluster/exec classes may import it without pulling
the analysis stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ProtocolSpecError(ValueError):
    """A malformed protocol spec (raised at spec construction/import)."""


@dataclass(frozen=True)
class Transition:
    """``method`` moves the object from any of ``sources`` to ``target``."""

    method: str
    sources: tuple[str, ...]
    target: str


@dataclass(frozen=True)
class Observer:
    """``method`` is legal only while the object is in ``states``."""

    method: str
    states: tuple[str, ...]


#: Obligation kinds. ``until-discharged``: every trigger event must be
#: followed by a discharge event with the same detail before the journal
#: ends. ``on-change``: two trigger events whose details differ must
#: have a discharge event between them (the invalidation-before-solve
#: shape: consecutive solves over different live sets need a cache drop
#: in between).
UNTIL_DISCHARGED, ON_CHANGE = "until-discharged", "on-change"


@dataclass(frozen=True)
class Obligation:
    """A paired-op contract between a trigger and its discharge events."""

    name: str
    trigger: str
    discharge: tuple[str, ...]
    kind: str = UNTIL_DISCHARGED

    def __post_init__(self) -> None:
        if self.kind not in (UNTIL_DISCHARGED, ON_CHANGE):
            raise ProtocolSpecError(
                f"obligation {self.name!r}: unknown kind {self.kind!r}"
            )
        if not self.discharge:
            raise ProtocolSpecError(
                f"obligation {self.name!r}: empty discharge set"
            )


@dataclass(frozen=True)
class ProtocolSpec:
    """One tracked class's protocol (see module docstring)."""

    name: str
    classes: tuple[str, ...]
    states: tuple[str, ...]
    initial: str
    transitions: tuple[Transition, ...] = ()
    terminal: tuple[str, ...] = ()
    observers: tuple[Observer, ...] = ()
    obligations: tuple[Obligation, ...] = ()
    #: Must every journaled instance reach a terminal state by teardown?
    #: (Leaked pools/segment stores; meaningless for e.g. sessions that
    #: may legitimately idle in the admission queue at end of run.)
    require_terminal: bool = False
    #: method -> transitions carrying it (derived, validation side effect)
    by_method: dict[str, tuple[Transition, ...]] = field(
        default_factory=dict, compare=False, repr=False
    )
    observer_states: dict[str, tuple[str, ...]] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        known = set(self.states)
        if len(known) != len(self.states):
            raise ProtocolSpecError(f"spec {self.name!r}: duplicate state")

        def need(state: str, where: str) -> None:
            if state not in known:
                raise ProtocolSpecError(
                    f"spec {self.name!r}: unknown state {state!r} in {where}"
                )

        need(self.initial, "initial")
        for t in self.terminal:
            need(t, "terminal")
        seen: set[tuple[str, str]] = set()
        by_method: dict[str, list[Transition]] = {}
        for tr in self.transitions:
            need(tr.target, f"transition {tr.method!r}")
            for src in tr.sources:
                need(src, f"transition {tr.method!r}")
                if (tr.method, src) in seen:
                    raise ProtocolSpecError(
                        f"spec {self.name!r}: duplicate transition "
                        f"{tr.method!r} from state {src!r}"
                    )
                seen.add((tr.method, src))
            by_method.setdefault(tr.method, []).append(tr)
        for ob in self.observers:
            if ob.method in by_method:
                raise ProtocolSpecError(
                    f"spec {self.name!r}: {ob.method!r} is both a "
                    "transition and an observer"
                )
            for st in ob.states:
                need(st, f"observer {ob.method!r}")

        # Terminal states must be reachable from the initial state.
        reach = {self.initial}
        grew = True
        while grew:
            grew = False
            for tr in self.transitions:
                if tr.target not in reach and any(
                    s in reach for s in tr.sources
                ):
                    reach.add(tr.target)
                    grew = True
        for t in self.terminal:
            if t not in reach:
                raise ProtocolSpecError(
                    f"spec {self.name!r}: unreachable terminal state {t!r}"
                )
        if self.require_terminal and not self.terminal:
            raise ProtocolSpecError(
                f"spec {self.name!r}: require_terminal without a "
                "terminal state"
            )

        self.by_method.update(
            {m: tuple(ts) for m, ts in sorted(by_method.items())}
        )
        self.observer_states.update(
            {ob.method: ob.states for ob in self.observers}
        )

    # ------------------------------------------------------------------

    def allowed_sources(self, method: str) -> frozenset[str]:
        """States from which calling ``method`` is legal."""
        if method in self.by_method:
            return frozenset(
                s for tr in self.by_method[method] for s in tr.sources
            )
        return frozenset(self.observer_states.get(method, ()))

    def step(self, state: str, method: str) -> str | None:
        """Next state after ``method`` from ``state``; None if illegal."""
        if method in self.by_method:
            for tr in self.by_method[method]:
                if state in tr.sources:
                    return tr.target
            return None  # known transition, no legal source: illegal
        if method in self.observer_states:
            return state if state in self.observer_states[method] else None
        return state  # methods outside the spec's alphabet are neutral

    def knows(self, method: str) -> bool:
        return method in self.by_method or method in self.observer_states


# ---------------------------------------------------------------------------
# The shipped specs: every lifecycle-bearing class of the runtime stack.

SPECS: tuple[ProtocolSpec, ...] = (
    # The shared-segment owner: create -> use -> close exactly once; any
    # access after close is a use-after-free on real shared memory.
    ProtocolSpec(
        name="shared-frame-store",
        classes=("SharedFrameStore",),
        states=("open", "closed"),
        initial="open",
        transitions=(Transition("close", ("open", "closed"), "closed"),),
        terminal=("closed",),
        observers=(
            Observer("view", ("open",)),
            Observer("layout", ("open",)),
            Observer("record", ("open",)),
            Observer("record_full", ("open",)),
            Observer("sf_band_rows", ("open",)),
        ),
        require_terminal=True,
    ),
    # A raw shared-memory segment: unlink only after close (unlinking a
    # still-mapped segment invalidates every attached worker's view).
    ProtocolSpec(
        name="shm-segment",
        classes=("SharedMemory",),
        states=("attached", "closed", "unlinked"),
        initial="attached",
        transitions=(
            Transition("close", ("attached", "closed"), "closed"),
            Transition("unlink", ("closed",), "unlinked"),
        ),
        terminal=("unlinked",),
    ),
    # The worker pool: submissions only between construction and close.
    ProtocolSpec(
        name="kernel-pool",
        classes=("KernelPool",),
        states=("open", "closed"),
        initial="open",
        transitions=(Transition("close", ("open", "closed"), "closed"),),
        terminal=("closed",),
        observers=(
            Observer("submit_me", ("open",)),
            Observer("submit_int", ("open",)),
            Observer("submit_sme", ("open",)),
        ),
        require_terminal=True,
    ),
    # One stream's service-level lifecycle (queued -> running -> done,
    # with reject and fleet-level evict exits).
    ProtocolSpec(
        name="encoding-session",
        classes=("EncodingSession",),
        states=("queued", "running", "done", "rejected", "evicted"),
        initial="queued",
        transitions=(
            Transition("admit", ("queued",), "running"),
            Transition("reject", ("queued",), "rejected"),
            Transition("step", ("running",), "running"),
            Transition("finish", ("running",), "done"),
            Transition("evict", ("running",), "evicted"),
        ),
        terminal=("done", "rejected", "evicted"),
    ),
    # One fleet node: stepping or offering to a retired node is silent
    # state corruption (nothing guards it at runtime).
    ProtocolSpec(
        name="node",
        classes=("Node",),
        states=("up", "retired"),
        initial="up",
        transitions=(
            Transition("offer", ("up",), "up"),
            Transition("step", ("up",), "up"),
            Transition("evict_all", ("up",), "up"),
            Transition("retire", ("up",), "retired"),
        ),
        terminal=("retired",),
    ),
    # The global dispatch queue: conservation obligations, not states.
    # Every dequeue must reach a disposition, and every parked stream
    # must eventually be placed, rejected, or explicitly stranded — the
    # PR-7 stranded-parked-streams bug class.
    ProtocolSpec(
        name="dispatcher-queue",
        classes=("Dispatcher",),
        states=("open",),
        initial="open",
        obligations=(
            Obligation(
                name="dequeue-disposition",
                trigger="dequeue",
                discharge=("place", "park", "reject"),
            ),
            Obligation(
                name="parked-disposition",
                trigger="park",
                discharge=("place", "reject", "strand"),
            ),
        ),
    ),
    # The balancer's decision cache: consecutive solves over *different*
    # live sets must have an invalidation between them — the PR-6
    # stale-decision-cache bug class.
    ProtocolSpec(
        name="balancer-cache",
        classes=("LoadBalancer",),
        states=("ready",),
        initial="ready",
        obligations=(
            Obligation(
                name="invalidate-before-solve",
                trigger="solve",
                discharge=("invalidate",),
                kind=ON_CHANGE,
            ),
        ),
    ),
)

SPEC_BY_NAME: dict[str, ProtocolSpec] = {s.name: s for s in SPECS}

#: Tracked class name -> its spec (what the static rule keys on).
CLASS_SPECS: dict[str, ProtocolSpec] = {
    cls: s for s in SPECS for cls in s.classes
}


__all__ = [
    "CLASS_SPECS",
    "ON_CHANGE",
    "SPECS",
    "SPEC_BY_NAME",
    "UNTIL_DISCHARGED",
    "Obligation",
    "Observer",
    "ProtocolSpec",
    "ProtocolSpecError",
    "Transition",
]
