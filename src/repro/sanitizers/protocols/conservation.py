"""REP303 — queue/admission conservation over the CFG.

A stream popped off a dispatch/admission queue is *in flight*: it is no
longer queued, not yet placed, and nothing else holds a reference that
will route it. Every CFG path from the dequeue to a normal function
exit must therefore pass a *disposition* call — place it on a node,
park/requeue it, reject it, or hand it to a helper that does. A path
that exits with the pop undischarged silently drops the stream: the
PR-7 stranded-stream class, where ``drain()`` popped a head it could
not place and a ``break`` skipped the requeue.

The domain is the set of pending dequeue sites (line, col). A dequeue
is ``.popleft()``/``.pop()`` on a receiver whose dotted tail names a
queue; any disposition call clears all pending sites (the analysis is
per-queue-agnostic on purpose — one disposition in the block is taken
to route the in-flight stream). Pending sites are reported at *normal*
exit only: an exception path is allowed to abandon the pop (the caller
unwinds the whole drain).

The disposition alphabet is derived from the ``dispatcher-queue`` spec
(place/park/reject + their code-level spellings), keeping the static
rule and SAN-G's ``dequeue-disposition`` obligation aligned.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.sanitizers.dataflow.cfg import (
    IterElem,
    TestElem,
    WithElem,
    build_cfg,
)
from repro.sanitizers.dataflow.engine import (
    Emitter,
    FunctionContext,
    iter_functions,
    run_analysis,
)
from repro.sanitizers.protocols.spec import SPEC_BY_NAME

RULE = "REP303"

#: Method names that take an element off a queue.
DEQUEUE_METHODS = frozenset({"popleft", "pop"})

#: Receiver tails that mark a queue (``self.queue``, ``global_queue``…).
QUEUE_TAILS = frozenset({"queue"})

#: Disposition calls that route an in-flight stream. Seeded from the
#: dispatcher-queue spec's discharge events, plus the code-level
#: spellings used by the dispatcher/admission tiers.
_SPEC = SPEC_BY_NAME["dispatcher-queue"]
DISPOSITION_TAILS = frozenset(
    {d for ob in _SPEC.obligations for d in ob.discharge}
    | {
        "_place",
        "requeue",
        "append",
        "appendleft",
        "admit",
        "submit",
        "offer",
        "push",
        "release",
        "drain",
    }
)

#: pending dequeue sites: ((line, col_offset), ...) sorted
State = tuple[tuple[int, int], ...]


class _Site:
    """Positional stand-in so the Emitter can anchor exit findings."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def _tail(node: ast.expr) -> str | None:
    """Last attribute/name component of a dotted expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_queue_receiver(node: ast.expr) -> bool:
    tail = _tail(node)
    return tail is not None and (
        tail in QUEUE_TAILS or tail.endswith("queue")
    )


def _iter_calls(node: ast.AST):
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(
            cur,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ) and cur is not node:
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(reversed(list(ast.iter_child_nodes(cur))))


class ConservationAnalysis:
    rule = RULE

    def initial_state(self, ctx: FunctionContext) -> State:
        return ()

    def join(self, a: State, b: State) -> State:
        # May-analysis: a site pending on *any* path is pending.
        return tuple(sorted(set(a) | set(b)))

    def _apply_calls(self, node: ast.AST, pending: set[tuple[int, int]]) -> None:
        for call in _iter_calls(node):
            func = call.func
            name = _tail(func) if isinstance(func, (ast.Attribute, ast.Name)) else None
            if name is None:
                continue
            if (
                name in DEQUEUE_METHODS
                and isinstance(func, ast.Attribute)
                and _is_queue_receiver(func.value)
            ):
                pending.add((call.lineno, call.col_offset))
            elif name in DISPOSITION_TAILS:
                pending.clear()

    def transfer(
        self, elem: Any, state: State, emit: Emitter, ctx: FunctionContext
    ) -> State:
        pending = set(state)
        if isinstance(elem, TestElem):
            self._apply_calls(elem.expr, pending)
        elif isinstance(elem, IterElem):
            self._apply_calls(elem.iterable, pending)
        elif isinstance(elem, WithElem):
            self._apply_calls(elem.context, pending)
        elif isinstance(
            elem, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass
        elif isinstance(elem, ast.AST):
            self._apply_calls(elem, pending)
        return tuple(sorted(pending))

    def at_exit(
        self,
        state: State,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        if exceptional:
            return  # unwinding abandons the whole drain; caller's problem
        for line, col in state:
            emit.emit(
                _Site(line, col),
                "dequeued stream can reach a normal exit without "
                "place/park/reject — a path from this pop strands the "
                "stream (dispose of it on every branch, or peek before "
                "popping)",
            )


class ConservationRule:
    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: object,
        emitter: Emitter,
    ) -> None:
        for qualname, fn in iter_functions(tree):
            ctx = FunctionContext(
                fn=fn, qualname=qualname, module_path=display, summaries={}
            )
            cfg = build_cfg(fn, qualname=qualname)
            run_analysis(cfg, ConservationAnalysis(), ctx, emitter)
