"""REP302 — monotone-clock discipline.

Every simulated clock in the stack (``EncodingService.now``, the node
clocks wrapping it, the dispatcher's event-time high-water) is an
attribute named ``now`` that must only ever move forward. Three legal
write shapes, derived from how the DES composes clocks:

- ``c.now = max(c.now, t)`` — pull forward to an external time (idle
  jumps, dispatch-time sync); ``max`` with the *same* clock on the RHS
  guarantees monotonicity whatever ``t`` is;
- ``c.now += dt`` / ``c.now = c.now + dt`` — advance by a duration;
- a plain seed in ``__init__``/``reset`` — clock birth.

Everything else is flagged: ``c.now -= dt`` and ``c.now = c.now - dt``
rewind; ``a.now = b.now`` cross-assigns between clock domains (two
services' clocks are causally unrelated — syncing them by assignment
fabricates an ordering the DES never established); ``c.now = t``
outside ``__init__`` can rewind whenever ``t`` is stale.

The rule runs per-function on the layer-3 engine (a stateless pass —
each write site is judged locally, on every path the CFG reaches it).
The dynamic twin is SAN-G1's per-object clock-regression check on the
runtime journal.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.sanitizers.dataflow.cfg import build_cfg
from repro.sanitizers.dataflow.engine import (
    Emitter,
    FunctionContext,
    iter_functions,
    run_analysis,
)

RULE = "REP302"

#: Attribute names treated as simulated clocks.
CLOCK_ATTRS = frozenset({"now"})

#: Functions where a plain clock seed is legal (clock birth).
SEED_FUNCTIONS = frozenset({"__init__", "reset"})


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _clock_target(target: ast.expr) -> str | None:
    """Dotted path if ``target`` is a clock attribute store, else None."""
    if isinstance(target, ast.Attribute) and target.attr in CLOCK_ATTRS:
        return _dotted(target)
    return None


def _clock_refs(expr: ast.expr) -> list[str]:
    """Dotted paths of every clock attribute read inside ``expr``."""
    out = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in CLOCK_ATTRS:
            path = _dotted(node)
            if path is not None:
                out.append(path)
    return out


class ClockAnalysis:
    rule = RULE

    #: Stateless pass: the lattice is a single point. (Not ``None`` —
    #: the engine uses ``None`` as its unvisited sentinel.)
    def initial_state(self, ctx: FunctionContext) -> tuple:
        return ()

    def join(self, a: tuple, b: tuple) -> tuple:
        return ()

    def _check_assign(
        self, stmt: ast.Assign, emit: Emitter, ctx: FunctionContext
    ) -> None:
        for target in stmt.targets:
            path = _clock_target(target)
            if path is None:
                continue
            self._judge(stmt, path, stmt.value, emit, ctx)

    def _judge(
        self,
        stmt: ast.stmt,
        path: str,
        value: ast.expr,
        emit: Emitter,
        ctx: FunctionContext,
    ) -> None:
        refs = _clock_refs(value)
        same = [r for r in refs if r == path]
        others = sorted({r for r in refs if r != path})
        if same:
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "max"
            ):
                return  # max(self-ref, ...) is monotone by construction
            if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
                return  # c.now = c.now + dt
            word = (
                "rewound"
                if isinstance(value, ast.BinOp)
                and isinstance(value.op, ast.Sub)
                else "assigned from a non-monotone expression"
            )
            emit.emit(
                stmt,
                f"clock {path!r} {word}; advance with "
                f"`{path} = max({path}, t)` or `{path} += dt`",
            )
            return
        if others:
            emit.emit(
                stmt,
                f"clock {path!r} cross-assigned from clock domain "
                f"{others[0]!r}; clocks of different objects are causally "
                f"unrelated — pull forward with max() against {path!r}",
            )
            return
        fn_name = ctx.qualname.rsplit(".", 1)[-1]
        if fn_name in SEED_FUNCTIONS:
            return  # clock birth
        emit.emit(
            stmt,
            f"clock {path!r} set from a non-clock value outside "
            f"__init__/reset; this can rewind it — use "
            f"`{path} = max({path}, t)`",
        )

    def transfer(
        self, elem: Any, state: tuple, emit: Emitter, ctx: FunctionContext
    ) -> tuple:
        if isinstance(elem, ast.Assign):
            self._check_assign(elem, emit, ctx)
        elif isinstance(elem, ast.AnnAssign) and elem.value is not None:
            path = _clock_target(elem.target)
            if path is not None:
                self._judge(elem, path, elem.value, emit, ctx)
        elif isinstance(elem, ast.AugAssign):
            path = _clock_target(elem.target)
            if path is not None and not isinstance(elem.op, ast.Add):
                emit.emit(
                    elem,
                    f"clock {path!r} modified with a non-advancing "
                    f"augmented assignment; only `+=` keeps it monotone",
                )
        return state

    def at_exit(
        self,
        state: tuple,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        return None


class ClockRule:
    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: object,
        emitter: Emitter,
    ) -> None:
        for qualname, fn in iter_functions(tree):
            ctx = FunctionContext(
                fn=fn, qualname=qualname, module_path=display, summaries={}
            )
            cfg = build_cfg(fn, qualname=qualname)
            run_analysis(cfg, ClockAnalysis(), ctx, emitter)
