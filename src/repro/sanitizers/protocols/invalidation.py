"""REP304 — invalidation-before-solve over the CFG and call graph.

The load balancer memoizes its placement decision keyed on the live
device set; :meth:`LoadBalancer.note_live_set_change` is the *only*
invalidation point. A mutation of the framework's live-set bookkeeping
(``self._live[name] = ...``) that can reach a solve — directly or
through any function the layer-4 call graph says may transitively call
``solve`` — without an invalidation in between revives the PR-6 bug
class: the balancer serves a decision computed for a live set that no
longer exists.

Domain: the set of pending live-set mutation sites. A call whose tail
is ``note_live_set_change`` discharges all of them. A call that may
reach a solve while mutations are pending is flagged *at the solve
site*; pending mutations surviving to a normal function exit are
flagged there too (the next solve happens in some later call — the
invalidation must be issued before this function gives up control).

Exception exits are exempt (unwinding abandons the round) and so is
``__init__`` (no decision cache exists before the first solve).
"""

from __future__ import annotations

import ast
from typing import Any

from repro.sanitizers.concurrency.callgraph import CallGraph, call_name
from repro.sanitizers.dataflow.cfg import (
    IterElem,
    TestElem,
    WithElem,
    build_cfg,
)
from repro.sanitizers.dataflow.engine import (
    Emitter,
    FunctionContext,
    iter_functions,
    run_analysis,
)

RULE = "REP304"

#: Subscript-store base tails treated as live-set bookkeeping.
LIVE_TAILS = frozenset({"_live", "live"})

#: The one discharge call.
INVALIDATE_TAIL = "note_live_set_change"

#: The barrier the invalidation must precede.
SOLVE_TAIL = "solve"

#: pending mutation sites: ((line, col_offset), ...) sorted
State = tuple[tuple[int, int], ...]


class _Site:
    """Positional stand-in so the Emitter can anchor exit findings."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def _tail(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _live_store(target: ast.expr) -> bool:
    """Is ``target`` a subscript store into live-set bookkeeping?"""
    if not isinstance(target, ast.Subscript):
        return False
    tail = _tail(target.value)
    return tail is not None and tail in LIVE_TAILS


def _iter_calls(node: ast.AST):
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(
            cur,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ) and cur is not node:
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(reversed(list(ast.iter_child_nodes(cur))))


def solve_reaching_tails(graph: object) -> frozenset[str]:
    """Call tails that may transitively reach a ``solve`` call.

    Reverse reachability over the layer-4 tail-name call graph: start
    from every function that calls ``solve`` (or is named ``solve``),
    and walk callers until fixpoint. Over-approximates by tail-name
    collision — the right direction for a staleness lint.
    """
    if not isinstance(graph, CallGraph):
        return frozenset({SOLVE_TAIL})
    reaching = {SOLVE_TAIL}
    grew = True
    while grew:
        grew = False
        for key in sorted(graph.calls):
            _, qualname = key
            tail = qualname.rsplit(".", 1)[-1]
            if tail in reaching:
                continue
            if graph.calls[key] & reaching:
                reaching.add(tail)
                grew = True
    return frozenset(reaching)


class InvalidationAnalysis:
    rule = RULE

    def __init__(self, barriers: frozenset[str]) -> None:
        self.barriers = barriers

    def initial_state(self, ctx: FunctionContext) -> State:
        return ()

    def join(self, a: State, b: State) -> State:
        return tuple(sorted(set(a) | set(b)))

    def _apply_calls(
        self,
        node: ast.AST,
        pending: set[tuple[int, int]],
        emit: Emitter,
    ) -> None:
        for call in _iter_calls(node):
            name = call_name(call.func)
            if name is None:
                continue
            if name == INVALIDATE_TAIL:
                pending.clear()
            elif name in self.barriers and pending:
                emit.emit(
                    call,
                    f"{name}() may reach a solve while a live-set "
                    "mutation is pending — call note_live_set_change() "
                    "between the mutation and the solve (stale decision "
                    "cache)",
                )
                pending.clear()  # one finding per mutation/solve pair

    def _apply_stores(
        self, elem: ast.AST, pending: set[tuple[int, int]]
    ) -> None:
        if isinstance(elem, ast.Assign):
            for target in elem.targets:
                if _live_store(target):
                    pending.add((elem.lineno, elem.col_offset))
        elif isinstance(elem, (ast.AnnAssign, ast.AugAssign)):
            if _live_store(elem.target):
                pending.add((elem.lineno, elem.col_offset))
        elif isinstance(elem, ast.Delete):
            for target in elem.targets:
                if _live_store(target):
                    pending.add((elem.lineno, elem.col_offset))

    def transfer(
        self, elem: Any, state: State, emit: Emitter, ctx: FunctionContext
    ) -> State:
        pending = set(state)
        if isinstance(elem, TestElem):
            self._apply_calls(elem.expr, pending, emit)
        elif isinstance(elem, IterElem):
            self._apply_calls(elem.iterable, pending, emit)
        elif isinstance(elem, WithElem):
            self._apply_calls(elem.context, pending, emit)
        elif isinstance(
            elem, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass
        elif isinstance(elem, ast.AST):
            self._apply_calls(elem, pending, emit)
            self._apply_stores(elem, pending)
        return tuple(sorted(pending))

    def at_exit(
        self,
        state: State,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        if exceptional:
            return
        if ctx.qualname.rsplit(".", 1)[-1] == "__init__":
            return  # no decision cache exists before the first solve
        for line, col in state:
            emit.emit(
                _Site(line, col),
                "live-set mutation escapes the function without "
                "note_live_set_change() — the balancer's next solve "
                "serves a decision for the old live set",
            )


class InvalidationRule:
    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: object,
        emitter: Emitter,
    ) -> None:
        barriers = solve_reaching_tails(graph)
        for qualname, fn in iter_functions(tree):
            ctx = FunctionContext(
                fn=fn, qualname=qualname, module_path=display, summaries={}
            )
            cfg = build_cfg(fn, qualname=qualname)
            run_analysis(cfg, InvalidationAnalysis(barriers), ctx, emitter)
