"""REP301 — object-lifecycle typestate over the CFG.

Tracks variables bound to constructors of protocol-tracked classes
(``node = Node(...)``, ``self._pool = KernelPool(...)``, ``with
SharedFrameStore(cfg) as store:``) through the function's CFG with a
may-state domain: each tracked name maps to the *set* of protocol
states it can be in at that point (union join — one bad path is
enough). Every method call on a tracked name is checked against the
spec compiled from :mod:`repro.sanitizers.protocols.spec`:

- a transition fired outside its source states (``step()`` after
  ``retire()``, ``unlink()`` before ``close()``) is flagged and the
  offending state is carried forward (no cascade);
- an observer called in a forbidden state (``view()`` after ``close()``)
  is flagged;
- methods outside the spec's alphabet are neutral.

Exception edges come free from the layer-3 engine: the state before a
possibly-raising element flows to the handlers, so a ``close()`` inside
``finally`` correctly leaves the may-state ``{open, closed}`` in code
the exception path skips around.

The analysis is intraprocedural by design: objects received as
parameters or pulled from containers start untracked (their birth state
is unknown), mirroring the monitor's mid-life adoption rule.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.sanitizers.concurrency.callgraph import call_name
from repro.sanitizers.dataflow.cfg import (
    ExceptElem,
    IterElem,
    TestElem,
    WithElem,
    build_cfg,
)
from repro.sanitizers.dataflow.engine import (
    Emitter,
    FunctionContext,
    iter_functions,
    run_analysis,
)
from repro.sanitizers.protocols.spec import CLASS_SPECS

RULE = "REP301"

#: tracked dotted name -> (class name, frozenset of possible states)
State = tuple[tuple[str, tuple[str, frozenset[str]]], ...]


def _as_dict(state: State) -> dict[str, tuple[str, frozenset[str]]]:
    return dict(state)


def _as_state(d: dict[str, tuple[str, frozenset[str]]]) -> State:
    return tuple(sorted(d.items()))


def _dotted(node: ast.expr) -> str | None:
    """``x`` / ``self.x`` / ``a.b.c`` as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _iter_calls(node: ast.AST):
    """Calls in ``node``, skipping nested function/class bodies."""
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(
            cur,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ) and cur is not node:
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(reversed(list(ast.iter_child_nodes(cur))))


def _constructed_class(value: ast.expr) -> str | None:
    """Tracked class name if ``value`` is ``Cls(...)``, else None."""
    if isinstance(value, ast.Call):
        tail = call_name(value.func)
        if tail in CLASS_SPECS:
            return tail
    return None


class TypestateAnalysis:
    rule = RULE

    def initial_state(self, ctx: FunctionContext) -> State:
        return ()

    def join(self, a: State, b: State) -> State:
        da, db = _as_dict(a), _as_dict(b)
        out = dict(da)
        for name, (cls, states) in db.items():
            if name in out and out[name][0] == cls:
                out[name] = (cls, out[name][1] | states)
            else:
                out[name] = (cls, states)
        return _as_state(out)

    # ------------------------------------------------------------------

    def _check_call(
        self,
        call: ast.Call,
        vars_: dict[str, tuple[str, frozenset[str]]],
        emit: Emitter,
    ) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        recv = _dotted(call.func.value)
        if recv is None or recv not in vars_:
            return
        cls, states = vars_[recv]
        spec = CLASS_SPECS[cls]
        method = call.func.attr
        if not spec.knows(method):
            return
        nxt: set[str] = set()
        for st in sorted(states):
            after = spec.step(st, method)
            if after is None:
                allowed = sorted(spec.allowed_sources(method))
                emit.emit(
                    call,
                    f"{cls}.{method}() on {recv!r} in protocol state "
                    f"{st!r} (spec {spec.name!r} allows it from: "
                    f"{', '.join(allowed) or '-'})",
                )
                nxt.add(st)
            else:
                nxt.add(after)
        vars_[recv] = (cls, frozenset(nxt))

    def _bind(
        self,
        vars_: dict[str, tuple[str, frozenset[str]]],
        target: str,
        cls: str,
    ) -> None:
        vars_[target] = (cls, frozenset({CLASS_SPECS[cls].initial}))

    def transfer(
        self, elem: Any, state: State, emit: Emitter, ctx: FunctionContext
    ) -> State:
        vars_ = _as_dict(state)
        # Compound statements are decomposed by the CFG builder: only
        # each element's *own* expressions are walked here (the bodies
        # arrive as elements of their own blocks).
        if isinstance(elem, TestElem):
            for call in _iter_calls(elem.expr):
                self._check_call(call, vars_, emit)
        elif isinstance(elem, IterElem):
            for call in _iter_calls(elem.iterable):
                self._check_call(call, vars_, emit)
            target = _dotted(elem.target)
            if target is not None:
                vars_.pop(target, None)
        elif isinstance(elem, WithElem):
            for call in _iter_calls(elem.context):
                self._check_call(call, vars_, emit)
            cls = _constructed_class(elem.context)
            if cls is not None and elem.target is not None:
                target = _dotted(elem.target)
                if target is not None:
                    self._bind(vars_, target, cls)
        elif isinstance(elem, ExceptElem):
            pass
        elif isinstance(
            elem, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass
        elif isinstance(elem, ast.AST):
            # Simple statement: calls first (RHS evaluates before the
            # target rebinds), then bindings.
            for call in _iter_calls(elem):
                self._check_call(call, vars_, emit)
            if isinstance(elem, ast.Assign) and len(elem.targets) == 1:
                target = _dotted(elem.targets[0])
                if target is not None:
                    cls = _constructed_class(elem.value)
                    if cls is not None:
                        self._bind(vars_, target, cls)
                    else:
                        vars_.pop(target, None)
            elif isinstance(elem, ast.AnnAssign) and elem.value is not None:
                target = _dotted(elem.target)
                if target is not None:
                    cls = _constructed_class(elem.value)
                    if cls is not None:
                        self._bind(vars_, target, cls)
                    else:
                        vars_.pop(target, None)
            elif isinstance(elem, ast.Delete):
                for tgt in elem.targets:
                    target = _dotted(tgt)
                    if target is not None:
                        vars_.pop(target, None)
        return _as_state(vars_)

    def at_exit(
        self,
        state: State,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        # Shutdown completeness is a dynamic property (objects escape
        # through returns/attributes); SAN-G2's require_terminal covers
        # it from the journal side.
        return None


class TypestateRule:
    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: object,
        emitter: Emitter,
    ) -> None:
        for qualname, fn in iter_functions(tree):
            ctx = FunctionContext(
                fn=fn, qualname=qualname, module_path=display, summaries={}
            )
            cfg = build_cfg(fn, qualname=qualname)
            run_analysis(cfg, TypestateAnalysis(), ctx, emitter)
