"""SAN-G: replay runtime protocol journals against the declarative specs.

The monitor compiles each :class:`~repro.sanitizers.protocols.spec.
ProtocolSpec` into a per-object replay checker and walks one journal
(:class:`~repro.sanitizers.protocols.journal.ProtocolEvent` stream) in
sequence order. Two rules:

SAN-G1
    An event illegal in the object's current protocol state (a
    transition fired outside its source states, an observer called in a
    forbidden state), or the object's own clock running backwards
    between events.
SAN-G2
    An unmet obligation: a trigger event never discharged
    (``until-discharged``: a dequeued/parked stream with no
    disposition), a trigger whose detail changed without a discharge in
    between (``on-change``: a solve over a changed live set with no
    invalidation), or a ``require_terminal`` object (pool, segment
    store) that never reached a terminal state by teardown.

Continuity across partial journals: an object whose first visible event
is not ``create`` predates this journal window (e.g. a fixture-scoped
service observed mid-life), so the monitor *adopts* a consistent state
from that first event instead of flagging it — only objects whose birth
was journaled are checked from their initial state, and only they are
held to ``require_terminal``.
"""

from __future__ import annotations

from repro.sanitizers.protocols.journal import ProtocolEvent
from repro.sanitizers.protocols.spec import (
    CLASS_SPECS,
    ON_CHANGE,
    ProtocolSpec,
)
from repro.sanitizers.violations import SanitizerReport

#: Event journaled by instrumented constructors.
CREATE = "create"


class _ObjectMonitor:
    """Replay state of one journaled object."""

    def __init__(self, spec: ProtocolSpec, label: str) -> None:
        self.spec = spec
        self.label = label
        self.state: str | None = None  # None until first event seen
        self.born = False              # create event was journaled
        self.clock: float | None = None
        # until-discharged: obligation name -> {detail: trigger event}
        self.pending: dict[str, dict[str, ProtocolEvent]] = {
            ob.name: {} for ob in spec.obligations
        }
        # on-change: obligation name -> (last detail, discharged since)
        self.last_trigger: dict[str, tuple[str, bool]] = {}

    # ------------------------------------------------------------------

    def _check_clock(self, ev: ProtocolEvent, report: SanitizerReport) -> None:
        if self.clock is not None and ev.clock < self.clock - 1e-12:
            report.add(
                "SAN-G1",
                f"clock ran backwards: {ev.event!r} at {ev.clock:g} after "
                f"an event at {self.clock:g}",
                where=self.label,
            )
        self.clock = max(self.clock, ev.clock) if self.clock is not None else ev.clock

    def _apply_state(self, ev: ProtocolEvent, report: SanitizerReport) -> None:
        spec = self.spec
        if ev.event == CREATE:
            self.born = True
            self.state = spec.initial
            return
        if not spec.knows(ev.event):
            return  # obligation-only / foreign events carry no state
        if self.state is None:
            # Mid-life adoption: infer the most permissive consistent
            # state; never flag the first event of an unborn object.
            allowed = spec.allowed_sources(ev.event)
            start = next(
                (s for s in spec.states if s in allowed), spec.initial
            )
            self.state = spec.step(start, ev.event) or start
            return
        nxt = spec.step(self.state, ev.event)
        if nxt is None:
            allowed = sorted(spec.allowed_sources(ev.event))
            report.add(
                "SAN-G1",
                f"{ev.event}() in state {self.state!r} violates protocol "
                f"{spec.name!r} (legal from: {', '.join(allowed) or '-'})",
                where=self.label,
            )
            return  # keep the pre-violation state to avoid cascades
        self.state = nxt

    def _apply_obligations(
        self, ev: ProtocolEvent, report: SanitizerReport
    ) -> None:
        for ob in self.spec.obligations:
            if ob.kind == ON_CHANGE:
                if ev.event in ob.discharge:
                    last = self.last_trigger.get(ob.name)
                    if last is not None:
                        self.last_trigger[ob.name] = (last[0], True)
                elif ev.event == ob.trigger:
                    last = self.last_trigger.get(ob.name)
                    if (
                        last is not None
                        and last[0] != ev.detail
                        and not last[1]
                    ):
                        report.add(
                            "SAN-G2",
                            f"obligation {ob.name!r} unmet: "
                            f"{ob.trigger}({ev.detail!r}) after "
                            f"{ob.trigger}({last[0]!r}) with no "
                            f"{'/'.join(ob.discharge)} in between",
                            where=self.label,
                        )
                    self.last_trigger[ob.name] = (ev.detail, False)
            else:  # until-discharged
                if ev.event == ob.trigger:
                    self.pending[ob.name][ev.detail] = ev
                elif ev.event in ob.discharge:
                    self.pending[ob.name].pop(ev.detail, None)

    def observe(self, ev: ProtocolEvent, report: SanitizerReport) -> None:
        self._check_clock(ev, report)
        self._apply_state(ev, report)
        self._apply_obligations(ev, report)

    def finish(self, report: SanitizerReport) -> None:
        for ob in self.spec.obligations:
            for detail, ev in self.pending.get(ob.name, {}).items():
                report.add(
                    "SAN-G2",
                    f"obligation {ob.name!r} unmet: {ob.trigger}"
                    f"({detail!r}) at clock {ev.clock:g} never reached "
                    f"{'/'.join(ob.discharge)}",
                    where=self.label,
                )
        if (
            self.spec.require_terminal
            and self.born
            and self.state not in self.spec.terminal
        ):
            report.add(
                "SAN-G2",
                f"never shut down: still in state {self.state!r} at "
                f"teardown (protocol {self.spec.name!r} requires one of: "
                f"{', '.join(self.spec.terminal)})",
                where=self.label,
            )


def check_events(events: list[ProtocolEvent]) -> SanitizerReport:
    """Replay one journal; returns the SAN-G report."""
    report = SanitizerReport()
    monitors: dict[str, _ObjectMonitor] = {}
    for ev in sorted(events, key=lambda e: e.seq):
        spec = CLASS_SPECS.get(ev.cls)
        if spec is None:
            continue
        mon = monitors.get(ev.obj)
        if mon is None:
            mon = monitors[ev.obj] = _ObjectMonitor(spec, ev.obj)
        mon.observe(ev, report)
    for label in sorted(monitors):
        monitors[label].finish(report)
    return report


__all__ = ["CREATE", "check_events"]
