"""Structured violation records shared by both sanitizer layers.

Every check — dynamic (timeline/schedule) or static (AST lint) — reports
:class:`Violation` objects instead of raising ad hoc, so callers can
collect, group, filter by rule, render for humans, or serialize to JSON.
Strict mode turns a non-empty report into a single
:class:`ScheduleViolationError` carrying the full list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Dynamic (schedule) rule identifiers, by violation class of the design
#: doc: A = engine races, B = dependency/τ races, C = conservation,
#: D = service invariants, E = cluster invariants, F = shared-memory
#: access discipline on the real process backend.
SCHED_RULES: dict[str, str] = {
    "SAN-A1": "two ops overlap on one serially-executing engine",
    "SAN-A2": "concurrent copies exceed the device's copy-engine count",
    "SAN-B1": "τ synchronization points out of order (need τ1 ≤ τ2 ≤ τtot)",
    "SAN-B2": "op executes outside its synchronization window",
    "SAN-C1": "distribution vector does not exactly cover the MB rows",
    "SAN-C2": "Δm/Δl deltas disagree with MS_BOUNDS/LS_BOUNDS",
    "SAN-C3": "transfer bytes disagree with rows × bytes-per-row",
    "SAN-C4": "σ/σʳ deferrals do not conserve the missing SF rows",
    "SAN-D1": "per-round capacity shares sum above the whole platform",
    "SAN-D2": "work scheduled on a device that is down/evicted",
    "SAN-E1": "stream owned by more than one node at a time",
    "SAN-E2": "segment placed on a node outside its live window",
    "SAN-E3": "frames lost or duplicated across a cluster reroute",
    "SAN-F1": "concurrent shared-memory writes overlap (row bands collide)",
    "SAN-F2": "shared-memory read not ordered after the writes it depends on",
    "SAN-G1": "lifecycle event illegal in the object's protocol state "
              "(or its clock ran backwards)",
    "SAN-G2": "protocol obligation unmet (missing disposition, "
              "invalidation, or shutdown)",
}


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a sanitizer.

    ``frame`` is the 1-based inter-frame index (0 when not applicable,
    e.g. service-level checks keyed by round instead), ``where`` names the
    resource/device/stream the violation is anchored to.
    """

    rule: str
    message: str
    frame: int = 0
    where: str = ""

    def __str__(self) -> str:
        loc = f" frame={self.frame}" if self.frame else ""
        at = f" at {self.where}" if self.where else ""
        return f"{self.rule}{loc}{at}: {self.message}"


class ScheduleViolationError(AssertionError):
    """Raised in strict mode when a timeline fails sanitization.

    Subclasses ``AssertionError`` so pytest renders it as a test failure
    rather than an error, and existing ``validate_schedule`` callers can
    catch both uniformly.
    """

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(self.violations)} schedule invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations[:20]]
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        super().__init__("\n".join(lines))


@dataclass
class SanitizerReport:
    """Accumulated violations of one sanitization pass."""

    violations: list[Violation] = field(default_factory=list)

    def add(self, rule: str, message: str, frame: int = 0, where: str = "") -> None:
        self.violations.append(
            Violation(rule=rule, message=message, frame=frame, where=where)
        )

    def extend(self, other: "SanitizerReport | list[Violation]") -> None:
        vs = other.violations if isinstance(other, SanitizerReport) else other
        self.violations.extend(vs)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, list[Violation]]:
        out: dict[str, list[Violation]] = {}
        for v in self.violations:
            out.setdefault(v.rule, []).append(v)
        return out

    def raise_if_dirty(self) -> None:
        if self.violations:
            raise ScheduleViolationError(self.violations)

    def summary(self) -> str:
        if self.clean:
            return "schedule sanitizer: clean"
        parts = [
            f"{rule}×{len(vs)}" for rule, vs in sorted(self.by_rule().items())
        ]
        return f"schedule sanitizer: {len(self.violations)} violation(s) ({', '.join(parts)})"

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "count": len(self.violations),
            "violations": [
                {
                    "rule": v.rule,
                    "frame": v.frame,
                    "where": v.where,
                    "message": v.message,
                }
                for v in self.violations
            ],
        }
