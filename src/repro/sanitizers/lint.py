"""Repo-specific static AST lint (``repro lint``).

Four rules encode conventions of this simulator that generic linters
cannot know:

REP001
    No wall-clock reads (``time.time``/``perf_counter``/``monotonic``/
    ``process_time``) inside the simulation paths ``repro/hw/`` and
    ``repro/core/``. Simulated time must come from the DES clock;
    measuring real time belongs in ``repro/util/timing.py``.
REP002
    No ``==``/``!=`` against float literals. Simulated times, rates and
    shares are sums/products of floats — exact comparison is a latent
    bug (compare with a tolerance, or use ``<=`` for a zero guard).
REP003
    No mutation of a device's fault/share scaling state
    (``fault_compute_scale``/``fault_copy_scale``/``share_scale``)
    outside ``repro/hw/device.py``. Everyone else must go through the
    Device API (``apply_fault``/``set_capacity_share``/…), which keeps
    the derived rates consistent.
REP004
    No unguarded division by a name that looks like a rate/bandwidth/
    fps/speed. Under faults these legitimately reach zero (a dropped
    link has no bandwidth), so each such division needs a visible guard:
    a conditional or assert mentioning the name, a ``max(x, eps)``
    clamp, or an ``x or fallback``.

Suppression: a trailing ``# noqa`` comment silences every rule on that
line; ``# noqa: REP004`` (comma-separated list allowed) silences only
the named rules. Rules co-exist with ruff's — the namespaces are
disjoint, and ruff ignores unknown ``noqa`` codes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

LINT_RULES: dict[str, str] = {
    "REP001": "wall-clock read inside simulation code (use the DES clock)",
    "REP002": "exact ==/!= comparison against a float literal",
    "REP003": "Device fault/share scaling mutated outside hw/device.py",
    "REP004": "unguarded division by a rate/bandwidth that can be zero",
}

_WALL_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
_PROTECTED_DEVICE_ATTRS = frozenset(
    {"fault_compute_scale", "fault_copy_scale", "share_scale"}
)
_SIM_PATH_RE = re.compile(r"repro/(hw|core)/")
_DEVICE_API_RE = re.compile(r"repro/hw/device\.py$")
_RATE_NAME_RE = re.compile(r"(?:^|_)(bw|bandwidth|rate|rates|fps|speed|speeds)(?:_|$)")
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?", re.I)


@dataclass(frozen=True)
class LintViolation:
    """One static-lint finding, in ``path:line:col: RULE message`` form."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _noqa_codes(source: str) -> dict[int, frozenset[str] | None]:
    """Line → suppressed rule codes (``None`` = blanket ``# noqa``)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        codes = m.group("codes")
        out[lineno] = (
            None
            if codes is None
            else frozenset(c.strip().upper() for c in codes.split(","))
        )
    return out


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _names_in(node: ast.expr) -> set[str]:
    """Every dotted name (and each trailing attribute) under ``node``."""
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            dotted = _dotted(sub)
            if dotted:
                found.add(dotted)
                found.add(dotted.rsplit(".", 1)[-1])
    return found


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path, display: str, source: str) -> None:
        self.path = path
        self.display = display
        self.noqa = _noqa_codes(source)
        posix = path.as_posix()
        self.in_sim_path = _SIM_PATH_RE.search(posix) is not None
        self.is_device_module = _DEVICE_API_RE.search(posix) is not None
        self.violations: list[LintViolation] = []
        # Stack of per-function guard scopes for REP004: names that appear
        # in any conditional/assert test within the enclosing function are
        # considered guarded anywhere in it (control flow is not tracked —
        # the rule asks for a *visible* guard, not a proven one).
        self._guard_stack: list[set[str]] = [set()]

    # ------------------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        codes = self.noqa.get(line, frozenset())
        if codes is None or rule in codes:
            return
        self.violations.append(
            LintViolation(
                rule=rule,
                path=self.display,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=LINT_RULES[rule],
            )
        )

    # ----------------------------- REP001 -----------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_sim_path:
            dotted = _dotted(node.func)
            if (
                dotted
                and "." in dotted
                and dotted.split(".", 1)[0] == "time"
                and dotted.rsplit(".", 1)[-1] in _WALL_CLOCK_ATTRS
            ):
                self._emit("REP001", node, LINT_RULES["REP001"])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_sim_path and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_ATTRS:
                    self._emit("REP001", node, LINT_RULES["REP001"])
                    break
        self.generic_visit(node)

    # ----------------------------- REP002 -----------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, (_lhs, rhs) in zip(node.ops, zip(operands, operands[1:], strict=False), strict=False):
            if isinstance(op, (ast.Eq, ast.NotEq)) and any(
                isinstance(x, ast.Constant) and isinstance(x.value, float)
                for x in (_lhs, rhs)
            ):
                self._emit("REP002", node, LINT_RULES["REP002"])
                break
        self.generic_visit(node)

    # ----------------------------- REP003 -----------------------------

    def _check_protected_target(self, target: ast.expr) -> None:
        if (
            not self.is_device_module
            and isinstance(target, ast.Attribute)
            and target.attr in _PROTECTED_DEVICE_ATTRS
        ):
            self._emit("REP003", target, LINT_RULES["REP003"])

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._check_protected_target(elt)
            else:
                self._check_protected_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_protected_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_protected_target(node.target)
        self.generic_visit(node)

    # ----------------------------- REP004 -----------------------------

    def _enter_scope(self, node: ast.AST) -> None:
        guards: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.If, ast.While, ast.Assert, ast.IfExp)):
                guards |= _names_in(sub.test)
            elif isinstance(sub, ast.comprehension):
                for cond in sub.ifs:
                    guards |= _names_in(cond)
        self._guard_stack.append(guards)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)
        self.generic_visit(node)
        self._guard_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)
        self.generic_visit(node)
        self._guard_stack.pop()

    def _is_guarded(self, denom: ast.expr) -> bool:
        # Expression-level guards: max(x, eps) / (x or fallback) /
        # any computed denominator — the rule targets bare names only.
        if not isinstance(denom, (ast.Name, ast.Attribute)):
            return True
        dotted = _dotted(denom)
        if dotted is None:
            return True
        tail = dotted.rsplit(".", 1)[-1]
        for guards in self._guard_stack:
            if dotted in guards or tail in guards:
                return True
        return False

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            dotted = _dotted(node.right)
            if dotted is not None:
                tail = dotted.rsplit(".", 1)[-1]
                if _RATE_NAME_RE.search(tail) and not self._is_guarded(node.right):
                    self._emit("REP004", node, LINT_RULES["REP004"])
        self.generic_visit(node)


def lint_source(source: str, path: Path, display: str | None = None) -> list[LintViolation]:
    """Lint one module's source text; returns violations sorted by line."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintViolation(
                rule="REP000",
                path=display or str(path),
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                message=f"syntax error: {exc.msg}",
            )
        ]
    linter = _FileLinter(path, display or str(path), source)
    linter.visit(tree)
    return sorted(linter.violations, key=lambda v: (v.line, v.col, v.rule))


def lint_file(path: Path, root: Path | None = None) -> list[LintViolation]:
    display = str(path.relative_to(root)) if root else str(path)
    return lint_source(path.read_text(), path, display)


def iter_python_files(target: Path) -> list[Path]:
    if target.is_file():
        return [target]
    return sorted(
        p
        for p in target.rglob("*.py")
        if "__pycache__" not in p.parts
        and not any(part.startswith(".") for part in p.parts)
    )


def lint_paths(targets: list[Path]) -> list[LintViolation]:
    """Lint every ``.py`` under the targets (files or directories)."""
    out: list[LintViolation] = []
    for target in targets:
        for path in iter_python_files(target):
            out.extend(lint_file(path))
    return out


__all__ = [
    "LINT_RULES",
    "LintViolation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]
