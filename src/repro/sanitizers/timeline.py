"""Dynamic schedule sanitizer: race/invariant checking for DES timelines.

A TSAN-style checker for the simulator: it re-derives, from first
principles, the invariants every FEVES schedule must satisfy and walks the
produced :class:`~repro.hw.des.OpRecord` timelines looking for violations.
Four classes of checks (rule prefixes match :data:`~repro.sanitizers.
violations.SCHED_RULES`):

**A — engine races.** Ops bound to one serially-executing engine must not
overlap (SAN-A1), and a device must never have more concurrent copy
operations in flight than its link has copy engines (SAN-A2) — the
1-vs-2-copy-engine distinction the paper's Fig. 4 schedule is built
around.

**B — dependency races.** The three synchronization points must be
ordered 0 ≤ τ1 ≤ τ2 ≤ τtot (SAN-B1), and every op must run inside its
phase window (SAN-B2): ME/INT (and their fault redos) plus phase-1
transfers finish by τ1, SME and its feeding transfers run inside
[τ1, τ2], the R* block and phase-3 transfers start at τ2, and nothing
ends after τtot (R* probes are bootstrap measurements excluded from the
frame makespan by design, so they are exempt from the τtot bound only).

**C — conservation.** The distribution vectors m/l/s must each cover the
frame's MB rows exactly (SAN-C1); the Δm/Δl extra-transfer terms must
match a recomputation of MS_BOUNDS/LS_BOUNDS from the final distributions
(SAN-C2); every planned transfer's byte count must equal rows ×
bytes-per-row of its buffer (SAN-C3); and the deferred-SF split must
conserve rows: σ + σʳ = N − l_i − Δl_i per device, the planned transfers
must move exactly the Δ/σ rows the decision predicts, and the σʳ rows a
frame defers must be the rows the next frame's plan catches up (SAN-C4).

**D — service invariants.** Capacity shares granted in one scheduling
round sum to at most the whole platform (SAN-D1), and no session ever
executes work on a device that is down or was evicted — a down device may
only carry its fault-detection stall (SAN-D2).

**E — cluster invariants.** At fleet scale every stream must be owned by
at most one node at a time — segment placement intervals must not
overlap, and only the last segment may still be open (SAN-E1); every
segment must land on a known node inside that node's live window
(SAN-E2); and reroutes must conserve frames: segment offsets chain
contiguously, the global frame indices of one stream cover exactly
1..frames_done with no loss or duplication, no stream encodes more
frames than submitted, and the fleet-wide node-side and stream-side
frame totals agree (SAN-E3). Per-node services are additionally run
through the full A–D :meth:`~TimelineSanitizer.check_service` pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bounds import ls_bounds, ms_bounds
from repro.core.perf_model import buffer_row_bytes
from repro.hw.interconnect import BufferSizes
from repro.sanitizers.violations import SanitizerReport, Violation

if TYPE_CHECKING:
    from repro.cluster.dispatcher import Cluster
    from repro.codec.config import CodecConfig
    from repro.core.config import FrameworkConfig
    from repro.core.coding_manager import FrameReport
    from repro.core.framework import FevesFramework
    from repro.hw.des import OpRecord
    from repro.hw.timeline import FrameTimeline
    from repro.hw.topology import Platform
    from repro.service.service import EncodingService

#: (base label, category) → phase for window checks. Labels carry their
#: device in a ``[...]`` suffix which :func:`_base_label` strips; the
#: category disambiguates labels reused across phases (``MV->SME`` is a
#: phase-1 d2h *and* a phase-2 h2d).
_PHASE_OF: dict[tuple[str, str], int] = {
    ("RF", "h2d"): 1,
    ("CF->ME", "h2d"): 1,
    ("CF->SME", "h2d"): 1,
    ("SF(RF-1)->SME", "h2d"): 1,
    ("SF(RF)->host", "d2h"): 1,
    ("MV->SME", "d2h"): 1,
    ("ME", "compute"): 1,
    ("INT", "compute"): 1,
    ("ME-redo", "compute"): 1,
    ("INT-redo", "compute"): 1,
    ("SF(RF)->SME", "h2d"): 2,
    ("MV->SME", "h2d"): 2,
    ("CF->MC", "h2d"): 2,
    ("SF->MC", "h2d"): 2,
    ("MV(SME)->host", "d2h"): 2,
    ("SME", "compute"): 2,
    ("SME-redo", "compute"): 2,
    ("MV->MC", "h2d"): 3,
    ("RF+1->host", "d2h"): 3,
    ("SF->SME+1", "h2d"): 3,
    ("R*", "compute"): 3,
    ("R*probe", "compute"): 3,
    ("R*in", "h2d"): 3,
    ("R*slice", "compute"): 3,
    ("RFpiece", "d2h"): 3,
}


def _base_label(label: str) -> str:
    """Strip the ``[device]`` / ``[a->b]`` suffix off an op label."""
    cut = label.find("[")
    return label if cut < 0 else label[:cut]


def _device_of_resource(resource: str) -> str:
    """Device name of a DES resource (``gpu1.compute`` → ``gpu1``)."""
    return resource.rsplit(".", 1)[0]


class TimelineSanitizer:
    """Checks DES timelines, frame reports, runs, and services.

    Parameters
    ----------
    platform:
        The platform the timelines were produced on (engine topology and
        copy-engine counts).
    mb_rows:
        MB rows per frame the distributions must cover.
    sizes:
        Buffer geometry for the bytes-per-row conservation check.
    halo:
        SF halo rows used by LS_BOUNDS (must match the balancer's).
    eps:
        Absolute tolerance for simulated-time comparisons — simulated
        times are sums of float durations, so exact comparison would
        misfire (the very mistake lint rule REP002 exists to catch).
    """

    def __init__(
        self,
        platform: Platform,
        mb_rows: int,
        sizes: BufferSizes | None = None,
        halo: int = 0,
        eps: float = 1e-9,
    ) -> None:
        self.platform = platform
        self.mb_rows = mb_rows
        self.sizes = sizes
        self.halo = halo
        self.eps = eps

    @classmethod
    def for_framework(cls, fw: FevesFramework) -> TimelineSanitizer:
        """Build a sanitizer matching a framework's exact configuration."""
        return cls.for_config(fw.platform, fw.codec_cfg, fw.fw_cfg)

    @classmethod
    def for_config(
        cls,
        platform: Platform,
        codec_cfg: CodecConfig,
        fw_cfg: FrameworkConfig | None = None,
    ) -> TimelineSanitizer:
        if fw_cfg is None or fw_cfg.sf_halo_rows is None:
            halo = -(-(codec_cfg.search_range + 1) // 16)
        else:
            halo = fw_cfg.sf_halo_rows
        return cls(
            platform=platform,
            mb_rows=codec_cfg.mb_rows,
            sizes=BufferSizes(width=codec_cfg.width, height=codec_cfg.height),
            halo=halo,
        )

    # ----------------------- class A: engine races ------------------------

    def _check_engine_races(
        self, records: list[OpRecord], frame: int, out: SanitizerReport
    ) -> None:
        by_res: dict[str, list[OpRecord]] = {}
        for rec in records:
            if rec.duration > 0:
                by_res.setdefault(rec.resource, []).append(rec)
        for name, recs in by_res.items():
            recs = sorted(recs, key=lambda r: (r.start, r.end))
            for a, b in zip(recs, recs[1:], strict=False):
                if b.start < a.end - self.eps:
                    out.add(
                        "SAN-A1",
                        f"{a.label} [{a.start:.6f},{a.end:.6f}] overlaps "
                        f"{b.label} [{b.start:.6f},{b.end:.6f}]",
                        frame=frame,
                        where=name,
                    )

    def _check_copy_engines(
        self, records: list[OpRecord], frame: int, out: SanitizerReport
    ) -> None:
        for dev in self.platform.devices:
            if dev.is_accelerator:
                assert dev.spec.link is not None
                engines = dev.spec.link.copy_engines
            else:
                engines = 0
            prefix = f"{dev.name}."
            copies = [
                r
                for r in records
                if r.category in ("h2d", "d2h")
                and r.duration > 0
                and r.resource.startswith(prefix)
            ]
            if not copies:
                continue
            if engines == 0:
                out.add(
                    "SAN-A2",
                    f"{len(copies)} copy op(s) on device without copy engines",
                    frame=frame,
                    where=dev.name,
                )
                continue
            # Sweep line over copy intervals: max in-flight ≤ engines.
            events = sorted(
                [(r.start + self.eps, 1, r.label) for r in copies]
                + [(r.end, -1, r.label) for r in copies]
            )
            inflight = 0
            for t, delta, label in events:
                inflight += delta
                if inflight > engines:
                    out.add(
                        "SAN-A2",
                        f"{inflight} concurrent copies at t={t:.6f} "
                        f"(last issued: {label}) but link has "
                        f"{engines} copy engine(s)",
                        frame=frame,
                        where=dev.name,
                    )
                    break

    # -------------------- class B: dependency races -----------------------

    def _check_tau_windows(
        self, timeline: FrameTimeline, out: SanitizerReport
    ) -> None:
        eps = self.eps
        frame = timeline.frame_index
        t1, t2, tt = timeline.tau1, timeline.tau2, timeline.tau_tot
        if not (-eps <= t1 <= t2 + eps and t2 <= tt + eps):
            out.add(
                "SAN-B1",
                f"τ1={t1:.6f} τ2={t2:.6f} τtot={tt:.6f} violate 0 ≤ τ1 ≤ τ2 ≤ τtot",
                frame=frame,
            )
        for rec in timeline.records:
            base = _base_label(rec.label)
            if rec.start < -eps:
                out.add(
                    "SAN-B2",
                    f"{rec.label} starts at {rec.start:.6f} < 0",
                    frame=frame,
                    where=rec.resource,
                )
            if base != "R*probe" and rec.end > tt + eps:
                out.add(
                    "SAN-B2",
                    f"{rec.label} ends at {rec.end:.6f} after τtot={tt:.6f}",
                    frame=frame,
                    where=rec.resource,
                )
            phase = _PHASE_OF.get((base, rec.category))
            if phase is None:
                continue
            if phase == 1 and rec.end > t1 + eps:
                out.add(
                    "SAN-B2",
                    f"phase-1 op {rec.label} ends at {rec.end:.6f} "
                    f"after τ1={t1:.6f}",
                    frame=frame,
                    where=rec.resource,
                )
            elif phase == 2:
                if rec.start < t1 - eps:
                    out.add(
                        "SAN-B2",
                        f"phase-2 op {rec.label} starts at {rec.start:.6f} "
                        f"before τ1={t1:.6f}",
                        frame=frame,
                        where=rec.resource,
                    )
                if rec.end > t2 + eps:
                    out.add(
                        "SAN-B2",
                        f"phase-2 op {rec.label} ends at {rec.end:.6f} "
                        f"after τ2={t2:.6f}",
                        frame=frame,
                        where=rec.resource,
                    )
            elif phase == 3 and rec.start < t2 - eps:
                out.add(
                    "SAN-B2",
                    f"phase-3 op {rec.label} starts at {rec.start:.6f} "
                    f"before τ2={t2:.6f}",
                    frame=frame,
                    where=rec.resource,
                )

    # ----------------------- class C: conservation ------------------------

    def _check_distributions(
        self, report: FrameReport, out: SanitizerReport
    ) -> None:
        decision = report.decision
        frame = report.frame_index
        for name, dist in (("m", decision.m), ("l", decision.l), ("s", decision.s)):
            if any(r < 0 for r in dist.rows):
                out.add(
                    "SAN-C1",
                    f"{name} has negative row counts: {dist.rows}",
                    frame=frame,
                )
            if sum(dist.rows) != dist.total or dist.total != self.mb_rows:
                out.add(
                    "SAN-C1",
                    f"{name}={dist.rows} sums to {sum(dist.rows)} "
                    f"(total={dist.total}) but the frame has "
                    f"{self.mb_rows} MB rows",
                    frame=frame,
                )

    def _check_deltas(self, report: FrameReport, out: SanitizerReport) -> None:
        decision = report.decision
        frame = report.frame_index
        for i, dev in enumerate(self.platform.devices):
            if not dev.is_accelerator:
                continue
            if i >= len(decision.delta_m) or i >= len(decision.delta_l):
                out.add(
                    "SAN-C2",
                    f"decision carries no Δ entry for device index {i}",
                    frame=frame,
                    where=dev.name,
                )
                continue
            want_dm = ms_bounds(decision.m, decision.s, i).rows
            want_dl = ls_bounds(decision.l, decision.s, i, self.halo).rows
            got_dm = decision.delta_m[i].rows
            got_dl = decision.delta_l[i].rows
            if got_dm != want_dm:
                out.add(
                    "SAN-C2",
                    f"Δm={got_dm} but MS_BOUNDS(m,s) gives {want_dm}",
                    frame=frame,
                    where=dev.name,
                )
            if got_dl != want_dl:
                out.add(
                    "SAN-C2",
                    f"Δl={got_dl} but LS_BOUNDS(l,s,halo={self.halo}) "
                    f"gives {want_dl}",
                    frame=frame,
                    where=dev.name,
                )

    def _check_transfer_bytes(
        self, report: FrameReport, out: SanitizerReport
    ) -> None:
        if self.sizes is None:
            return
        for item in report.transfer_plan.items:
            want = item.rows * buffer_row_bytes(item.buffer, self.sizes)
            if item.nbytes != want:
                out.add(
                    "SAN-C3",
                    f"{item.label} moves {item.nbytes} B for {item.rows} "
                    f"{item.buffer} row(s); rows × row-bytes = {want} B",
                    frame=report.frame_index,
                    where=item.device,
                )

    def _plan_rows(
        self, report: FrameReport, device: str, label: str, phase: int
    ) -> int:
        return sum(
            item.rows
            for item in report.transfer_plan.for_device(device, phase=phase)
            if item.label == label
        )

    def _check_sigma_conservation(
        self, report: FrameReport, out: SanitizerReport
    ) -> None:
        decision = report.decision
        frame = report.frame_index
        n = self.mb_rows
        for i, dev in enumerate(self.platform.devices):
            if not dev.is_accelerator:
                continue
            name = dev.name
            # σ/σʳ row conservation (paper eqs. (14)–(15)): everything the
            # device neither interpolated (l_i) nor fetched for SME (Δl_i)
            # must be split exactly between σ (this frame) and σʳ (next).
            if name in decision.sigma or name in decision.sigma_r:
                sg = decision.sigma.get(name)
                rem = decision.sigma_r.get(name)
                got = (sg.rows if sg else 0) + (rem.rows if rem else 0)
                dl = decision.delta_l[i].rows if i < len(decision.delta_l) else 0
                want = n - decision.l.rows[i] - dl
                if got != want:
                    out.add(
                        "SAN-C4",
                        f"σ+σʳ = {got} rows but N − l_i − Δl_i = {want}",
                        frame=frame,
                        where=name,
                    )
            # Planned transfers must move exactly the Δ/σ rows the decision
            # predicts. A device absent from the plan was parked or lost
            # its link this frame — nothing to reconcile.
            if not report.transfer_plan.for_device(name):
                continue
            dm = decision.delta_m[i].rows if i < len(decision.delta_m) else 0
            dl = decision.delta_l[i].rows if i < len(decision.delta_l) else 0
            checks = [
                ("CF->SME", 1, dm, "Δm"),
                ("SF(RF)->SME", 2, dl, "Δl"),
                ("MV->SME", 2, dm, "Δm"),
            ]
            if name != report.rstar_device:
                sg = decision.sigma.get(name)
                checks.append(("SF->SME+1", 3, sg.rows if sg else 0, "σ"))
            for label, phase, want, what in checks:
                got = self._plan_rows(report, name, label, phase)
                if got != want:
                    out.add(
                        "SAN-C4",
                        f"plan moves {got} row(s) as {label} (phase {phase}) "
                        f"but the decision's {what} is {want}",
                        frame=frame,
                        where=name,
                    )

    # ------------------- class D: down-device execution -------------------

    def _check_faulted_idle(
        self, report: FrameReport, out: SanitizerReport
    ) -> None:
        """A device that died this frame may only carry its fault stall."""
        for name in report.faulted:
            prefix = f"{name}."
            for rec in report.timeline.records:
                if (
                    rec.resource.startswith(prefix)
                    and rec.category != "fault"
                    and rec.duration > 0
                ):
                    out.add(
                        "SAN-D2",
                        f"faulted device executes {rec.label} "
                        f"({rec.category}, {rec.duration:.6f}s)",
                        frame=report.frame_index,
                        where=rec.resource,
                    )

    # ----------------------------- entry points ---------------------------

    def check_timeline(self, timeline: FrameTimeline) -> SanitizerReport:
        """Record-level checks (classes A and B) on one frame timeline."""
        out = SanitizerReport()
        self._check_engine_races(timeline.records, timeline.frame_index, out)
        self._check_copy_engines(timeline.records, timeline.frame_index, out)
        self._check_tau_windows(timeline, out)
        return out

    def check_report(self, report: FrameReport) -> SanitizerReport:
        """All per-frame checks (classes A–C plus faulted-device idleness)."""
        out = SanitizerReport()
        if report.frame_index == 0:
            return out  # intra placeholder report: nothing scheduled
        out.extend(self.check_timeline(report.timeline))
        self._check_distributions(report, out)
        self._check_deltas(report, out)
        self._check_transfer_bytes(report, out)
        self._check_sigma_conservation(report, out)
        self._check_faulted_idle(report, out)
        return out

    def check_run(self, fw: FevesFramework) -> SanitizerReport:
        """Sanitize every frame of a run, plus cross-frame σʳ handover.

        The cross-frame check closes the conservation loop: the SF rows a
        frame defers (σʳ) must be exactly the rows the next frame's plan
        transfers during τ1 (``SF(RF-1)->SME``). Pairs interrupted by an
        intra refresh, a fault event, or parking are skipped — those
        legitimately reset the backlog.
        """
        out = SanitizerReport()
        if not fw.reports:
            return out   # never encoded (e.g. a rejected session)
        eventful = {
            e.frame_index for e in fw.fault_log if e.eventful
        }
        for prev, cur in zip([None] + fw.reports[:-1], fw.reports, strict=True):
            out.extend(self.check_report(cur))
            if (
                prev is None
                or cur.frame_index != prev.frame_index + 1
                or prev.frame_index in eventful
                or cur.frame_index in eventful
            ):
                continue
            for name, rem in prev.decision.sigma_r.items():
                if name in prev.faulted or name in cur.faulted:
                    continue
                if not cur.transfer_plan.for_device(name):
                    continue  # parked this frame: backlog legitimately reset
                got = self._plan_rows(cur, name, "SF(RF-1)->SME", 1)
                if got != rem.rows:
                    out.add(
                        "SAN-C4",
                        f"frame {prev.frame_index} deferred σʳ={rem.rows} "
                        f"row(s) but frame {cur.frame_index} catches up "
                        f"{got}",
                        frame=cur.frame_index,
                        where=name,
                    )
        return out

    # ------------------------- service-level checks -----------------------

    @staticmethod
    def check_service(service: EncodingService, eps: float = 1e-9) -> SanitizerReport:
        """Class-D service invariants plus per-session frame sanitization.

        Every session's frames are checked with a sanitizer built for that
        session's own resolution and halo; on top, the capacity shares
        granted in each scheduling round must sum to ≤ 1 (SAN-D1) and no
        session may execute work on a device held down by the service-level
        fault schedule in that round (SAN-D2).
        """
        out = SanitizerReport()
        share_sum: dict[int, float] = {}
        down_cache: dict[int, frozenset[str]] = {}

        def down_at(round_idx: int) -> frozenset[str]:
            if round_idx not in down_cache:
                down_cache[round_idx] = frozenset(
                    d.name
                    for d in service.template.devices
                    if service.cfg.faults.down(round_idx, d.name) is not None
                )
            return down_cache[round_idx]

        for session in service.sessions:
            san = TimelineSanitizer.for_framework(session.framework)
            out.extend(san.check_run(session.framework))
            for rec in session.records:
                share_sum[rec.round] = share_sum.get(rec.round, 0.0) + rec.share
                if not 0.0 < rec.share <= 1.0 + eps:
                    out.add(
                        "SAN-D1",
                        f"frame {rec.index} granted share {rec.share}",
                        where=session.stream_id,
                    )
                down = down_at(rec.round)
                if not down:
                    continue
                report = session.framework.reports[rec.index - 1]
                for op in report.timeline.records:
                    dev = _device_of_resource(op.resource)
                    if dev in down and op.category != "fault" and op.duration > 0:
                        out.add(
                            "SAN-D2",
                            f"stream {session.stream_id} frame {rec.index} "
                            f"runs {op.label} on {dev}, which is down in "
                            f"round {rec.round}",
                            frame=rec.index,
                            where=op.resource,
                        )
        for round_idx, total in sorted(share_sum.items()):
            if total > 1.0 + 1e-6:
                out.add(
                    "SAN-D1",
                    f"round {round_idx} grants {total:.6f} total capacity "
                    f"(> 1.0)",
                    where="scheduler",
                )
        return out

    # ----------------------- exec-backend checks (SAN-F) ------------------

    @staticmethod
    def check_exec(entries: list, frame: int = 0) -> SanitizerReport:
        """Class-F shared-memory discipline on one real parallel frame.

        ``entries`` is the merged :class:`~repro.exec.shm.AccessRecord`
        journal of one ``ProcessBackend.run_frame`` (host staging + every
        worker task). Two invariants, checked purely from the journal:

        **SAN-F1** — writes racing: two write records in the *same phase*
        from *different tasks* must never overlap on a segment (the INT
        row bands must be pairwise disjoint). Same-phase read/write
        overlap between different tasks is equally unordered and flagged
        too.

        **SAN-F2** — reads ordered: every read's row range must be
        covered by the union of strictly-earlier-phase writes to that
        segment — staging (phase 0) feeds ME/INT (phase 1), whose ``sf0``
        writes must jointly cover every SME/τ1 read (phase 2). A read of
        rows nobody staged or interpolated is a read of garbage (or of a
        racing write).
        """
        out = SanitizerReport()
        writes_by_seg: dict[str, list] = {}
        for e in entries:
            if e.kind == "w":
                writes_by_seg.setdefault(e.segment, []).append(e)

        # --- F1: same-phase cross-task write/write overlap ----------------
        for seg in sorted(writes_by_seg):
            ws = sorted(
                writes_by_seg[seg], key=lambda e: (e.phase, e.row0, e.task)
            )
            for i, a in enumerate(ws):
                for b in ws[i + 1:]:
                    if b.phase != a.phase or b.row0 >= a.row1:
                        continue
                    if a.task != b.task and a.overlaps(b):
                        out.add(
                            "SAN-F1",
                            f"writes [{a.row0}, {a.row1}) by {a.task!r} and "
                            f"[{b.row0}, {b.row1}) by {b.task!r} overlap in "
                            f"phase {a.phase}",
                            frame=frame,
                            where=seg,
                        )

        # --- F2: reads covered by earlier-phase writes, unordered
        #     same-phase write overlap ----------------------------------
        for e in entries:
            if e.kind != "r":
                continue
            earlier = sorted(
                (
                    (w.row0, w.row1)
                    for w in writes_by_seg.get(e.segment, [])
                    if w.phase < e.phase
                ),
            )
            covered_to = e.row0
            for lo, hi in earlier:
                if lo > covered_to:
                    break
                covered_to = max(covered_to, hi)
            if covered_to < e.row1:
                out.add(
                    "SAN-F2",
                    f"read [{e.row0}, {e.row1}) by {e.task!r} in phase "
                    f"{e.phase} touches rows no earlier-phase write "
                    f"produced (covered up to {covered_to})",
                    frame=frame,
                    where=e.segment,
                )
            for w in writes_by_seg.get(e.segment, []):
                if (
                    w.phase == e.phase
                    and w.task != e.task
                    and w.overlaps(e)
                ):
                    out.add(
                        "SAN-F2",
                        f"read [{e.row0}, {e.row1}) by {e.task!r} overlaps "
                        f"write [{w.row0}, {w.row1}) by {w.task!r} in the "
                        f"same phase {e.phase} (no barrier between them)",
                        frame=frame,
                        where=e.segment,
                    )
        return out

    # ----------------------- protocol checks (SAN-G) ----------------------

    @staticmethod
    def check_protocols(events: list | None = None) -> SanitizerReport:
        """Class-G lifecycle/protocol discipline on the runtime journal.

        ``events`` is a list of :class:`~repro.sanitizers.protocols.
        journal.ProtocolEvent` (the stream instrumented classes emit
        under ``REPRO_SANITIZE``); when omitted, the global journal is
        drained. The events are replayed against the declarative specs
        in :mod:`repro.sanitizers.protocols.spec` — the same
        declarations the REP301–REP304 static rules compile from:

        **SAN-G1** — an event illegal in the object's protocol state
        (``step()`` on a retired node, ``view()`` on a closed store),
        or the object's own clock running backwards between events.

        **SAN-G2** — an unmet obligation: a dequeued/parked stream with
        no disposition, a solve over a changed live set with no
        invalidation in between, or a ``require_terminal`` object
        (kernel pool, frame store) never shut down by teardown.
        """
        from repro.sanitizers.protocols.journal import JOURNAL
        from repro.sanitizers.protocols.monitor import check_events

        if events is None:
            events = JOURNAL.drain()
        return check_events(events)

    # ------------------------- cluster-level checks -----------------------

    @staticmethod
    def check_cluster(cluster: Cluster, eps: float = 1e-9) -> SanitizerReport:
        """Class-E fleet invariants plus the full A–D pass per node.

        Every node's :class:`~repro.service.service.EncodingService` is
        first sanitized with :meth:`check_service` (violations re-anchored
        under ``node_id:``); then the dispatcher's segment bookkeeping is
        checked stream by stream: exclusive time-ordered ownership
        (SAN-E1), placement inside the owning node's live window
        (SAN-E2), and frame conservation across reroutes (SAN-E3).
        """
        out = SanitizerReport()
        for node in cluster.nodes:
            rep = TimelineSanitizer.check_service(node.service, eps=eps)
            for v in rep.violations:
                where = f"{node.node_id}:{v.where}" if v.where else node.node_id
                out.add(v.rule, v.message, frame=v.frame, where=where)

        nodes = {n.node_id: n for n in cluster.nodes}
        for stream_id, st in cluster.dispatcher.streams.items():
            segs = st.segments
            # --- E1: exclusive, time-ordered ownership -------------------
            for i, seg in enumerate(segs):
                if seg.t_evicted is None and i != len(segs) - 1:
                    out.add(
                        "SAN-E1",
                        f"segment {i} on {seg.node_id} was never evicted "
                        f"but segment {i + 1} exists",
                        where=stream_id,
                    )
            for a, b in zip(segs, segs[1:], strict=False):
                if a.t_evicted is not None and b.t_routed < a.t_evicted - eps:
                    out.add(
                        "SAN-E1",
                        f"rerouted to {b.node_id} at {b.t_routed:.6f} while "
                        f"{a.node_id} still owned the stream until "
                        f"{a.t_evicted:.6f}",
                        where=stream_id,
                    )
            # --- E2: placement inside the node's live window -------------
            for seg in segs:
                node = nodes.get(seg.node_id)
                if node is None:
                    out.add(
                        "SAN-E2",
                        f"segment placed on unknown node {seg.node_id!r}",
                        where=stream_id,
                    )
                    continue
                if seg.t_routed < node.joined_s - eps:
                    out.add(
                        "SAN-E2",
                        f"segment routed to {seg.node_id} at "
                        f"{seg.t_routed:.6f} before the node joined at "
                        f"{node.joined_s:.6f}",
                        where=stream_id,
                    )
                if node.retired_s is not None and (
                    seg.t_routed > node.retired_s + eps
                ):
                    out.add(
                        "SAN-E2",
                        f"segment routed to {seg.node_id} at "
                        f"{seg.t_routed:.6f} after the node retired at "
                        f"{node.retired_s:.6f}",
                        where=stream_id,
                    )
            # --- E3: frame conservation across reroutes ------------------
            offset = 0
            indices: list[int] = []
            for seg in segs:
                if seg.offset != offset:
                    out.add(
                        "SAN-E3",
                        f"segment on {seg.node_id} starts at global offset "
                        f"{seg.offset} but earlier segments encoded "
                        f"{offset} frame(s)",
                        where=stream_id,
                    )
                indices.extend(seg.offset + r.index for r in seg.session.records)
                offset += len(seg.session.records)
            if sorted(indices) != list(range(1, len(indices) + 1)):
                missing = sorted(set(range(1, len(indices) + 1)) - set(indices))
                dupes = sorted({i for i in indices if indices.count(i) > 1})
                out.add(
                    "SAN-E3",
                    f"global frame indices do not cover 1..{len(indices)} "
                    f"(missing {missing[:8]}, duplicated {dupes[:8]})",
                    where=stream_id,
                )
            if st.frames_done > st.spec.n_frames:
                out.add(
                    "SAN-E3",
                    f"encoded {st.frames_done} frame(s) but the stream "
                    f"submitted {st.spec.n_frames}",
                    where=stream_id,
                )

        node_frames = sum(
            len(s.records) for n in cluster.nodes for s in n.service.sessions
        )
        stream_frames = sum(
            st.frames_done for st in cluster.dispatcher.streams.values()
        )
        if node_frames != stream_frames:
            out.add(
                "SAN-E3",
                f"nodes recorded {node_frames} frame(s) but stream segments "
                f"account for {stream_frames}",
                where="cluster",
            )
        return out


def sanitize_frame_report(report: FrameReport, manager) -> SanitizerReport:
    """Sanitize one report with a sanitizer derived from its manager.

    Convenience hook for the pytest fixture: the
    :class:`~repro.core.coding_manager.VideoCodingManager` carries exactly
    the platform/codec/framework configuration the report was produced
    under.
    """
    san = TimelineSanitizer.for_config(
        manager.platform, manager.codec_cfg, manager.fw_cfg
    )
    return san.check_report(report)


__all__ = [
    "TimelineSanitizer",
    "SanitizerReport",
    "Violation",
    "sanitize_frame_report",
]
