"""Two-layer analysis subsystem: schedule sanitizer + repo lint.

Layer 1 (:mod:`repro.sanitizers.timeline`) is a dynamic race/invariant
checker for DES timelines and LP outputs; layer 2
(:mod:`repro.sanitizers.lint`) is a static AST lint with repo-specific
rules (``repro lint``). Both report structured
:class:`~repro.sanitizers.violations.Violation` records.
"""

from repro.sanitizers.lint import LINT_RULES, LintViolation, lint_paths
from repro.sanitizers.timeline import TimelineSanitizer, sanitize_frame_report
from repro.sanitizers.violations import (
    SCHED_RULES,
    SanitizerReport,
    ScheduleViolationError,
    Violation,
)

__all__ = [
    "LINT_RULES",
    "LintViolation",
    "lint_paths",
    "SCHED_RULES",
    "SanitizerReport",
    "ScheduleViolationError",
    "TimelineSanitizer",
    "Violation",
    "sanitize_frame_report",
]
