"""Three-layer analysis subsystem: sanitizer, AST lint, dataflow lint.

Layer 1 (:mod:`repro.sanitizers.timeline`) is a dynamic race/invariant
checker for DES timelines and LP outputs; layer 2
(:mod:`repro.sanitizers.lint`) is a static per-line AST lint with
repo-specific rules; layer 3 (:mod:`repro.sanitizers.dataflow`) is a
CFG + abstract-interpretation engine for flow-sensitive rules (unit
mismatches, iteration-order determinism, resource safety, measurement
purity). Layers 2 and 3 both run under ``repro lint``.
"""

from repro.sanitizers.dataflow import DATAFLOW_RULES, analyze_paths
from repro.sanitizers.lint import LINT_RULES, LintViolation, lint_paths
from repro.sanitizers.timeline import TimelineSanitizer, sanitize_frame_report
from repro.sanitizers.violations import (
    SCHED_RULES,
    SanitizerReport,
    ScheduleViolationError,
    Violation,
)

__all__ = [
    "DATAFLOW_RULES",
    "LINT_RULES",
    "LintViolation",
    "analyze_paths",
    "lint_paths",
    "SCHED_RULES",
    "SanitizerReport",
    "ScheduleViolationError",
    "TimelineSanitizer",
    "Violation",
    "sanitize_frame_report",
]
