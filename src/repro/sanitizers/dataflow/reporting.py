"""Lint output formats: text, stable JSON, and SARIF 2.1.0.

JSON output is a top-level list sorted by (path, line, rule) so
baselines and CI artifacts diff cleanly across runs.  SARIF is the
minimal subset GitHub code scanning ingests: one run, one driver, rule
metadata from the rule tables, one result per finding.
"""

from __future__ import annotations

import json

from repro.sanitizers.lint import LintViolation


def sort_violations(violations: list[LintViolation]) -> list[LintViolation]:
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule, v.col))


def format_text(violations: list[LintViolation]) -> str:
    return "\n".join(str(v) for v in sort_violations(violations))


def format_json(violations: list[LintViolation]) -> str:
    payload = [
        {
            "rule": v.rule,
            "path": v.path,
            "line": v.line,
            "col": v.col,
            "message": v.message,
        }
        for v in sort_violations(violations)
    ]
    return json.dumps(payload, indent=1)


def format_sarif(
    violations: list[LintViolation], rules: dict[str, str]
) -> str:
    """SARIF 2.1.0 log with rule metadata and one result per finding."""
    results = [
        {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {
                            "startLine": max(1, v.line),
                            "startColumn": max(1, v.col),
                        },
                    }
                }
            ],
        }
        for v in sort_violations(violations)
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/sanitizers"
                        ),
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": desc},
                            }
                            for rule, desc in sorted(rules.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=1)
