"""Function-level control-flow graphs over Python AST.

The dataflow analyses (:mod:`repro.sanitizers.dataflow.engine`) need a
CFG that exposes *every* path a function can take — branch arms, loop
back-edges, ``for``/``while`` ``else`` clauses, and the exception edges
that a per-line AST lint structurally cannot see.  The graph is
statement-granular but block-structured: a :class:`BasicBlock` holds a
run of non-branching elements, and edges carry a kind so the
resource-safety rule can distinguish "function returned" from "function
unwound through an exception".

Blocks hold *elements* rather than raw statements because branch tests
and loop bindings are expressions, not statements: an ``if x < y`` test
becomes a :class:`TestElem`, a ``for row in rows`` binding an
:class:`IterElem`, so transfer functions see them in execution order.

Exception routing: every ``try`` pushes its landing pad (handler
dispatch, else its ``finally`` entry, else the enclosing pad) onto a
stack; ``raise`` and implicitly-raising statements edge to the innermost
pad, which chains outward naturally.  ``return``/``break``/``continue``
detour through every active ``finally`` body innermost-first, so no path
— normal or exceptional — skips a ``finally``.  Unmatched handlers and
escaping exceptions leave through the finally too.  The construction
over-approximates paths (some joined continuations are shared), which is
sound for the may-analyses built on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Edge kinds. ``except`` edges mark exceptional control flow; the
#: solver propagates the *join* of a block's entry and exit states along
#: them (the exception may fire before any statement of the block ran).
#: ``reraise`` marks a finally block re-raising after running to
#: completion: exceptional control flow, but the block's *exit* state
#: applies (unlike ``except``, which may fire mid-block).
EDGE_KINDS = frozenset(
    {
        "normal",
        "true",
        "false",
        "loop",
        "else",
        "except",
        "finally",
        "back",
        "reraise",
    }
)


@dataclass(frozen=True)
class TestElem:
    """A branch/loop condition evaluated for its value."""

    __test__ = False  # not a pytest class, despite the name

    expr: ast.expr
    node: ast.stmt  # owning statement (for line numbers)


@dataclass(frozen=True)
class IterElem:
    """A ``for target in iterable`` binding (one abstract iteration)."""

    target: ast.expr
    iterable: ast.expr
    node: ast.stmt


@dataclass(frozen=True)
class WithElem:
    """One ``with ctx [as name]`` item entering scope."""

    context: ast.expr
    target: ast.expr | None
    node: ast.stmt


@dataclass(frozen=True)
class ExceptElem:
    """An ``except Type as name`` binding at handler entry."""

    type: ast.expr | None
    name: str | None
    node: ast.stmt


#: Anything a block can hold.
Element = ast.stmt | TestElem | IterElem | WithElem | ExceptElem


@dataclass
class BasicBlock:
    bid: int
    elems: list[Element] = field(default_factory=list)


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: str


@dataclass
class CFG:
    """Control-flow graph of one function (or a module body)."""

    name: str
    blocks: dict[int, BasicBlock]
    edges: list[Edge]
    entry: int
    exit: int
    raise_exit: int

    def succs(self, bid: int) -> list[tuple[int, str]]:
        return [(e.dst, e.kind) for e in self.edges if e.src == bid]

    def preds(self, bid: int) -> list[tuple[int, str]]:
        return [(e.src, e.kind) for e in self.edges if e.dst == bid]


def _may_raise(stmt: ast.stmt) -> bool:
    """Conservative: could executing this statement raise?

    Any call, subscript, attribute access, binary op or assert can raise
    at runtime; only trivially safe statements (pass, simple name/const
    rebinding, defs) are exempt, which keeps except-edge counts sane
    without losing the paths REP103 cares about.
    """
    if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal)):
        return False
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    if isinstance(stmt, ast.Assert):
        return True
    for sub in ast.walk(stmt):
        if isinstance(
            sub, (ast.Call, ast.Subscript, ast.Attribute, ast.BinOp, ast.Await)
        ):
            return True
    return False


class _Builder:
    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: dict[int, BasicBlock] = {}
        self.edges: list[Edge] = []
        self._edge_set: set[tuple[int, int, str]] = set()
        self.entry = self._new().bid
        self.exit = self._new().bid
        self.raise_exit = self._new().bid
        # Innermost exception landing pad (handler dispatch / finally
        # entry / function raise-exit).
        self.exc_stack: list[int] = [self.raise_exit]
        # (continue_target, break_target) per enclosing loop.
        self.loop_stack: list[tuple[int, int]] = []
        # Active finally bodies, outermost first:
        # (finally_entry_bid, pending continuation targets).
        self.finally_stack: list[tuple[int, set[int]]] = []

    # ------------------------------------------------------------------

    def _new(self) -> BasicBlock:
        blk = BasicBlock(bid=len(self.blocks))
        self.blocks[blk.bid] = blk
        return blk

    def _edge(self, src: int, dst: int, kind: str = "normal") -> None:
        key = (src, dst, kind)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.edges.append(Edge(src=src, dst=dst, kind=kind))

    def _abrupt(self, cur: int, target: int, kind: str) -> None:
        """Route return/break/continue, detouring through active finallys.

        The jump enters the innermost finally; each finally's pending set
        chains to the next outer one, and the outermost records the true
        destination.
        """
        if not self.finally_stack:
            self._edge(cur, target, kind)
            return
        self._edge(cur, self.finally_stack[-1][0], "finally")
        for i in range(len(self.finally_stack) - 1, 0, -1):
            self.finally_stack[i][1].add(self.finally_stack[i - 1][0])
        self.finally_stack[0][1].add(target)

    # ------------------------------------------------------------------

    def build(self, body: list[ast.stmt]) -> CFG:
        first = self._new()
        self._edge(self.entry, first.bid)
        end = self._stmts(body, first.bid)
        if end is not None:
            self._edge(end, self.exit)
        return CFG(
            name=self.name,
            blocks=self.blocks,
            edges=self.edges,
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )

    def _stmts(self, stmts: list[ast.stmt], cur: int | None) -> int | None:
        """Build a statement list; returns the fall-through block or None."""
        for stmt in stmts:
            if cur is None:
                # Unreachable code after return/raise/break: park it in a
                # fresh predecessor-less block so it still gets built.
                cur = self._new().bid
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int) -> int | None:
        if isinstance(stmt, ast.Return):
            self.blocks[cur].elems.append(stmt)
            self._abrupt(cur, self.exit, "normal")
            return None
        if isinstance(stmt, ast.Raise):
            self.blocks[cur].elems.append(stmt)
            # exc_stack already chains through dispatches and finallys.
            self._edge(cur, self.exc_stack[-1], "except")
            return None
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self._abrupt(cur, self.loop_stack[-1][1], "normal")
            return None
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self._abrupt(cur, self.loop_stack[-1][0], "back")
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur)
        # Simple statement.
        self.blocks[cur].elems.append(stmt)
        if _may_raise(stmt):
            self._edge(cur, self.exc_stack[-1], "except")
        return cur

    # ------------------------------------------------------------------

    def _if(self, stmt: ast.If, cur: int) -> int:
        self.blocks[cur].elems.append(TestElem(expr=stmt.test, node=stmt))
        self._edge(cur, self.exc_stack[-1], "except")
        after = self._new().bid
        then = self._new().bid
        self._edge(cur, then, "true")
        then_end = self._stmts(stmt.body, then)
        if then_end is not None:
            self._edge(then_end, after)
        if stmt.orelse:
            els = self._new().bid
            self._edge(cur, els, "false")
            els_end = self._stmts(stmt.orelse, els)
            if els_end is not None:
                self._edge(els_end, after)
        else:
            self._edge(cur, after, "false")
        return after

    def _loop(
        self,
        head_elem: TestElem | IterElem,
        body_stmts: list[ast.stmt],
        orelse: list[ast.stmt],
        cur: int,
        body_kind: str,
    ) -> int:
        head = self._new().bid
        self._edge(cur, head)
        self.blocks[head].elems.append(head_elem)
        self._edge(head, self.exc_stack[-1], "except")
        after = self._new().bid
        body = self._new().bid
        self._edge(head, body, body_kind)
        self.loop_stack.append((head, after))
        body_end = self._stmts(body_stmts, body)
        self.loop_stack.pop()
        if body_end is not None:
            self._edge(body_end, head, "back")
        if orelse:
            # The else clause runs only on normal loop exhaustion; break
            # jumps straight to `after`, bypassing it.
            els = self._new().bid
            self._edge(head, els, "else")
            els_end = self._stmts(orelse, els)
            if els_end is not None:
                self._edge(els_end, after)
        else:
            self._edge(head, after, "false")
        return after

    def _while(self, stmt: ast.While, cur: int) -> int:
        return self._loop(
            TestElem(expr=stmt.test, node=stmt),
            stmt.body,
            stmt.orelse,
            cur,
            "true",
        )

    def _for(self, stmt: ast.For | ast.AsyncFor, cur: int) -> int:
        return self._loop(
            IterElem(target=stmt.target, iterable=stmt.iter, node=stmt),
            stmt.body,
            stmt.orelse,
            cur,
            "loop",
        )

    def _with(self, stmt: ast.With | ast.AsyncWith, cur: int) -> int | None:
        for item in stmt.items:
            self.blocks[cur].elems.append(
                WithElem(
                    context=item.context_expr,
                    target=item.optional_vars,
                    node=stmt,
                )
            )
        self._edge(cur, self.exc_stack[-1], "except")
        return self._stmts(stmt.body, cur)

    def _match(self, stmt: ast.Match, cur: int) -> int:
        self.blocks[cur].elems.append(TestElem(expr=stmt.subject, node=stmt))
        self._edge(cur, self.exc_stack[-1], "except")
        after = self._new().bid
        self._edge(cur, after, "false")  # no case may match
        for case in stmt.cases:
            arm = self._new().bid
            self._edge(cur, arm, "true")
            arm_end = self._stmts(case.body, arm)
            if arm_end is not None:
                self._edge(arm_end, after)
        return after

    def _try(self, stmt: ast.Try, cur: int) -> int:
        after = self._new().bid
        has_finally = bool(stmt.finalbody)
        outer_exc = self.exc_stack[-1]
        fin_entry = self._new().bid if has_finally else None
        dispatch = self._new().bid if stmt.handlers else None

        # Where exceptions in the try body land.
        if dispatch is not None:
            body_exc = dispatch
        elif fin_entry is not None:
            body_exc = fin_entry
        else:
            body_exc = outer_exc
        # Where exceptions in handlers / the else clause land.
        escape = fin_entry if fin_entry is not None else outer_exc

        pending: set[int] = set()
        if has_finally:
            assert fin_entry is not None
            self.finally_stack.append((fin_entry, pending))
            # An escaping exception runs the finally and then unwinds.
            pending.add(outer_exc)

        # --- try body --------------------------------------------------
        body = self._new().bid
        self._edge(cur, body)
        self.exc_stack.append(body_exc)
        body_end = self._stmts(stmt.body, body)
        self.exc_stack.pop()

        self.exc_stack.append(escape)
        # The else clause runs on normal completion; its exceptions are
        # NOT caught by this try's handlers.
        if body_end is not None and stmt.orelse:
            body_end = self._stmts(stmt.orelse, body_end)
        if body_end is not None:
            if has_finally:
                assert fin_entry is not None
                self._edge(body_end, fin_entry, "finally")
                pending.add(after)
            else:
                self._edge(body_end, after)

        # --- handlers --------------------------------------------------
        if dispatch is not None:
            for handler in stmt.handlers:
                hblock = self._new().bid
                self._edge(dispatch, hblock, "except")
                self.blocks[hblock].elems.append(
                    ExceptElem(
                        type=handler.type, name=handler.name, node=handler
                    )
                )
                h_end = self._stmts(handler.body, hblock)
                if h_end is not None:
                    if has_finally:
                        assert fin_entry is not None
                        self._edge(h_end, fin_entry, "finally")
                        pending.add(after)
                    else:
                        self._edge(h_end, after)
            # No handler matched: the exception escapes.
            self._edge(
                dispatch, escape, "finally" if has_finally else "except"
            )
        self.exc_stack.pop()

        # --- finally ---------------------------------------------------
        if has_finally:
            assert fin_entry is not None
            self.finally_stack.pop()
            fin_end = self._stmts(stmt.finalbody, fin_entry)
            if fin_end is not None:
                pending.add(after)
                for target in sorted(pending):
                    kind = (
                        "reraise"
                        if target in (self.raise_exit, outer_exc)
                        and target != after
                        else "normal"
                    )
                    self._edge(fin_end, target, kind)
        return after


def build_cfg(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str | None = None
) -> CFG:
    """CFG of one function body."""
    return _Builder(qualname or fn.name).build(fn.body)


def build_module_cfg(tree: ast.Module, name: str = "<module>") -> CFG:
    """CFG of a module's top-level statements."""
    return _Builder(name).build(tree.body)
