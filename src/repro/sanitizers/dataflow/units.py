"""REP101 — unit/dimension inference over rates, times, rows and bytes.

The simulator mixes four families of quantities: simulated seconds
(``*_s``/``*_us``, τ windows, durations), MB rows (distribution vectors,
``mb_rows``), bytes (buffer sizes, ``nbytes``) and their rates (``bw``
bytes/s, characterization Ks in s/row, fps in 1/s).  Mixing them
incorrectly — ``seconds + rows``, ``rows / seconds`` stored into a
bytes-typed field — type-checks fine and produces silently wrong
distributions, so this rule infers dimensions and flags the mixes.

Dimensions are abstract: TIME, ROW and BYTE exponents (frames and MBs
are treated as dimensionless counts; scale prefixes like µs vs s are one
dimension — scale bugs are out of scope).  A value's unit comes from,
in order: the dataflow environment, the inter-procedural summary table
(seeded from the signatures in ``hw/rates.py``, ``hw/interconnect.py``,
``hw/calibration.py`` and ``core/perf_model.py``, then extended by
per-module summaries), and naming conventions.  Unknown units are
silent — only a *known-vs-known* disagreement between non-dimensionless
units is a finding, which keeps the rule quiet on untyped code.
"""

from __future__ import annotations

import ast
import re

from repro.sanitizers.dataflow.cfg import (
    Element,
    ExceptElem,
    IterElem,
    TestElem,
    WithElem,
)
from repro.sanitizers.dataflow.engine import Emitter, FunctionContext

# ---------------------------------------------------------------------------
# Unit representation: mapping dimension -> exponent, canonicalized to a
# sorted tuple so units are hashable and comparable.  None = unknown (top).

Unit = tuple[tuple[str, int], ...]

DIMENSIONLESS: Unit = ()
TIME: Unit = (("time", 1),)
ROW: Unit = (("row", 1),)
BYTE: Unit = (("byte", 1),)


def _make(dims: dict[str, int]) -> Unit:
    return tuple(sorted((d, e) for d, e in dims.items() if e != 0))


def u_mul(a: Unit | None, b: Unit | None, sign: int = 1) -> Unit | None:
    if a is None or b is None:
        return None
    dims = dict(a)
    for d, e in b:
        dims[d] = dims.get(d, 0) + sign * e
    return _make(dims)


def u_div(a: Unit | None, b: Unit | None) -> Unit | None:
    return u_mul(a, b, sign=-1)


def u_pow(a: Unit | None, n: int) -> Unit | None:
    if a is None:
        return None
    return _make({d: e * n for d, e in a})


def u_inv(a: Unit | None) -> Unit | None:
    return u_pow(a, -1)


def unit_str(u: Unit | None) -> str:
    """Human-readable unit, e.g. ``s/row`` or ``bytes/s``."""
    if u is None:
        return "?"
    if u == DIMENSIONLESS:
        return "1"
    names = {"time": "s", "row": "rows", "byte": "bytes"}
    num = [names[d] for d, e in u if e > 0 for _ in range(e)]
    den = [names[d] for d, e in u if e < 0 for _ in range(-e)]
    top = "·".join(num) if num else "1"
    return f"{top}/{'·'.join(den)}" if den else top


def parse_unit(text: str) -> Unit | None:
    """Inverse of :func:`unit_str` (for the summary cache)."""
    if text == "?":
        return None
    if text == "1":
        return DIMENSIONLESS
    names = {"s": "time", "rows": "row", "bytes": "byte"}
    dims: dict[str, int] = {}
    num, _, den = text.partition("/")
    for part, sign in ((num, 1), (den, -1)):
        if not part or part == "1":
            continue
        for tok in part.split("·"):
            if tok not in names:
                return None
            dims[names[tok]] = dims.get(names[tok], 0) + sign
    return _make(dims)


# ---------------------------------------------------------------------------
# Naming conventions. Order matters: the first matching pattern wins, so
# the more specific per-row forms come before the bare suffixes.

_CONVENTIONS: list[tuple[re.Pattern[str], Unit]] = [
    # seconds per MB row (the characterization's K constants)
    (re.compile(r"(^|_)(row_u?s|row_ms|row_ns)$"), u_div(TIME, ROW)),  # type: ignore[list-item]
    (re.compile(r"^(u?s|ms)_per_row$"), u_div(TIME, ROW)),  # type: ignore[list-item]
    (re.compile(r"^k_"), u_div(TIME, ROW)),  # type: ignore[list-item]
    # bytes per MB row (buffer geometry)
    (re.compile(r"(^|_)bytes_per_row$"), u_div(BYTE, ROW)),  # type: ignore[list-item]
    # plain seconds
    (re.compile(r"(?<=.)_(s|u?secs?|seconds|u?s|ms|ns)$"), TIME),
    (re.compile(r"^(seconds|secs|duration|latency)$"), TIME),
    (re.compile(r"^tau"), TIME),
    # MB rows
    (re.compile(r"(?<=.)_rows$"), ROW),
    (re.compile(r"^(rows|mb_rows|n_rows|nrows)$"), ROW),
    # bytes
    (re.compile(r"(?<=.)_bytes$"), BYTE),
    (re.compile(r"^(n?bytes|size_bytes)$"), BYTE),
    # inverse bandwidth (seconds per byte) — before the _bw suffix rule
    (re.compile(r"(^|_)inv_bw$"), u_div(TIME, BYTE)),  # type: ignore[list-item]
    # bandwidths (bytes per second)
    (re.compile(r"(?<=.)_(gbps|mbps|bps)$"), u_div(BYTE, TIME)),  # type: ignore[list-item]
    (re.compile(r"^(bw|bandwidth)$|(?<=.)_(bw|bandwidth)$"), u_div(BYTE, TIME)),  # type: ignore[list-item]
    # frame rates: frames are dimensionless counts, so fps is 1/s
    (re.compile(r"^fps$|(?<=.)_fps$|^fps_"), u_inv(TIME)),  # type: ignore[list-item]
]


def convention_unit(name: str) -> Unit | None:
    """Unit implied by an identifier's naming convention, if any."""
    for pattern, unit in _CONVENTIONS:
        if pattern.search(name):
            return unit
    return None


# ---------------------------------------------------------------------------
# Builtin signature seeds: the REP101 ground truth from the simulator's
# core measurement API (paper §III.C), keyed by unqualified callable /
# attribute name.  Per-module summaries extend this table.

BUILTIN_SIGNATURES: dict[str, Unit] = {
    # hw/rates.py — ModuleRates
    "me_row_s": u_div(TIME, ROW),  # type: ignore[dict-item]
    "int_row_s": u_div(TIME, ROW),  # type: ignore[dict-item]
    "sme_row_s": u_div(TIME, ROW),  # type: ignore[dict-item]
    "rstar_row_s": u_div(TIME, ROW),  # type: ignore[dict-item]
    "rstar_frame_s": TIME,
    # hw/interconnect.py — LinkSpec / BufferSizes
    "transfer_s": TIME,
    "cf_row": u_div(BYTE, ROW),  # type: ignore[dict-item]
    "cf_row_full": u_div(BYTE, ROW),  # type: ignore[dict-item]
    "rf_row": u_div(BYTE, ROW),  # type: ignore[dict-item]
    "sf_row": u_div(BYTE, ROW),  # type: ignore[dict-item]
    "mv_row": u_div(BYTE, ROW),  # type: ignore[dict-item]
    "rf_frame": BYTE,
    # core/perf_model.py — PerformanceCharacterization
    "k_compute": u_div(TIME, ROW),  # type: ignore[dict-item]
    "k_transfer": u_div(TIME, ROW),  # type: ignore[dict-item]
    "bandwidth": u_div(BYTE, TIME),  # type: ignore[dict-item]
    "buffer_row_bytes": u_div(BYTE, ROW),  # type: ignore[dict-item]
    # hw/timeline.py / hw/des.py observables
    "busy_time": TIME,
    "duration": TIME,
    "makespan": TIME,
}

#: Builtins whose result carries the unit of their (first) argument.
_PASSTHROUGH_CALLS = frozenset(
    {"abs", "float", "round", "int", "sum", "min", "max", "sorted"}
)

#: Builtins whose result is dimensionless regardless of argument units.
_DIMENSIONLESS_CALLS = frozenset({"len", "bool", "enumerate", "range", "id"})


def _lookup(name: str, env: dict[str, Unit | None]) -> Unit | None:
    if name in env:
        return env[name]
    return convention_unit(name)


class UnitAnalysis:
    """REP101 dataflow rule (see module docstring)."""

    rule = "REP101"

    # -- lattice --------------------------------------------------------

    def initial_state(self, ctx: FunctionContext) -> dict[str, Unit | None]:
        env: dict[str, Unit | None] = {}
        fn = ctx.fn
        if fn is not None:
            args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
                fn.args.kwonlyargs
            )
            for a in args:
                unit = convention_unit(a.arg)
                if unit is not None:
                    env[a.arg] = unit
        return env

    def join(
        self, a: dict[str, Unit | None], b: dict[str, Unit | None]
    ) -> dict[str, Unit | None]:
        if a == b:
            return a
        out: dict[str, Unit | None] = {}
        for k in a.keys() | b.keys():
            ua = a.get(k, _MISSING)
            ub = b.get(k, _MISSING)
            if ua is _MISSING:
                out[k] = ub  # type: ignore[assignment]
            elif ub is _MISSING:
                out[k] = ua  # type: ignore[assignment]
            else:
                out[k] = ua if ua == ub else None  # disagree -> unknown
        return out

    # -- transfer -------------------------------------------------------

    def transfer(
        self,
        elem: Element,
        state: dict[str, Unit | None],
        emit: Emitter,
        ctx: FunctionContext,
    ) -> dict[str, Unit | None]:
        env = dict(state)
        if isinstance(elem, TestElem):
            self._infer(elem.expr, env, emit, ctx)
        elif isinstance(elem, IterElem):
            unit = self._infer(elem.iterable, env, emit, ctx)
            # Iterating a homogeneous collection yields elements of the
            # same dimension (rows of a rows-vector are still rows).
            self._bind(elem.target, unit, env)
        elif isinstance(elem, WithElem):
            unit = self._infer(elem.context, env, emit, ctx)
            if elem.target is not None:
                self._bind(elem.target, unit, env)
        elif isinstance(elem, ExceptElem):
            if elem.name:
                env[elem.name] = None
        elif isinstance(elem, ast.Assign):
            unit = self._infer(elem.value, env, emit, ctx)
            for target in elem.targets:
                self._assign(target, unit, elem, env, emit, ctx)
        elif isinstance(elem, ast.AnnAssign):
            if elem.value is not None:
                unit = self._infer(elem.value, env, emit, ctx)
                self._assign(elem.target, unit, elem, env, emit, ctx)
        elif isinstance(elem, ast.AugAssign):
            cur = self._target_unit(elem.target, env)
            rhs = self._infer(elem.value, env, emit, ctx)
            if isinstance(elem.op, (ast.Add, ast.Sub)):
                res = self._combine_add(cur, rhs, elem, emit)
            elif isinstance(elem.op, ast.Mult):
                res = u_mul(cur, rhs)
            elif isinstance(elem.op, (ast.Div, ast.FloorDiv)):
                res = u_div(cur, rhs)
            else:
                res = None
            self._bind(elem.target, res, env)
        elif isinstance(elem, ast.Return):
            if elem.value is not None:
                unit = self._infer(elem.value, env, emit, ctx)
                declared = None
                if ctx.fn is not None:
                    # The summary table (builtin signatures first) beats
                    # the naming convention for the declared return unit.
                    sig = ctx.summaries.get(ctx.fn.name)
                    declared = parse_unit(sig) if sig is not None else None
                    if declared is None and sig is None:
                        declared = convention_unit(ctx.fn.name)
                self._check_mismatch(
                    declared,
                    unit,
                    elem,
                    emit,
                    f"returns {unit_str(unit)} from a function named for "
                    f"{unit_str(declared)}",
                )
        elif isinstance(elem, ast.stmt):
            for sub in ast.walk(elem):
                if isinstance(sub, ast.expr):
                    self._infer(sub, env, emit, ctx)
                    break  # _infer recurses; only evaluate top-level exprs
        return env

    def at_exit(
        self,
        state: dict[str, Unit | None],
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        return

    # -- helpers --------------------------------------------------------

    def _bind(
        self, target: ast.expr, unit: Unit | None, env: dict[str, Unit | None]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, env)

    def _target_unit(
        self, target: ast.expr, env: dict[str, Unit | None]
    ) -> Unit | None:
        """Declared/known unit of an assignment target, if any."""
        if isinstance(target, ast.Name):
            return _lookup(target.id, env)
        if isinstance(target, ast.Attribute):
            return convention_unit(target.attr)
        if isinstance(target, ast.Subscript):
            # A store into e.g. ``k_sf[name]`` inherits the collection's
            # element convention.
            return self._target_unit(target.value, env)
        return None

    def _assign(
        self,
        target: ast.expr,
        unit: Unit | None,
        node: ast.stmt,
        env: dict[str, Unit | None],
        emit: Emitter,
        ctx: FunctionContext,
    ) -> None:
        declared = self._target_unit(target, env)
        if isinstance(target, ast.Name) and target.id in env:
            declared = convention_unit(target.id)  # re-binding: convention only
        self._check_mismatch(
            declared,
            unit,
            node,
            emit,
            f"assigns {unit_str(unit)} into a target typed/named "
            f"{unit_str(declared)}",
        )
        if isinstance(target, ast.Name):
            # Trust the declaration when it exists (stops cascades).
            env[target.id] = declared if declared is not None else unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, env)

    def _check_mismatch(
        self,
        a: Unit | None,
        b: Unit | None,
        node: ast.AST,
        emit: Emitter,
        detail: str,
    ) -> None:
        if (
            a is not None
            and b is not None
            and a != b
            and a != DIMENSIONLESS
            and b != DIMENSIONLESS
        ):
            emit.emit(node, f"unit mismatch: {detail}")

    def _combine_add(
        self,
        a: Unit | None,
        b: Unit | None,
        node: ast.AST,
        emit: Emitter,
    ) -> Unit | None:
        """Addition/subtraction/comparison: units must agree."""
        if a is None:
            return b
        if b is None:
            return a
        if a == DIMENSIONLESS:
            return b
        if b == DIMENSIONLESS:
            return a
        if a != b:
            emit.emit(
                node,
                f"unit mismatch: {unit_str(a)} combined with {unit_str(b)} "
                "in +/-/comparison",
            )
            return None
        return a

    # -- expression inference ------------------------------------------

    def _infer(
        self,
        expr: ast.expr,
        env: dict[str, Unit | None],
        emit: Emitter,
        ctx: FunctionContext,
    ) -> Unit | None:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)
            ):
                return None
            return DIMENSIONLESS
        if isinstance(expr, ast.Name):
            return _lookup(expr.id, env)
        if isinstance(expr, ast.Attribute):
            self._infer(expr.value, env, emit, ctx)
            dotted = _dotted(expr)
            if dotted is not None and dotted in env:
                return env[dotted]
            sig = ctx.summaries.get(expr.attr)
            if sig is not None:
                parsed = parse_unit(sig)
                if parsed is not None:
                    return parsed
            return convention_unit(expr.attr)
        if isinstance(expr, ast.Subscript):
            # Element of a homogeneous collection keeps its unit.
            base = self._infer(expr.value, env, emit, ctx)
            self._infer(expr.slice, env, emit, ctx)
            return base
        if isinstance(expr, ast.UnaryOp):
            return self._infer(expr.operand, env, emit, ctx)
        if isinstance(expr, ast.BinOp):
            left = self._infer(expr.left, env, emit, ctx)
            right = self._infer(expr.right, env, emit, ctx)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                return self._combine_add(left, right, expr, emit)
            if isinstance(expr.op, ast.Mult):
                return u_mul(left, right)
            if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
                return u_div(left, right)
            if isinstance(expr.op, ast.Mod):
                return left
            if isinstance(expr.op, ast.Pow):
                if (
                    isinstance(expr.right, ast.Constant)
                    and isinstance(expr.right.value, int)
                ):
                    return u_pow(left, expr.right.value)
                return None
            return None
        if isinstance(expr, ast.Compare):
            left = self._infer(expr.left, env, emit, ctx)
            for op, comparator in zip(expr.ops, expr.comparators, strict=True):
                right = self._infer(comparator, env, emit, ctx)
                if isinstance(
                    op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
                ):
                    self._combine_add(left, right, expr, emit)
                left = right
            return DIMENSIONLESS
        if isinstance(expr, ast.BoolOp):
            units = [self._infer(v, env, emit, ctx) for v in expr.values]
            known = [u for u in units if u is not None]
            return known[0] if len(set(known)) == 1 and known else None
        if isinstance(expr, ast.IfExp):
            self._infer(expr.test, env, emit, ctx)
            a = self._infer(expr.body, env, emit, ctx)
            b = self._infer(expr.orelse, env, emit, ctx)
            return a if a == b else None
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, env, emit, ctx)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            units = [self._infer(e, env, emit, ctx) for e in expr.elts]
            known = {u for u in units if u is not None}
            return known.pop() if len(known) == 1 else None
        if isinstance(expr, ast.Dict):
            for k in expr.keys:
                if k is not None:
                    self._infer(k, env, emit, ctx)
            units = [self._infer(v, env, emit, ctx) for v in expr.values]
            known = {u for u in units if u is not None}
            return known.pop() if len(known) == 1 else None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            inner = dict(env)
            for gen in expr.generators:
                it = self._infer(gen.iter, inner, emit, ctx)
                self._bind(gen.target, it, inner)
            return self._infer(expr.elt, inner, emit, ctx)
        if isinstance(expr, ast.DictComp):
            inner = dict(env)
            for gen in expr.generators:
                it = self._infer(gen.iter, inner, emit, ctx)
                self._bind(gen.target, it, inner)
            self._infer(expr.key, inner, emit, ctx)
            return self._infer(expr.value, inner, emit, ctx)
        if isinstance(expr, ast.Starred):
            return self._infer(expr.value, env, emit, ctx)
        if isinstance(expr, (ast.Lambda, ast.Await, ast.NamedExpr)):
            if isinstance(expr, ast.NamedExpr):
                unit = self._infer(expr.value, env, emit, ctx)
                self._bind(expr.target, unit, env)
                return unit
            if isinstance(expr, ast.Await):
                return self._infer(expr.value, env, emit, ctx)
            return None
        return None

    def _infer_call(
        self,
        call: ast.Call,
        env: dict[str, Unit | None],
        emit: Emitter,
        ctx: FunctionContext,
    ) -> Unit | None:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            self._infer(func.value, env, emit, ctx)
            name = func.attr

        arg_units = [self._infer(a, env, emit, ctx) for a in call.args]
        for kw in call.keywords:
            kw_unit = self._infer(kw.value, env, emit, ctx)
            if kw.arg is not None:
                declared = convention_unit(kw.arg)
                self._check_mismatch(
                    declared,
                    kw_unit,
                    kw.value,
                    emit,
                    f"passes {unit_str(kw_unit)} as keyword "
                    f"{kw.arg!r} ({unit_str(declared)})",
                )

        if name is None:
            return None
        if name in _DIMENSIONLESS_CALLS:
            return DIMENSIONLESS
        if name in _PASSTHROUGH_CALLS:
            known = {u for u in arg_units if u not in (None, DIMENSIONLESS)}
            if len(known) > 1 and name in ("min", "max"):
                emit.emit(
                    call,
                    "unit mismatch: "
                    + " vs ".join(sorted(unit_str(u) for u in known))
                    + f" mixed in {name}()",
                )
                return None
            return known.pop() if len(known) == 1 else (
                DIMENSIONLESS
                if arg_units and all(u == DIMENSIONLESS for u in arg_units)
                else None
            )
        sig = ctx.summaries.get(name)
        if sig is not None:
            parsed = parse_unit(sig)
            if parsed is not None:
                return parsed
        return convention_unit(name)


_MISSING = object()


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
