"""REP103 — engine/slot acquire must be released on every CFG path.

The DES models engines and copy slots as exclusive resources; a
schedule that acquires one and returns (or unwinds through an
exception) without releasing it deadlocks every later op on that
engine.  This is a may-hold analysis: an acquire-style call adds a held
token keyed by its receiver, a release-style call on the same receiver
clears it, and any token still held at the function's normal or
exceptional exit is a finding.  ``with``-statement acquisition is
exempt — the context manager's ``__exit__`` is the release.

Pairing is name-based (``acquire``/``release``, ``reserve``/``free``,
…) and receiver-based (``eng.acquire()`` is cleared by
``eng.release()``, not by releasing some other engine), which is
exactly the granularity the DES resource API exposes.

OS-level resources are tracked the same way: constructing a
``SharedMemory`` segment bound to a single name
(``seg = SharedMemory(...)``) acquires a token on that name, and
``seg.close()`` / ``seg.unlink()`` release it.  Ownership may *escape*
instead of being released in-function: returning the held name, or
assigning exactly the held name to something else
(``self._segments[k] = seg``), transfers responsibility to the new
owner and drops the token — the container's own ``close()`` is then
the audited release site.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace

from repro.sanitizers.dataflow.cfg import Element, WithElem
from repro.sanitizers.dataflow.engine import Emitter, FunctionContext

#: (key, line, col) of an acquisition that may still be held.
Token = tuple[str, int, int]
State = frozenset[Token]

ACQUIRE_NAMES = frozenset(
    {
        "acquire",
        "acquire_engine",
        "acquire_slot",
        "reserve",
        "reserve_slot",
        "reserve_engine",
        "claim",
        "claim_engine",
        "claim_slot",
        "lock_engine",
    }
)

RELEASE_NAMES = frozenset(
    {
        "release",
        "release_engine",
        "release_slot",
        "free",
        "free_slot",
        "free_engine",
        "unreserve",
        "unclaim",
        "unlock_engine",
        "close",
        "unlink",
    }
)

#: Constructors whose bare call acquires an OS resource: a single-name
#: assignment ``x = Ctor(...)`` holds a token on ``x`` until a release
#: call on ``x`` or an ownership escape (return / re-assignment of ``x``).
CONSTRUCTOR_ACQUIRES = frozenset({"SharedMemory"})


def _callable_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_key(call: ast.Call) -> str | None:
    """Stable key for the resource a call acquires/releases."""
    func = call.func
    if isinstance(func, ast.Name):
        return f"<{func.id}>"
    if isinstance(func, ast.Attribute):
        parts: list[str] = []
        node: ast.expr = func.value
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return "<expr>"
    return None


class ResourceAnalysis:
    """REP103 dataflow rule (see module docstring)."""

    rule = "REP103"

    def initial_state(self, ctx: FunctionContext) -> State:
        return frozenset()

    def join(self, a: State, b: State) -> State:
        return a | b

    def transfer(
        self, elem: Element, state: State, emit: Emitter, ctx: FunctionContext
    ) -> State:
        if isinstance(elem, WithElem):
            # `with dev.acquire_engine(...):` releases via __exit__.
            return state
        held = set(state)
        exprs: list[ast.expr] = []
        if isinstance(elem, ast.stmt):
            for sub in ast.iter_child_nodes(elem):
                if isinstance(sub, ast.expr):
                    exprs.append(sub)
        elif not isinstance(elem, WithElem):
            expr = getattr(elem, "expr", None) or getattr(
                elem, "iterable", None
            )
            if expr is not None:
                exprs.append(expr)
        for expr in exprs:
            for sub in ast.walk(expr):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else None
                )
                if name in ACQUIRE_NAMES:
                    key = _receiver_key(sub)
                    if key is not None:
                        held.add(
                            (key, sub.lineno, sub.col_offset + 1)
                        )
                elif name in RELEASE_NAMES:
                    key = _receiver_key(sub)
                    if key is not None:
                        held = {t for t in held if t[0] != key}
        held = self._statement_ownership(elem, held)
        return frozenset(held)

    @staticmethod
    def _statement_ownership(elem: Element, held: set[Token]) -> set[Token]:
        """Constructor acquisition and ownership escape (see module doc)."""
        # Constructor tokens are keyed by the bound *variable* name, the
        # same key `_receiver_key` yields for `seg.close()`/`seg.unlink()`.
        if isinstance(elem, ast.Return):
            if isinstance(elem.value, ast.Name):
                key = elem.value.id
                return {t for t in held if t[0] != key}
            return held
        if not isinstance(elem, (ast.Assign, ast.AnnAssign)):
            return held
        value = elem.value
        targets = elem.targets if isinstance(elem, ast.Assign) else [elem.target]
        if isinstance(value, ast.Name):
            # `owner[...] = seg` / `other = seg`: ownership moves to the
            # new binding; the original token is no longer this
            # function's responsibility.
            key = value.id
            return {t for t in held if t[0] != key}
        if (
            isinstance(value, ast.Call)
            and _callable_name(value) in CONSTRUCTOR_ACQUIRES
            and len(targets) == 1
            and isinstance(targets[0], ast.Name)
        ):
            held = set(held)
            held.add(
                (targets[0].id, value.lineno, value.col_offset + 1)
            )
        return held

    def exc_transfer(
        self, elem: Element, before: State, after: State
    ) -> State:
        """Exception-edge contribution of one element.

        A release is assumed to take effect even when the releasing
        statement raises (the release call itself is the last thing the
        statement does); an acquire that raises did NOT acquire. So a
        release-only element contributes its post-state, everything
        else its pre-state.
        """
        if after < before:  # strictly fewer tokens: pure release
            return after
        return before

    def at_exit(
        self,
        state: State,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        how = "an exception path" if exceptional else "a return path"
        for key, line, col in sorted(state):
            emit.emit(
                SimpleNamespace(lineno=line, col_offset=col - 1),
                f"resource {key!r} acquired here may not be released on "
                f"{how} (add try/finally or use a with-statement)",
            )
