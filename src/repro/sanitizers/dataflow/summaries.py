"""Inter-procedural unit summaries with an on-disk cache.

REP101 resolves calls it cannot see into by *summary*: a per-module map
from function/method name to the unit of its return value.  Summaries
are inferred bottom-up one level deep — parameter units come from
naming conventions, calls inside the summarized body resolve against
the builtin signature table only — which is enough to type the
measurement API (``k_compute`` → s/row, ``transfer_s`` → s, …) without
a whole-program fixpoint.

The store persists as JSON keyed by source SHA-256 so CI can cache it:
an unchanged module's summary is reused without re-parsing, a changed
one is re-inferred.  Name collisions across modules with *different*
units are dropped to unknown — a wrong summary is worse than none.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from repro.sanitizers.dataflow.engine import Emitter, FunctionContext
from repro.sanitizers.dataflow.units import (
    BUILTIN_SIGNATURES,
    UnitAnalysis,
    convention_unit,
    unit_str,
)

CACHE_VERSION = 1


def _source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _infer_return_unit(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    base: dict[str, str],
) -> str | None:
    """Unit of a function's return value, if consistently inferable."""
    if fn.name in base:
        # Builtin signatures are ground truth; don't let a naming
        # convention re-derive (and contradict) them.
        return base[fn.name]
    named = convention_unit(fn.name)
    if named is not None:
        return unit_str(named)
    analysis = UnitAnalysis()
    ctx = FunctionContext(
        fn=fn, qualname=fn.name, module_path="<summary>", summaries=base
    )
    env = analysis.initial_state(ctx)
    sink = Emitter(rule="REP101", display="<summary>")  # findings discarded
    units = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            units.add(analysis._infer(node.value, env, sink, ctx))
    units.discard(None)
    if len(units) == 1:
        unit = units.pop()
        if unit:  # dimensionless summaries add nothing
            return unit_str(unit)
    return None


def summarize_module(tree: ast.Module) -> dict[str, str]:
    """name -> unit repr for every consistently-typed function/method."""
    base = {name: unit_str(u) for name, u in BUILTIN_SIGNATURES.items()}
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            unit = _infer_return_unit(node, base)
            if unit is not None:
                out[node.name] = unit
    return out


class SummaryStore:
    """Per-module summaries with an optional JSON cache file."""

    def __init__(self, cache_path: Path | None = None) -> None:
        self.cache_path = cache_path
        self._by_module: dict[str, dict[str, str]] = {}
        self._shas: dict[str, str] = {}
        self._cache: dict[str, dict[str, object]] = {}
        if cache_path is not None and cache_path.exists():
            try:
                raw = json.loads(cache_path.read_text(encoding="utf-8"))
                if raw.get("version") == CACHE_VERSION:
                    self._cache = raw.get("modules", {})
            except (OSError, ValueError):
                self._cache = {}

    def add_module(self, display: str, source: str) -> None:
        """Summarize one module, reusing the cache when the sha matches."""
        sha = _source_sha(source)
        cached = self._cache.get(display)
        if cached is not None and cached.get("sha") == sha:
            functions = cached.get("functions")
            if isinstance(functions, dict):
                self._by_module[display] = {
                    str(k): str(v) for k, v in functions.items()
                }
                self._shas[display] = sha
                return
        try:
            tree = ast.parse(source)
        except SyntaxError:
            self._by_module[display] = {}
            self._shas[display] = sha
            return
        self._by_module[display] = summarize_module(tree)
        self._shas[display] = sha

    def merged(self) -> dict[str, str]:
        """Global name -> unit table: builtins + all modules, conflicts out."""
        builtins = {name: unit_str(u) for name, u in BUILTIN_SIGNATURES.items()}
        merged = dict(builtins)
        conflicted: set[str] = set()
        for display in sorted(self._by_module):
            for name, unit in self._by_module[display].items():
                if name in conflicted or name in builtins:
                    continue  # builtin signatures always win
                prior = merged.get(name)
                if prior is None:
                    merged[name] = unit
                elif prior != unit:
                    # Same name, different units across modules: a wrong
                    # summary is worse than none.
                    conflicted.add(name)
                    del merged[name]
        return merged

    def save(self) -> None:
        if self.cache_path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "modules": {
                display: {
                    "sha": self._shas[display],
                    "functions": dict(
                        sorted(self._by_module[display].items())
                    ),
                }
                for display in sorted(self._by_module)
            },
        }
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        self.cache_path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
