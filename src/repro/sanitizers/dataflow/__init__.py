"""Dataflow lint: CFG + abstract interpretation behind ``repro lint``.

This package is lint layer 3 (see DESIGN.md): function-level CFGs
(:mod:`cfg`), a worklist fixpoint solver (:mod:`engine`), and four
rules that need flow information a per-line AST walk cannot provide:

REP101
    Unit/dimension mismatch on rates, bandwidths, times, rows and
    bytes (:mod:`units`), seeded from the measurement-API signatures.
REP102
    Unordered ``set`` iteration exposed to order-sensitive consumers —
    DES event insertion, heap tie-breaks, LP candidate ordering
    (:mod:`determinism`).
REP103
    Engine/slot acquire without a release on every CFG path, including
    exception edges (:mod:`resources`).
REP104
    Measurement-path purity: characterization code must not mutate
    framework or device state (:mod:`purity`).

Each rule runs only where it is meaningful (``RULE_SCOPES``); pass
``select`` to force rules onto any file (the crash-free property test
does).  ``# noqa: REPxxx`` suppression and the findings baseline are
shared with the per-line lint.
"""

from __future__ import annotations

import ast
import re
import time
from pathlib import Path

from repro.sanitizers.dataflow.cfg import build_cfg, build_module_cfg
from repro.sanitizers.dataflow.determinism import DeterminismAnalysis
from repro.sanitizers.dataflow.engine import (
    AnalyzerError,
    Emitter,
    FunctionAnalysis,
    FunctionContext,
    iter_functions,
    run_analysis,
)
from repro.sanitizers.dataflow.purity import PurityAnalysis
from repro.sanitizers.dataflow.resources import ResourceAnalysis
from repro.sanitizers.dataflow.summaries import SummaryStore
from repro.sanitizers.dataflow.units import (
    BUILTIN_SIGNATURES,
    UnitAnalysis,
    unit_str,
)
from repro.sanitizers.lint import LintViolation, _noqa_codes, iter_python_files

DATAFLOW_RULES: dict[str, str] = {
    "REP101": "unit mismatch in rate/bandwidth/time/row/byte arithmetic",
    "REP102": "unordered set iteration leaks into event/candidate ordering",
    "REP103": "engine/slot acquired but not released on every path",
    "REP104": "measurement path mutates framework/device state",
}

#: Where each rule is meaningful. Paths are matched posix-style.
RULE_SCOPES: dict[str, re.Pattern[str]] = {
    "REP101": re.compile(r"repro/(hw|core)/"),
    "REP102": re.compile(r"repro/(hw|core|service)/"),
    "REP103": re.compile(r"repro/(hw|core|service|exec)/"),
    "REP104": re.compile(r"repro/(hw/calibration|core/analysis)\.py$"),
}


def _make_analysis(rule: str) -> FunctionAnalysis:
    if rule == "REP101":
        return UnitAnalysis()
    if rule == "REP102":
        return DeterminismAnalysis()
    if rule == "REP103":
        return ResourceAnalysis()
    if rule == "REP104":
        return PurityAnalysis()
    raise ValueError(f"unknown dataflow rule {rule!r}")


def rules_for_path(display: str) -> list[str]:
    posix = display.replace("\\", "/")
    return [
        rule
        for rule in sorted(DATAFLOW_RULES)
        if RULE_SCOPES[rule].search(posix)
    ]


def analyze_source(
    source: str,
    display: str,
    *,
    summaries: dict[str, str] | None = None,
    select: list[str] | None = None,
    only: list[str] | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    """Run the scoped (or selected) dataflow rules over one module.

    Returns ``(violations, internal_errors)``; a rule crashing on one
    function is recorded as an :class:`AnalyzerError` and the remaining
    functions/rules still run. ``select`` *forces* rules regardless of
    scope; ``only`` *restricts* the scoped set (the CLI's ``--select``).
    With ``timings``, per-rule wall time is accumulated into the dict.
    """
    rules = select if select is not None else rules_for_path(display)
    if only is not None:
        rules = [r for r in rules if r in only]
    if not rules:
        return [], []
    if summaries is None:
        # Single-file analysis still gets the builtin signature seeds.
        summaries = {n: unit_str(u) for n, u in BUILTIN_SIGNATURES.items()}
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError:
        return [], []  # the per-line lint already reports REP000
    noqa = _noqa_codes(source)
    units: list[tuple[FunctionContext, object]] = []
    module_ctx = FunctionContext(
        fn=None,
        qualname="<module>",
        module_path=display,
        summaries=summaries or {},
    )
    units.append((module_ctx, tree))
    for qualname, fn in iter_functions(tree):
        units.append(
            (
                FunctionContext(
                    fn=fn,
                    qualname=qualname,
                    module_path=display,
                    summaries=summaries or {},
                ),
                fn,
            )
        )

    violations: list[LintViolation] = []
    errors: list[AnalyzerError] = []
    for rule in rules:
        t0 = time.perf_counter()
        analysis = _make_analysis(rule)
        emitter = Emitter(rule=rule, display=display)
        for ctx, node in units:
            try:
                cfg = (
                    build_module_cfg(node, name=display)  # type: ignore[arg-type]
                    if ctx.fn is None
                    else build_cfg(ctx.fn, qualname=ctx.qualname)
                )
                run_analysis(cfg, analysis, ctx, emitter)
            except AnalyzerError as exc:
                errors.append(exc)
        if timings is not None:
            timings[rule] = timings.get(rule, 0.0) + time.perf_counter() - t0
        for v in emitter.findings:
            codes = noqa.get(v.line, frozenset())
            if codes is None or v.rule in codes:
                continue
            violations.append(v)
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations, errors


def analyze_file(
    path: Path,
    root: Path | None = None,
    *,
    summaries: dict[str, str] | None = None,
    select: list[str] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    display = str(path.relative_to(root)) if root else str(path)
    return analyze_source(
        path.read_text(), display, summaries=summaries, select=select
    )


def analyze_paths(
    targets: list[Path],
    *,
    store: SummaryStore | None = None,
    select: list[str] | None = None,
    only: list[str] | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    """Two-pass dataflow lint over files/directories.

    Pass 1 builds (or reuses from the cache) per-module unit summaries;
    pass 2 analyzes every file against the merged summary table.
    """
    store = store if store is not None else SummaryStore()
    files: list[tuple[Path, str]] = []
    for target in targets:
        for path in iter_python_files(target):
            try:
                source = path.read_text()
            except (OSError, UnicodeDecodeError):
                continue
            files.append((path, source))
            store.add_module(str(path), source)
    merged = store.merged()
    store.save()

    violations: list[LintViolation] = []
    errors: list[AnalyzerError] = []
    for path, source in files:
        v, e = analyze_source(
            source, str(path), summaries=merged, select=select,
            only=only, timings=timings,
        )
        violations.extend(v)
        errors.extend(e)
    return violations, errors


__all__ = [
    "DATAFLOW_RULES",
    "RULE_SCOPES",
    "AnalyzerError",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "rules_for_path",
]
