"""Fixpoint solver: abstract interpretation over the function CFGs.

A :class:`FunctionAnalysis` supplies a lattice (initial state, join,
equality via ``==``) and a transfer function over CFG elements; the
solver iterates a worklist to a fixpoint and hands the exit states back
for end-of-function checks.  Findings are emitted through a deduplicating
collector because transfer functions re-run as states grow.

The solver is deliberately defensive: states must be *plain comparable
values* (dicts/frozensets), iteration is capped as a termination
backstop against non-monotone transfer bugs, and any exception escaping
an analysis is wrapped in :class:`AnalyzerError` so ``repro lint`` can
report an internal-error exit code instead of a stack trace.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Any, Protocol

from repro.sanitizers.dataflow.cfg import CFG, Element
from repro.sanitizers.lint import LintViolation


@dataclass(frozen=True)
class AnalyzerError(Exception):
    """An internal analyzer failure (not a lint finding)."""

    path: str
    function: str
    rule: str
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.path}: internal analyzer error in {self.rule} "
            f"while analyzing {self.function!r}: {self.detail}"
        )


class Emitter:
    """Deduplicating finding collector for one function analysis."""

    def __init__(self, rule: str, display: str) -> None:
        self.rule = rule
        self.display = display
        self._seen: set[tuple[int, int, str]] = set()
        self.findings: list[LintViolation] = []

    def emit(self, node: ast.AST | Any, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0) + 1
        key = (line, col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            LintViolation(
                rule=self.rule,
                path=self.display,
                line=line,
                col=col,
                message=message,
            )
        )


@dataclass
class FunctionContext:
    """Everything a rule can see about the function under analysis."""

    fn: ast.FunctionDef | ast.AsyncFunctionDef | None
    qualname: str
    module_path: str  # posix-style display path of the module
    summaries: dict[str, str]  # callable name -> unit repr (REP101)


class FunctionAnalysis(Protocol):
    """Interface one REP1xx rule implements."""

    rule: str

    def initial_state(self, ctx: FunctionContext) -> Any: ...

    def join(self, a: Any, b: Any) -> Any: ...

    def transfer(
        self, elem: Element, state: Any, emit: Emitter, ctx: FunctionContext
    ) -> Any: ...

    def at_exit(
        self,
        state: Any,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None: ...


def run_analysis(
    cfg: CFG,
    analysis: FunctionAnalysis,
    ctx: FunctionContext,
    emitter: Emitter,
) -> None:
    """Solve one analysis over one CFG to fixpoint.

    Exceptions raised by the rule are re-raised as :class:`AnalyzerError`.
    """
    try:
        _run(cfg, analysis, ctx, emitter)
    except AnalyzerError:
        raise
    except RecursionError as exc:  # deep ASTs: report, don't crash the run
        raise AnalyzerError(
            path=ctx.module_path,
            function=ctx.qualname,
            rule=analysis.rule,
            detail=f"recursion limit: {exc}",
        ) from exc
    except Exception as exc:
        raise AnalyzerError(
            path=ctx.module_path,
            function=ctx.qualname,
            rule=analysis.rule,
            detail=f"{type(exc).__name__}: {exc}",
        ) from exc


def _run(
    cfg: CFG,
    analysis: FunctionAnalysis,
    ctx: FunctionContext,
    emitter: Emitter,
) -> None:
    succs: dict[int, list[tuple[int, str]]] = {bid: [] for bid in cfg.blocks}
    for e in cfg.edges:
        succs[e.src].append((e.dst, e.kind))

    states: dict[int, Any] = {cfg.entry: analysis.initial_state(ctx)}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    # Termination backstop: generous bound, far above what monotone
    # lattices need, so a non-monotone transfer bug degrades to a
    # best-effort result instead of a hang.
    budget = 64 * max(1, len(cfg.blocks)) + 256

    while work and budget > 0:
        budget -= 1
        bid = work.popleft()
        queued.discard(bid)
        in_state = states[bid]
        out_state = in_state
        # Exception edges fire when some element raises; the state then
        # is the state *before* that element (an element either takes
        # effect or raises). Join over all pre-element states. A rule
        # can refine one element's contribution via ``exc_transfer``
        # (e.g. REP103 assumes a release takes effect even if the
        # release call itself raises).
        exc_transfer = getattr(analysis, "exc_transfer", None)
        exc_state = None  # element-less blocks pass their in-state through
        for elem in cfg.blocks[bid].elems:
            before = out_state
            out_state = analysis.transfer(elem, out_state, emitter, ctx)
            contrib = (
                exc_transfer(elem, before, out_state)
                if exc_transfer is not None
                else before
            )
            exc_state = (
                contrib
                if exc_state is None
                else analysis.join(exc_state, contrib)
            )
        if exc_state is None:
            exc_state = in_state
        for dst, kind in succs[bid]:
            prop = exc_state if kind == "except" else out_state
            old = states.get(dst)
            new = prop if old is None else analysis.join(old, prop)
            if old is None or new != old:
                states[dst] = new
                if dst not in queued:
                    queued.add(dst)
                    work.append(dst)

    if cfg.exit in states:
        analysis.at_exit(states[cfg.exit], emitter, ctx, exceptional=False)
    if cfg.raise_exit in states:
        analysis.at_exit(
            states[cfg.raise_exit], emitter, ctx, exceptional=True
        )


def iter_functions(
    tree: ast.Module,
) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function/method in a module with a dotted qualname."""
    out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append((qual, child))
                walk(child, f"{qual}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(child, prefix)

    walk(tree, "")
    return out
