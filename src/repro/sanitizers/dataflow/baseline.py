"""Findings baseline: triage legacy findings without blocking CI.

The baseline is a committed JSON file (``.repro-lint-baseline.json``)
listing known findings as ``(rule, path, line)`` triples.  ``repro
lint`` subtracts it from the current findings, so new findings fail CI
while baselined ones are visible-but-tolerated until fixed.  Entries
carry the message and an optional ``reason`` so a reviewer can tell a
triaged false positive from an un-triaged one.

Line-keyed baselines drift when files are edited above an entry; that
is deliberate — a drifted entry resurfaces as a new finding and forces
re-triage rather than silently suppressing a different line forever.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sanitizers.lint import LintViolation

BASELINE_VERSION = 1

Key = tuple[str, str, int]  # (rule, path, line)


def _key(v: LintViolation) -> Key:
    return (v.rule, v.path, v.line)


def load_baseline(path: Path) -> set[Key]:
    """Baseline keys from a baseline file; empty set if absent."""
    if not path.exists():
        return set()
    raw = json.loads(path.read_text(encoding="utf-8"))
    if raw.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {raw.get('version')!r} in {path}"
        )
    keys: set[Key] = set()
    for entry in raw.get("findings", []):
        keys.add((str(entry["rule"]), str(entry["path"]), int(entry["line"])))
    return keys


def split_findings(
    violations: list[LintViolation], baseline: set[Key]
) -> tuple[list[LintViolation], list[LintViolation]]:
    """Partition into (new, baselined)."""
    new: list[LintViolation] = []
    old: list[LintViolation] = []
    for v in violations:
        (old if _key(v) in baseline else new).append(v)
    return new, old


def write_baseline(violations: list[LintViolation], path: Path) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    entries = [
        {
            "rule": v.rule,
            "path": v.path,
            "line": v.line,
            "message": v.message,
        }
        for v in sorted(violations, key=lambda v: (v.path, v.line, v.rule))
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
