"""REP102 — unordered-iteration determinism analysis.

The DES must be bit-reproducible: event insertion order, heap
tie-breaks and LP candidate ordering all expose iteration order, so any
``set``/``frozenset`` iteration (hash-order under ``PYTHONHASHSEED``)
that reaches them makes timelines run-dependent.  This rule taints
values known to be unordered — set literals/comprehensions,
``set()``/``frozenset()`` construction and set algebra, parameters
annotated as sets, ``dict.popitem()`` — and flags the order-exposing
sinks: ``for`` loops, comprehension generators, and
``list()``/``tuple()``/``enumerate()`` conversions.

Order-insensitive consumption is deliberately silent: ``sorted()``,
``min``/``max``/``sum``/``len``/``any``/``all``, membership tests, and
rebuilding into another set all launder the taint, so the fix for a
true positive is always local (sort it, or iterate an ordered carrier).
"""

from __future__ import annotations

import ast

from repro.sanitizers.dataflow.cfg import (
    Element,
    ExceptElem,
    IterElem,
    TestElem,
    WithElem,
)
from repro.sanitizers.dataflow.engine import Emitter, FunctionContext

State = frozenset[str]  # names that may hold an unordered collection

#: Calls that consume a collection without exposing its order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Calls that expose iteration order of their argument.
_ORDER_EXPOSING = frozenset({"list", "tuple", "enumerate", "iter", "next"})

#: Set-algebra methods whose result is again unordered.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def _annotation_is_set(ann: ast.expr | None) -> bool:
    """True if a parameter annotation names a set type (incl. unions)."""
    if ann is None:
        return False
    if isinstance(ann, ast.Name):
        return ann.id in _SET_TYPE_NAMES
    if isinstance(ann, ast.Attribute):
        return ann.attr in _SET_TYPE_NAMES
    if isinstance(ann, ast.Subscript):
        return _annotation_is_set(ann.value)
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_is_set(ann.left) or _annotation_is_set(ann.right)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return _annotation_is_set(ast.parse(ann.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


class DeterminismAnalysis:
    """REP102 dataflow rule (see module docstring)."""

    rule = "REP102"

    def initial_state(self, ctx: FunctionContext) -> State:
        tainted: set[str] = set()
        fn = ctx.fn
        if fn is not None:
            args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
                fn.args.kwonlyargs
            )
            for a in args:
                if _annotation_is_set(a.annotation):
                    tainted.add(a.arg)
        return frozenset(tainted)

    def join(self, a: State, b: State) -> State:
        return a | b

    def transfer(
        self, elem: Element, state: State, emit: Emitter, ctx: FunctionContext
    ) -> State:
        tainted = set(state)
        if isinstance(elem, IterElem):
            self._check_sinks_in(elem.iterable, state, emit)
            if self._is_unordered(elem.iterable, state):
                emit.emit(
                    elem.node,
                    "iterates an unordered set in an order-exposing loop; "
                    "hash-seed-dependent order can leak into event/candidate "
                    "ordering (sort it or iterate an ordered carrier)",
                )
            # Loop targets bind scalar elements, not collections.
            self._bind(elem.target, False, tainted)
        elif isinstance(elem, TestElem):
            self._check_sinks_in(elem.expr, state, emit)
        elif isinstance(elem, WithElem):
            self._check_sinks_in(elem.context, state, emit)
            if elem.target is not None:
                self._bind(elem.target, False, tainted)
        elif isinstance(elem, ExceptElem):
            if elem.name:
                tainted.discard(elem.name)
        elif isinstance(elem, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = elem.value
            if value is not None:
                self._check_sinks_in(value, state, emit)
                is_set = self._is_unordered(value, state)
                targets = (
                    elem.targets
                    if isinstance(elem, ast.Assign)
                    else [elem.target]
                )
                for t in targets:
                    self._bind(t, is_set, tainted)
            if isinstance(elem, ast.AnnAssign) and _annotation_is_set(
                elem.annotation
            ):
                self._bind(elem.target, True, tainted)
        elif isinstance(elem, ast.stmt):
            for sub in ast.iter_child_nodes(elem):
                if isinstance(sub, ast.expr):
                    self._check_sinks_in(sub, frozenset(tainted), emit)
        return frozenset(tainted)

    def at_exit(
        self,
        state: State,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        return

    # ------------------------------------------------------------------

    def _bind(self, target: ast.expr, is_set: bool, tainted: set[str]) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                tainted.add(target.id)
            else:
                tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, False, tainted)

    def _is_unordered(self, expr: ast.expr, state: State) -> bool:
        """May this expression evaluate to an unordered collection?"""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in state
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if func.attr == "popitem":
                    return True
                if func.attr in _SET_METHODS:
                    return self._is_unordered(func.value, state)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            # Set algebra keeps the result unordered.
            return self._is_unordered(expr.left, state) or self._is_unordered(
                expr.right, state
            )
        if isinstance(expr, ast.IfExp):
            return self._is_unordered(expr.body, state) or self._is_unordered(
                expr.orelse, state
            )
        if isinstance(expr, ast.NamedExpr):
            return self._is_unordered(expr.value, state)
        return False

    def _check_sinks_in(
        self, expr: ast.expr, state: State, emit: Emitter
    ) -> None:
        """Scan an expression tree for order-exposing consumption."""
        # A comprehension/genexp whose value feeds straight into an
        # order-insensitive consumer (frozenset(...), sorted(...), ...)
        # cannot leak iteration order; exempt those nodes up front.
        laundered: set[int] = set()
        for sub in ast.walk(expr):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in _ORDER_INSENSITIVE
            ):
                for arg in sub.args:
                    laundered.add(id(arg))
        for sub in ast.walk(expr):
            if id(sub) in laundered:
                continue
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_EXPOSING
                    and sub.args
                    and self._is_unordered(sub.args[0], state)
                ):
                    emit.emit(
                        sub,
                        f"{func.id}() over an unordered set exposes "
                        "hash-seed-dependent order (wrap in sorted())",
                    )
            elif isinstance(
                sub, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)
            ):
                order_matters = not isinstance(sub, ast.SetComp)
                for gen in sub.generators:
                    if order_matters and self._is_unordered(gen.iter, state):
                        emit.emit(
                            sub,
                            "comprehension iterates an unordered set; "
                            "element order is hash-seed-dependent "
                            "(wrap the iterable in sorted())",
                        )
