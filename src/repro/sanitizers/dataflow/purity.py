"""REP104 — measurement paths must not mutate framework/device state.

Performance Characterization (paper §III.C) is an *observer*: the
calibration fits and the report analysis read timelines and produce
models.  If a measurement path mutates the framework or a device —
resetting counters, applying faults, rescaling shares — the measurement
perturbs the system it measures and calibration stops being
reproducible.  This rule runs only over the characterization modules
(``hw/calibration.py``, ``core/analysis.py``).

It tracks *escape*: parameters, globals and anything reached through
them are FOREIGN; literals, fresh containers and copies are LOCAL.
Stores into a FOREIGN attribute/subscript, and known mutator calls
(``.append``/``.update``/``set_*``/``apply_fault``/``reset``…) on a
FOREIGN root, are findings.  Call results are treated as local so the
rule stays quiet on builder-style code; the mutants in the test suite
mutate reachable state directly, which is what the rule guards.
"""

from __future__ import annotations

import ast

from repro.sanitizers.dataflow.cfg import (
    Element,
    ExceptElem,
    IterElem,
    TestElem,
    WithElem,
)
from repro.sanitizers.dataflow.engine import Emitter, FunctionContext

LOCAL = "local"
FOREIGN = "foreign"

State = tuple[tuple[str, str], ...]  # sorted (name, LOCAL|FOREIGN) pairs

_MUTATOR_NAMES = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "sort",
        "reverse",
        "apply_fault",
        "invalidate",
        "reset",
        "rescale",
        "shuffle",
    }
)

_MUTATOR_PREFIXES = ("set_", "observe_", "record_", "apply_", "inject_")

_LOCAL_MAKERS = frozenset(
    {
        "dict",
        "list",
        "set",
        "frozenset",
        "tuple",
        "sorted",
        "copy",
        "deepcopy",
        "defaultdict",
        "Counter",
        "OrderedDict",
    }
)


def _pack(env: dict[str, str]) -> State:
    return tuple(sorted(env.items()))


def _root_name(node: ast.expr) -> str | None:
    """The base Name an attribute/subscript chain hangs off, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class PurityAnalysis:
    """REP104 dataflow rule (see module docstring)."""

    rule = "REP104"

    def initial_state(self, ctx: FunctionContext) -> State:
        env: dict[str, str] = {}
        fn = ctx.fn
        if fn is not None:
            args = (
                list(fn.args.posonlyargs)
                + list(fn.args.args)
                + list(fn.args.kwonlyargs)
            )
            if fn.args.vararg:
                args.append(fn.args.vararg)
            if fn.args.kwarg:
                args.append(fn.args.kwarg)
            for a in args:
                env[a.arg] = FOREIGN
        return _pack(env)

    def join(self, a: State, b: State) -> State:
        if a == b:
            return a
        ea, eb = dict(a), dict(b)
        out: dict[str, str] = {}
        for k in ea.keys() | eb.keys():
            va = ea.get(k, FOREIGN)
            vb = eb.get(k, FOREIGN)
            out[k] = va if va == vb else FOREIGN
        return _pack(out)

    def transfer(
        self, elem: Element, state: State, emit: Emitter, ctx: FunctionContext
    ) -> State:
        env = dict(state)
        if isinstance(elem, IterElem):
            # Elements of a foreign collection are foreign.
            esc = self._escape(elem.iterable, env)
            self._bind(elem.target, esc, env)
            self._scan_calls(elem.iterable, env, emit)
        elif isinstance(elem, TestElem):
            self._scan_calls(elem.expr, env, emit)
        elif isinstance(elem, WithElem):
            self._scan_calls(elem.context, env, emit)
            if elem.target is not None:
                self._bind(elem.target, LOCAL, env)
        elif isinstance(elem, ExceptElem):
            if elem.name:
                env[elem.name] = LOCAL
        elif isinstance(elem, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = elem.value
            if value is not None:
                self._scan_calls(value, env, emit)
            targets = (
                elem.targets if isinstance(elem, ast.Assign) else [elem.target]
            )
            for t in targets:
                if isinstance(t, (ast.Attribute, ast.Subscript)):
                    root = _root_name(t)
                    if root is not None and env.get(root, FOREIGN) == FOREIGN:
                        emit.emit(
                            elem,
                            f"measurement path stores into foreign state "
                            f"{ast.unparse(t)!r}; characterization must not "
                            "mutate framework/device state",
                        )
                elif value is not None:
                    esc = self._escape(value, env)
                    self._bind(t, esc, env)
        elif isinstance(elem, ast.Delete):
            for t in elem.targets:
                if isinstance(t, (ast.Attribute, ast.Subscript)):
                    root = _root_name(t)
                    if root is not None and env.get(root, FOREIGN) == FOREIGN:
                        emit.emit(
                            elem,
                            f"measurement path deletes foreign state "
                            f"{ast.unparse(t)!r}",
                        )
        elif isinstance(elem, ast.stmt):
            for sub in ast.iter_child_nodes(elem):
                if isinstance(sub, ast.expr):
                    self._scan_calls(sub, env, emit)
        return _pack(env)

    def at_exit(
        self,
        state: State,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        return

    # ------------------------------------------------------------------

    def _bind(self, target: ast.expr, escape: str, env: dict[str, str]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = escape
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, escape, env)

    def _escape(self, expr: ast.expr, env: dict[str, str]) -> str:
        if isinstance(
            expr,
            (
                ast.Constant,
                ast.Dict,
                ast.List,
                ast.Set,
                ast.Tuple,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
                ast.JoinedStr,
            ),
        ):
            return LOCAL
        if isinstance(expr, ast.Name):
            return env.get(expr.id, FOREIGN)
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            return self._escape(expr.value, env)
        if isinstance(expr, ast.Call):
            # Call results are treated as fresh values; explicit copies
            # and container constructors obviously are.
            return LOCAL
        if isinstance(expr, ast.BinOp):
            return LOCAL  # arithmetic yields fresh values
        if isinstance(expr, ast.IfExp):
            a = self._escape(expr.body, env)
            b = self._escape(expr.orelse, env)
            return a if a == b else FOREIGN
        if isinstance(expr, ast.NamedExpr):
            return self._escape(expr.value, env)
        return LOCAL

    def _scan_calls(
        self, expr: ast.expr, env: dict[str, str], emit: Emitter
    ) -> None:
        """Flag mutator-method calls whose receiver is foreign."""
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute):
                continue
            name = func.attr
            if name not in _MUTATOR_NAMES and not name.startswith(
                _MUTATOR_PREFIXES
            ):
                continue
            # Only flag receivers we can resolve to a foreign root; a
            # call-result receiver (e.g. acc.setdefault(k, []).append)
            # is building local state.
            recv = func.value
            if isinstance(recv, ast.Call):
                continue
            root = _root_name(recv)
            if root is None:
                continue
            if env.get(root, FOREIGN) == FOREIGN:
                emit.emit(
                    sub,
                    f"measurement path calls mutator "
                    f"{ast.unparse(func)!r} on foreign state; "
                    "characterization must not mutate framework/device "
                    "state",
                )
