"""Parallel lint runner: every analysis layer over one file per task.

``repro lint --jobs N`` routes through :func:`run_lint`. The pipeline
has a short serial prefix and an embarrassingly parallel body:

1. **Serial**: collect the file list, build the merged dataflow unit
   summaries (REP101's cross-module signatures) and the layer-4 call
   graph (REP201 reachability, REP304 solve reachability) over *all*
   modules — both are whole-scope artifacts a single file cannot
   produce.
2. **Parallel**: one task per file runs the per-line lint (REP0xx),
   the dataflow rules (REP1xx), the concurrency rules (REP2xx) and the
   protocol rules (REP3xx) against those shared artifacts.

Determinism: task results are collected in input order (``Executor.
map``), each file's findings depend only on (source, summaries, graph),
and workers rebuild the shared artifacts from the exact same module
list — so stdout is byte-identical for any ``--jobs`` value (pinned by
``tests/sanitizers/test_lint_jobs.py``). ``jobs=1`` runs in-process
with no pool and remains the default.

Internal errors cross the process boundary as plain tuples (the frozen
:class:`AnalyzerError` dataclass does not survive exception pickling)
and are rebuilt in the parent.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.sanitizers.concurrency import (
    CONCURRENCY_RULES,
    analyze_source as analyze_concurrency,
)
from repro.sanitizers.concurrency.callgraph import CallGraph, build_graph
from repro.sanitizers.dataflow import (
    DATAFLOW_RULES,
    analyze_source as analyze_dataflow,
)
from repro.sanitizers.dataflow.engine import AnalyzerError
from repro.sanitizers.dataflow.summaries import SummaryStore
from repro.sanitizers.lint import (
    LINT_RULES,
    LintViolation,
    iter_python_files,
    lint_source,
)
from repro.sanitizers.protocols import (
    PROTOCOL_RULES,
    analyze_source as analyze_protocols,
)

#: (display, source) for every module in the lint scope.
Modules = list[tuple[str, str]]

#: One task's result: findings, errors as tuples, per-rule seconds.
FileResult = tuple[
    list[LintViolation], list[tuple[str, str, str, str]], dict[str, float]
]


def _layer_only(
    rules: dict[str, str], only: list[str] | None
) -> list[str] | None:
    return None if only is None else [r for r in rules if r in only]


def collect_modules(targets: list[Path]) -> Modules:
    modules: Modules = []
    for target in targets:
        for path in iter_python_files(target):
            try:
                source = path.read_text()
            except (OSError, UnicodeDecodeError):
                continue
            modules.append((str(path), source))
    return modules


def build_shared(
    modules: Modules, store: SummaryStore | None = None
) -> tuple[dict[str, str], CallGraph]:
    """The whole-scope artifacts every per-file task reads."""
    import ast

    store = store if store is not None else SummaryStore()
    trees: list[tuple[str, ast.Module]] = []
    for display, source in modules:
        store.add_module(display, source)
        try:
            trees.append((display, ast.parse(source, filename=display)))
        except SyntaxError:
            continue
    merged = store.merged()
    store.save()
    return merged, build_graph(trees)


def run_file(
    display: str,
    source: str,
    summaries: dict[str, str],
    graph: CallGraph,
    only: list[str] | None,
) -> FileResult:
    """All four analysis layers over one module."""
    import time

    timings: dict[str, float] = {}
    violations: list[LintViolation] = []
    err_tuples: list[tuple[str, str, str, str]] = []

    line_only = _layer_only(LINT_RULES, only)
    if line_only is None or line_only:
        t0 = time.perf_counter()
        found = lint_source(source, Path(display))
        if line_only is not None:
            found = [v for v in found if v.rule in line_only]
        violations.extend(found)
        timings["REP0xx"] = time.perf_counter() - t0

    for analyze, rules, kwargs in (
        (analyze_dataflow, DATAFLOW_RULES, {"summaries": summaries}),
        (analyze_concurrency, CONCURRENCY_RULES, {"graph": graph}),
        (analyze_protocols, PROTOCOL_RULES, {"graph": graph}),
    ):
        v, e = analyze(
            source,
            display,
            only=_layer_only(rules, only),
            timings=timings,
            **kwargs,
        )
        violations.extend(v)
        err_tuples.extend(
            (err.path, err.function, err.rule, err.detail) for err in e
        )
    return violations, err_tuples, timings


# ---------------------------------------------------------------------------
# Worker-side state for jobs > 1 (built once per worker process).

_WORKER: dict[str, object] = {}


def _init_worker(modules: Modules, only: list[str] | None) -> None:
    summaries, graph = build_shared(modules)
    _WORKER["sources"] = dict(modules)
    _WORKER["summaries"] = summaries
    _WORKER["graph"] = graph
    _WORKER["only"] = only


def _worker_task(display: str) -> FileResult:
    sources: dict[str, str] = _WORKER["sources"]  # type: ignore[assignment]
    return run_file(
        display,
        sources[display],
        _WORKER["summaries"],  # type: ignore[arg-type]
        _WORKER["graph"],      # type: ignore[arg-type]
        _WORKER["only"],       # type: ignore[arg-type]
    )


def run_lint(
    targets: list[Path],
    *,
    only: list[str] | None = None,
    timings: dict[str, float] | None = None,
    jobs: int = 1,
    store: SummaryStore | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    """Every lint layer over the targets, optionally across processes.

    ``only`` restricts to a rule subset (the CLI's ``--select``);
    ``jobs`` > 1 fans the per-file work out over a process pool with
    byte-identical findings. Returns ``(violations, errors)`` in file
    order; the caller sorts and formats.
    """
    modules = collect_modules(targets)
    results: list[FileResult] = []
    if jobs <= 1 or len(modules) <= 1:
        summaries, graph = build_shared(modules, store=store)
        for display, source in modules:
            results.append(run_file(display, source, summaries, graph, only))
    else:
        if store is not None:
            # Keep the cache warm even though workers rebuild their own.
            build_shared(modules, store=store)
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(modules, only),
        ) as pool:
            results = list(
                pool.map(_worker_task, [d for d, _ in modules])
            )

    violations: list[LintViolation] = []
    errors: list[AnalyzerError] = []
    for file_violations, err_tuples, file_timings in results:
        violations.extend(file_violations)
        errors.extend(
            AnalyzerError(path=p, function=f, rule=r, detail=d)
            for p, f, r, d in err_tuples
        )
        if timings is not None:
            for rule, dt in file_timings.items():
                timings[rule] = timings.get(rule, 0.0) + dt
    return violations, errors


__all__ = ["collect_modules", "build_shared", "run_file", "run_lint"]
