"""REP204 — barrier-ordered phases (the τ1/τ2 happens-before shape).

Algorithm 1's frame is a strict three-beat bar: the host stages ``cur``
/``ref*``/``sf1..`` into shared memory, *then* submits phase-1 work
(ME + INT), *then* — only after every phase-1 future is collected at
the τ1 barrier — submits SME, which reads the ``sf0`` the INT workers
just wrote. Two orderings break bit-exactness silently:

* phase-1 work submitted before the staging writes are done — a worker
  may read last frame's pixels (flagged at the submit site when the
  function demonstrably stages but not definitely before the submit);
* SME submitted (or an ``sf*`` plane read host-side) while phase-1
  futures may still be in flight — the τ1 happens-before edge is gone.

Implemented as one pass over the layer-3 worklist engine with a
combined must/may state: ``staged`` is a must-fact (AND at joins),
``pending phase-1`` a may-fact (OR at joins), so a single unbarriered
path through the CFG is enough to flag.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.sanitizers.concurrency.bands import BARRIER_TAILS, _shm_slice_writes
from repro.sanitizers.concurrency.callgraph import call_name
from repro.sanitizers.dataflow.cfg import build_cfg
from repro.sanitizers.dataflow.engine import (
    Emitter,
    FunctionContext,
    run_analysis,
)

RULE = "REP204"

#: (staged: must, pending_p1: may, function_stages: static fact)
State = tuple[bool, bool, bool]


def _submit_kind(call: ast.Call) -> str | None:
    """``"p1"`` (ME/INT), ``"sme"``, or None for non-submit calls."""
    tail = call_name(call.func)
    if tail is None:
        return None
    if tail == "submit_sme":
        return "sme"
    if tail in ("submit_me", "submit_int"):
        return "p1"
    if tail == "submit" or tail.startswith("submit_"):
        head = call.args[0] if call.args else None
        name = (
            head.id if isinstance(head, ast.Name)
            else head.attr if isinstance(head, ast.Attribute)
            else ""
        )
        if "sme" in name:
            return "sme"
        return "p1"
    return None


def _stages_somewhere(fn: ast.AST) -> bool:
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.stmt) and _shm_slice_writes(stmt, set()):
            return True
    return False


class PhaseOrderAnalysis:
    rule = RULE

    def initial_state(self, ctx: FunctionContext) -> State:
        stages = ctx.fn is not None and _stages_somewhere(ctx.fn)
        return (False, False, stages)

    def join(self, a: State, b: State) -> State:
        return (a[0] and b[0], a[1] or b[1], a[2] or b[2])

    def transfer(
        self, elem: Any, state: State, emit: Emitter, ctx: FunctionContext
    ) -> State:
        node = getattr(elem, "node", elem)
        if not isinstance(node, ast.AST):
            return state
        staged, pending, stages = state
        if isinstance(node, ast.stmt) and _shm_slice_writes(node, set()):
            staged = True
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            kind = _submit_kind(call)
            if kind == "p1":
                if stages and not staged:
                    emit.emit(
                        call,
                        "phase-1 work submitted before this function's "
                        "cur/ref staging writes are definitely done; "
                        "workers may read stale frame data",
                    )
                pending = True
            elif kind == "sme":
                if pending:
                    emit.emit(
                        call,
                        "SME submitted while phase-1 (ME/INT) futures "
                        "may still be in flight; the τ1 barrier must "
                        "order sf0 writes before any SME read",
                    )
            elif kind is None:
                tail = call_name(call.func)
                if tail in BARRIER_TAILS:
                    pending = False
                elif tail == "view" and pending:
                    arg = call.args[0] if call.args else None
                    if (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and arg.value.startswith("sf")
                    ):
                        emit.emit(
                            call,
                            f"host reads {arg.value!r} while phase-1 "
                            "futures may still be writing it; collect "
                            "them (τ1) before touching the SF planes",
                        )
        return (staged, pending, stages)

    def at_exit(
        self,
        state: State,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        return None


class PhaseOrderRule:
    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: object,
        emitter: Emitter,
    ) -> None:
        from repro.sanitizers.dataflow.engine import iter_functions

        for qualname, fn in iter_functions(tree):
            ctx = FunctionContext(
                fn=fn, qualname=qualname, module_path=display, summaries={}
            )
            cfg = build_cfg(fn, qualname=qualname)
            run_analysis(cfg, PhaseOrderAnalysis(), ctx, emitter)
