"""Concurrency lint: layer 4 of the analysis stack.

Static concurrency-safety rules for the really-parallel process
backend, built on the layer-3 CFG/worklist engine plus a cheap
interprocedural call graph (:mod:`callgraph`):

REP201
    Fork-safety: no thread/lock/file-handle creation or blocking call
    at import time, reachable from a pool initializer, or before the
    process pool is constructed (:mod:`forksafety`).
REP202
    Cross-process payload hygiene: submissions carry scalar
    coordinates only — ndarrays, ``SharedMemory`` objects and closures
    over them are flagged at the submit site (:mod:`payload`).
REP203
    Shared-write confinement: a symbolic interval proof that every
    worker-side shared-memory write stays inside its ``(row0, nrows)``
    band, and no host-side write lands while submitted work is
    unbarriered (:mod:`bands`).
REP204
    Barrier-ordered phases: staging happens-before phase-1 submit,
    τ1 collection happens-before any SME submit or host SF read
    (:mod:`phases`).

The dynamic cross-check is SAN-F (the shared-memory access journal in
:mod:`repro.exec.shm` + :meth:`TimelineSanitizer.check_exec`): the
static rules prove the shape, the journal verifies real interleavings.

Scoping/`select`/`only` semantics, ``# noqa: REPxxx`` and the findings
baseline all match the dataflow layer: ``select`` *forces* rules onto
any file (the crash-free property test), ``only`` *restricts* within
scope (the CLI's ``--select``).
"""

from __future__ import annotations

import ast
import re
import time
from pathlib import Path

from repro.sanitizers.concurrency.bands import BandConfinementRule
from repro.sanitizers.concurrency.callgraph import CallGraph, build_graph
from repro.sanitizers.concurrency.forksafety import ForkSafetyRule
from repro.sanitizers.concurrency.payload import PayloadRule
from repro.sanitizers.concurrency.phases import PhaseOrderRule
from repro.sanitizers.dataflow.engine import AnalyzerError, Emitter
from repro.sanitizers.lint import LintViolation, _noqa_codes, iter_python_files

CONCURRENCY_RULES: dict[str, str] = {
    "REP201": "fork-unsafe primitive before/inside the pool initializer",
    "REP202": "task submission payload carries shared bulk data",
    "REP203": "shared-memory write escapes its (row0, nrows) band",
    "REP204": "τ1/τ2 phase ordering broken (staging/barrier/SME)",
}

#: Where each rule is meaningful. REP201 watches every module the pool
#: machinery can execute (fork inherits all of them); the payload/band/
#: phase contracts are specific to the process-pool code in exec/.
RULE_SCOPES: dict[str, re.Pattern[str]] = {
    "REP201": re.compile(r"repro/(exec|hw|service)/"),
    "REP202": re.compile(r"repro/exec/"),
    "REP203": re.compile(r"repro/exec/"),
    "REP204": re.compile(r"repro/exec/"),
}


def _make_rule(rule: str):
    if rule == "REP201":
        return ForkSafetyRule()
    if rule == "REP202":
        return PayloadRule()
    if rule == "REP203":
        return BandConfinementRule()
    if rule == "REP204":
        return PhaseOrderRule()
    raise ValueError(f"unknown concurrency rule {rule!r}")


def rules_for_path(display: str) -> list[str]:
    posix = display.replace("\\", "/")
    return [
        rule
        for rule in sorted(CONCURRENCY_RULES)
        if RULE_SCOPES[rule].search(posix)
    ]


def analyze_source(
    source: str,
    display: str,
    *,
    graph: CallGraph | None = None,
    select: list[str] | None = None,
    only: list[str] | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    """Run the scoped (or selected) concurrency rules over one module.

    ``graph`` carries the interprocedural facts; when omitted a graph
    over just this module is built (single-file analysis).
    """
    rules = select if select is not None else rules_for_path(display)
    if only is not None:
        rules = [r for r in rules if r in only]
    if not rules:
        return [], []
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError:
        return [], []  # the per-line lint already reports REP000
    if graph is None:
        graph = build_graph([(display, tree)])
    noqa = _noqa_codes(source)

    violations: list[LintViolation] = []
    errors: list[AnalyzerError] = []
    for rule in rules:
        t0 = time.perf_counter()
        emitter = Emitter(rule=rule, display=display)
        try:
            _make_rule(rule).run(tree, display, graph, emitter)
        except AnalyzerError as exc:
            errors.append(exc)
        except RecursionError as exc:
            errors.append(AnalyzerError(
                path=display, function="<module>", rule=rule,
                detail=f"recursion limit: {exc}",
            ))
        except Exception as exc:  # noqa: BLE001 - surfaced as exit code 2
            errors.append(AnalyzerError(
                path=display, function="<module>", rule=rule,
                detail=f"{type(exc).__name__}: {exc}",
            ))
        if timings is not None:
            timings[rule] = (
                timings.get(rule, 0.0) + time.perf_counter() - t0
            )
        for v in emitter.findings:
            codes = noqa.get(v.line, frozenset())
            if codes is None or v.rule in codes:
                continue
            violations.append(v)
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations, errors


def analyze_file(
    path: Path,
    root: Path | None = None,
    *,
    select: list[str] | None = None,
    only: list[str] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    display = str(path.relative_to(root)) if root else str(path)
    return analyze_source(path.read_text(), display, select=select, only=only)


def analyze_paths(
    targets: list[Path],
    *,
    select: list[str] | None = None,
    only: list[str] | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[list[LintViolation], list[AnalyzerError]]:
    """Two-pass concurrency lint over files/directories.

    Pass 1 parses everything and assembles one call graph spanning all
    analyzed modules (so a pool initializer in ``pool.py`` pulls the
    helpers it calls anywhere into REP201's reachable set); pass 2 runs
    the rules per file against that graph.
    """
    modules: list[tuple[str, ast.Module, str]] = []
    for target in targets:
        for path in iter_python_files(target):
            try:
                source = path.read_text()
            except (OSError, UnicodeDecodeError):
                continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            modules.append((str(path), tree, source))
    graph = build_graph([(d, t) for d, t, _s in modules])

    violations: list[LintViolation] = []
    errors: list[AnalyzerError] = []
    for display, _tree, source in modules:
        v, e = analyze_source(
            source, display, graph=graph, select=select, only=only,
            timings=timings,
        )
        violations.extend(v)
        errors.extend(e)
    return violations, errors


__all__ = [
    "CONCURRENCY_RULES",
    "RULE_SCOPES",
    "CallGraph",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "build_graph",
    "rules_for_path",
]
