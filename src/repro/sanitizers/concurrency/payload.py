"""REP202 — cross-process payload hygiene at submit sites.

The process backend's whole bit-exactness story rests on one rule: a
task submission carries *coordinates*, never pixels. Pickling an
ndarray into ``submit()`` silently works — and quietly re-introduces
the per-task copy the shared-memory design exists to eliminate, while a
pickled ``SharedMemory`` object resurrects the segment with a second
refcount. This rule taints every value that is (or views) bulk shared
data and flags it crossing a submit boundary, including closures over
tainted names (a lambda drags its cells through the pickler).

Scope is the process-pool code (``repro/exec/``): thread-pool submits
share an address space and legitimately pass closures (the DES backend
does exactly that).
"""

from __future__ import annotations

import ast

from repro.sanitizers.concurrency.callgraph import call_name, dotted_root
from repro.sanitizers.dataflow.engine import Emitter

RULE = "REP202"

#: Method names that hand a payload to another process.
SUBMIT_TAILS = frozenset({"submit", "apply_async", "map", "starmap"})

#: Call roots/tails whose results are bulk data, not coordinates.
_ARRAY_ROOTS = frozenset({"np", "numpy"})
_TAINT_CALL_TAILS = frozenset({"SharedMemory", "ndarray", "view"})
_VIEW_GLOBALS = frozenset({"_VIEWS", "_SEGMENTS"})


def _is_tainted_expr(node: ast.expr, tainted: set[str]) -> bool:
    """Does this expression denote shared bulk data?"""
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Starred):
        return _is_tainted_expr(node.value, tainted)
    if isinstance(node, ast.Subscript):
        root = dotted_root(node)
        if root in _VIEW_GLOBALS:
            return True
        return _is_tainted_expr(node.value, tainted)
    if isinstance(node, ast.Attribute):
        return _is_tainted_expr(node.value, tainted)
    if isinstance(node, ast.Call):
        tail = call_name(node.func)
        root = dotted_root(node.func)
        if tail in _TAINT_CALL_TAILS or root in _ARRAY_ROOTS:
            return True
        # slicing helpers on a tainted receiver stay tainted
        if isinstance(node.func, ast.Attribute):
            return _is_tainted_expr(node.func.value, tainted)
    return False


def _annotation_is_array(node: ast.expr | None) -> bool:
    if node is None:
        return False
    text = ast.unparse(node)
    return "ndarray" in text or "SharedMemory" in text


class PayloadRule:
    """Per-function taint pass; no interprocedural state needed."""

    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: object,
        emitter: Emitter,
    ) -> None:
        from repro.sanitizers.dataflow.engine import iter_functions

        for _qualname, fn in iter_functions(tree):
            self._check_function(fn, emitter)
        self._check_body(tree.body, set(), emitter)

    def _check_function(self, fn: ast.AST, emitter: Emitter) -> None:
        tainted: set[str] = set()
        args = getattr(fn, "args", None)
        if args is not None:
            for a in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            ):
                if _annotation_is_array(a.annotation):
                    tainted.add(a.arg)
        self._check_body(getattr(fn, "body", []), tainted, emitter)

    def _check_body(
        self, body: list[ast.stmt], tainted: set[str], emitter: Emitter
    ) -> None:
        for stmt in body:
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue  # nested scopes are visited on their own
            self._track_assignments(stmt, tainted)
            for call in self._submit_calls(stmt):
                self._check_submit(call, tainted, emitter)
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list):
                    self._check_body(
                        [s for s in inner if isinstance(s, ast.stmt)],
                        tainted,
                        emitter,
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                self._check_body(handler.body, tainted, emitter)

    def _track_assignments(self, stmt: ast.stmt, tainted: set[str]) -> None:
        pairs: list[tuple[ast.expr, ast.expr]] = []
        if isinstance(stmt, ast.Assign):
            pairs = [(t, stmt.value) for t in stmt.targets]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            pairs = [(stmt.target, stmt.value)]
        elif isinstance(stmt, ast.AugAssign):
            pairs = [(stmt.target, stmt.value)]
        for target, value in pairs:
            if isinstance(target, ast.Name):
                if _is_tainted_expr(value, tainted):
                    tainted.add(target.id)
                else:
                    tainted.discard(target.id)

    @staticmethod
    def _submit_calls(stmt: ast.stmt) -> list[ast.Call]:
        out = []
        for n in ast.walk(stmt):
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and (
                    n.func.attr in SUBMIT_TAILS
                    or n.func.attr.startswith("submit_")
                )
            ):
                out.append(n)
        return out

    def _check_submit(
        self, call: ast.Call, tainted: set[str], emitter: Emitter
    ) -> None:
        assert isinstance(call.func, ast.Attribute)
        payload = list(call.args)
        if call.func.attr in SUBMIT_TAILS and payload:
            head, payload = payload[0], payload[1:]
            # The callable slot still smuggles data if it is a closure.
            self._check_closure(head, tainted, emitter)
        for arg in payload:
            self._check_closure(arg, tainted, emitter)
            if _is_tainted_expr(arg, tainted):
                emitter.emit(
                    arg,
                    f"{call.func.attr}() payload {ast.unparse(arg)} "
                    "carries shared bulk data across the process "
                    "boundary; pass (row0, nrows) coordinates and read "
                    "the segment worker-side",
                )
        for kw in call.keywords:
            if kw.arg is None:
                continue
            if _is_tainted_expr(kw.value, tainted):
                emitter.emit(
                    kw.value,
                    f"{call.func.attr}() keyword {kw.arg!r} carries "
                    "shared bulk data across the process boundary; "
                    "pass coordinates instead",
                )

    @staticmethod
    def _check_closure(
        node: ast.expr, tainted: set[str], emitter: Emitter
    ) -> None:
        if not isinstance(node, ast.Lambda):
            return
        bound = {a.arg for a in node.args.args}
        for n in ast.walk(node.body):
            if (
                isinstance(n, ast.Name)
                and n.id in tainted
                and n.id not in bound
            ):
                emitter.emit(
                    node,
                    f"lambda closes over shared array {n.id!r}; the "
                    "pickled closure copies it into the worker — pass "
                    "coordinates instead",
                )
                return
