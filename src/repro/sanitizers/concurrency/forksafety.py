"""REP201 — fork-safety of the worker-pool setup.

Under the default ``fork`` start method a worker inherits a snapshot of
the parent at fork time: locks held by other threads stay locked
forever, thread objects point at threads that no longer exist, and file
handles are shared byte positions. Three placements of a concurrency
primitive are therefore hazardous:

* at module import time in a scope the pool machinery imports (the
  child re-sees the parent's object, not a fresh one);
* inside (or transitively reachable from) a pool *initializer* — the
  one function every forked child runs, where creating threads/locks or
  making blocking calls can deadlock against inherited state;
* in a pool-constructing function *before* the process pool is built —
  a lock created on the line above ``ProcessPoolExecutor(...)`` is
  copied into every child in whatever state it happens to be in.

Thread pools are exempt: ``ThreadPoolExecutor`` shares the address
space, so nothing is snapshotted (the DES backend's thread pool stays
clean by design).
"""

from __future__ import annotations

import ast

from repro.sanitizers.concurrency.callgraph import (
    PROCESS_POOL_TAILS,
    CallGraph,
    call_name,
)
from repro.sanitizers.dataflow.engine import Emitter

RULE = "REP201"

#: Constructors whose instances must not pre-exist a fork or be created
#: in a forked child's initializer.
HAZARD_CONSTRUCTORS = frozenset({
    "Thread", "Timer", "local",
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier",
    "open", "Popen",
})

#: Blocking calls that can deadlock a forked child during initialization
#: (they may wait on a thread/lock that only existed in the parent).
BLOCKING_TAILS = frozenset({"join", "acquire", "wait", "input"})


def _hazard_calls(node: ast.AST) -> list[tuple[ast.Call, str]]:
    out: list[tuple[ast.Call, str]] = []
    for n in ast.walk(node):
        if isinstance(n, ast.Call):
            tail = call_name(n.func)
            if tail in HAZARD_CONSTRUCTORS:
                out.append((n, tail))
    return out


def _blocking_calls(node: ast.AST) -> list[tuple[ast.Call, str]]:
    out: list[tuple[ast.Call, str]] = []
    for n in ast.walk(node):
        if isinstance(n, ast.Call):
            tail = call_name(n.func)
            if tail in BLOCKING_TAILS:
                out.append((n, tail))
    return out


class ForkSafetyRule:
    """Whole-module pass (needs the interprocedural graph)."""

    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: CallGraph,
        emitter: Emitter,
    ) -> None:
        self._check_module_level(tree, emitter)
        reachable = graph.reachable_from_initializers()
        for qualname, fn in self._functions(tree):
            if (display, qualname) in reachable:
                self._check_initializer_body(fn, qualname, emitter)
            if (display, qualname) in graph.pool_builders:
                self._check_pre_fork(fn, emitter)

    @staticmethod
    def _functions(tree: ast.Module):
        from repro.sanitizers.dataflow.engine import iter_functions

        return iter_functions(tree)

    def _check_module_level(self, tree: ast.Module, emitter: Emitter) -> None:
        """Hazard constructors executed at import time."""
        for stmt in tree.body:
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            for call, tail in _hazard_calls(stmt):
                emitter.emit(
                    call,
                    f"module-level {tail}() is snapshotted into every "
                    "forked worker in an arbitrary state; create it "
                    "after the pool, or per-process in the initializer "
                    "via spawn",
                )

    def _check_initializer_body(
        self, fn: ast.AST, qualname: str, emitter: Emitter
    ) -> None:
        """Hazards inside (or reachable from) a pool initializer."""
        for call, tail in _hazard_calls(fn):
            emitter.emit(
                call,
                f"{tail}() runs inside the pool initializer "
                f"(via {qualname}); a forked child must not create "
                "threads/locks/handles while inherited state is live",
            )
        for call, tail in _blocking_calls(fn):
            emitter.emit(
                call,
                f"blocking .{tail}() runs inside the pool initializer "
                f"(via {qualname}) and can deadlock against a lock "
                "snapshotted mid-acquire by fork",
            )

    def _check_pre_fork(self, fn: ast.AST, emitter: Emitter) -> None:
        """Hazards created lexically before the process pool is built."""
        pool_line: int | None = None
        for n in ast.walk(fn):
            if (
                isinstance(n, ast.Call)
                and call_name(n.func) in PROCESS_POOL_TAILS
            ):
                line = getattr(n, "lineno", 0)
                pool_line = line if pool_line is None else min(pool_line, line)
        if pool_line is None:
            return
        for call, tail in _hazard_calls(fn):
            if getattr(call, "lineno", 0) < pool_line:
                emitter.emit(
                    call,
                    f"{tail}() created before the process pool forks "
                    "(line "
                    f"{pool_line}); the child inherits it in an "
                    "unknown state — construct it after the pool",
                )
