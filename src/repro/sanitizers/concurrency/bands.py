"""REP203 — shared-write confinement to the ``(row0, nrows)`` band.

Worker side: every store into an shm-backed array inside a band task (a
function taking ``row0`` and ``nrows``) must be provably confined to
its band. The proof is a tiny symbolic interval analysis: slice bounds
are evaluated to linear forms over the band parameters and the local
constants, and a write ``[lo:hi]`` is confined exactly when

* ``lo`` scales with ``row0`` (and not ``nrows``), and
* ``hi - lo`` equals ``lo`` with every ``row0`` renamed to ``nrows``

— i.e. ``lo = k·row0 (+ c)`` and ``hi = k·(row0 + nrows) (+ c)`` for
one common symbolic scale ``k`` (``4·MB_SIZE`` pixel rows per MB row in
the real kernels). Anything the algebra cannot linearize is flagged
conservatively: an unprovable write into shared memory *is* the bug.

Host side: once a frame's tasks are submitted, the host may not write
any shared segment until a barrier (``collect``/``result``/``wait``/
…) orders the writes; a may-analysis over the function CFG (the
layer-3 worklist engine) flags stores in the submitted-but-uncollected
window.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.sanitizers.concurrency.callgraph import call_name
from repro.sanitizers.dataflow.cfg import build_cfg
from repro.sanitizers.dataflow.engine import (
    Emitter,
    FunctionContext,
    run_analysis,
)

RULE = "REP203"

#: Band parameters every worker task is keyed on.
BAND_PARAMS = ("row0", "nrows")

#: Call tails that order submitted work before the host may write again.
BARRIER_TAILS = frozenset({
    "collect", "_collect", "result", "wait", "join", "barrier",
    "shutdown", "drain",
})

# --------------------------------------------------------------------------
# linear forms: {(sorted symbol tuple): int coefficient}; key () is the
# constant term. None means "not linear in anything we can reason about".

Lin = dict[tuple[str, ...], int]


def _lin_const(c: int) -> Lin:
    return {(): c} if c else {}


def _lin_sym(name: str) -> Lin:
    return {(name,): 1}


def _lin_add(a: Lin | None, b: Lin | None, sign: int = 1) -> Lin | None:
    if a is None or b is None:
        return None
    out = dict(a)
    for mono, coeff in b.items():
        val = out.get(mono, 0) + sign * coeff
        if val:
            out[mono] = val
        else:
            out.pop(mono, None)
    return out


def _lin_mul(a: Lin | None, b: Lin | None) -> Lin | None:
    if a is None or b is None:
        return None
    out: Lin = {}
    for ma, ca in a.items():
        for mb, cb in b.items():
            mono = tuple(sorted(ma + mb))
            # nonlinear in a band parameter -> outside the theory
            if sum(s in BAND_PARAMS for s in mono) > 1:
                return None
            val = out.get(mono, 0) + ca * cb
            if val:
                out[mono] = val
            else:
                out.pop(mono, None)
    return out


class _LinEnv:
    """Sequential evaluation environment for one function body."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.bindings: dict[str, Lin] = {}
        for a in (
            list(fn.args.posonlyargs)
            + list(fn.args.args)
            + list(fn.args.kwonlyargs)
        ):
            self.bindings[a.arg] = _lin_sym(a.arg)

    def eval(self, node: ast.expr | None) -> Lin | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            return _lin_const(node.value) if isinstance(node.value, int) else None
        if isinstance(node, ast.Name):
            return self.bindings.get(node.id, _lin_sym(node.id))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return _lin_add(_lin_const(0), self.eval(node.operand), sign=-1)
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            if isinstance(node.op, ast.Add):
                return _lin_add(left, right)
            if isinstance(node.op, ast.Sub):
                return _lin_add(left, right, sign=-1)
            if isinstance(node.op, ast.Mult):
                return _lin_mul(left, right)
            return None
        return None

    def assign(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            lin = self.eval(value)
            if lin is not None:
                self.bindings[target.id] = lin
            else:
                self.bindings.pop(target.id, None)


def _band_confined(lo: Lin, hi: Lin) -> bool:
    """``[lo, hi)`` ⊆ ``[k·row0+c, k·(row0+nrows)+c)`` for some k > 0?"""
    if any("nrows" in mono for mono in lo):
        return False
    row_terms = {m: c for m, c in lo.items() if "row0" in m}
    if not row_terms or any(c <= 0 for c in row_terms.values()):
        return False
    expected = {
        tuple(sorted("nrows" if s == "row0" else s for s in m)): c
        for m, c in row_terms.items()
    }
    diff = _lin_add(hi, lo, sign=-1)
    return diff == expected


# --------------------------------------------------------------------------
# shm-backed base detection


def _is_shm_base(node: ast.expr, aliases: set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in aliases
    if isinstance(node, ast.Subscript):
        base = node.value
        # Both the worker-local ``_VIEWS[...]`` and a qualified
        # ``pool._VIEWS[...]`` reach the same shared segments.
        tail = (
            base.attr if isinstance(base, ast.Attribute)
            else base.id if isinstance(base, ast.Name)
            else None
        )
        if tail in ("_VIEWS", "_SEGMENTS"):
            return True
        return _is_shm_base(base, aliases)
    if isinstance(node, ast.Call):
        tail = call_name(node.func)
        return tail == "view" or (tail or "").endswith("_view")
    return False


def _shm_slice_writes(
    stmt: ast.stmt, aliases: set[str]
) -> list[tuple[ast.Subscript, ast.expr]]:
    """(subscript target, slice expr) stores into shm-backed arrays."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    out = []
    for t in targets:
        if isinstance(t, ast.Subscript) and _is_shm_base(t.value, aliases):
            out.append((t, t.slice))
    return out


def _row_slice(slice_node: ast.expr) -> ast.Slice | None:
    """The leading (row) slice of ``arr[rows]`` / ``arr[rows, cols]``."""
    node = slice_node
    if isinstance(node, ast.Tuple) and node.elts:
        node = node.elts[0]
    return node if isinstance(node, ast.Slice) else None


# --------------------------------------------------------------------------
# the rule


class BandConfinementRule:
    """Worker-side symbolic proof + host-side CFG window check."""

    rule = RULE

    def run(
        self,
        tree: ast.Module,
        display: str,
        graph: object,
        emitter: Emitter,
    ) -> None:
        from repro.sanitizers.dataflow.engine import iter_functions

        for qualname, fn in iter_functions(tree):
            params = {
                a.arg
                for a in list(fn.args.posonlyargs) + list(fn.args.args)
                + list(fn.args.kwonlyargs)
            }
            if all(p in params for p in BAND_PARAMS):
                self._check_worker(fn, emitter)
            analysis = _HostWriteWindowAnalysis()
            ctx = FunctionContext(
                fn=fn, qualname=qualname, module_path=display, summaries={}
            )
            cfg = build_cfg(fn, qualname=qualname)
            run_analysis(cfg, analysis, ctx, emitter)

    # ---------------------- worker-side confinement ----------------------

    def _check_worker(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, emitter: Emitter
    ) -> None:
        env = _LinEnv(fn)
        aliases: set[str] = set()
        self._walk_worker(fn.body, env, aliases, emitter)

    def _walk_worker(
        self,
        body: list[ast.stmt],
        env: _LinEnv,
        aliases: set[str],
        emitter: Emitter,
    ) -> None:
        for stmt in body:
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        if _is_shm_base(stmt.value, aliases):
                            aliases.add(t.id)
                        else:
                            aliases.discard(t.id)
                    env.assign(t, stmt.value)
            for target, slice_node in _shm_slice_writes(stmt, aliases):
                self._check_write(target, slice_node, env, emitter)
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list):
                    self._walk_worker(
                        [s for s in inner if isinstance(s, ast.stmt)],
                        env, aliases, emitter,
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                self._walk_worker(handler.body, env, aliases, emitter)

    def _check_write(
        self,
        target: ast.Subscript,
        slice_node: ast.expr,
        env: _LinEnv,
        emitter: Emitter,
    ) -> None:
        rows = _row_slice(slice_node)
        if rows is None or rows.step is not None:
            emitter.emit(
                target,
                "worker-side store into shared memory without a plain "
                "row slice; cannot prove it stays inside the "
                "(row0, nrows) band",
            )
            return
        if rows.lower is None or rows.upper is None:
            emitter.emit(
                target,
                "worker-side store spans the whole shared plane; the "
                "band contract requires [k*row0 : k*(row0+nrows)]",
            )
            return
        lo, hi = env.eval(rows.lower), env.eval(rows.upper)
        if lo is None or hi is None:
            emitter.emit(
                target,
                "worker-side shared-memory write bounds are not linear "
                "in (row0, nrows); confinement is unprovable",
            )
            return
        if not _band_confined(lo, hi):
            emitter.emit(
                target,
                "worker-side shared-memory write escapes its "
                "(row0, nrows) band: bounds must be "
                "k*row0(+c) : k*(row0+nrows)(+c)",
            )


# --------------------------------------------------------------------------
# host-side: no shared write while submitted work is uncollected


class _HostWriteWindowAnalysis:
    """May-analysis: ``True`` = a submit may be pending, unbarriered."""

    rule = RULE

    def initial_state(self, ctx: FunctionContext) -> bool:
        return False

    def join(self, a: bool, b: bool) -> bool:
        return a or b

    def transfer(
        self, elem: Any, state: bool, emit: Emitter, ctx: FunctionContext
    ) -> bool:
        node = getattr(elem, "node", elem)
        if not isinstance(node, ast.AST):
            return state
        if state:
            for stmt in [node] if isinstance(node, ast.stmt) else []:
                for target, _slice in _shm_slice_writes(stmt, set()):
                    emit.emit(
                        target,
                        "host writes a shared segment while submitted "
                        "tasks may still be running; collect the "
                        "futures (or hit a barrier) first",
                    )
        for call in ast.walk(node) if isinstance(node, ast.AST) else []:
            if not isinstance(call, ast.Call):
                continue
            tail = call_name(call.func)
            if tail is None:
                continue
            if tail == "submit" or tail.startswith("submit_"):
                state = True
            elif tail in BARRIER_TAILS:
                state = False
        return state

    def at_exit(
        self,
        state: bool,
        emit: Emitter,
        ctx: FunctionContext,
        exceptional: bool,
    ) -> None:
        return None
