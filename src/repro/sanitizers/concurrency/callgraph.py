"""Interprocedural call graph for the concurrency rules.

REP201's fork-safety property is *reachability*: a hazard is a problem
not where it is written but where it can run — before the fork, or
inside a pool initializer that every forked worker executes. That needs
a (deliberately cheap) whole-scope call graph: every function defined in
the analyzed modules, call edges resolved by trailing name, and the set
of functions passed as ``initializer=`` to a process-pool constructor.

Resolution by trailing name over-approximates (two modules may both
define ``_warm``), which is the right direction for a safety lint: a
call that *might* reach a hazard is flagged. All containers iterate in
sorted order so findings are byte-stable across ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Constructors that start a worker pool. The distinction matters:
#: only *process* pools fork/spawn, so only they make pre-existing
#: threads/locks dangerous (thread pools are REP201-neutral).
PROCESS_POOL_TAILS = frozenset({
    "ProcessPoolExecutor",
    "Pool",  # multiprocessing.Pool / get_context(...).Pool
})


def call_name(node: ast.expr) -> str | None:
    """Trailing name of a call target (``a.b.c()`` -> ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_root(node: ast.expr) -> str | None:
    """Leftmost name of a dotted/subscripted expression, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@dataclass
class FunctionInfo:
    """One function definition known to the graph."""

    module: str  # display path
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.qualname)


@dataclass
class CallGraph:
    """Functions, tail-name call edges, and pool-initializer roots."""

    #: trailing name -> definitions carrying it (sorted at build time)
    by_tail: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    #: (module, qualname) -> trailing names it calls
    calls: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    #: trailing names passed as ``initializer=`` to a process pool
    initializers: set[str] = field(default_factory=set)
    #: (module, qualname) of functions that construct a process pool
    pool_builders: set[tuple[str, str]] = field(default_factory=set)

    def add_module(self, display: str, tree: ast.Module) -> None:
        from repro.sanitizers.dataflow.engine import iter_functions

        for qualname, fn in iter_functions(tree):
            info = FunctionInfo(module=display, qualname=qualname, node=fn)
            self.by_tail.setdefault(fn.name, []).append(info)
            callees: set[str] = set()
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                tail = call_name(node.func)
                if tail is not None:
                    callees.add(tail)
                self._note_pool_call(node, info)
            self.calls[info.key] = callees
        # Module-level pool construction (rare but legal) still registers
        # its initializer.
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._note_pool_call(node, None)

    def _note_pool_call(
        self, node: ast.Call, owner: FunctionInfo | None
    ) -> None:
        if call_name(node.func) not in PROCESS_POOL_TAILS:
            return
        if owner is not None:
            self.pool_builders.add(owner.key)
        for kw in node.keywords:
            if kw.arg == "initializer":
                tail = call_name(kw.value) or (
                    kw.value.id if isinstance(kw.value, ast.Name) else None
                )
                if tail:
                    self.initializers.add(tail)

    def reachable_from_initializers(self) -> set[tuple[str, str]]:
        """Every function a pool initializer can transitively call."""
        seen: set[tuple[str, str]] = set()
        frontier: list[FunctionInfo] = []
        for tail in sorted(self.initializers):
            frontier.extend(self.by_tail.get(tail, []))
        while frontier:
            info = frontier.pop()
            if info.key in seen:
                continue
            seen.add(info.key)
            for tail in sorted(self.calls.get(info.key, ())):
                frontier.extend(self.by_tail.get(tail, []))
        return seen


def build_graph(modules: list[tuple[str, ast.Module]]) -> CallGraph:
    """Assemble the graph over every (display, tree) pair, sorted."""
    graph = CallGraph()
    for display, tree in sorted(modules, key=lambda m: m[0]):
        graph.add_module(display, tree)
    for infos in graph.by_tail.values():
        infos.sort(key=lambda i: i.key)
    return graph
