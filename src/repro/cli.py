"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro platforms
    python -m repro run --platform SysHK --sa 64 --refs 2 --frames 100
    python -m repro profile --platform SysHK --frames 50
    python -m repro sweep --what sa|refs
    python -m repro encode in.yuv --size 352x288 --out clip.fevs
    python -m repro decode clip.fevs --out recon.yuv
    python -m repro trace --platform SysHK --frames 5 --out trace.json
    python -m repro lint src
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform, list_platforms
from repro.report import ascii_series, format_table


def _parse_fault_spec(flag: str, spec: str, kind: str, want_param: bool):
    """Validate one ``DEV@FRAME[:X]`` token eagerly.

    Every malformed field — missing separator, empty device, non-numeric
    frame/parameter, or a value the fault model rejects (frame < 1,
    factor < 1, hang without a positive duration) — exits with a message
    naming the offending flag and token, never a bare traceback.
    """
    from repro.hw.noise import FaultEvent

    expected = "DEV@FRAME" + (":PARAM" if want_param else "")

    def bad(why: str) -> SystemExit:
        return SystemExit(
            f"error: bad {flag} spec {spec!r}: {why} (expected {expected})"
        )

    dev, at, rest = spec.partition("@")
    if not at:
        raise bad("missing '@'")
    if not dev:
        raise bad("empty device name")
    param = None
    if want_param:
        frame_text, colon, param_text = rest.partition(":")
        if not colon:
            raise bad("missing ':PARAM'")
        try:
            param = float(param_text)
        except ValueError:
            raise bad(f"non-numeric parameter {param_text!r}") from None
    else:
        frame_text = rest
        if ":" in frame_text:
            raise bad("unexpected ':PARAM' (this fault takes none)")
    try:
        frame = int(frame_text)
    except ValueError:
        raise bad(f"non-integer frame {frame_text!r}") from None
    kwargs: dict = {}
    if kind == "hang":
        kwargs["duration"] = int(param)
    elif kind in ("degrade", "copy_fail"):
        kwargs["factor"] = param
    try:
        return FaultEvent(frame=frame, device=dev, kind=kind, **kwargs)
    except ValueError as exc:
        raise bad(str(exc)) from None


#: (argparse attribute, flag, fault kind, takes a :PARAM field)
_FAULT_FLAGS = (
    ("drop", "--drop", "dropout", False),
    ("hang", "--hang", "hang", True),
    ("degrade", "--degrade", "degrade", True),
    ("copy_fail", "--copy-fail", "copy_fail", True),
)


def _fault_schedule(args: argparse.Namespace):
    """Build a FaultSchedule from the repeatable --drop/--hang/... flags.

    Formats: ``--drop DEV@FRAME``, ``--hang DEV@FRAME:DURATION``,
    ``--degrade DEV@FRAME:FACTOR``, ``--copy-fail DEV@FRAME:FACTOR``.
    Specs are validated eagerly, before anything is constructed or run.
    """
    from repro.hw.noise import FaultSchedule

    events = [
        _parse_fault_spec(flag, spec, kind, want_param)
        for attr, flag, kind, want_param in _FAULT_FLAGS
        for spec in getattr(args, attr, None) or []
    ]
    return FaultSchedule(events)


def _add_fault_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--drop", action="append", metavar="DEV@FRAME",
                     help="permanently drop a device at an inter frame")
    sub.add_argument("--hang", action="append", metavar="DEV@FRAME:DUR",
                     help="hang a device for DUR frames, then recover")
    sub.add_argument("--degrade", action="append", metavar="DEV@FRAME:FACTOR",
                     help="slow a device's compute by FACTOR from a frame on")
    sub.add_argument("--copy-fail", action="append", metavar="DEV@FRAME:FACTOR",
                     help="slow a device's copy engines by FACTOR")


def _add_workload_args(sub: argparse.ArgumentParser) -> None:
    """Stream-workload flags shared by ``serve`` and ``fleet``.

    ``--streams``/``--arrival-rate`` default to None so a clash with
    ``--submit`` (which replaces the generated workload entirely) can be
    detected and rejected instead of silently ignored.
    """
    sub.add_argument("--streams", type=int, default=None,
                     help="number of generated streams (default 4; "
                          "cannot be combined with --submit)")
    sub.add_argument("--frames", type=int, default=30,
                     help="inter frames per stream")
    sub.add_argument("--fps", type=float, default=25.0,
                     help="per-stream target fps (uniform mix)")
    sub.add_argument("--deadline-class", default="standard",
                     choices=("realtime", "standard", "background"))
    sub.add_argument("--mix", default="uniform",
                     choices=("uniform", "broadcast", "conference"),
                     help="stream-mix preset cycled over the workload")
    sub.add_argument("--arrival-rate", type=float, default=None,
                     help="Poisson arrival rate in streams/s (default 0 = "
                          "burst; cannot be combined with --submit)")
    sub.add_argument("--seed", type=int, default=0,
                     help="arrival-process RNG seed")
    sub.add_argument("--sa", type=int, default=32, help="search-area side")
    sub.add_argument("--refs", type=int, default=1)
    sub.add_argument("--submit", action="append",
                     metavar="AT:FPS:FRAMES[:CLASS]",
                     help="scripted submission (repeatable); takes the "
                          "place of the generated workload, so --streams "
                          "and --arrival-rate are rejected alongside it")


def _codec_cfg(args: argparse.Namespace) -> CodecConfig:
    slices = getattr(args, "slices", 1)
    width, height = getattr(args, "size", None) or (1920, 1088)
    return CodecConfig(
        width=width,
        height=height,
        search_range=args.sa // 2,
        num_ref_frames=args.refs,
        num_slices=slices,
        deblock_across_slices=slices == 1,
    )


def cmd_platforms(_args: argparse.Namespace) -> int:
    rows = []
    for name in list_platforms():
        p = get_platform(name)
        kinds = "+".join(d.spec.kind for d in p.devices)
        fw = FevesFramework(p, CodecConfig(width=1920, height=1088, search_range=16))
        fw.run_model(8)
        rows.append([name, kinds, len(p.devices), f"{fw.steady_state_fps():.1f}"])
    print(format_table(
        ["platform", "devices", "n", "fps @1080p 32x32 1RF"], rows,
        title="Available platform presets (simulated)",
    ))
    return 0


def _enable_protocol_journal(args: argparse.Namespace) -> None:
    """Switch the SAN-G lifecycle journal on for a ``--sanitize`` run."""
    if getattr(args, "sanitize", False):
        from repro.sanitizers.protocols.journal import JOURNAL

        JOURNAL.reset()
        JOURNAL.enable()


def cmd_run(args: argparse.Namespace) -> int:
    _enable_protocol_journal(args)
    if getattr(args, "backend", "sim") == "process":
        return _cmd_run_process(args)
    cfg = _codec_cfg(args)
    faults = _fault_schedule(args)
    try:
        fw = FevesFramework(
            get_platform(args.platform),
            cfg,
            FrameworkConfig(
                centric=args.centric,
                rstar_parallel=getattr(args, "rstar_parallel", False),
                faults=faults,
            ),
        )
    except KeyError as exc:
        # unknown device in a fault spec — surface it as a CLI error
        raise SystemExit(f"error: {exc.args[0]}") from None
    fw.run_model(args.frames)
    times = fw.frame_times_ms()
    print(ascii_series(
        {"ms/frame": times},
        hline=40.0,
        hline_label="real-time (40ms)",
        y_label=(
            f"{args.platform}, 1080p, {args.sa}x{args.sa} SA, "
            f"{args.refs} RF — per-frame encoding time"
        ),
    ))
    print(f"\nsteady-state: {fw.steady_state_fps():.1f} fps   "
          f"R* device: {fw.rstar_device}   "
          f"LB overhead: {fw.scheduling_overhead_ms:.2f} ms/frame")
    last = fw.reports[-1].decision
    names = [d.name for d in fw.platform.devices]
    print(f"final distributions over {names}:")
    print(f"  ME={last.m.rows}  INT={last.l.rows}  SME={last.s.rows}")
    if not faults.empty:
        summary = fw.summary()
        print(f"live devices at end: {summary['live_devices']}   "
              f"fault time lost: {summary['fault_time_lost_s'] * 1e3:.1f} ms")
        for entry in fw.fault_log:
            if not entry.eventful:
                continue
            what = []
            if entry.evicted:
                what.append("evicted " + ",".join(entry.evicted))
            if entry.readmitted:
                what.append("readmitted " + ",".join(entry.readmitted))
            print(f"  frame {entry.frame_index}: {'; '.join(what)} "
                  f"(lost {entry.time_lost_s * 1e3:.1f} ms)")
    if getattr(args, "fault_log", None):
        from repro.hw.trace_export import export_fault_log

        n = export_fault_log(fw.fault_log, args.fault_log)
        print(f"wrote {n} fault-log entries to {args.fault_log}")
    if args.sanitize:
        from repro.sanitizers import TimelineSanitizer

        report = TimelineSanitizer.for_framework(fw).check_run(fw)
        report.extend(TimelineSanitizer.check_protocols())
        print(report.summary())
        for v in report.violations[:20]:
            print(f"  {v}")
        if not report.clean:
            return 1
    return 0


def _encoded_equal(a, b) -> bool:
    """Bit-identity of two encoded frames (bits, recon planes, modes)."""
    import numpy as np

    return (
        a.index == b.index
        and a.is_intra == b.is_intra
        and a.bits == b.bits
        and a.mode_histogram == b.mode_histogram
        and np.array_equal(a.recon.y, b.recon.y)
        and np.array_equal(a.recon.u, b.recon.u)
        and np.array_equal(a.recon.v, b.recon.v)
    )


def _cmd_run_process(args: argparse.Namespace) -> int:
    """``run --backend process``: really-parallel encode vs the serial encoder."""
    import time

    from repro.codec.encoder import ReferenceEncoder
    from repro.video.generator import SyntheticSequence

    if not _fault_schedule(args).empty:
        raise SystemExit(
            "error: --backend process cannot inject faults (simulation-only)"
        )
    cfg = _codec_cfg(args)
    frames = SyntheticSequence(
        width=cfg.width, height=cfg.height, seed=7
    ).frames(args.frames)

    ref = ReferenceEncoder(cfg)
    t0 = time.perf_counter()
    serial = [ref.encode_frame(f) for f in frames]
    serial_s = time.perf_counter() - t0

    try:
        fw = FevesFramework(
            get_platform(args.platform),
            cfg,
            FrameworkConfig(
                compute="real",
                backend="process",
                exec_workers=args.workers,
                centric=args.centric,
            ),
        )
    except ValueError as exc:
        # e.g. a typo'd $REPRO_EXEC_START_METHOD / $REPRO_EXEC_TIMEOUT_S,
        # validated eagerly at backend construction.
        raise SystemExit(f"error: {exc}") from None
    if args.sanitize:
        fw.manager.sanitize = True
    with fw:
        t0 = time.perf_counter()
        outcomes = fw.encode(frames)
        process_s = time.perf_counter() - t0
        accuracy = fw.accuracy_report().summary()

    identical = all(
        o.encoded is not None and _encoded_equal(s, o.encoded)
        for s, o in zip(serial, outcomes)
    )
    san_report = None
    san_records = 0
    if args.sanitize:
        from repro.sanitizers import TimelineSanitizer
        from repro.sanitizers.violations import SanitizerReport

        san_report = SanitizerReport()
        for f, entries in sorted(fw.manager.exec_journal.items()):
            san_records += len(entries)
            san_report.extend(TimelineSanitizer.check_exec(entries, frame=f))
        san_report.extend(TimelineSanitizer.check_protocols())
    n = len(frames)
    workers = fw.manager.workers
    speedup = serial_s / process_s if process_s > 0 else float("inf")
    print(f"{args.platform}, {cfg.width}x{cfg.height}, {n} frames, "
          f"{workers} workers (process backend)")
    print(f"  serial encoder : {n / serial_s:7.2f} fps  ({serial_s:.2f} s)")
    print(f"  process backend: {n / process_s:7.2f} fps  ({process_s:.2f} s)  "
          f"-> {speedup:.2f}x")
    print(f"  bit-identical to serial: {'yes' if identical else 'NO'}")
    if accuracy.get("frames", 0):
        print(f"  LP makespan error (predicted vs measured, "
              f"{accuracy['frames']} LP frames): "
              f"mean {100 * accuracy['makespan_error_mean']:.1f}%, "
              f"max {100 * accuracy['makespan_error_max']:.1f}%")
    else:
        print("  LP makespan error: n/a (no LP-scheduled frames; "
              "encode more frames)")
    if san_report is not None:
        print(f"  shared-memory sanitizer: "
              f"{'clean' if san_report.clean else san_report.summary()} "
              f"({san_records} journal records, "
              f"{len(fw.manager.exec_journal)} frames)")
        if not san_report.clean:
            for v in san_report.violations[:20]:
                print(f"    {v}", file=sys.stderr)
            return 1
    return 0 if identical else 1


def _serve_workload(args: argparse.Namespace) -> list:
    """Build the stream workload for ``serve``/``fleet``.

    ``--submit`` replaces the generated workload entirely, so combining
    it with the generator's shape flags would silently ignore them —
    that clash is rejected eagerly, naming the offending flag.
    """
    from repro.service import build_workload, parse_submit_specs

    if args.submit:
        clash = [
            flag
            for flag, value in (
                ("--streams", args.streams),
                ("--arrival-rate", args.arrival_rate),
            )
            if value is not None
        ]
        if clash:
            raise SystemExit(
                f"error: {' and '.join(clash)} cannot be combined with "
                f"--submit: scripted submissions define their own stream "
                f"count and arrival times"
            )
        try:
            return parse_submit_specs(args.submit)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
    try:
        return build_workload(
            n_streams=args.streams if args.streams is not None else 4,
            n_frames=args.frames,
            fps_target=args.fps,
            deadline_class=args.deadline_class,
            mix=args.mix,
            arrival_rate=(
                args.arrival_rate if args.arrival_rate is not None else 0.0
            ),
            seed=args.seed,
            search_range=args.sa // 2,
            num_ref_frames=args.refs,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import EncodingService, ServiceConfig

    _enable_protocol_journal(args)
    faults = _fault_schedule(args)
    workload = _serve_workload(args)
    try:
        service = EncodingService(
            ServiceConfig(
                platform=args.platform,
                headroom=args.headroom,
                max_queue=args.max_queue,
                faults=faults,
            )
        )
        metrics = service.run(workload)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None

    rows = []
    for m in metrics.streams:
        rows.append([
            m.stream_id,
            m.deadline_class,
            f"{m.fps_target:g}",
            m.state,
            m.frames,
            f"{m.p50_ms:.1f}",
            f"{m.p95_ms:.1f}",
            f"{m.p99_ms:.1f}",
            f"{100 * m.deadline_miss_rate:.1f}%",
            f"{m.achieved_fps:.1f}",
            f"{m.wait_s:.2f}",
        ])
    print(format_table(
        ["stream", "class", "fps", "state", "frames",
         "p50 ms", "p95 ms", "p99 ms", "miss", "ach fps", "wait s"],
        rows,
        title=(
            f"{args.platform} — {len(metrics.streams)} streams, "
            f"{metrics.rounds} rounds, {metrics.duration_s:.2f} s served"
        ),
    ))
    adm = metrics.admission
    print(
        f"\naggregate: p50={metrics.p50_ms:.1f} ms  p95={metrics.p95_ms:.1f} ms  "
        f"p99={metrics.p99_ms:.1f} ms  deadline-miss="
        f"{100 * metrics.deadline_miss_rate:.1f}%"
    )
    print(
        f"admission: {adm.get('admitted', 0)} admitted, "
        f"{adm.get('queued', 0)} queued, {adm.get('rejected', 0)} rejected, "
        f"{adm.get('completed', 0)} completed"
    )
    util = "  ".join(
        f"{name.split('.')[0]}={100 * u:.0f}%"
        for name, u in metrics.device_utilization.items()
    )
    print(f"device utilization: {util}")
    if metrics.fault_events:
        print(f"fault events observed across streams: {metrics.fault_events}")
    if args.json:
        service.export_metrics(args.json)
        print(f"wrote metrics JSON to {args.json}")
    if args.trace:
        n = service.export_trace(args.trace)
        print(f"wrote {n} trace events ({len(metrics.streams)} stream pids) "
              f"to {args.trace}")
    if args.sanitize:
        from repro.sanitizers import TimelineSanitizer

        report = TimelineSanitizer.check_service(service)
        report.extend(TimelineSanitizer.check_protocols())
        print(report.summary())
        for v in report.violations[:20]:
            print(f"  {v}")
        if not report.clean:
            return 1
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.cluster import (
        AutoscaleConfig,
        Cluster,
        ClusterConfig,
        NodeSpec,
        parse_node_fault_specs,
    )

    _enable_protocol_journal(args)
    workload = _serve_workload(args)
    try:
        node_faults = parse_node_fault_specs(args.node_fault or [])
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    platforms = [p.strip() for p in args.platforms.split(",") if p.strip()]
    if not platforms:
        raise SystemExit("error: --platforms must name at least one platform")
    for name in platforms:
        if name not in list_platforms():
            raise SystemExit(
                f"error: unknown platform {name!r} in --platforms "
                f"(available: {', '.join(list_platforms())})"
            )
    if args.nodes < 1:
        raise SystemExit(f"error: --nodes must be >= 1, got {args.nodes}")
    specs = tuple(
        NodeSpec(
            node_id=f"n{i}",
            platform=platforms[i % len(platforms)],
            headroom=args.headroom,
            max_queue=args.max_queue,
        )
        for i in range(args.nodes)
    )
    known = {s.node_id for s in specs}
    unknown = sorted(node_faults.node_ids() - known)
    if unknown and not args.autoscale:
        raise SystemExit(
            f"error: --node-fault names unknown node(s) "
            f"{', '.join(unknown)}; the fleet has {', '.join(sorted(known))}"
        )
    autoscale = AutoscaleConfig(
        enabled=args.autoscale,
        max_nodes=args.max_nodes,
        template=tuple(platforms),
        p99_slo_ms=args.p99_slo,
    )
    try:
        cluster = Cluster(
            ClusterConfig(
                nodes=specs,
                policy=args.policy,
                global_queue=args.global_queue,
                node_faults=node_faults,
                autoscale=autoscale,
            )
        )
        metrics = cluster.run(workload)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None

    rows = []
    for n in metrics.nodes:
        rows.append([
            n.node_id,
            n.platform,
            n.state,
            n.sessions,
            n.frames,
            n.rounds,
            f"{n.p99_ms:.1f}" if n.frames else "-",
            f"{100 * n.deadline_miss_rate:.1f}%" if n.frames else "-",
        ])
    print(format_table(
        ["node", "platform", "state", "sessions", "frames", "rounds",
         "p99 ms", "miss"],
        rows,
        title=(
            f"{metrics.n_nodes}-node fleet ({args.policy}) — "
            f"{sum(metrics.streams.values())} streams, "
            f"{metrics.duration_s:.2f} s served"
        ),
    ))
    if metrics.classes:
        crows = [
            [name, c["frames"], f"{c['p50_ms']:.1f}", f"{c['p95_ms']:.1f}",
             f"{c['p99_ms']:.1f}", f"{100 * c['deadline_miss_rate']:.1f}%"]
            for name, c in metrics.classes.items()
        ]
        print()
        print(format_table(
            ["class", "frames", "p50 ms", "p95 ms", "p99 ms", "miss"],
            crows,
        ))
    print(
        f"\naggregate: p50={metrics.p50_ms:.1f} ms  p95={metrics.p95_ms:.1f} ms  "
        f"p99={metrics.p99_ms:.1f} ms  deadline-miss="
        f"{100 * metrics.deadline_miss_rate:.1f}%"
    )
    outcomes = "  ".join(f"{k}={v}" for k, v in sorted(metrics.streams.items()))
    print(f"streams: {outcomes}  peak-concurrent={metrics.peak_concurrent}")
    print(
        f"dispatch: queue-wait p95={metrics.queue_wait_p95_s * 1e3:.1f} ms  "
        f"reroutes={metrics.reroutes}  evicted={metrics.evicted_sessions}  "
        f"node-faults={metrics.node_faults}"
    )
    if metrics.lp_cache:
        cache = "  ".join(
            f"{plat}={100 * c['hit_rate']:.0f}%"
            for plat, c in metrics.lp_cache.items()
        )
        print(f"lp-cache hit rate: {cache}")
    for e in metrics.autoscale_events:
        print(
            f"autoscale: t={e['at_s']:.2f}s {e['action']} {e['node_id']} "
            f"({e['platform']}): {e['reason']}"
        )
    if args.json:
        cluster.export_metrics(args.json)
        print(f"wrote metrics JSON to {args.json}")
    if args.trace:
        n = cluster.export_trace(args.trace)
        print(f"wrote {n} trace events (node-namespaced pids) to {args.trace}")
    if args.sanitize:
        from repro.sanitizers import TimelineSanitizer

        report = TimelineSanitizer.check_cluster(cluster)
        report.extend(TimelineSanitizer.check_protocols())
        print(report.summary())
        for v in report.violations[:20]:
            print(f"  {v}")
        if not report.clean:
            return 1
    return 0


def _cmd_profile_process(args: argparse.Namespace) -> int:
    """``profile --backend process``: measured exec-phase breakdown."""
    from repro.util.profiling import PhaseProfiler
    from repro.video.generator import SyntheticSequence

    cfg = _codec_cfg(args)
    frames = SyntheticSequence(
        width=cfg.width, height=cfg.height, seed=7
    ).frames(args.frames)
    profiler = PhaseProfiler()
    try:
        fw = FevesFramework(
            get_platform(args.platform), cfg,
            FrameworkConfig(
                compute="real", backend="process", exec_workers=args.workers
            ),
            profiler=profiler,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    with fw:
        fw.encode(frames)
        accuracy = fw.accuracy_report().summary()
        workers = fw.manager.workers
    rows = [
        [r["phase"], r["calls"], f"{r['total_ms']:.2f}",
         f"{r['ms_per_frame']:.3f}", f"{100 * r['share']:.1f}%"]
        for r in profiler.report(args.frames)
    ]
    print(format_table(
        ["phase", "calls", "total ms", "ms/frame", "share"], rows,
        title=(
            f"process backend: {args.platform}, {cfg.width}x{cfg.height}, "
            f"{args.frames} frames, {workers} workers"
        ),
    ))
    if accuracy.get("frames", 0):
        phase_err = ", ".join(
            f"{k} {100 * v:.1f}%"
            for k, v in accuracy["phase_error_mean"].items()
        )
        print(f"\nsimulated-vs-measured over {accuracy['frames']} LP frames: "
              f"makespan error mean {100 * accuracy['makespan_error_mean']:.1f}% "
              f"max {100 * accuracy['makespan_error_max']:.1f}% ({phase_err})")
    else:
        print("\nsimulated-vs-measured: no LP-scheduled frames yet")
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps({
            "platform": args.platform,
            "backend": "process",
            "width": cfg.width,
            "height": cfg.height,
            "frames": args.frames,
            "workers": workers,
            "accuracy": accuracy,
            **profiler.to_dict(args.frames),
        }, indent=1))
        print(f"wrote profile JSON to {args.json}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    _enable_protocol_journal(args)
    if getattr(args, "backend", "sim") == "process":
        return _cmd_profile_process(args)
    from repro.util.profiling import PhaseProfiler

    cfg = _codec_cfg(args)

    def run_one(fw_cfg: FrameworkConfig) -> tuple[FevesFramework, PhaseProfiler]:
        profiler = PhaseProfiler()
        fw = FevesFramework(
            get_platform(args.platform), cfg, fw_cfg, profiler=profiler
        )
        fw.run_model(args.frames)
        if args.sanitize:
            from repro.sanitizers import TimelineSanitizer

            with profiler.phase("sanitizer"):
                report = TimelineSanitizer.for_framework(fw).check_run(fw)
                report.extend(TimelineSanitizer.check_protocols())
            if not report.clean:
                print(f"warning: sanitizer: {report.summary()}", file=sys.stderr)
        return fw, profiler

    # Fast path (rtol=0 keeps its decisions bit-identical to cold) vs the
    # cold path with every optimization disabled — same model, same
    # schedule, different host-side work.
    fast_fw, fast_prof = run_one(FrameworkConfig(
        lb_cache_rtol=0.0, lp_warm_start=True, char_cache=True, des_fast=True,
    ))
    cold_fw, cold_prof = run_one(FrameworkConfig(
        lb_cache_rtol=0.0, lp_warm_start=False, char_cache=False, des_fast=False,
    ))

    def table(label: str, fw: FevesFramework, prof: PhaseProfiler) -> None:
        rows = [
            [r["phase"], r["calls"], f"{r['total_ms']:.2f}",
             f"{r['ms_per_frame']:.3f}", f"{100 * r['share']:.1f}%"]
            for r in prof.report(args.frames)
        ]
        print(format_table(
            ["phase", "calls", "total ms", "ms/frame", "share"], rows,
            title=(
                f"{label}: {args.platform}, {args.frames} frames — "
                f"LB overhead {fw.scheduling_overhead_ms:.3f} ms/frame"
            ),
        ))

    table("fast (warm-start + caches + vectorized DES)", fast_fw, fast_prof)
    print()
    table("cold (all optimizations off)", cold_fw, cold_prof)
    fast_ms = fast_fw.scheduling_overhead_ms
    cold_ms = cold_fw.scheduling_overhead_ms
    ratio = cold_ms / fast_ms if fast_ms > 0 else float("inf")
    print(f"\nper-frame scheduling overhead: cold {cold_ms:.3f} ms -> "
          f"fast {fast_ms:.3f} ms ({ratio:.1f}x)")
    same = (
        fast_fw.frame_times_ms() == cold_fw.frame_times_ms()
    )
    print(f"simulated timelines identical: {'yes' if same else 'NO'}")
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps({
            "platform": args.platform,
            "frames": args.frames,
            "sa": args.sa,
            "refs": args.refs,
            "fast": {
                "overhead_ms_per_frame": fast_ms,
                **fast_prof.to_dict(args.frames),
            },
            "cold": {
                "overhead_ms_per_frame": cold_ms,
                **cold_prof.to_dict(args.frames),
            },
            "speedup": ratio,
            "timelines_identical": same,
        }, indent=1))
        print(f"wrote profile JSON to {args.json}")
    return 0 if same else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    configs = ("CPU_N", "CPU_H", "GPU_F", "GPU_K", "SysNF", "SysNFF", "SysHK")

    def fps(name: str, sa: int, refs: int) -> float:
        cfg = CodecConfig(
            width=1920, height=1088, search_range=sa // 2, num_ref_frames=refs
        )
        fw = FevesFramework(get_platform(name), cfg, FrameworkConfig())
        fw.run_model(refs + 10)
        return fw.steady_state_fps(warmup=refs + 1)

    if args.what == "sa":
        xs = (32, 64, 128, 256)
        rows = [
            [n] + [f"{fps(n, sa, 1):.1f}" for sa in xs] for n in configs
        ]
        print(format_table(
            ["config"] + [f"{x}x{x}" for x in xs], rows,
            title="fps vs search-area size (1 RF, 1080p) — paper Fig. 6(a)",
        ))
    else:
        xs = tuple(range(1, 9))
        rows = [
            [n] + [f"{fps(n, 32, rf):.1f}" for rf in xs] for n in configs
        ]
        print(format_table(
            ["config"] + [f"{x}RF" for x in xs], rows,
            title="fps vs reference frames (32x32 SA, 1080p) — paper Fig. 6(b)",
        ))
    return 0


def _parse_size(text: str) -> tuple[int, int]:
    try:
        w, h = text.lower().split("x")
        return int(w), int(h)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad size {text!r}, expected WxH") from exc


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.hw.trace_export import export_chrome_trace

    cfg = _codec_cfg(args)
    try:
        fw = FevesFramework(
            get_platform(args.platform),
            cfg,
            FrameworkConfig(faults=_fault_schedule(args)),
        )
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    fw.run_model(args.frames)
    n = export_chrome_trace(
        [r.timeline for r in fw.reports], args.out, fault_log=fw.fault_log
    )
    print(f"wrote {n} events for {args.frames} frames to {args.out}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load it")
    return 0


def cmd_encode(args: argparse.Namespace) -> int:
    from repro.codec.stats import summarize
    from repro.codec.stream import write_stream
    from repro.video.yuv import read_yuv420

    w, h = args.size
    frames = read_yuv420(args.input, w, h, args.frames)
    if not frames:
        print(f"error: no complete {w}x{h} frames in {args.input}", file=sys.stderr)
        return 1
    cfg = CodecConfig(
        width=w, height=h, search_range=args.sa // 2, num_ref_frames=args.refs,
        qp_i=args.qp - 1 if args.qp > 0 else 0, qp_p=args.qp,
        entropy_coder=args.coder,
    )
    stats = write_stream(args.out, frames, cfg)
    s = summarize(stats)
    print(f"encoded {s.n_frames} frames -> {args.out}")
    print(f"  total {s.total_bits / 8000:.1f} kB, "
          f"mean PSNR-Y {s.mean_psnr_y:.2f} dB, "
          f"{s.kbps(25.0):.0f} kbit/s @25fps")
    return 0


def cmd_decode(args: argparse.Namespace) -> int:
    from repro.codec.stream import read_stream
    from repro.video.yuv import write_yuv420

    cfg, frames = read_stream(args.input)
    write_yuv420(args.out, frames)
    print(f"decoded {len(frames)} frames of {cfg.width}x{cfg.height} "
          f"-> {args.out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sanitizers.concurrency import CONCURRENCY_RULES
    from repro.sanitizers.dataflow import DATAFLOW_RULES
    from repro.sanitizers.dataflow.baseline import (
        load_baseline,
        split_findings,
        write_baseline,
    )
    from repro.sanitizers.dataflow.reporting import (
        format_json,
        format_sarif,
        format_text,
        sort_violations,
    )
    from repro.sanitizers.dataflow.summaries import SummaryStore
    from repro.sanitizers.lint import LINT_RULES
    from repro.sanitizers.protocols import PROTOCOL_RULES
    from repro.sanitizers.runner import run_lint

    targets = [Path(p) for p in args.paths]
    for t in targets:
        if not t.exists():
            raise SystemExit(f"error: no such file or directory: {t}")
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        raise SystemExit(f"error: --jobs must be >= 1, got {jobs}")

    all_rules = {
        **LINT_RULES, **DATAFLOW_RULES, **CONCURRENCY_RULES,
        **PROTOCOL_RULES,
    }
    only = None
    if args.select:
        prefixes = [
            p.strip().upper() for p in args.select.split(",") if p.strip()
        ]
        only = sorted(
            r for r in all_rules if any(r.startswith(p) for p in prefixes)
        )
        if not only:
            raise SystemExit(
                f"error: --select {args.select!r} matches no rule "
                f"(known: {', '.join(sorted(all_rules))})"
            )

    timings: dict[str, float] = {}

    # Exit codes: 0 clean, 1 unbaselined findings, 2 internal analyzer
    # error — so CI can tell "code has findings" from "the linter broke".
    try:
        store = SummaryStore(
            Path(args.summary_cache) if args.summary_cache else None
        )
        violations, errors = run_lint(
            targets, only=only, timings=timings, jobs=jobs, store=store,
        )
    except Exception as exc:  # noqa: BLE001 - any crash is exit code 2
        print(f"internal analyzer error: {exc}", file=sys.stderr)
        return 2
    if errors:
        for err in errors:
            print(f"internal analyzer error: {err}", file=sys.stderr)
        return 2
    violations = sort_violations(violations)

    if args.summary:
        counts: dict[str, int] = {}
        for v in violations:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        print("rule      time        findings", file=sys.stderr)
        for rule in sorted(timings):
            n = (
                sum(c for r, c in counts.items() if r.startswith("REP0"))
                if rule == "REP0xx"
                else counts.get(rule, 0)
            )
            print(
                f"{rule:<8}  {timings[rule] * 1e3:>8.1f} ms  {n:>6}",
                file=sys.stderr,
            )

    if args.write_baseline:
        baseline_path = Path(args.baseline)
        write_baseline(violations, baseline_path)
        print(
            f"wrote {len(violations)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baselined: list = []
    if not args.no_baseline:
        baseline_path = Path(args.baseline)
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError, KeyError) as exc:
            print(f"internal analyzer error: bad baseline: {exc}",
                  file=sys.stderr)
            return 2
        violations, baselined = split_findings(violations, baseline)

    if only is not None:
        all_rules = {r: d for r, d in all_rules.items() if r in only}
    if args.format == "json":
        print(format_json(violations))
    elif args.format == "sarif":
        print(format_sarif(violations, all_rules))
    else:
        text = format_text(violations)
        if text:
            print(text)
        if violations:
            by_rule: dict[str, int] = {}
            for v in violations:
                by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
            parts = ", ".join(f"{r}×{n}" for r, n in sorted(by_rule.items()))
            print(f"{len(violations)} violation(s) ({parts})", file=sys.stderr)
        else:
            checked = ", ".join(sorted(all_rules))
            print(f"clean ({checked})")
        if baselined:
            print(
                f"{len(baselined)} baselined finding(s) suppressed",
                file=sys.stderr,
            )
    return 1 if violations else 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro", description="FEVES reproduction toolkit"
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list platform presets").set_defaults(
        func=cmd_platforms
    )

    run = sub.add_parser("run", help="model-mode encoding run on a preset")
    run.add_argument("--platform", default="SysHK", choices=list_platforms())
    run.add_argument("--sa", type=int, default=32, help="search-area side")
    run.add_argument("--refs", type=int, default=1)
    run.add_argument("--frames", type=int, default=50)
    run.add_argument("--backend", default="sim", choices=("sim", "process"),
                     help="sim = DES model run; process = really encode a "
                          "synthetic clip on a multiprocessing worker pool "
                          "and compare against the serial encoder")
    run.add_argument("--workers", type=int, default=0,
                     help="process backend pool size (0 = one per CPU core)")
    run.add_argument("--size", type=_parse_size, default=None, metavar="WxH",
                     help="frame size (default 1920x1088; use a small size "
                          "like 256x144 for quick process-backend runs)")
    run.add_argument("--centric", default="auto", choices=("auto", "gpu", "cpu"))
    run.add_argument("--slices", type=int, default=1,
                     help="slices per frame (cross-slice DBL off when >1)")
    run.add_argument("--rstar-parallel", action="store_true",
                     help="distribute R* per slice (needs --slices > 1)")
    _add_fault_args(run)
    run.add_argument("--fault-log", metavar="PATH",
                     help="write the per-frame fault/decision log as JSON")
    run.add_argument("--sanitize", action="store_true",
                     help="check every produced timeline against the "
                          "schedule invariants (exit 1 on violations)")
    run.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve",
        help="multi-stream encoding service on a shared platform",
        description=(
            "Serve N concurrent streams on one simulated platform: "
            "admission control with a bounded wait queue, deadline-aware "
            "capacity partitioning, and per-stream latency/deadline "
            "metrics. Fault flags are indexed by service ROUND (one "
            "co-scheduled frame across all active streams)."
        ),
    )
    serve.add_argument("--platform", default="SysHK", choices=list_platforms())
    _add_workload_args(serve)
    serve.add_argument("--headroom", type=float, default=1.0,
                       help="admission ceiling on committed capacity fraction")
    serve.add_argument("--max-queue", type=int, default=8,
                       help="bounded wait-queue length (beyond = reject)")
    serve.add_argument("--json", metavar="PATH",
                       help="write per-stream + aggregate metrics as JSON")
    serve.add_argument("--trace", metavar="PATH",
                       help="write a Chrome trace, one pid per stream")
    _add_fault_args(serve)
    serve.add_argument("--sanitize", action="store_true",
                       help="check per-session timelines and service "
                            "invariants (exit 1 on violations)")
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="multi-node fleet simulation with a dispatch tier",
        description=(
            "Simulate a fleet of encoding nodes behind a cluster "
            "dispatcher: a bounded global work queue feeds per-node "
            "admission control through a pluggable routing policy "
            "(least-loaded, deadline-slack-aware, or class-affinity "
            "packing). Node faults evict and re-route sessions through "
            "the global queue; --autoscale adds/drains nodes on "
            "sustained queue depth or realtime-p99 SLO breach. A "
            "single-node fleet is bit-identical to `repro serve`."
        ),
    )
    fleet.add_argument("--nodes", type=int, default=2,
                       help="fleet size (node ids n0..n{N-1})")
    fleet.add_argument("--platforms", default="SysHK",
                       help="comma-separated platform cycle assigned to "
                            "nodes in order (e.g. SysHK,SysNF,SysNFF)")
    fleet.add_argument("--policy", default="least-loaded",
                       choices=("least-loaded", "slack", "affinity"),
                       help="routing policy for placing queued streams")
    fleet.add_argument("--global-queue", type=int, default=64,
                       help="bounded global dispatch queue (beyond = reject)")
    _add_workload_args(fleet)
    fleet.add_argument("--headroom", type=float, default=1.0,
                       help="per-node admission ceiling on committed "
                            "capacity fraction")
    fleet.add_argument("--max-queue", type=int, default=8,
                       help="per-node bounded wait-queue length")
    fleet.add_argument("--node-fault", action="append",
                       metavar="NODE@T[:down|drain]",
                       help="schedule a whole-node dropout or drain at a "
                            "simulated time (repeatable)")
    fleet.add_argument("--autoscale", action="store_true",
                       help="enable the reactive autoscaler (provisions "
                            "from the --platforms cycle)")
    fleet.add_argument("--max-nodes", type=int, default=8,
                       help="autoscaler fleet-size ceiling")
    fleet.add_argument("--p99-slo", type=float, default=None,
                       help="realtime p99 SLO in ms that triggers scale-out")
    fleet.add_argument("--json", metavar="PATH",
                       help="write per-node + aggregate metrics as JSON")
    fleet.add_argument("--trace", metavar="PATH",
                       help="write a Chrome trace, one pid per "
                            "node/stream segment")
    fleet.add_argument("--sanitize", action="store_true",
                       help="check fleet invariants (SAN-E) plus every "
                            "node's service invariants (exit 1 on "
                            "violations)")
    fleet.set_defaults(func=cmd_fleet)

    prof = sub.add_parser(
        "profile",
        help="per-phase breakdown of the scheduling overhead",
        description=(
            "Run the same model-mode encode twice — fast path (warm-start "
            "LP, characterization caches, vectorized DES) and cold path "
            "(every optimization disabled) — and attribute the host-side "
            "per-frame overhead to its phases: Δ-bounds, LP build, LP "
            "solve, distribution, transfer planning, and DES. Both runs "
            "use an exact decision cache (rtol=0), so the simulated "
            "timelines must be bit-identical; exit code 1 if they are not."
        ),
    )
    prof.add_argument("--platform", default="SysHK", choices=list_platforms())
    prof.add_argument("--sa", type=int, default=32, help="search-area side")
    prof.add_argument("--refs", type=int, default=1)
    prof.add_argument("--frames", type=int, default=50)
    prof.add_argument("--backend", default="sim", choices=("sim", "process"),
                     help="process = profile the measured exec phases of a "
                          "real parallel encode instead of the scheduler")
    prof.add_argument("--workers", type=int, default=0,
                     help="process backend pool size (0 = one per CPU core)")
    prof.add_argument("--size", type=_parse_size, default=None, metavar="WxH",
                     help="frame size for --backend process (default "
                          "1920x1088)")
    prof.add_argument("--sanitize", action="store_true",
                      help="also run (and time) the timeline sanitizer")
    prof.add_argument("--json", metavar="PATH",
                      help="write the per-phase breakdown as JSON")
    prof.set_defaults(func=cmd_profile)

    sweep = sub.add_parser("sweep", help="regenerate a Fig. 6 table")
    sweep.add_argument("--what", choices=("sa", "refs"), default="sa")
    sweep.set_defaults(func=cmd_sweep)

    enc = sub.add_parser("encode", help="encode a raw YUV420 file")
    enc.add_argument("input")
    enc.add_argument("--size", type=_parse_size, required=True, metavar="WxH")
    enc.add_argument("--out", required=True)
    enc.add_argument("--frames", type=int, default=None)
    enc.add_argument("--sa", type=int, default=16)
    enc.add_argument("--refs", type=int, default=1)
    enc.add_argument("--qp", type=int, default=28)
    enc.add_argument("--coder", default="lite", choices=("lite", "cavlc"))
    enc.set_defaults(func=cmd_encode)

    dec = sub.add_parser("decode", help="decode a .fevs stream to YUV420")
    dec.add_argument("input")
    dec.add_argument("--out", required=True)
    dec.set_defaults(func=cmd_decode)

    lint = sub.add_parser(
        "lint",
        help="repo-specific static checks (REP001-004, REP101-104, "
             "REP201-204, REP301-304)",
        description=(
            "AST lint with simulator-specific rules: REP001 no wall-clock "
            "reads in hw/ and core/ simulation paths; REP002 no exact "
            "==/!= against float literals; REP003 no Device fault/share "
            "state mutated outside its API; REP004 no unguarded division "
            "by rates/bandwidths that can be zero under faults. Dataflow "
            "rules (CFG + abstract interpretation): REP101 unit mismatch "
            "in rate/time/row/byte arithmetic; REP102 unordered set "
            "iteration leaking into event/candidate ordering; REP103 "
            "engine/slot acquired but not released on every path; REP104 "
            "measurement paths mutating framework/device state. "
            "Concurrency rules (interprocedural, process backend): REP201 "
            "fork-unsafe primitive before/inside the pool initializer; "
            "REP202 task payload carries shared bulk data instead of "
            "scalar coordinates; REP203 shared-memory write escapes its "
            "(row0, nrows) band; REP204 τ1/τ2 phase ordering broken. "
            "Protocol rules (typestate over the lifecycle specs): REP301 "
            "object lifecycle violates its protocol state machine; "
            "REP302 clock rewound or cross-assigned between domains; "
            "REP303 dequeued stream can exit without place/park/reject; "
            "REP304 live-set mutated without note_live_set_change before "
            "the next solve. Suppress per line with '# noqa: REPxxx'. "
            "Exit codes: 0 clean, 1 unbaselined findings, 2 internal "
            "analyzer error."
        ),
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "sarif"))
    lint.add_argument("--baseline", default=".repro-lint-baseline.json",
                      help="findings baseline file (default: %(default)s)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report all findings, ignoring the baseline")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write current findings to the baseline and exit 0")
    lint.add_argument("--summary-cache", default=None,
                      help="JSON cache for inter-procedural unit summaries "
                           "(keyed on source hash; safe to cache in CI)")
    lint.add_argument("--select", default=None, metavar="PREFIXES",
                      help="comma-separated rule prefixes to run (e.g. "
                           "'REP2' or 'REP103,REP2'); other rules are "
                           "skipped entirely")
    lint.add_argument("--summary", action="store_true",
                      help="print a per-rule timing/finding table to stderr")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="analyze files across N worker processes "
                           "(default: 1; output is byte-identical for "
                           "any N)")
    lint.set_defaults(func=cmd_lint)

    tr = sub.add_parser("trace", help="export a chrome://tracing JSON")
    tr.add_argument("--platform", default="SysHK", choices=list_platforms())
    tr.add_argument("--sa", type=int, default=32)
    tr.add_argument("--refs", type=int, default=1)
    tr.add_argument("--frames", type=int, default=5)
    tr.add_argument("--out", required=True)
    _add_fault_args(tr)
    tr.set_defaults(func=cmd_trace)
    return ap


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
