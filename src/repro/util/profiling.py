"""Per-phase wall-clock attribution of the scheduling hot path.

The paper's <2 ms overhead claim is one number; optimizing it needs a
breakdown. :class:`PhaseProfiler` attributes real wall time to the named
phases of one frame's scheduling work — LP constraint build, LP solve,
Δ-bounds computation, distribution rounding/finalization, transfer
planning, DES evaluation, and (when run) the sanitizer pass — via nested
``with profiler.phase("..."):`` sections, the same pattern as
:class:`~repro.util.timing.WallTimer` (simulated time never flows through
here; this is host-side bookkeeping only).

Phases are cheap enough to leave always-on: one ``perf_counter`` pair per
section, a few dozen sections per frame.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: Canonical phase order for reports (unknown phases append after these).
PHASE_ORDER = (
    "bounds",
    "lp_build",
    "lp_solve",
    "distribution",
    "plan",
    "des_build",
    "des",
    "exec_start",
    "exec_write",
    "exec_phase1",
    "exec_tau1",
    "exec_phase2",
    "exec_tau2",
    "exec_rstar",
    "sanitizer",
)


@dataclass
class PhaseStats:
    """Accumulated wall time of one phase."""

    total_s: float = 0.0
    calls: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class _PhaseSection:
    """Reusable context manager timing one named phase (not reentrant)."""

    __slots__ = ("_stats", "_t0")

    def __init__(self, stats: PhaseStats) -> None:
        self._stats = stats
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseSection":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stats.total_s += time.perf_counter() - self._t0
        self._stats.calls += 1


class PhaseProfiler:
    """Accumulates per-phase wall time across frames.

    One profiler instance spans a whole encoding run; divide by the frame
    count for per-frame attribution (see :meth:`report`).
    """

    def __init__(self) -> None:
        self._stats: dict[str, PhaseStats] = {}
        self._sections: dict[str, _PhaseSection] = {}

    def phase(self, name: str) -> _PhaseSection:
        """Context manager accumulating into the named phase."""
        section = self._sections.get(name)
        if section is None:
            stats = self._stats.setdefault(name, PhaseStats())
            section = _PhaseSection(stats)
            self._sections[name] = section
        return section

    def stats(self, name: str) -> PhaseStats:
        """Stats of one phase (zeros if it never ran)."""
        return self._stats.get(name, PhaseStats())

    @property
    def phases(self) -> list[str]:
        """Observed phases in canonical order, then first-seen order."""
        known = [p for p in PHASE_ORDER if p in self._stats]
        extra = [p for p in self._stats if p not in PHASE_ORDER]
        return known + extra

    def total_s(self) -> float:
        """Wall seconds across all phases."""
        return sum(s.total_s for s in self._stats.values())

    def reset(self) -> None:
        """Zero all accumulated stats, keeping section objects usable."""
        for stats in self._stats.values():
            stats.total_s = 0.0
            stats.calls = 0

    def report(self, n_frames: int = 1) -> list[dict]:
        """Per-phase rows: name, calls, total/per-frame ms, share of total.

        ``n_frames`` normalizes the per-frame column; the share column is
        the phase's fraction of all profiled time.
        """
        frames = max(1, n_frames)
        total = self.total_s()
        rows = []
        for name in self.phases:
            st = self._stats[name]
            rows.append(
                {
                    "phase": name,
                    "calls": st.calls,
                    "total_ms": st.total_s * 1e3,
                    "ms_per_frame": st.total_s * 1e3 / frames,
                    "share": (st.total_s / total) if total > 0 else 0.0,
                }
            )
        return rows

    def to_dict(self, n_frames: int = 1) -> dict:
        """JSON-friendly snapshot (used by ``repro profile --json``)."""
        return {
            "total_ms": self.total_s() * 1e3,
            "frames": n_frames,
            "phases": self.report(n_frames),
        }
