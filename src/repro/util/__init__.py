"""Shared utilities: validation, timing, and lightweight logging."""

from repro.util.timing import WallTimer
from repro.util.validation import (
    check_multiple_of,
    check_positive,
    check_power_of_two,
    check_range,
)

__all__ = [
    "WallTimer",
    "check_multiple_of",
    "check_positive",
    "check_power_of_two",
    "check_range",
]
