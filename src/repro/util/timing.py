"""Wall-clock timing helpers.

Simulated time lives in :mod:`repro.hw.des`; this module measures *real*
wall time, used only for the paper's scheduling-overhead claim (<2 ms per
frame for the load-balancing machinery itself).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class WallTimer:
    """Accumulating wall-clock timer usable as a context manager.

    Example
    -------
    >>> t = WallTimer()
    >>> with t:
    ...     _ = sum(range(100))
    >>> t.total_s >= 0.0
    True
    >>> t.count
    1
    """

    total_s: float = 0.0
    count: int = 0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "WallTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.total_s += time.perf_counter() - self._t0
        self.count += 1

    @property
    def mean_s(self) -> float:
        """Mean seconds per timed section (0.0 before any section ran)."""
        return self.total_s / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero the accumulated time and count."""
        self.total_s = 0.0
        self.count = 0
