"""Argument-validation helpers used across the package.

All helpers raise :class:`ValueError` with a message naming the offending
parameter, so configuration mistakes surface at construction time rather
than deep inside a vectorized kernel.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_multiple_of(name: str, value: int, base: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive multiple of ``base``."""
    if value <= 0 or value % base != 0:
        raise ValueError(f"{name} must be a positive multiple of {base}, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_type(name: str, value: Any, expected: type) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
