"""Admission control against aggregate platform capacity.

A stream's *demand fraction* is the slice of the whole platform it needs
to sustain its target rate:

    u_i = fps_target_i × T_i

where ``T_i`` is the stream's full-platform frame time in seconds — the
time one collaborative FEVES frame of that stream's codec configuration
takes when granted 100% of every live device. Before a session has
encoded anything, ``T_i`` is estimated from the calibrated device rate
models under the paper's linear-scaling upper bound
(``1/T = Σ_d 1/frame_time_d``); once the session runs, its measured
share-normalized frame time (the per-stream Performance Model's view)
replaces the estimate.

The controller admits a new stream while ``Σ u_i + u_new ≤ headroom``,
parks it in a bounded FIFO wait queue when the platform is committed, and
rejects it outright when the queue is full. Capacity is always evaluated
against the *live* device set, so a device dropout shrinks capacity and
throttles admissions until sessions drain.
"""

from __future__ import annotations

from collections import deque

from repro.codec.config import CodecConfig
from repro.hw.device import DeviceSpec
from repro.hw.topology import Platform
from repro.service.session import EncodingSession, StreamSpec

#: Admission outcomes.
ADMITTED, QUEUED, REJECTED = "admitted", "queued", "rejected"


class CapacityModel:
    """Model-based estimate of platform service capacity."""

    def __init__(self, platform: Platform) -> None:
        self.specs: list[DeviceSpec] = [d.spec for d in platform.devices]

    def device_frame_s(self, spec: DeviceSpec, cfg: CodecConfig, refs: int) -> float:
        """Single-device inter-frame time for a codec configuration."""
        rates = spec.rates
        per_row = (
            rates.me_row_s(cfg, refs) + rates.int_row_s(cfg) + rates.sme_row_s(cfg)
        )
        return cfg.mb_rows * per_row + rates.rstar_frame_s(cfg)

    def platform_frame_s(
        self, cfg: CodecConfig, refs: int, live: frozenset[str] | set[str] | None = None
    ) -> float:
        """Full-platform frame time under the linear-scaling upper bound."""
        inv = 0.0
        for spec in self.specs:
            if live is not None and spec.name not in live:
                continue
            inv += 1.0 / self.device_frame_s(spec, cfg, refs)
        if inv <= 0:
            raise ValueError("no live devices; platform has zero capacity")
        return 1.0 / inv

    def fps_capacity(
        self, cfg: CodecConfig, refs: int, live: frozenset[str] | set[str] | None = None
    ) -> float:
        """Sustainable frames/s for streams of this configuration."""
        return 1.0 / self.platform_frame_s(cfg, refs, live)

    def demand_fraction(
        self, spec: StreamSpec, live: frozenset[str] | set[str] | None = None
    ) -> float:
        """Model-estimated platform fraction a stream needs."""
        return spec.fps_target * self.platform_frame_s(
            spec.codec_config(), spec.num_ref_frames, live
        )


class AdmissionController:
    """Accept / queue / reject streams against committed capacity."""

    def __init__(
        self,
        capacity: CapacityModel,
        headroom: float = 1.0,
        max_queue: int = 8,
    ) -> None:
        if headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {headroom}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.capacity = capacity
        self.headroom = headroom
        self.max_queue = max_queue
        self.running: list[EncodingSession] = []
        self.queue: deque[EncodingSession] = deque()
        self.counts: dict[str, int] = {
            ADMITTED: 0, QUEUED: 0, REJECTED: 0, "completed": 0,
        }

    # ------------------------------------------------------------------

    def session_fraction(
        self, session: EncodingSession, live: frozenset[str] | set[str] | None
    ) -> float:
        """Committed fraction of one session (measured when available)."""
        measured = session.est_frame_s
        if measured is not None:
            return session.spec.fps_target * measured
        return self.capacity.demand_fraction(session.spec, live)

    def committed_fraction(self, live: frozenset[str] | set[str] | None) -> float:
        """Total platform fraction promised to running sessions."""
        return sum(self.session_fraction(s, live) for s in self.running)

    def _fits(
        self, session: EncodingSession, live: frozenset[str] | set[str] | None
    ) -> bool:
        demand = self.capacity.demand_fraction(session.spec, live)
        return self.committed_fraction(live) + demand <= self.headroom + 1e-9

    # ------------------------------------------------------------------

    def offer(
        self,
        session: EncodingSession,
        now: float,
        live: frozenset[str] | set[str] | None = None,
    ) -> str:
        """Decide a newly arrived stream: admit, queue, or reject.

        A newcomer is only admitted directly when nobody is waiting —
        otherwise a small stream would overtake a larger queued one and
        could starve it indefinitely.
        """
        if not self.queue and self._fits(session, live):
            session.admit(now)
            self.running.append(session)
            self.counts[ADMITTED] += 1
            return ADMITTED
        if len(self.queue) < self.max_queue:
            self.queue.append(session)
            self.counts[QUEUED] += 1
            return QUEUED
        session.reject()
        self.counts[REJECTED] += 1
        return REJECTED

    def drain(
        self, now: float, live: frozenset[str] | set[str] | None = None
    ) -> list[EncodingSession]:
        """Admit queued streams that now fit (FIFO, head-of-line order).

        Strict FIFO is deliberate — a large queued stream blocks smaller
        ones behind it rather than being starved forever. As a liveness
        backstop, the head is admitted unconditionally when nothing is
        running (a stream too big for an idle platform would otherwise
        wait forever; it runs best-effort instead).
        """
        admitted: list[EncodingSession] = []
        while self.queue:
            head = self.queue[0]
            if not self.running or self._fits(head, live):
                self.queue.popleft()
                head.admit(now)
                self.running.append(head)
                self.counts[ADMITTED] += 1
                admitted.append(head)
            else:
                break
        return admitted

    def release(self, session: EncodingSession) -> None:
        """A session finished its last frame; free its capacity."""
        self.running.remove(session)
        self.counts["completed"] += 1

    # ------------------------------------------------------------------

    def has_room(
        self, session: EncodingSession, live: frozenset[str] | set[str] | None
    ) -> bool:
        """Would :meth:`offer` do anything other than reject right now?"""
        if not self.queue and self._fits(session, live):
            return True
        return len(self.queue) < self.max_queue

    def evict_all(self) -> tuple[list[EncodingSession], list[EncodingSession]]:
        """Node-level eviction: empty the controller without completing.

        Returns ``(running, queued)`` — every session that was running
        and every session still waiting. Neither list counts toward
        ``completed``; the caller (the cluster's fault/drain machinery)
        owns their fate, typically re-routing the survivors through the
        global dispatch queue. Mirrors the PR-1 device-eviction shape one
        level up: capacity vanishes, work is handed back for re-placement.
        """
        running = list(self.running)
        queued = list(self.queue)
        self.running.clear()
        self.queue.clear()
        self.counts["evicted"] = self.counts.get("evicted", 0) + len(running)
        return running, queued
