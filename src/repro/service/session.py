"""Per-stream encoding sessions of the multi-stream service.

One :class:`EncodingSession` wraps a complete, private
:class:`~repro.core.framework.FevesFramework` — its own per-stream
Performance Characterization, LP balancer, and Data Access Management —
built on a fresh instance of the *shared* platform preset. The service
layer time-shares the physical platform between sessions by granting each
session a capacity share per scheduling round
(:meth:`~repro.hw.device.Device.set_capacity_share`), so a session's
framework simply observes devices that are proportionally slower and
adapts its intra-frame distribution exactly as the paper's single-stream
algorithm does. With a single session at share 1.0 the decisions are
bit-identical to a standalone run.

Frame pacing follows a live capture model: frame ``k`` (1-based) of a
session is *captured* ``(k-1)/fps_target`` seconds after admission and
cannot be encoded earlier; a session that falls behind accumulates capture
backlog and its frame latencies (completion − capture) grow, which is what
the deadline-miss metrics measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework, FrameOutcome
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform
from repro.sanitizers.protocols.journal import record as _journal


@dataclass(frozen=True)
class DeadlineClass:
    """Service class of a stream.

    ``budget_factor`` sets the per-frame deadline as a multiple of the
    frame period (``math.inf`` = no deadline); ``weight`` is the base
    priority multiplier the co-scheduler applies to the stream's demand.
    """

    name: str
    budget_factor: float
    weight: float


#: Built-in service classes.
DEADLINE_CLASSES: dict[str, DeadlineClass] = {
    "realtime": DeadlineClass("realtime", budget_factor=1.0, weight=2.0),
    "standard": DeadlineClass("standard", budget_factor=2.0, weight=1.0),
    "background": DeadlineClass("background", budget_factor=math.inf, weight=0.5),
}


@dataclass(frozen=True)
class StreamSpec:
    """Static description of one stream submitted to the service."""

    stream_id: str
    fps_target: float = 25.0
    n_frames: int = 30
    deadline_class: str = "standard"
    arrival_s: float = 0.0
    width: int = 1920
    height: int = 1088
    search_range: int = 16
    num_ref_frames: int = 1

    def __post_init__(self) -> None:
        if self.fps_target <= 0:
            raise ValueError(f"fps_target must be > 0, got {self.fps_target}")
        if self.n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {self.n_frames}")
        if self.deadline_class not in DEADLINE_CLASSES:
            raise ValueError(
                f"deadline_class must be one of {sorted(DEADLINE_CLASSES)}, "
                f"got {self.deadline_class!r}"
            )
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be >= 0, got {self.arrival_s}")

    @property
    def period_s(self) -> float:
        return 1.0 / self.fps_target  # noqa: REP004 - fps_target validated > 0 in __post_init__

    @property
    def klass(self) -> DeadlineClass:
        return DEADLINE_CLASSES[self.deadline_class]

    def codec_config(self) -> CodecConfig:
        return CodecConfig(
            width=self.width,
            height=self.height,
            search_range=self.search_range,
            num_ref_frames=self.num_ref_frames,
        )


class SessionFaultView:
    """Adapter exposing the service-level fault schedule to one session.

    The service injects faults at *service rounds* (one round = one
    co-scheduled frame across all active sessions), while each session's
    framework queries its schedule at the session's own 1-based inter-frame
    index. The service advances :attr:`round` before stepping any session,
    and the view answers every per-frame query with the fault state of the
    current round — so all sessions observe a platform fault in the same
    round, whenever each of them was admitted.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.round = 0

    @property
    def empty(self) -> bool:
        return self.schedule.empty

    def devices(self) -> set[str]:
        return self.schedule.devices()

    def down(self, frame: int, device: str) -> FaultEvent | None:
        return self.schedule.down(self.round, device)

    def compute_factor(self, frame: int, device: str) -> float:
        return self.schedule.compute_factor(self.round, device)

    def copy_factor(self, frame: int, device: str) -> float:
        return self.schedule.copy_factor(self.round, device)


@dataclass(frozen=True)
class FrameRecord:
    """One encoded frame of one session, on the service clock."""

    index: int          # 1-based inter-frame index within the session
    round: int          # service round it was encoded in
    capture_s: float    # when the frame became available (release time)
    start_s: float      # when the service started encoding it
    end_s: float        # completion on the service clock
    deadline_s: float   # capture + budget_factor * period (inf = none)
    share: float        # capacity share granted for this frame
    tau_s: float        # simulated encode time at that share
    busy_device_s: dict[str, float] = field(default_factory=dict)

    @property
    def latency_s(self) -> float:
        return self.end_s - self.capture_s

    @property
    def missed(self) -> bool:
        return self.end_s > self.deadline_s


#: Session lifecycle states.
QUEUED, RUNNING, DONE, REJECTED = "queued", "running", "done", "rejected"


class EncodingSession:
    """Runtime state of one admitted (or waiting) stream.

    ``backend="process"`` makes the session *really encode* a
    deterministic synthetic clip (seeded from the stream id) on a
    multiprocessing worker pool instead of simulating the frame times —
    the service clock then advances by measured wall seconds. Capacity
    shares still steer the co-scheduler's allocation decisions, but they
    cannot slow a measured encode down: every session's pool runs on the
    same physical cores and the OS arbitrates them.
    """

    def __init__(
        self,
        spec: StreamSpec,
        platform_name: str,
        faults: FaultSchedule | None = None,
        backend: str = "sim",
        exec_workers: int = 0,
    ) -> None:
        self.spec = spec
        self.backend = backend
        self.fault_view = SessionFaultView(faults or FaultSchedule())
        if backend == "process":
            import zlib

            from repro.video.generator import SyntheticSequence

            fw_cfg = FrameworkConfig(
                compute="real",
                backend="process",
                exec_workers=exec_workers,
                faults=self.fault_view,
            )
            self._source: SyntheticSequence | None = SyntheticSequence(
                width=spec.width,
                height=spec.height,
                seed=zlib.crc32(spec.stream_id.encode()) & 0x7FFFFFFF,
            )
        else:
            fw_cfg = FrameworkConfig(faults=self.fault_view)
            self._source = None
        self.framework = FevesFramework(
            get_platform(platform_name), spec.codec_config(), fw_cfg
        )
        self._intra_done = False
        self.state = QUEUED
        _journal(self, "create", 0.0, detail=spec.stream_id)
        self.admitted_s: float | None = None
        self.records: list[FrameRecord] = []
        # EWMA of the full-speed (share-normalized) frame time: the
        # session's measured demand on the whole platform, in
        # platform-seconds per frame.
        self._tau_full_ewma: float | None = None

    # ------------------------------------------------------------------

    @property
    def stream_id(self) -> str:
        return self.spec.stream_id

    @property
    def frames_done(self) -> int:
        return len(self.records)

    @property
    def done(self) -> bool:
        return self.frames_done >= self.spec.n_frames

    @property
    def est_frame_s(self) -> float | None:
        """Measured full-speed frame time (None before the first frame)."""
        return self._tau_full_ewma

    def admit(self, now: float) -> None:
        if self.state != QUEUED:
            raise RuntimeError(f"cannot admit session in state {self.state!r}")
        self.state = RUNNING
        _journal(self, "admit", now, detail=self.stream_id)
        self.admitted_s = now

    def reject(self) -> None:
        self.state = REJECTED
        _journal(self, "reject", self.spec.arrival_s, detail=self.stream_id)

    @property
    def wait_s(self) -> float:
        """Seconds spent in the admission queue."""
        if self.admitted_s is None:
            return 0.0
        return self.admitted_s - self.spec.arrival_s

    # ------------------------------------------------------------------

    def capture_s(self, index: int) -> float:
        """Capture (release) time of 1-based frame ``index``."""
        assert self.admitted_s is not None
        return self.admitted_s + (index - 1) * self.spec.period_s

    def next_capture_s(self) -> float:
        """Capture time of the next frame still to encode."""
        return self.capture_s(self.frames_done + 1)

    def has_pending(self, now: float) -> bool:
        """A frame is captured and waiting to be encoded."""
        return (
            self.state == RUNNING
            and not self.done
            and self.next_capture_s() <= now + 1e-12
        )

    def deadline_for(self, capture: float) -> float:
        budget = self.spec.klass.budget_factor
        if math.isinf(budget):
            return math.inf
        return capture + budget * self.spec.period_s

    # ------------------------------------------------------------------

    def _encode_next(self) -> FrameOutcome:
        """Advance the framework by one inter frame (backend-specific)."""
        if self._source is None:
            return self.framework.encode_next_inter()
        # Process backend: really encode the session's synthetic clip.
        # The leading intra frame is host work outside the service clock
        # (as in the paper's evaluation), produced lazily on first step.
        if not self._intra_done:
            self.framework.encode_frame_at(self._source.frame(0), 0)
            self._intra_done = True
        idx = self.frames_done + 1
        return self.framework.encode_frame_at(self._source.frame(idx), idx)

    def close(self) -> None:
        """Release backend resources (worker pool/shared memory)."""
        self.framework.close()

    def step(self, now: float, share: float, round_idx: int) -> FrameRecord:
        """Encode the session's next frame at ``share`` of the platform."""
        if self.state != RUNNING or self.done:
            raise RuntimeError(f"session {self.stream_id!r} has no frame to encode")
        _journal(self, "step", now, detail=self.stream_id)
        for dev in self.framework.platform.devices:
            dev.set_capacity_share(share)
        self.fault_view.round = round_idx
        outcome = self._encode_next()
        tau = outcome.report.tau_tot
        # Device-seconds actually consumed: busy time on the session's
        # scaled clock × its share of the engine.
        timeline = outcome.report.timeline
        busy = {
            res: b * share
            for res, b in sorted(timeline.busy_by_resource().items())
        }
        capture = self.next_capture_s()
        rec = FrameRecord(
            index=self.frames_done + 1,
            round=round_idx,
            capture_s=capture,
            start_s=now,
            end_s=now + tau,
            deadline_s=self.deadline_for(capture),
            share=share,
            tau_s=tau,
            busy_device_s=busy,
        )
        self.records.append(rec)
        full = tau * share
        if self._tau_full_ewma is None:
            self._tau_full_ewma = full
        else:
            self._tau_full_ewma = 0.5 * full + 0.5 * self._tau_full_ewma
        if self.done:
            self.state = DONE
            _journal(self, "finish", rec.end_s, detail=self.stream_id)
            # A finished process-backed session holds a worker pool and
            # shared segments; free them as soon as the stream completes.
            self.close()
        return rec
