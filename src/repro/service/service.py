"""The multi-stream encoding service: event loop and platform sharing.

The service multiplexes N concurrent encoding sessions onto one shared
simulated platform:

1. **Arrivals** — an open-loop workload (:mod:`repro.service.workload`)
   delivers :class:`~repro.service.session.StreamSpec` submissions at
   their arrival times.
2. **Admission** — :class:`~repro.service.admission.AdmissionController`
   accepts a stream while the platform has uncommitted capacity, parks it
   in a bounded wait queue under pressure, and rejects it when the queue
   overflows.
3. **Co-scheduling** — each round, every admitted session with a captured
   frame receives a deadline-slack-weighted share of the platform
   (:class:`~repro.service.scheduler.CoScheduler`); the session encodes
   one frame through its own FEVES framework at that share, composing the
   paper's intra-frame LP distribution with inter-stream sharing.
4. **Faults** — the service-level :class:`~repro.hw.noise.FaultSchedule`
   is indexed by *service round*. Every session observes the same
   dropout/hang/degradation in the same round through its
   :class:`~repro.service.session.SessionFaultView`, and each session's
   framework evicts, rebalances onto survivors, and later re-admits
   exactly as in single-stream operation — service-wide rebalancing for
   free. Admission capacity shrinks with the live set, throttling new
   streams while the platform is degraded.

Rounds are variable-length: a round starts at the service clock ``now``,
all active sessions encode concurrently (processor sharing), and the
clock advances by the slowest session's frame time. With a single active
session (share exactly 1.0) the schedule and all encoder decisions are
bit-identical to a standalone ``repro run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.hw.noise import FaultSchedule
from repro.hw.presets import get_platform
from repro.service.admission import AdmissionController, CapacityModel
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import CoScheduler, RoundLPBatch, SchedulerConfig
from repro.service.session import EncodingSession, StreamSpec


@dataclass
class ServiceConfig:
    """Tunables of the encoding service (not of individual streams).

    Parameters
    ----------
    platform:
        Shared platform preset name (each session gets a fresh instance
        of it; capacity shares model the time-sharing).
    headroom:
        Admission ceiling on the committed platform fraction (1.0 =
        commit up to nominal capacity; < 1 keeps slack for load spikes,
        > 1 oversubscribes deliberately).
    max_queue:
        Bounded wait-queue length; arrivals beyond it are rejected
        (backpressure).
    faults:
        Device-fault schedule indexed by *service round* (not per-stream
        frame index). All sessions observe each fault simultaneously.
    scheduler:
        Co-scheduler weighting knobs.
    max_rounds:
        Safety valve against runaway loops (raise RuntimeError beyond).
    """

    platform: str = "SysHK"
    headroom: float = 1.0
    max_queue: int = 8
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    max_rounds: int = 100_000
    backend: str = "sim"
    exec_workers: int = 0

    def __post_init__(self) -> None:
        if self.headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {self.headroom}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.backend not in ("sim", "process"):
            raise ValueError(
                f"backend must be 'sim' or 'process', got {self.backend!r}"
            )
        if self.backend == "process" and not self.faults.empty:
            raise ValueError(
                "backend='process' cannot inject faults (simulation-only)"
            )


#: ``step_round`` outcomes (see its docstring).
ENCODED, IDLE, DONE = "encoded", "idle", "done"


class EncodingService:
    """Event-driven multi-stream encoding service on one shared platform.

    The public surface has two shapes:

    - :meth:`run` serves a complete workload to completion — the
      ``repro serve`` path;
    - the stepping primitives :meth:`begin_round`, :meth:`submit` and
      :meth:`step_round` expose one scheduling round at a time, so an
      outer driver (the cluster layer's :class:`~repro.cluster.node.Node`)
      can interleave many services on one simulated clock. ``run`` is
      built from exactly those primitives, which is what makes a
      single-node cluster bit-identical to ``repro serve``.
    """

    def __init__(
        self,
        cfg: ServiceConfig | None = None,
        lp_batch: RoundLPBatch | None = None,
    ) -> None:
        self.cfg = cfg or ServiceConfig()
        self.template = get_platform(self.cfg.platform)
        for name in self.cfg.faults.devices():
            self.template.device(name)  # raises on unknown device
        self.capacity = CapacityModel(self.template)
        self.admission = AdmissionController(
            self.capacity,
            headroom=self.cfg.headroom,
            max_queue=self.cfg.max_queue,
        )
        self.scheduler = CoScheduler(self.cfg.scheduler)
        # The LP solve cache may be shared across services (cluster nodes
        # of the same platform class hand every node one batch).
        self.lp_batch = lp_batch if lp_batch is not None else RoundLPBatch()
        self.sessions: list[EncodingSession] = []
        self.now = 0.0
        self.rounds = 0
        self._metrics: ServiceMetrics | None = None

    # ------------------------------------------------------------------

    def live_devices(self, round_idx: int) -> frozenset[str]:
        """Devices not held down by a fault at a service round."""
        return frozenset(
            d.name
            for d in self.template.devices
            if self.cfg.faults.down(round_idx, d.name) is None
        )

    def begin_round(self) -> frozenset[str]:
        """Guard the round budget and return the live device set."""
        round_idx = self.rounds + 1
        if round_idx > self.cfg.max_rounds:
            raise RuntimeError(
                f"service exceeded max_rounds={self.cfg.max_rounds}"
            )
        return self.live_devices(round_idx)

    def submit(self, spec: StreamSpec, live: frozenset[str]) -> EncodingSession:
        """Create a session for a newly arrived stream and offer it."""
        session = EncodingSession(
            spec,
            self.cfg.platform,
            faults=self.cfg.faults,
            backend=self.cfg.backend,
            exec_workers=self.cfg.exec_workers,
        )
        self.lp_batch.attach(session)
        self.sessions.append(session)
        self.admission.offer(session, self.now, live)
        return session

    def step_round(
        self, live: frozenset[str], next_arrival_s: float | None = None
    ) -> str:
        """One scheduling round after due arrivals have been submitted.

        Drains the admission queue, then either encodes one co-scheduled
        round (returns ``ENCODED``), jumps the clock to the next internal
        event or to ``next_arrival_s`` when nothing is encodable yet
        (``IDLE``), or reports the workload fully served (``DONE`` —
        nothing running and no arrival hint left).
        """
        self.admission.drain(self.now, live)

        active = [
            s for s in self.admission.running if s.has_pending(self.now)
        ]
        if not active:
            # Idle: jump the clock to the next event (frame capture of
            # a running session, or the next arrival).
            events = [
                s.next_capture_s()
                for s in self.admission.running
                if not s.done
            ]
            if next_arrival_s is not None:
                events.append(next_arrival_s)
            if not events:
                return DONE
            self.now = max(self.now, min(events))
            return IDLE

        round_idx = self.rounds + 1
        shares = self.scheduler.partition(active, self.now)
        round_dur = 0.0
        for s in active:
            rec = s.step(self.now, shares[s.stream_id], round_idx)
            round_dur = max(round_dur, rec.tau_s)
        for s in active:
            if s.done:
                self.admission.release(s)
        self.now += round_dur
        self.rounds += 1
        return ENCODED

    def close(self) -> None:
        """Release every session's backend resources (idempotent).

        Only process-backed sessions hold anything (worker pools, shared
        memory); they already self-close on completion, so this catches
        sessions abandoned mid-stream (rejected, or a crashed run).
        """
        for session in self.sessions:
            session.close()

    def finalize(self) -> ServiceMetrics:
        """Collect (and cache) the metrics of everything served so far."""
        self.close()
        self._metrics = ServiceMetrics.collect(
            platform=self.cfg.platform,
            duration_s=self.now,
            rounds=self.rounds,
            sessions=self.sessions,
            admission_counts=self.admission.counts,
        )
        return self._metrics

    # ------------------------------------------------------------------

    def run(self, workload: list[StreamSpec]) -> ServiceMetrics:
        """Serve a complete workload to completion; returns the metrics."""
        pending = sorted(workload, key=lambda s: (s.arrival_s, s.stream_id))
        i = 0
        while True:
            live = self.begin_round()

            # Arrivals due by now, then queue drain against current capacity.
            while i < len(pending) and pending[i].arrival_s <= self.now + 1e-12:
                self.submit(pending[i], live)
                i += 1
            next_arrival = pending[i].arrival_s if i < len(pending) else None
            if self.step_round(live, next_arrival) == DONE:
                break

        return self.finalize()

    # ------------------------------------------------------------------

    @property
    def metrics(self) -> ServiceMetrics:
        if self._metrics is None:
            raise RuntimeError("nothing served yet; call run() first")
        return self._metrics

    def export_metrics(self, path: str | Path) -> None:
        """Write the service metrics as JSON."""
        import json

        Path(path).write_text(json.dumps(self.metrics.to_dict(), indent=1))

    def export_trace(self, path: str | Path) -> int:
        """Write a Chrome trace with one process (pid) per stream.

        Each session's frame timelines land at their absolute service
        start times, and the session's fault log contributes per-stream
        instant events — a device dropout is visible simultaneously in
        every stream's row. Returns the number of duration events.
        """
        from repro.hw.trace_export import StreamTrace, export_stream_traces

        traces = []
        for pid, session in enumerate(self.sessions, start=1):
            frames = [
                (session.framework.reports[r.index - 1].timeline, r.start_s)
                for r in session.records
            ]
            traces.append(
                StreamTrace(
                    pid=pid,
                    name=(
                        f"{session.stream_id} "
                        f"({session.spec.deadline_class}, "
                        f"{session.spec.fps_target:g} fps)"
                    ),
                    frames=frames,
                    fault_log=session.framework.fault_log,
                )
            )
        return export_stream_traces(traces, path)
