"""Per-stream and aggregate service metrics.

Frame latency is measured capture-to-completion on the service clock; a
frame misses its deadline when it completes after
``capture + budget_factor × period`` (background streams have no
deadline and never miss). Device utilization is genuine device-seconds —
each session's busy time weighted by the capacity share it held — over
the service run duration, so utilizations stay ≤ 1 no matter how many
sessions time-share an engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.service.session import EncodingSession


def latency_percentiles_ms(latencies_s: list[float]) -> dict[str, float]:
    """p50/p95/p99 of a latency sample, in milliseconds.

    Interpolation is pinned to numpy's ``method="linear"`` (percentile
    ``q`` maps to fractional order statistic ``(n-1)·q/100``, linearly
    interpolated between neighbours) so small samples — service smoke
    runs routinely produce n < 20 — give the same values on every numpy
    version regardless of its default-method history. Edge cases: an
    empty sample reports 0.0 for every percentile; a single sample
    reports that value for all three.
    """
    if not latencies_s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(latencies_s, dtype=float) * 1e3
    return {
        "p50": float(np.percentile(arr, 50, method="linear")),
        "p95": float(np.percentile(arr, 95, method="linear")),
        "p99": float(np.percentile(arr, 99, method="linear")),
    }


def per_class_summary(sessions: list[EncodingSession]) -> dict[str, dict]:
    """Latency/deadline headline numbers per deadline class.

    Aggregates every frame record of every session, keyed by the
    session's deadline class, into ``{class: {frames, p50_ms, p95_ms,
    p99_ms, deadline_miss_rate}}``. Classes with no encoded frames are
    omitted; background frames (no deadline) report a 0.0 miss rate.
    Shared by the service snapshot and the cluster layer, where per-class
    SLOs drive routing and autoscaling decisions.
    """
    lat: dict[str, list[float]] = {}
    missable: dict[str, int] = {}
    missed: dict[str, int] = {}
    for s in sessions:
        klass = s.spec.deadline_class
        for r in s.records:
            lat.setdefault(klass, []).append(r.latency_s)
            if not math.isinf(r.deadline_s):
                missable[klass] = missable.get(klass, 0) + 1
                missed[klass] = missed.get(klass, 0) + int(r.missed)
    out: dict[str, dict] = {}
    for klass in sorted(lat):
        pct = latency_percentiles_ms(lat[klass])
        n_missable = missable.get(klass, 0)
        out[klass] = {
            "frames": len(lat[klass]),
            "p50_ms": pct["p50"],
            "p95_ms": pct["p95"],
            "p99_ms": pct["p99"],
            "deadline_miss_rate": (
                missed.get(klass, 0) / n_missable if n_missable else 0.0
            ),
        }
    return out


@dataclass(frozen=True)
class StreamMetrics:
    """Headline numbers of one stream's run through the service."""

    stream_id: str
    deadline_class: str
    fps_target: float
    state: str
    frames: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    deadline_miss_rate: float
    achieved_fps: float
    wait_s: float
    fault_events: int

    @classmethod
    def from_session(cls, session: EncodingSession) -> "StreamMetrics":
        recs = session.records
        lat = latency_percentiles_ms([r.latency_s for r in recs])
        missable = [r for r in recs if not math.isinf(r.deadline_s)]
        miss = (
            sum(1 for r in missable if r.missed) / len(missable)
            if missable
            else 0.0
        )
        achieved = 0.0
        if recs and session.admitted_s is not None:
            span = recs[-1].end_s - session.admitted_s
            if span > 0:
                achieved = len(recs) / span
        return cls(
            stream_id=session.stream_id,
            deadline_class=session.spec.deadline_class,
            fps_target=session.spec.fps_target,
            state=session.state,
            frames=len(recs),
            p50_ms=lat["p50"],
            p95_ms=lat["p95"],
            p99_ms=lat["p99"],
            deadline_miss_rate=miss,
            achieved_fps=achieved,
            wait_s=session.wait_s,
            fault_events=sum(1 for e in session.framework.fault_log if e.eventful),
        )

    def to_dict(self) -> dict:
        return {
            "stream_id": self.stream_id,
            "deadline_class": self.deadline_class,
            "fps_target": self.fps_target,
            "state": self.state,
            "frames": self.frames,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "achieved_fps": self.achieved_fps,
            "wait_s": self.wait_s,
            "fault_events": self.fault_events,
        }


@dataclass(frozen=True)
class ServiceMetrics:
    """Aggregate outcome of one service run."""

    platform: str
    duration_s: float
    rounds: int
    streams: tuple[StreamMetrics, ...]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    deadline_miss_rate: float
    admission: dict[str, int] = field(default_factory=dict)
    device_utilization: dict[str, float] = field(default_factory=dict)
    fault_events: int = 0
    classes: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        platform: str,
        duration_s: float,
        rounds: int,
        sessions: list[EncodingSession],
        admission_counts: dict[str, int],
    ) -> "ServiceMetrics":
        streams = tuple(StreamMetrics.from_session(s) for s in sessions)
        all_lat: list[float] = []
        missable = 0
        missed = 0
        busy: dict[str, float] = {}
        for s in sessions:
            for r in s.records:
                all_lat.append(r.latency_s)
                if not math.isinf(r.deadline_s):
                    missable += 1
                    missed += int(r.missed)
                for res, t in r.busy_device_s.items():
                    busy[res] = busy.get(res, 0.0) + t
        lat = latency_percentiles_ms(all_lat)
        # Per-device utilization: fold a device's engines (compute + copy)
        # into the compute-engine figure most dashboards care about.
        util = {
            res: (t / duration_s if duration_s > 0 else 0.0)
            for res, t in sorted(busy.items())
            if res.endswith(".compute")
        }
        return cls(
            platform=platform,
            duration_s=duration_s,
            rounds=rounds,
            streams=streams,
            p50_ms=lat["p50"],
            p95_ms=lat["p95"],
            p99_ms=lat["p99"],
            deadline_miss_rate=(missed / missable) if missable else 0.0,
            admission=dict(admission_counts),
            device_utilization=util,
            fault_events=sum(m.fault_events for m in streams),
            classes=per_class_summary(sessions),
        )

    def stream(self, stream_id: str) -> StreamMetrics:
        for m in self.streams:
            if m.stream_id == stream_id:
                return m
        raise KeyError(f"no stream {stream_id!r} in metrics")

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "duration_s": self.duration_s,
            "rounds": self.rounds,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "admission": dict(self.admission),
            "device_utilization": dict(self.device_utilization),
            "fault_events": self.fault_events,
            "classes": {k: dict(v) for k, v in self.classes.items()},
            "streams": [m.to_dict() for m in self.streams],
        }
