"""Deadline-aware capacity partitioning across admitted sessions.

Each scheduling round, every session with a captured-but-unencoded frame
receives a share of the platform. The share is proportional to

    w_i = class_weight_i × demand_i × boost(slack_i / period_i)

where ``demand_i`` is the stream's work rate (MB rows per second —
heavier streams need proportionally more of the platform to hit the same
fps), ``class_weight`` comes from the stream's deadline class
(realtime > standard > background), and the *slack boost* bends capacity
toward streams about to miss:

    boost(r) = clamp(2 − r, boost_min, boost_max)

with ``r`` the slack ratio — time remaining until the next frame's
deadline, in frame periods. A stream whose deadline is imminent (r → 0)
doubles its weight; one already past its deadline (r < 0) grows up to
``boost_max``; one comfortably ahead (r ≥ 2, and background streams with
no deadline at all) floors at ``boost_min``. Shares are the normalized
weights, floored at ``min_share`` so no active stream is starved
outright; a single active stream always receives exactly 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.load_balancing import LPSolveCache
from repro.service.session import EncodingSession


@dataclass(frozen=True)
class SchedulerConfig:
    """Co-scheduler tunables (see module docstring for the formula)."""

    boost_min: float = 0.25
    boost_max: float = 4.0
    min_share: float = 0.02

    def __post_init__(self) -> None:
        if not 0 < self.boost_min <= self.boost_max:
            raise ValueError(
                f"need 0 < boost_min <= boost_max, got "
                f"{self.boost_min}/{self.boost_max}"
            )
        if not 0 < self.min_share <= 1.0:
            raise ValueError(f"min_share must be in (0, 1], got {self.min_share}")


class RoundLPBatch:
    """Batches the per-session LP solves of a scheduling round.

    Every admitted session solves a structurally identical Algorithm-2 LP
    against its private characterization each round; sessions holding
    equal capacity shares of the same platform measure bit-equal K
    parameters and therefore assemble byte-identical constraint systems.
    Handing all sessions one shared :class:`LPSolveCache` collapses those
    N solves into one HiGHS call per *unique* system per round — batching
    by exact deduplication, so every session still receives precisely the
    solution its own cold solve would have produced (the cache key is the
    full constraint bytes; see DESIGN.md → Performance).

    Uniform mixes (the saturation benchmark: identical specs, equal
    shares) dedupe almost completely; heterogeneous mixes still share
    solves whenever the co-scheduler grants equal shares.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.cache = LPSolveCache(max_entries=max_entries)

    def attach(self, session: EncodingSession) -> None:
        """Point one session's balancer at the shared solve cache."""
        session.framework.balancer.use_lp_cache(self.cache)

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate


class CoScheduler:
    """Partitions platform capacity across active sessions each round."""

    def __init__(self, cfg: SchedulerConfig | None = None) -> None:
        self.cfg = cfg or SchedulerConfig()

    def boost(self, slack_ratio: float) -> float:
        return max(self.cfg.boost_min, min(self.cfg.boost_max, 2.0 - slack_ratio))

    def weight(self, session: EncodingSession, now: float) -> float:
        spec = session.spec
        demand = spec.fps_target * spec.codec_config().mb_rows
        deadline = session.deadline_for(session.next_capture_s())
        if math.isinf(deadline):
            slack_ratio = math.inf  # no deadline: boost floors at boost_min
        else:
            slack_ratio = (deadline - now) / spec.period_s
        return spec.klass.weight * demand * self.boost(slack_ratio)

    def partition(
        self, sessions: list[EncodingSession], now: float
    ) -> dict[str, float]:
        """Capacity share per stream id; shares sum to 1."""
        if not sessions:
            return {}
        if len(sessions) == 1:
            # Exact 1.0, bit-identical to a dedicated platform.
            return {sessions[0].stream_id: 1.0}
        weights = {s.stream_id: self.weight(s, now) for s in sessions}
        total = sum(weights.values())
        shares = {sid: w / total for sid, w in weights.items()}
        # Starvation floor, then one renormalization pass (approximate by
        # design: with min_share ≪ 1/n the floor rarely binds).
        floored = {
            sid: max(self.cfg.min_share, sh) for sid, sh in shares.items()
        }
        norm = sum(floored.values())
        return {sid: sh / norm for sid, sh in floored.items()}
