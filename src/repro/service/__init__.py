"""Multi-stream encoding service.

Multiplexes N concurrent encoding sessions onto one shared simulated
platform: per-stream sessions with their own FEVES frameworks
(:mod:`~repro.service.session`), capacity-based admission control with a
bounded wait queue (:mod:`~repro.service.admission`), deadline-slack
weighted capacity partitioning (:mod:`~repro.service.scheduler`), open-
loop workload generation (:mod:`~repro.service.workload`), and per-stream
plus aggregate latency/deadline/utilization metrics
(:mod:`~repro.service.metrics`). The front door is
:class:`~repro.service.service.EncodingService` (CLI: ``repro serve``).
"""

from repro.service.admission import AdmissionController, CapacityModel
from repro.service.metrics import ServiceMetrics, StreamMetrics, per_class_summary
from repro.service.scheduler import CoScheduler, SchedulerConfig
from repro.service.service import EncodingService, ServiceConfig
from repro.service.session import (
    DEADLINE_CLASSES,
    EncodingSession,
    FrameRecord,
    StreamSpec,
)
from repro.service.workload import (
    STREAM_MIXES,
    build_workload,
    parse_submit_specs,
    poisson_arrivals,
)

__all__ = [
    "AdmissionController",
    "CapacityModel",
    "CoScheduler",
    "DEADLINE_CLASSES",
    "EncodingService",
    "EncodingSession",
    "FrameRecord",
    "STREAM_MIXES",
    "SchedulerConfig",
    "ServiceConfig",
    "ServiceMetrics",
    "StreamMetrics",
    "StreamSpec",
    "build_workload",
    "parse_submit_specs",
    "per_class_summary",
    "poisson_arrivals",
]
