"""Workload construction: arrival processes and stream-mix presets.

The service front-end drives an open-loop arrival process: streams arrive
at times drawn from a Poisson process (or all at once for a burst), each
stamped from a *mix* template cycling through stream shapes — resolution,
target fps, reference count, and deadline class. Scripted workloads
(``repro serve --submit AT:FPS:FRAMES[:CLASS]``) bypass the generator for
reproducible scenario tests.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.service.session import DEADLINE_CLASSES, StreamSpec

#: Stream-mix presets: each entry is a cycle of template kwargs layered
#: over the CLI/service defaults. ``uniform`` keeps every stream at the
#: caller's defaults; ``broadcast`` mixes a realtime contribution feed
#: with standard VOD channels and a background transcode; ``conference``
#: is many small low-latency tiles.
STREAM_MIXES: dict[str, tuple[dict[str, Any], ...]] = {
    "uniform": ({},),
    "broadcast": (
        {"fps_target": 30.0, "deadline_class": "realtime"},
        {"fps_target": 25.0, "deadline_class": "standard"},
        {"fps_target": 25.0, "deadline_class": "standard"},
        {
            "fps_target": 15.0,
            "deadline_class": "background",
            "search_range": 24,
            "num_ref_frames": 2,
        },
    ),
    "conference": (
        {
            "fps_target": 30.0,
            "deadline_class": "realtime",
            "width": 640,
            "height": 368,
            "search_range": 8,
        },
    ),
}


def poisson_arrivals(n: int, rate: float, seed: int = 0) -> list[float]:
    """Arrival times of ``n`` streams from a Poisson process.

    ``rate`` is in streams/second; ``rate <= 0`` degenerates to a burst
    (everything arrives at t = 0). Deterministic for a given seed.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if rate <= 0:
        return [0.0] * n
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=n)
    return np.cumsum(gaps).tolist()


def build_workload(
    n_streams: int,
    n_frames: int = 30,
    fps_target: float = 25.0,
    deadline_class: str = "standard",
    mix: str = "uniform",
    arrival_rate: float = 0.0,
    seed: int = 0,
    width: int = 1920,
    height: int = 1088,
    search_range: int = 16,
    num_ref_frames: int = 1,
) -> list[StreamSpec]:
    """Generate an open-loop workload of ``n_streams`` streams."""
    try:
        templates = STREAM_MIXES[mix]
    except KeyError:
        raise ValueError(
            f"unknown mix {mix!r}; available: {sorted(STREAM_MIXES)}"
        ) from None
    arrivals = poisson_arrivals(n_streams, arrival_rate, seed)
    specs = []
    for i in range(n_streams):
        base = dict(
            fps_target=fps_target,
            deadline_class=deadline_class,
            width=width,
            height=height,
            search_range=search_range,
            num_ref_frames=num_ref_frames,
        )
        base.update(templates[i % len(templates)])
        specs.append(
            StreamSpec(
                stream_id=f"s{i:02d}",
                n_frames=n_frames,
                arrival_s=arrivals[i],
                **base,
            )
        )
    return specs


def parse_submit_spec(text: str, index: int = 0) -> StreamSpec:
    """Parse one ``--submit AT:FPS:FRAMES[:CLASS]`` token.

    Raises ``ValueError`` naming the offending token on any malformed
    field, so the CLI can surface it eagerly.
    """
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"bad submit spec {text!r} (expected AT:FPS:FRAMES[:CLASS])"
        )
    try:
        at = float(parts[0])
        fps = float(parts[1])
        frames = int(parts[2])
    except ValueError:
        raise ValueError(
            f"bad submit spec {text!r}: non-numeric AT/FPS/FRAMES field"
        ) from None
    klass = parts[3] if len(parts) == 4 else "standard"
    if klass not in DEADLINE_CLASSES:
        raise ValueError(
            f"bad submit spec {text!r}: unknown class {klass!r} "
            f"(expected one of {sorted(DEADLINE_CLASSES)})"
        )
    try:
        return StreamSpec(
            stream_id=f"s{index:02d}",
            fps_target=fps,
            n_frames=frames,
            deadline_class=klass,
            arrival_s=at,
        )
    except ValueError as exc:
        raise ValueError(f"bad submit spec {text!r}: {exc}") from None


def parse_submit_specs(texts: Iterable[str]) -> list[StreamSpec]:
    """Parse all ``--submit`` tokens into a scripted workload."""
    return [parse_submit_spec(t, index=i) for i, t in enumerate(texts)]
