"""Persistent multiprocessing worker pool for the codec kernels.

Workers attach to the :class:`~repro.exec.shm.SharedFrameStore` segments
once, in the pool initializer, and afterwards every task is pure
coordinates: ``(row0, nrows)`` plus small metadata. ME and SME return
their per-band motion fields (a few KB per MB row); INT writes its SF band
straight into the shared ``sf0`` slot and returns nothing — no pixel
plane ever crosses a process boundary.

Each task also returns its own ``time.perf_counter()`` start/end pair.
On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is machine-wide,
so worker timestamps are directly comparable with the host's frame-start
anchor; the backend clamps defensively on platforms where they are not.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.interpolation import interpolate_rows
from repro.codec.me import MotionField, motion_estimate_rows
from repro.codec.sme import SubpelField, subpel_refine_rows
from repro.exec.shm import SLOT_DTYPE, Layout

#: Environment override for the pool start method ("fork"/"spawn"/...).
START_METHOD_ENV = "REPRO_EXEC_START_METHOD"

# Per-worker attachment state, populated once by _attach_worker(). The
# SharedMemory objects are kept alive so the numpy views stay valid for
# the life of the worker process; the owning host unlinks the segments.
_VIEWS: dict[str, np.ndarray] = {}
_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_CFG: CodecConfig | None = None


def _attach_worker(layout: Layout, cfg: CodecConfig) -> None:
    """Pool initializer: map every shared slot into this worker."""
    global _CFG
    _CFG = cfg
    for key, (name, shape) in layout.items():
        seg = shared_memory.SharedMemory(name=name)
        _SEGMENTS[key] = seg
        _VIEWS[key] = np.ndarray(shape, dtype=SLOT_DTYPE, buffer=seg.buf)


def _cfg() -> CodecConfig:
    if _CFG is None:
        raise RuntimeError("worker not attached (pool initializer did not run)")
    return _CFG


def _rf_view() -> np.ndarray:
    """Unpadded newest-reference plane: the centred view of ``ref0``."""
    cfg = _cfg()
    sr = cfg.search_range
    pad = _VIEWS["ref0"]
    if sr == 0:
        return pad
    return pad[sr:-sr, sr:-sr]


def me_task(
    row0: int, nrows: int, n_refs: int
) -> tuple[MotionField, float, float]:
    """Full-search ME over one chunk of MB rows (prepadded refs)."""
    cfg = _cfg()
    t0 = time.perf_counter()
    refs = [_VIEWS[f"ref{k}"] for k in range(n_refs)]
    out = motion_estimate_rows(
        _VIEWS["cur"], refs, row0, nrows, cfg, refs_prepadded=True
    )
    return out, t0, time.perf_counter()


def int_task(row0: int, nrows: int) -> tuple[None, float, float]:
    """Interpolate one SF band and write it into ``sf0`` in place.

    Bands are disjoint by construction (they partition the frame's MB
    rows), so concurrent INT tasks never write the same byte, and
    ``interpolate_rows`` is bit-exact with the matching rows of the
    full-plane kernel — the stitched ``sf0`` is identical to a serial
    ``interpolate_plane`` run.
    """
    t0 = time.perf_counter()
    band = interpolate_rows(_rf_view(), row0, nrows)
    px = 4 * MB_SIZE
    _VIEWS["sf0"][px * row0 : px * (row0 + nrows), :] = band
    return None, t0, time.perf_counter()


def sme_task(
    row0: int, nrows: int, n_sfs: int, me_band: MotionField
) -> tuple[SubpelField, float, float]:
    """Quarter-pel refinement over one chunk (reads the stitched SFs)."""
    cfg = _cfg()
    t0 = time.perf_counter()
    sfs = [_VIEWS[f"sf{k}"] for k in range(n_sfs)]
    out = subpel_refine_rows(_VIEWS["cur"], sfs, me_band, row0, nrows, cfg)
    return out, t0, time.perf_counter()


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits nothing we rely on)."""
    env = os.environ.get(START_METHOD_ENV)
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class KernelPool:
    """A persistent, pre-attached pool of kernel workers.

    Thin wrapper over :class:`~concurrent.futures.ProcessPoolExecutor`
    whose only job is to keep the submit API typed per kernel and to make
    shutdown explicit (``close()``): the pool lives for a whole encode,
    not per frame, so worker start-up and segment attachment are paid
    once.
    """

    def __init__(
        self,
        workers: int,
        layout: Layout,
        cfg: CodecConfig,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        ctx = multiprocessing.get_context(start_method or default_start_method())
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_attach_worker,
            initargs=(layout, cfg),
        )

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            raise RuntimeError("kernel pool is closed")
        return self._pool

    def submit_me(
        self, row0: int, nrows: int, n_refs: int
    ) -> "Future[tuple[MotionField, float, float]]":
        return self._executor().submit(me_task, row0, nrows, n_refs)

    def submit_int(
        self, row0: int, nrows: int
    ) -> "Future[tuple[None, float, float]]":
        return self._executor().submit(int_task, row0, nrows)

    def submit_sme(
        self, row0: int, nrows: int, n_sfs: int, me_band: MotionField
    ) -> "Future[tuple[SubpelField, float, float]]":
        return self._executor().submit(sme_task, row0, nrows, n_sfs, me_band)

    def close(self) -> None:
        """Shut the workers down (idempotent; queued tasks are dropped)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "KernelPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
