"""Persistent multiprocessing worker pool for the codec kernels.

Workers attach to the :class:`~repro.exec.shm.SharedFrameStore` segments
once, in the pool initializer, and afterwards every task is pure
coordinates: ``(row0, nrows)`` plus small metadata. ME and SME return
their per-band motion fields (a few KB per MB row); INT writes its SF band
straight into the shared ``sf0`` slot and returns nothing — no pixel
plane ever crosses a process boundary.

Each task also returns its own ``time.perf_counter()`` start/end pair.
On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is machine-wide,
so worker timestamps are directly comparable with the host's frame-start
anchor; the backend clamps defensively on platforms where they are not.

Under sanitization (SAN-F) every task additionally returns its
shared-memory :class:`~repro.exec.shm.AccessRecord` entries — built from
the *same* bounds the actual reads/writes use, so the journal cannot
drift from the access it describes — and the backend hands the merged
per-frame journal to ``TimelineSanitizer.check_exec``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.codec.config import MB_SIZE, CodecConfig
from repro.sanitizers.protocols.journal import record as _proto_journal
from repro.codec.interpolation import interpolate_rows
from repro.codec.me import MotionField, motion_estimate_rows
from repro.codec.sme import SubpelField, subpel_refine_rows
from repro.exec.shm import (
    PHASE_P1,
    PHASE_P2,
    SLOT_DTYPE,
    AccessRecord,
    Layout,
)

#: Environment override for the pool start method ("fork"/"spawn"/...).
START_METHOD_ENV = "REPRO_EXEC_START_METHOD"

#: Environment override for the per-task deadlock failsafe (seconds).
TASK_TIMEOUT_ENV = "REPRO_EXEC_TIMEOUT_S"
DEFAULT_TASK_TIMEOUT_S = 600.0

# Per-worker attachment state, populated once by _attach_worker(). The
# SharedMemory objects are kept alive so the numpy views stay valid for
# the life of the worker process; the owning host unlinks the segments.
_VIEWS: dict[str, np.ndarray] = {}
_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_CFG: CodecConfig | None = None
_SANITIZE: bool = False


def _attach_worker(
    layout: Layout, cfg: CodecConfig, sanitize: bool = False
) -> None:
    """Pool initializer: map every shared slot into this worker."""
    global _CFG, _SANITIZE
    _CFG = cfg
    _SANITIZE = sanitize
    for key, (name, shape) in layout.items():
        seg = shared_memory.SharedMemory(name=name)
        _SEGMENTS[key] = seg
        _VIEWS[key] = np.ndarray(shape, dtype=SLOT_DTYPE, buffer=seg.buf)


def _cfg() -> CodecConfig:
    if _CFG is None:
        raise RuntimeError("worker not attached (pool initializer did not run)")
    return _CFG


def _rf_view() -> np.ndarray:
    """Unpadded newest-reference plane: the centred view of ``ref0``."""
    cfg = _cfg()
    sr = cfg.search_range
    pad = _VIEWS["ref0"]
    if sr == 0:
        return pad
    return pad[sr:-sr, sr:-sr]


def _journal(
    task: str, phase: int, accesses: list[tuple[str, int, int, str]]
) -> list[AccessRecord]:
    """Worker-side journal entries (empty unless sanitizing)."""
    if not _SANITIZE:
        return []
    return [
        AccessRecord(segment, row0, row1, kind, task, phase)
        for segment, row0, row1, kind in accesses
    ]


def me_task(
    row0: int, nrows: int, n_refs: int
) -> tuple[MotionField, float, float, list[AccessRecord]]:
    """Full-search ME over one chunk of MB rows (prepadded refs)."""
    cfg = _cfg()
    t0 = time.perf_counter()
    refs = [_VIEWS[f"ref{k}"] for k in range(n_refs)]
    out = motion_estimate_rows(
        _VIEWS["cur"], refs, row0, nrows, cfg, refs_prepadded=True
    )
    entries = _journal(
        f"me rows {row0}+{nrows}", PHASE_P1,
        [("cur", MB_SIZE * row0, MB_SIZE * (row0 + nrows), "r")]
        + [(f"ref{k}", 0, _VIEWS[f"ref{k}"].shape[0], "r")
           for k in range(n_refs)],
    )
    return out, t0, time.perf_counter(), entries


def int_task(
    row0: int, nrows: int
) -> tuple[None, float, float, list[AccessRecord]]:
    """Interpolate one SF band and write it into ``sf0`` in place.

    Bands are disjoint by construction (they partition the frame's MB
    rows), so concurrent INT tasks never write the same byte, and
    ``interpolate_rows`` is bit-exact with the matching rows of the
    full-plane kernel — the stitched ``sf0`` is identical to a serial
    ``interpolate_plane`` run.
    """
    t0 = time.perf_counter()
    band = interpolate_rows(_rf_view(), row0, nrows)
    px = 4 * MB_SIZE
    lo = px * row0
    hi = px * (row0 + nrows)
    _VIEWS["sf0"][lo:hi, :] = band
    entries = _journal(
        f"int rows {row0}+{nrows}", PHASE_P1,
        [("ref0", 0, _VIEWS["ref0"].shape[0], "r"), ("sf0", lo, hi, "w")],
    )
    return None, t0, time.perf_counter(), entries


def sme_task(
    row0: int, nrows: int, n_sfs: int, me_band: MotionField
) -> tuple[SubpelField, float, float, list[AccessRecord]]:
    """Quarter-pel refinement over one chunk (reads the stitched SFs)."""
    cfg = _cfg()
    t0 = time.perf_counter()
    sfs = [_VIEWS[f"sf{k}"] for k in range(n_sfs)]
    out = subpel_refine_rows(_VIEWS["cur"], sfs, me_band, row0, nrows, cfg)
    entries = _journal(
        f"sme rows {row0}+{nrows}", PHASE_P2,
        [("cur", MB_SIZE * row0, MB_SIZE * (row0 + nrows), "r")]
        + [(f"sf{k}", 0, _VIEWS[f"sf{k}"].shape[0], "r")
           for k in range(n_sfs)],
    )
    return out, t0, time.perf_counter(), entries


def resolve_start_method(requested: str | None = None) -> str:
    """The validated start method: explicit arg > env > platform default.

    Raises eagerly (naming the offending token and ``$REPRO_EXEC_START_-
    METHOD``) instead of letting ``multiprocessing.get_context`` surface
    a bare ``ValueError`` from deep inside pool construction.
    """
    methods = multiprocessing.get_all_start_methods()
    chosen = requested or os.environ.get(START_METHOD_ENV) or None
    if chosen is None:
        return "fork" if "fork" in methods else methods[0]
    if chosen not in methods:
        source = (
            "start_method" if requested
            else f"${START_METHOD_ENV}"
        )
        raise ValueError(
            f"invalid {source}={chosen!r}: this platform supports "
            f"{', '.join(sorted(methods))}"
        )
    return chosen


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits nothing we rely on)."""
    return resolve_start_method()


def task_timeout_from_env() -> float:
    """The validated per-task timeout in seconds (positive finite float)."""
    raw = os.environ.get(TASK_TIMEOUT_ENV)
    if raw is None or raw == "":
        return DEFAULT_TASK_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"invalid ${TASK_TIMEOUT_ENV}={raw!r}: expected a positive "
            "number of seconds"
        ) from None
    if not value > 0 or not math.isfinite(value):
        raise ValueError(
            f"invalid ${TASK_TIMEOUT_ENV}={raw!r}: expected a positive "
            "finite number of seconds"
        )
    return value


class KernelPool:
    """A persistent, pre-attached pool of kernel workers.

    Thin wrapper over :class:`~concurrent.futures.ProcessPoolExecutor`
    whose only job is to keep the submit API typed per kernel and to make
    shutdown explicit (``close()``): the pool lives for a whole encode,
    not per frame, so worker start-up and segment attachment are paid
    once.

    Both environment knobs (``$REPRO_EXEC_START_METHOD``,
    ``$REPRO_EXEC_TIMEOUT_S``) are validated here, at construction, so a
    typo fails with a named token instead of a deep pool/runtime error
    frames later.
    """

    def __init__(
        self,
        workers: int,
        layout: Layout,
        cfg: CodecConfig,
        start_method: str | None = None,
        sanitize: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.start_method = resolve_start_method(start_method)
        self.task_timeout_s = task_timeout_from_env()
        ctx = multiprocessing.get_context(self.start_method)
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_attach_worker,
            initargs=(layout, cfg, sanitize),
        )
        _proto_journal(self, "create")

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            raise RuntimeError("kernel pool is closed")
        return self._pool

    def submit_me(
        self, row0: int, nrows: int, n_refs: int
    ) -> "Future[tuple[MotionField, float, float, list[AccessRecord]]]":
        _proto_journal(self, "submit_me", detail=f"{row0}+{nrows}")
        return self._executor().submit(me_task, row0, nrows, n_refs)

    def submit_int(
        self, row0: int, nrows: int
    ) -> "Future[tuple[None, float, float, list[AccessRecord]]]":
        _proto_journal(self, "submit_int", detail=f"{row0}+{nrows}")
        return self._executor().submit(int_task, row0, nrows)

    def submit_sme(
        self, row0: int, nrows: int, n_sfs: int, me_band: MotionField
    ) -> "Future[tuple[SubpelField, float, float, list[AccessRecord]]]":
        _proto_journal(self, "submit_sme", detail=f"{row0}+{nrows}")
        return self._executor().submit(sme_task, row0, nrows, n_sfs, me_band)

    def close(self) -> None:
        """Shut the workers down (idempotent; queued tasks are dropped)."""
        _proto_journal(self, "close")
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "KernelPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
