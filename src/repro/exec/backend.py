"""The ``process`` execution backend: really-parallel frame encoding.

:class:`ProcessBackend` implements the same ``run_frame`` contract as the
DES-backed :class:`~repro.core.coding_manager.VideoCodingManager`, but
instead of simulating the collaborative schedule it *executes* it: each
"device" of the platform becomes a worker group on one persistent
:class:`~repro.exec.pool.KernelPool`, the LP-assigned row split (m, l, s)
is honored by giving every device's band to its group as MB-row chunks,
and the τ1/τ2 phase barriers of Algorithm 1 are real collection points —
no SME task is submitted before every ME/INT result of the frame is in.

Timing discipline: the host anchors ``t=0`` at frame start; workers stamp
their kernels with ``time.perf_counter()`` (machine-wide on Linux), so
the assembled :class:`~repro.hw.timeline.FrameTimeline` holds measured,
not simulated, intervals. Measured per-module spans feed
``PerformanceCharacterization.observe_*`` (calibration mode) so the LP
schedules subsequent frames from real rates; with ``calibrate=False`` the
model rates are fed instead, making the accuracy report quantify the raw
model error.

Transfers are identically zero here — shared memory *is* the bus — so
the backend seeds the characterization's transfer estimates with the
platform's model priors once, purely to satisfy the LP's readiness check.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any

import numpy as np

from repro.codec.config import CodecConfig
from repro.codec.frames import pad_plane
from repro.codec.me import MotionField
from repro.codec.sme import SubpelField
from repro.core.coding_manager import FrameReport, RealContext, execute_rstar
from repro.core.config import FrameworkConfig
from repro.core.data_access import TransferPlan
from repro.core.load_balancing import LoadDecision
from repro.core.perf_model import PerformanceCharacterization
from repro.exec.accuracy import AccuracyReport, FrameAccuracy
from repro.exec.pool import (
    TASK_TIMEOUT_ENV,
    KernelPool,
    resolve_start_method,
    task_timeout_from_env,
)
from repro.exec.shm import (
    PHASE_P2,
    PHASE_STAGE,
    AccessRecord,
    SharedFrameStore,
)
from repro.hw.des import OpRecord
from repro.hw.timeline import FrameTimeline
from repro.hw.topology import Platform
from repro.util.profiling import PhaseProfiler

#: Environment switch for the SAN-F shared-memory access journal.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Representative payload for the one-time transfer priors (bytes).
_PRIOR_TRANSFER_BYTES = 1 << 20


def split_band(band: tuple[int, int], n_chunks: int) -> list[tuple[int, int]]:
    """Split ``[start, stop)`` into ≤ ``n_chunks`` contiguous near-equal bands."""
    start, stop = band
    total = stop - start
    if total <= 0:
        return []
    n = max(1, min(n_chunks, total))
    base, extra = divmod(total, n)
    out: list[tuple[int, int]] = []
    row = start
    for j in range(n):
        nrows = base + (1 if j < extra else 0)
        out.append((row, row + nrows))
        row += nrows
    return out


def worker_group_sizes(n_devices: int, n_workers: int) -> list[int]:
    """Workers per device group (every device gets at least one)."""
    if n_devices < 1:
        raise ValueError(f"need at least one device, got {n_devices}")
    base, extra = divmod(max(n_workers, n_devices), n_devices)
    return [base + (1 if i < extra else 0) for i in range(n_devices)]


# One executed chunk: (module, device, row0, nrows, t0_abs, t1_abs).
_Chunk = tuple[str, str, int, int, float, float]


def sanitize_from_env() -> bool:
    """Is the SAN-F journal requested via ``$REPRO_SANITIZE``?"""
    return os.environ.get(SANITIZE_ENV, "").lower() not in ("", "0", "off")


class ProcessBackend:
    """Drop-in ``run_frame`` provider that executes frames in parallel.

    Lifetime: the shared-memory store and the worker pool are created
    lazily on the first frame (so constructing a framework stays cheap)
    and live until :meth:`close` — call it, or use the owning framework
    as a context manager.
    """

    def __init__(
        self,
        platform: Platform,
        codec_cfg: CodecConfig,
        fw_cfg: FrameworkConfig,
        profiler: PhaseProfiler | None = None,
        sanitize: bool | None = None,
    ) -> None:
        if fw_cfg.compute != "real":
            raise ValueError("the process backend requires compute='real'")
        self.platform = platform
        self.codec_cfg = codec_cfg
        self.fw_cfg = fw_cfg
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.workers = fw_cfg.exec_workers or os.cpu_count() or 1
        self.accuracy = AccuracyReport()
        # Validate both env knobs here, at construction: a typo'd
        # $REPRO_EXEC_START_METHOD / $REPRO_EXEC_TIMEOUT_S must fail
        # with a named token before any frame (or fork) happens.
        self.start_method = resolve_start_method()
        self.task_timeout_s = task_timeout_from_env()
        self.sanitize = sanitize_from_env() if sanitize is None else sanitize
        #: SAN-F: per-frame shared-memory access journal (host + workers).
        self.exec_journal: dict[int, list[AccessRecord]] = {}
        self._store: SharedFrameStore | None = None
        self._pool: KernelPool | None = None
        self._priors_seeded = False

    # ------------------------------ lifecycle ----------------------------

    def _ensure_started(self) -> tuple[SharedFrameStore, KernelPool]:
        if self._store is None or self._pool is None:
            with self.profiler.phase("exec_start"):
                store = SharedFrameStore(self.codec_cfg, sanitize=self.sanitize)
                try:
                    pool = KernelPool(
                        self.workers, store.layout(), self.codec_cfg,
                        start_method=self.start_method,
                        sanitize=self.sanitize,
                    )
                except BaseException:
                    store.close()
                    raise
                self._store, self._pool = store, pool
        return self._store, self._pool

    def close(self) -> None:
        """Shut down the pool, then unlink the shared segments (idempotent)."""
        pool, self._pool = self._pool, None
        store, self._store = self._store, None
        try:
            if pool is not None:
                pool.close()
        finally:
            if store is not None:
                store.close()

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ----------------------------- scheduling ----------------------------

    def _seed_transfer_priors(self, perf: PerformanceCharacterization) -> None:
        """Install model-rate link priors once (shared memory is zero-copy).

        The LP's readiness check requires h2d/d2h bandwidth estimates for
        every accelerator before it engages; no transfer ever executes on
        this backend, so the platform's modelled link speeds stand in.
        """
        if self._priors_seeded:
            return
        self._priors_seeded = True
        nbytes = _PRIOR_TRANSFER_BYTES
        for dev in self.platform.devices:
            if not dev.is_accelerator:
                continue
            for direction in ("h2d", "d2h"):
                perf.observe_transfer(
                    dev.name, direction, nbytes,
                    dev.transfer_s(nbytes, direction), prior=True,
                )

    def _collect(
        self, futs: list["Future[tuple[Any, float, float, list[AccessRecord]]]"]
    ) -> list[tuple[Any, float, float, list[AccessRecord]]]:
        """Gather task results, failing fast on a stalled pool."""
        out: list[tuple[Any, float, float, list[AccessRecord]]] = []
        for fut in futs:
            try:
                out.append(fut.result(timeout=self.task_timeout_s))
            except FutureTimeoutError:
                raise RuntimeError(
                    f"worker pool stalled: no result within "
                    f"{self.task_timeout_s:.0f}s (set ${TASK_TIMEOUT_ENV} "
                    "to adjust the failsafe)"
                ) from None
        return out

    # ------------------------------ run_frame ----------------------------

    def run_frame(
        self,
        frame_index: int,
        decision: LoadDecision,
        rstar_device: str,
        plan: TransferPlan,
        active_refs: int,
        perf: PerformanceCharacterization,
        ctx: RealContext | None = None,
        probe_rstar: bool = False,
        live: frozenset[str] | set[str] | None = None,
        faulted_now: frozenset[str] | set[str] = frozenset(),
        fault_timeout_s: float = 0.0,
        fallback_device: str | None = None,
    ) -> FrameReport:
        """Execute one inter frame for real (same contract as the sim)."""
        if ctx is None:
            raise ValueError(
                "the process backend has no model mode: pass a RealContext "
                "(FrameworkConfig must use compute='real')"
            )
        if faulted_now:
            raise ValueError(
                "fault injection is simulation-only; the process backend "
                "cannot execute faulted frames"
            )
        devices = self.platform.devices
        live_set = (
            frozenset(d.name for d in devices) if live is None else frozenset(live)
        )
        if rstar_device not in live_set:
            raise ValueError(
                f"R* device {rstar_device!r} is not a live survivor this frame"
            )
        cfg = self.codec_cfg
        store, pool = self._ensure_started()
        self._seed_transfer_priors(perf)

        live_idx = [i for i, d in enumerate(devices) if d.name in live_set]
        groups = worker_group_sizes(len(live_idx), self.workers)
        group_of = dict(zip(live_idx, groups, strict=True))

        t_frame0 = time.perf_counter()

        # ---- stage the frame into shared memory (host is the only writer)
        with self.profiler.phase("exec_write"):
            sr = cfg.search_range
            n_refs = min(len(ctx.refs_y), cfg.num_ref_frames)
            store.view("cur")[:] = ctx.cur.y
            store.record_full("cur", "w", "host.stage", PHASE_STAGE)
            for k in range(n_refs):
                store.view(f"ref{k}")[:] = pad_plane(ctx.refs_y[k], sr)
                store.record_full(f"ref{k}", "w", "host.stage", PHASE_STAGE)
            for k, sf_prev in enumerate(ctx.sfs_prev):
                store.view(f"sf{k + 1}")[:] = sf_prev
                store.record_full(f"sf{k + 1}", "w", "host.stage", PHASE_STAGE)

        chunks: list[_Chunk] = []
        journal: list[AccessRecord] = []

        # ---- phase 1: ME + INT, barriered at τ1 ----------------------------
        with self.profiler.phase("exec_phase1"):
            int_futs: list[
                Future[tuple[None, float, float, list[AccessRecord]]]
            ] = []
            int_meta: list[tuple[str, int, int]] = []
            me_futs: list[
                Future[tuple[MotionField, float, float, list[AccessRecord]]]
            ] = []
            me_meta: list[tuple[str, int, int]] = []
            for i in live_idx:
                name = devices[i].name
                for row0, stop in split_band(decision.l.band(i), group_of[i]):
                    int_futs.append(pool.submit_int(row0, stop - row0))
                    int_meta.append((name, row0, stop - row0))
                for row0, stop in split_band(decision.m.band(i), group_of[i]):
                    me_futs.append(pool.submit_me(row0, stop - row0, n_refs))
                    me_meta.append((name, row0, stop - row0))
            int_results = self._collect(list(int_futs))
            me_results = self._collect(list(me_futs))
            tau1 = time.perf_counter() - t_frame0
            for (name, row0, nrows), (_none, t0, t1, jr) in zip(
                int_meta, int_results, strict=True
            ):
                chunks.append(("int", name, row0, nrows, t0, t1))
                journal.extend(jr)
            for (name, row0, nrows), (_mf, t0, t1, jr) in zip(
                me_meta, me_results, strict=True
            ):
                chunks.append(("me", name, row0, nrows, t0, t1))
                journal.extend(jr)

        # ---- τ1 barrier: stitch ME bands, copy the new SF out ------------
        with self.profiler.phase("exec_tau1"):
            ctx.me_field = MotionField.merge(
                [mf for mf, _t0, _t1, _j in me_results]
            )
            ctx.sf_new = np.array(store.view("sf0"), copy=True)
            store.record_full("sf0", "r", "host.tau1", PHASE_P2)
            ctx.sfs = [ctx.sf_new] + ctx.sfs_prev

        # ---- phase 2: SME, barriered at τ2 --------------------------------
        with self.profiler.phase("exec_phase2"):
            n_sfs = 1 + len(ctx.sfs_prev)
            sme_futs: list[
                Future[tuple[SubpelField, float, float, list[AccessRecord]]]
            ] = []
            sme_meta: list[tuple[str, int, int]] = []
            for i in live_idx:
                name = devices[i].name
                for row0, stop in split_band(decision.s.band(i), group_of[i]):
                    sme_futs.append(
                        pool.submit_sme(
                            row0, stop - row0, n_sfs,
                            ctx.me_field.slice_rows(row0, stop - row0),
                        )
                    )
                    sme_meta.append((name, row0, stop - row0))
            sme_results = self._collect(list(sme_futs))
            tau2 = time.perf_counter() - t_frame0
            for (name, row0, nrows), (_sf, t0, t1, jr) in zip(
                sme_meta, sme_results, strict=True
            ):
                chunks.append(("sme", name, row0, nrows, t0, t1))
                journal.extend(jr)

        with self.profiler.phase("exec_tau2"):
            ctx.sme_field = SubpelField.merge(
                [sf for sf, _t0, _t1, _j in sme_results]
            )

        # ---- R* block on the host, attributed to the R* device ------------
        with self.profiler.phase("exec_rstar"):
            t_rstar0 = time.perf_counter()
            execute_rstar(ctx)
            rstar_s = time.perf_counter() - t_rstar0
        tau_tot = time.perf_counter() - t_frame0

        if self.sanitize:
            self.exec_journal[frame_index] = store.drain_journal() + journal

        timeline = self._build_timeline(
            frame_index, chunks, rstar_device,
            t_frame0, t_rstar0, rstar_s, tau1, tau2, tau_tot,
        )
        self._feed_characterization(
            perf, decision, chunks, rstar_device, rstar_s,
            active_refs, live_set, probe_rstar,
        )
        if decision.used_lp and decision.tau_tot_pred > 0:
            self.accuracy.add(
                FrameAccuracy(
                    frame_index=frame_index,
                    tau1_pred=decision.tau1_pred,
                    tau2_pred=decision.tau2_pred,
                    tau_tot_pred=decision.tau_tot_pred,
                    tau1_meas=tau1,
                    tau2_meas=tau2,
                    tau_tot_meas=tau_tot,
                )
            )
        return FrameReport(
            frame_index=frame_index,
            tau1=tau1,
            tau2=tau2,
            tau_tot=tau_tot,
            timeline=timeline,
            decision=decision,
            rstar_device=rstar_device,
            transfer_plan=plan,
            encoded=ctx.encoded,
        )

    # ------------------------------ harvest ------------------------------

    def _build_timeline(
        self,
        frame_index: int,
        chunks: list[_Chunk],
        rstar_device: str,
        t_frame0: float,
        t_rstar0: float,
        rstar_s: float,
        tau1: float,
        tau2: float,
        tau_tot: float,
    ) -> FrameTimeline:
        """Assemble the measured Gantt chart (times relative to frame start)."""
        records: list[OpRecord] = []
        lane: dict[str, int] = {}
        module_tag = {"me": "ME", "int": "INT", "sme": "SME"}
        for module, name, row0, nrows, t0, t1 in chunks:
            j = lane.get(name, 0)
            lane[name] = j + 1
            start = max(0.0, t0 - t_frame0)
            end = max(start, t1 - t_frame0)
            records.append(
                OpRecord(
                    label=f"{module_tag[module]}[{name}] rows {row0}+{nrows}",
                    resource=f"{name}.w{j}",
                    category="compute",
                    start=start,
                    end=end,
                )
            )
        rstar_start = max(0.0, t_rstar0 - t_frame0)
        records.append(
            OpRecord(
                label=f"R*[{rstar_device}]",
                resource=f"{rstar_device}.compute",
                category="compute",
                start=rstar_start,
                end=rstar_start + rstar_s,
            )
        )
        records.append(OpRecord("tau1", "host.sync", "sync", tau1, tau1))
        records.append(OpRecord("tau2", "host.sync", "sync", tau2, tau2))
        records.sort(key=lambda r: (r.start, r.resource, r.label))
        return FrameTimeline(
            frame_index=frame_index, records=records,
            tau1=tau1, tau2=tau2, tau_tot=tau_tot,
        )

    def _feed_characterization(
        self,
        perf: PerformanceCharacterization,
        decision: LoadDecision,
        chunks: list[_Chunk],
        rstar_device: str,
        rstar_s: float,
        active_refs: int,
        live_set: frozenset[str],
        probe_rstar: bool,
    ) -> None:
        """Close the loop: measured (or model) rates → the characterization.

        The per-(device, module) observation is the *span* from the first
        chunk start to the last chunk end — it includes pool queue wait,
        which is exactly the effective rate the LP must plan with when a
        group shares cores.
        """
        cfg = self.codec_cfg
        if not self.fw_cfg.calibrate:
            # Uncalibrated mode: feed the model rates the simulator would
            # have produced, so the accuracy report isolates model error.
            for i, dev in enumerate(self.platform.devices):
                if dev.name not in live_set:
                    continue
                rates = dev.spec.rates
                for module, rows in (
                    ("me", decision.m.rows[i]),
                    ("int", decision.l.rows[i]),
                    ("sme", decision.s.rows[i]),
                ):
                    if rows <= 0:
                        continue
                    row_s = (
                        rates.me_row_s(cfg, active_refs)
                        if module == "me"
                        else rates.int_row_s(cfg)
                        if module == "int"
                        else rates.sme_row_s(cfg)
                    )
                    perf.observe_compute(dev.name, module, rows, row_s * rows)
            perf.observe_rstar(
                rstar_device,
                self.platform.device(rstar_device).spec.rates.rstar_frame_s(cfg),
            )
            if probe_rstar:
                for dev in self.platform.devices:
                    if dev.name in live_set and dev.name != rstar_device:
                        perf.observe_rstar(dev.name, dev.spec.rates.rstar_frame_s(cfg))
            return

        span: dict[tuple[str, str], tuple[float, float]] = {}
        for module, name, _row0, _nrows, t0, t1 in chunks:
            key = (name, module)
            lo, hi = span.get(key, (t0, t1))
            span[key] = (min(lo, t0), max(hi, t1))
        rows_of = {"me": decision.m, "int": decision.l, "sme": decision.s}
        for i, dev in enumerate(self.platform.devices):
            for module, dist in sorted(rows_of.items()):
                lohi = span.get((dev.name, module))
                if lohi is None:
                    continue
                perf.observe_compute(
                    dev.name, module, dist.rows[i], lohi[1] - lohi[0]
                )
        perf.observe_rstar(rstar_device, rstar_s)
        if probe_rstar:
            # No way to measure R* on "other devices" here — every group
            # runs on the same host cores — so the one measured block
            # stands in for all of them (bootstraps the R* mapping).
            for dev in self.platform.devices:
                if dev.name in live_set and dev.name != rstar_device:
                    perf.observe_rstar(dev.name, rstar_s)
