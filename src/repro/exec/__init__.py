"""Execution backends: run a frame's schedule for real instead of simulating it.

The DES-backed :class:`~repro.core.coding_manager.VideoCodingManager` is
the ``"sim"`` backend: it *simulates* the collaborative schedule and
(in real mode) executes the kernels serially on the host. This package
adds the ``"process"`` backend — the same ``run_frame`` contract, but
ME/INT/SME work items execute at MB-row granularity on a persistent
``multiprocessing`` worker pool with frames, reference windows and
subpel planes in ``multiprocessing.shared_memory`` buffers, honoring the
LP-assigned row split per device (worker group) and the τ1/τ2 phase
barriers of Algorithm 1.

Select it with ``FrameworkConfig(compute="real", backend="process")`` or
``repro run --backend process``. Measured per-row kernel times feed the
Performance Characterization (calibration mode), and every frame's
LP-predicted τ1/τ2/τtot is compared against the measured timeline in an
:class:`~repro.exec.accuracy.AccuracyReport`.
"""

from repro.exec.accuracy import AccuracyReport, FrameAccuracy
from repro.exec.backend import ProcessBackend
from repro.exec.shm import SharedFrameStore

__all__ = [
    "AccuracyReport",
    "FrameAccuracy",
    "ProcessBackend",
    "SharedFrameStore",
]
