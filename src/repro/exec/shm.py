"""Shared-memory frame buffers for the ``process`` backend.

One :class:`SharedFrameStore` owns every pixel buffer a frame's
collaborative schedule touches, as named ``multiprocessing.shared_memory``
segments the worker processes attach to by name — so work items carry only
``(row0, nrows)`` coordinates and never pickle pixel data.

Slot layout (all ``uint8``, one segment per slot):

================  =========================  =====================================
slot              shape                      contents
================  =========================  =====================================
``cur``           ``(H, W)``                 current-frame luma (ME/SME input)
``ref<k>``        ``(H + 2sr, W + 2sr)``     reference ``k`` luma, replicate-padded
                                             by the search range (ME reads the
                                             padded plane directly; INT reads the
                                             centred ``(H, W)`` view of ``ref0``)
``sf<k>``         ``(4H, 4W)``               quarter-pel SF of reference ``k``
================  =========================  =====================================

Writer discipline: the host is the single writer of ``cur``, ``ref*`` and
the previous-frame SFs (``sf1..``), all staged before any phase-1 work is
submitted. The one exception is ``sf0`` — the SF interpolated *this*
frame — which INT workers fill in place, each writing its disjoint
``64·nrows``-pixel row band; the τ1 barrier orders those writes before any
SME read. Reference windows need no per-device Δm/Δl management here:
every worker sees the whole padded plane, a superset of any Δ window.

That discipline is machine-checked from both sides: statically by the
REP203/REP204 concurrency lint, and dynamically by the SAN-F access
journal — with ``sanitize=True`` (the process backend enables it under
``REPRO_SANITIZE``) every host-side access is recorded as an
:class:`AccessRecord` and worker tasks return their own records, so
:meth:`TimelineSanitizer.check_exec` can verify pairwise disjointness
of concurrent writes and the barrier ordering of every read on a real
parallel run.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.codec.config import MB_SIZE, CodecConfig
from repro.sanitizers.protocols.journal import record as _proto_journal

#: Every slot stores 8-bit samples.
SLOT_DTYPE = np.uint8

#: ``{key: (segment name, shape)}`` — everything a worker needs to attach.
Layout = dict[str, tuple[str, tuple[int, int]]]


#: Phase tags for :class:`AccessRecord` (matching Algorithm 1's beats):
#: 0 = host staging, 1 = ME/INT, 2 = τ1 stitch + SME.
PHASE_STAGE, PHASE_P1, PHASE_P2 = 0, 1, 2


@dataclass(frozen=True)
class AccessRecord:
    """One journaled access to a shared segment (SAN-F).

    ``row0``/``row1`` bound the touched array rows half-open; ``task``
    names the accessor uniquely within a frame (``host.stage``,
    ``int rows 3+2``, …) so two records from different tasks are known
    to be concurrent within a phase.
    """

    segment: str
    row0: int
    row1: int
    kind: str  # "r" | "w"
    task: str
    phase: int

    def overlaps(self, other: "AccessRecord") -> bool:
        return (
            self.segment == other.segment
            and self.row0 < other.row1
            and other.row0 < self.row1
        )


@dataclass(frozen=True)
class SlotSpec:
    """Geometry of one shared buffer."""

    key: str
    shape: tuple[int, int]

    @property
    def nbytes(self) -> int:
        return int(self.shape[0]) * int(self.shape[1])


def slot_specs(cfg: CodecConfig) -> list[SlotSpec]:
    """The slots one codec configuration needs (see module docstring)."""
    h, w, sr = cfg.height, cfg.width, cfg.search_range
    specs = [SlotSpec("cur", (h, w))]
    for k in range(cfg.num_ref_frames):
        specs.append(SlotSpec(f"ref{k}", (h + 2 * sr, w + 2 * sr)))
    for k in range(cfg.num_ref_frames):
        specs.append(SlotSpec(f"sf{k}", (4 * h, 4 * w)))
    return specs


class SharedFrameStore:
    """Owner of the shared segments (create → use → ``close()`` exactly once).

    The store both closes and unlinks every segment; worker processes only
    ever attach (``create=False``) and drop their mappings when the pool
    shuts down. Construction is exception-safe: if any segment fails to
    allocate, the ones already created are released before the error
    propagates (the REP103 acquire/release discipline).
    """

    def __init__(self, cfg: CodecConfig, sanitize: bool = False) -> None:
        self.cfg = cfg
        self.sanitize = sanitize
        self.journal: list[AccessRecord] = []
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._shapes: dict[str, tuple[int, int]] = {}
        self._views: dict[str, np.ndarray] = {}
        self._closed = False
        try:
            for spec in slot_specs(cfg):
                seg = shared_memory.SharedMemory(create=True, size=spec.nbytes)
                self._segments[spec.key] = seg
                self._shapes[spec.key] = spec.shape
        except BaseException:
            self.close()
            raise
        _proto_journal(self, "create")

    def layout(self) -> Layout:
        """Attachment info for the pool initializer."""
        return {k: (seg.name, self._shapes[k]) for k, seg in self._segments.items()}

    def view(self, key: str) -> np.ndarray:
        """Host-side array over a slot (valid until :meth:`close`)."""
        _proto_journal(self, "view", detail=key)
        if self._closed:
            raise RuntimeError("shared frame store is closed")
        arr = self._views.get(key)
        if arr is None:
            seg = self._segments[key]
            arr = np.ndarray(self._shapes[key], dtype=SLOT_DTYPE, buffer=seg.buf)
            self._views[key] = arr
        return arr

    def sf_band_rows(self, row0: int, nrows: int) -> slice:
        """SF pixel-row slice of an MB-row band (4× vertical upsampling)."""
        return slice(4 * MB_SIZE * row0, 4 * MB_SIZE * (row0 + nrows))

    # ------------------------- SAN-F access journal -----------------------

    def record(
        self,
        segment: str,
        row0: int,
        row1: int,
        kind: str,
        task: str,
        phase: int,
    ) -> None:
        """Journal one host-side access (no-op unless sanitizing)."""
        if self.sanitize:
            self.journal.append(
                AccessRecord(segment, row0, row1, kind, task, phase)
            )

    def record_full(
        self, segment: str, kind: str, task: str, phase: int
    ) -> None:
        """Journal a whole-plane host access of one slot."""
        if self.sanitize:
            rows = self._shapes[segment][0]
            self.record(segment, 0, rows, kind, task, phase)

    def drain_journal(self) -> list[AccessRecord]:
        """Return and clear the host-side journal (one frame's worth)."""
        out, self.journal = self.journal, []
        return out

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        _proto_journal(self, "close")
        if self._closed:
            return
        self._closed = True
        # Views hold buffer exports; mmap refuses to close while any live.
        self._views.clear()
        errors: list[BaseException] = []
        for seg in self._segments.values():
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
            except OSError as exc:
                errors.append(exc)
        self._segments.clear()
        if errors:
            raise errors[0]

    def __enter__(self) -> "SharedFrameStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
