"""Predicted-vs-measured accuracy accounting for the process backend.

The LP (Algorithm 2) predicts τ1/τ2/τtot for every frame it schedules;
the process backend measures the same quantities on the wall clock. The
report aggregates the per-frame relative errors so a single number —
makespan error — says how well the simulator's performance model
predicts reality on this machine, and per-phase errors localize which
model (ME+INT rates, SME rates, or the R* residual) is off.

Frames the LP did not schedule (warm-up, equidistant fallback) carry no
prediction and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FrameAccuracy:
    """One frame's predicted vs measured phase times (seconds)."""

    frame_index: int
    tau1_pred: float
    tau2_pred: float
    tau_tot_pred: float
    tau1_meas: float
    tau2_meas: float
    tau_tot_meas: float

    def phase_errors(self) -> dict[str, float]:
        """Relative error ``|measured - predicted| / predicted`` per phase."""
        out: dict[str, float] = {}
        pairs = (
            ("tau1", self.tau1_pred, self.tau1_meas),
            ("tau2", self.tau2_pred, self.tau2_meas),
            ("tau_tot", self.tau_tot_pred, self.tau_tot_meas),
        )
        for name, pred, meas in pairs:
            if pred > 0:
                out[name] = abs(meas - pred) / pred
        return out

    @property
    def makespan_error(self) -> float:
        """Relative makespan (τtot) error; 0 when there is no prediction."""
        if self.tau_tot_pred <= 0:
            return 0.0
        return abs(self.tau_tot_meas - self.tau_tot_pred) / self.tau_tot_pred


@dataclass
class AccuracyReport:
    """Accumulates :class:`FrameAccuracy` rows over an encode."""

    frames: list[FrameAccuracy] = field(default_factory=list)

    def add(self, fa: FrameAccuracy) -> None:
        self.frames.append(fa)

    def summary(self) -> dict[str, object]:
        """JSON-ready aggregate: mean/max makespan error + per-phase means."""
        if not self.frames:
            return {"frames": 0}
        mk = [fa.makespan_error for fa in self.frames]
        phase_sums: dict[str, list[float]] = {}
        for fa in self.frames:
            for name, err in fa.phase_errors().items():
                phase_sums.setdefault(name, []).append(err)
        return {
            "frames": len(self.frames),
            "makespan_error_mean": sum(mk) / len(mk),
            "makespan_error_max": max(mk),
            "phase_error_mean": {
                name: sum(errs) / len(errs)
                for name, errs in sorted(phase_sums.items())
            },
        }
