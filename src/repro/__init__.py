"""repro — reproduction of FEVES (ICPP 2014).

FEVES: Framework for Efficient Parallel Video Encoding on Heterogeneous
Systems (A. Ilic, S. Momcilovic, N. Roma, L. Sousa).

Public API highlights
---------------------
- :class:`repro.core.framework.FevesFramework` — the paper's contribution:
  adaptive LP-based load balancing of the H.264/AVC inter-loop across a
  CPU + multi-GPU platform.
- :mod:`repro.codec` — a complete NumPy H.264/AVC inter-loop codec substrate
  (ME, INT, SME, MC, TQ, TQ⁻¹, DBL, entropy coding).
- :mod:`repro.hw` — discrete-event heterogeneous platform simulator with
  calibrated presets for the paper's devices (CPU_N, CPU_H, GPU_F, GPU_K)
  and systems (SysNF, SysNFF, SysHK).
- :mod:`repro.baselines` — single-device, equidistant multi-GPU, and
  ME-offload baselines the paper compares against.
- :mod:`repro.service` — multi-stream encoding service: session
  scheduling, admission control, and deadline-aware platform sharing on
  top of the single-stream framework (CLI: ``repro serve``).
- :mod:`repro.sanitizers` — schedule sanitizer (dynamic race/invariant
  checking of DES timelines and LP outputs) and repo-specific static
  lint (CLI: ``repro lint``, ``--sanitize`` on run/serve).
"""

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform, list_platforms
from repro.sanitizers import ScheduleViolationError, TimelineSanitizer
from repro.service import EncodingService, ServiceConfig, StreamSpec

__version__ = "1.2.0"

__all__ = [
    "CodecConfig",
    "EncodingService",
    "FaultEvent",
    "FaultSchedule",
    "FrameworkConfig",
    "FevesFramework",
    "ScheduleViolationError",
    "ServiceConfig",
    "StreamSpec",
    "TimelineSanitizer",
    "get_platform",
    "list_platforms",
    "__version__",
]
