"""Reporting helpers: text tables and ASCII charts for the benchmarks."""

from repro.report.figures import ascii_bars, ascii_series
from repro.report.tables import format_table

__all__ = ["ascii_bars", "ascii_series", "format_table"]
