"""ASCII charts: enough to eyeball the paper's figure shapes in a terminal."""

from __future__ import annotations

from collections.abc import Sequence


def ascii_series(
    series: dict[str, Sequence[float]],
    height: int = 14,
    width: int = 78,
    y_label: str = "",
    hline: float | None = None,
    hline_label: str = "",
) -> str:
    """Plot one or more numeric series as an ASCII line chart.

    Parameters
    ----------
    series:
        name → y-values (all series share the x axis by index).
    hline:
        Optional horizontal reference line (e.g. the paper's 40 ms / 25 fps
        real-time boundary).
    """
    if not series:
        return "(no data)"
    n = max(len(v) for v in series.values())
    if n == 0:
        return "(no data)"
    all_vals = [v for vs in series.values() for v in vs]
    if hline is not None:
        all_vals.append(hline)
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "o*x+#@%&"

    def ypos(v: float) -> int:
        frac = (v - lo) / (hi - lo)
        return min(height - 1, max(0, int(round((1 - frac) * (height - 1)))))

    if hline is not None:
        r = ypos(hline)
        for cidx in range(width):
            grid[r][cidx] = "-"

    for si, (name, vals) in enumerate(series.items()):
        mk = marks[si % len(marks)]
        for i, v in enumerate(vals):
            c = int(i * (width - 1) / max(1, n - 1))
            grid[ypos(v)][c] = mk

    lines = [f"{hi:10.2f} |" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append(" " * 10 + " |" + "".join(grid[r]))
    lines.append(f"{lo:10.2f} |" + "".join(grid[-1]))
    legend = "   ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    if hline is not None and hline_label:
        legend += f"   ---={hline_label}"
    lines.append(" " * 12 + legend)
    if y_label:
        lines.insert(0, y_label)
    return "\n".join(lines)


def ascii_bars(
    values: dict[str, float], width: int = 50, unit: str = ""
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        return "(no data)"
    vmax = max(values.values())
    if vmax <= 0:
        vmax = 1.0
    klen = max(len(k) for k in values)
    lines = []
    for k, v in values.items():
        bar = "#" * max(1, int(round(v / vmax * width))) if v > 0 else ""
        lines.append(f"{k.rjust(klen)} | {bar} {v:.1f}{unit}")
    return "\n".join(lines)
