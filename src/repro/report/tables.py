"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Cells are converted with ``str``; floats are left to the caller to
    pre-format so each benchmark controls its own precision.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)
