"""Node-level fault domains: whole-node dropout and graceful drain.

Device faults (PR 1) evict *devices* from a framework and rebalance the
frame distribution over the survivors. One level up, a node fault evicts
*sessions* from a node and re-routes the survivors over the surviving
nodes: every running session is torn off at the fault time (its encoded
frames stay recorded on the failed node), its **remaining** frames are
wrapped in a continuation :class:`~repro.service.session.StreamSpec` and
pushed back through the cluster's global dispatch queue, and the routing
policy places the continuation on a live node. Queued (never-admitted)
streams simply re-enter the global queue unchanged.

Fault granularity is the scheduling-round boundary: the fleet loop
applies a fault before stepping any node past its trigger time, so no
frame is ever half-encoded on a dead node — frame conservation across
the reroute (no loss, no duplication) is exactly what sanitizer class
SAN-E3 checks.

Two kinds:

``down``
    Unplanned whole-node dropout. The node stops routing and stepping
    permanently; sessions are evicted and re-routed.

``drain``
    Planned removal (operator action or the autoscaler scaling in).
    Mechanically identical — stop accepting, evict, re-route — but
    accounted as a graceful drain, not a failure.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Node-fault kinds.
NODE_DOWN, NODE_DRAIN = "down", "drain"


@dataclass(frozen=True)
class NodeFaultEvent:
    """One scheduled whole-node fault."""

    node_id: str
    at_s: float
    kind: str = NODE_DOWN

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.kind not in (NODE_DOWN, NODE_DRAIN):
            raise ValueError(
                f"kind must be {NODE_DOWN!r} or {NODE_DRAIN!r}, got {self.kind!r}"
            )


class NodeFaultSchedule:
    """Time-ordered queue of scheduled node faults."""

    def __init__(self, events: list[NodeFaultEvent] | None = None) -> None:
        self.events = sorted(
            events or [], key=lambda e: (e.at_s, e.node_id, e.kind)
        )
        self._next = 0

    @property
    def empty(self) -> bool:
        return not self.events

    def node_ids(self) -> set[str]:
        return {e.node_id for e in self.events}

    def next_at_s(self) -> float | None:
        """Trigger time of the next unapplied fault (None when exhausted)."""
        if self._next >= len(self.events):
            return None
        return self.events[self._next].at_s

    def pop_due(self, t: float, eps: float = 1e-12) -> list[NodeFaultEvent]:
        """Consume every fault with ``at_s <= t`` (in schedule order)."""
        due: list[NodeFaultEvent] = []
        while self._next < len(self.events) and (
            self.events[self._next].at_s <= t + eps
        ):
            due.append(self.events[self._next])
            self._next += 1
        return due


def parse_node_fault_spec(text: str) -> NodeFaultEvent:
    """Validate one ``--node-fault NODE@T[:KIND]`` token eagerly.

    Mirrors the device fault-spec validation: every malformed field —
    missing separator, empty node id, non-numeric time, unknown kind —
    raises a ``ValueError`` naming the offending token, so the CLI can
    exit with a message instead of a traceback.
    """

    def bad(why: str) -> ValueError:
        return ValueError(
            f"bad --node-fault spec {text!r}: {why} (expected NODE@T[:down|drain])"
        )

    node_id, at, rest = text.partition("@")
    if not at:
        raise bad("missing '@'")
    if not node_id:
        raise bad("empty node id")
    t_text, colon, kind = rest.partition(":")
    if not colon:
        kind = NODE_DOWN
    elif kind not in (NODE_DOWN, NODE_DRAIN):
        raise bad(f"unknown kind {kind!r}")
    try:
        t = float(t_text)
    except ValueError:
        raise bad(f"non-numeric time {t_text!r}") from None
    try:
        return NodeFaultEvent(node_id=node_id, at_s=t, kind=kind)
    except ValueError as exc:
        raise bad(str(exc)) from None


def parse_node_fault_specs(texts: list[str]) -> NodeFaultSchedule:
    """Parse all ``--node-fault`` tokens into a schedule."""
    return NodeFaultSchedule([parse_node_fault_spec(t) for t in texts])


__all__ = [
    "NODE_DOWN",
    "NODE_DRAIN",
    "NodeFaultEvent",
    "NodeFaultSchedule",
    "parse_node_fault_spec",
    "parse_node_fault_specs",
]
