"""Cluster dispatch tier: global work queue, stream placement, fleet loop.

The dispatch tier sits one level above the per-node
:class:`~repro.service.service.EncodingService` stack and mirrors its
shape at fleet scale:

- arriving streams enter a **bounded global work queue** (backpressure:
  overflow rejects, exactly like the per-node admission queue one level
  down);
- a pluggable :class:`~repro.cluster.routing.RoutingPolicy` places the
  queue head on a node, whose own admission controller then admits or
  parks it — two queue tiers, global then per-node;
- **node faults** (whole-node dropout or drain) evict every session from
  the node; survivors' remaining frames re-enter the global queue as
  continuation streams and are re-routed — the PR-1 device-eviction
  machinery lifted one level up;
- a reactive :class:`~repro.cluster.autoscale.Autoscaler` adds or drains
  nodes on sustained queue depth or realtime-p99 breach.

The fleet loop (:meth:`Cluster.run`) advances simulated time strictly in
event order: at each iteration the earliest of (next arrival, next node
fault, earliest node able to act) wins; arrivals due by that time are
dispatched first, then the earliest actionable node runs exactly one
scheduling round on its own service clock. Because per-node rounds run
on the service's unmodified code path and a single-node fleet degenerates
to "deliver arrivals, then step the node" — the exact ``repro serve``
loop — a one-node cluster is bit-identical to the standalone service
(regression-tested; see DESIGN.md → Cluster layer).

Determinism: nodes are scanned in stable insertion order, the global
queue is FIFO, routing tie-breaks on node index, and nothing iterates a
``set``/``dict`` whose order could leak — fleet runs are bit-identical
across ``PYTHONHASHSEED`` and node-insertion shuffles.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.autoscale import (
    SCALE_DOWN,
    SCALE_UP,
    AutoscaleConfig,
    Autoscaler,
    ScaleEvent,
)
from repro.cluster.faults import (
    NODE_DOWN,
    NodeFaultEvent,
    NodeFaultSchedule,
)
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import DOWN, DRAINED, UP, Node, NodeSpec
from repro.cluster.routing import RoutingPolicy, get_policy
from repro.service.admission import REJECTED
from repro.service.scheduler import RoundLPBatch, SchedulerConfig
from repro.service.session import EncodingSession, StreamSpec
from repro.sanitizers.protocols.journal import record as _journal

#: Cluster-level stream states (:attr:`StreamState.state`).
S_QUEUED, S_PLACED, S_REJECTED, S_STRANDED = (
    "queued", "placed", "rejected", "stranded",
)


@dataclass
class Segment:
    """One placement of a stream on one node.

    ``offset`` is the number of frames the stream had already encoded on
    *earlier* nodes when this segment was routed, so frame ``k`` of the
    segment's session is global frame ``offset + k`` of the stream —
    the bookkeeping SAN-E3 uses to prove reroutes neither lose nor
    duplicate frames.
    """

    node_id: str
    session: EncodingSession
    offset: int
    t_routed: float
    t_evicted: float | None = None
    frames_seen: int = 0  # autoscaler feed watermark


@dataclass
class StreamState:
    """Cluster-level lifecycle of one submitted stream."""

    spec: StreamSpec                  # original submission
    pending_spec: StreamSpec          # what the next placement will run
    state: str = S_QUEUED
    segments: list[Segment] = field(default_factory=list)
    reroutes: int = 0
    enqueued_s: float | None = None   # entered the global queue at
    queue_wait_s: float = 0.0         # cumulative global-queue wait

    @property
    def stream_id(self) -> str:
        return self.spec.stream_id

    @property
    def frames_done(self) -> int:
        return sum(len(seg.session.records) for seg in self.segments)

    @property
    def frames_remaining(self) -> int:
        return self.spec.n_frames - self.frames_done

    @property
    def done(self) -> bool:
        return self.frames_done >= self.spec.n_frames

    def continuation(self, at_s: float) -> StreamSpec:
        """Spec for the remaining frames, arriving at the eviction time."""
        spec = self.spec
        return StreamSpec(
            stream_id=spec.stream_id,
            fps_target=spec.fps_target,
            n_frames=self.frames_remaining,
            deadline_class=spec.deadline_class,
            arrival_s=at_s,
            width=spec.width,
            height=spec.height,
            search_range=spec.search_range,
            num_ref_frames=spec.num_ref_frames,
        )


@dataclass
class ClusterConfig:
    """Fleet-level tunables.

    ``nodes`` is the operator's baseline fleet; the autoscaler may add
    more (it only ever drains its own additions). ``global_queue`` bounds
    the dispatch queue for *new arrivals* — evicted survivors being
    re-routed are never dropped, they may transiently overflow it.
    ``share_lp_cache`` hands every node of the same platform class one
    shared LP solve cache (byte-exact memoization, so results are
    unchanged; see DESIGN.md → Performance).
    """

    nodes: tuple[NodeSpec, ...] = ()
    policy: str = "least-loaded"
    global_queue: int = 64
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    node_faults: NodeFaultSchedule = field(default_factory=NodeFaultSchedule)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    share_lp_cache: bool = True
    max_ticks: int = 1_000_000

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        ids = [n.node_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in fleet: {ids}")
        if self.global_queue < 0:
            raise ValueError(
                f"global_queue must be >= 0, got {self.global_queue}"
            )
        if self.max_ticks < 1:
            raise ValueError(f"max_ticks must be >= 1, got {self.max_ticks}")


class Dispatcher:
    """Bounded global work queue + routing-policy placement."""

    def __init__(
        self, cluster: "Cluster", policy: RoutingPolicy, global_queue: int
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.global_queue = global_queue
        self.queue: deque[StreamState] = deque()
        self.streams: dict[str, StreamState] = {}   # insertion-ordered
        self.counts = {"placed": 0, "parked": 0, "rejected": 0, "rerouted": 0}
        # Event-time high-water for the lifecycle journal: dispatch
        # times arrive monotone, but end-of-run stranding must never
        # journal behind the last dispatch.
        self.now = 0.0

    # ------------------------------------------------------------------

    def _place(self, st: StreamState, node: Node, t: float) -> str:
        """Offer a stream's pending spec to a node; book the segment."""
        self.now = max(self.now, t)
        session, outcome = node.offer(st.pending_spec, t)
        if outcome == REJECTED:
            st.state = S_REJECTED
            self.counts["rejected"] += 1
            _journal(self, "reject", self.now, detail=st.stream_id)
            return outcome
        st.segments.append(
            Segment(
                node_id=node.node_id,
                session=session,
                offset=st.frames_done,
                t_routed=t,
            )
        )
        st.state = S_PLACED
        self.counts["placed"] += 1
        _journal(self, "place", self.now, detail=st.stream_id)
        return outcome

    def submit(self, spec: StreamSpec, t: float) -> StreamState:
        """A brand-new stream arrives at the cluster at time ``t``."""
        if spec.stream_id in self.streams:
            raise ValueError(f"duplicate stream id {spec.stream_id!r}")
        st = StreamState(spec=spec, pending_spec=spec)
        self.streams[spec.stream_id] = st
        nodes = self.cluster.live_nodes()
        # Direct placement only when nobody is waiting — mirrors the
        # per-node admission rule, so a small newcomer cannot overtake
        # a queued stream and starve it.
        if not self.queue:
            node = self.policy.choose(nodes, spec, t)
            if node is not None and node.has_room(spec):
                self._place(st, node, t)
                return st
        if len(self.queue) < self.global_queue:
            st.enqueued_s = t
            self.queue.append(st)
            self.counts["parked"] += 1
            self.now = max(self.now, t)
            _journal(self, "park", self.now, detail=st.stream_id)
            return st
        # Global overflow: hand it to the routed node anyway, whose
        # admission controller records the rejection (with no routable
        # node at all, reject at the cluster tier).
        node = self.policy.choose(nodes, spec, t)
        if node is None:
            st.state = S_REJECTED
            self.counts["rejected"] += 1
            self.now = max(self.now, t)
            _journal(self, "reject", self.now, detail=st.stream_id)
            return st
        self._place(st, node, t)
        return st

    def requeue(self, states: list[StreamState], t: float) -> None:
        """Evicted/displaced streams re-enter at the head of the queue.

        They were already being served, so they outrank parked
        newcomers; relative order is preserved. The global bound does not
        apply — survivors of a node fault are never dropped.
        """
        self.now = max(self.now, t)
        for st in reversed(states):
            st.state = S_QUEUED
            st.enqueued_s = t
            self.queue.appendleft(st)
            _journal(self, "park", self.now, detail=st.stream_id)

    def drain(self, t: float) -> int:
        """Place queued streams head-first; stop at the first blocked one.

        Strict FIFO like the per-node queue: a big stream at the head
        blocks those behind it rather than being starved forever.
        """
        placed = 0
        nodes = self.cluster.live_nodes()
        while self.queue:
            head = self.queue[0]
            node = self.policy.choose(nodes, head.pending_spec, t)
            if node is None or not node.has_room(head.pending_spec):
                break
            self.queue.popleft()
            self.now = max(self.now, t)
            _journal(self, "dequeue", self.now, detail=head.stream_id)
            if head.enqueued_s is not None:
                head.queue_wait_s += t - head.enqueued_s
                head.enqueued_s = None
            self._place(head, node, t)
            placed += 1
        return placed

    @property
    def depth(self) -> int:
        return len(self.queue)


class Cluster:
    """A fleet of heterogeneous nodes behind one dispatch tier."""

    def __init__(self, cfg: ClusterConfig) -> None:
        self.cfg = cfg
        self.policy = get_policy(cfg.policy)
        self._lp_batches: dict[str, RoundLPBatch] = {}
        self.nodes: list[Node] = []       # every node ever, stable order
        for spec in cfg.nodes:
            self._add_node(spec, start_s=0.0)
        self.n_baseline = len(self.nodes)
        self.dispatcher = Dispatcher(self, self.policy, cfg.global_queue)
        self.autoscaler = Autoscaler(cfg.autoscale)
        self.node_fault_log: list[NodeFaultEvent] = []
        self.ticks = 0
        self.reroutes = 0
        self.evicted_sessions = 0
        self.peak_concurrent = 0
        self._metrics: ClusterMetrics | None = None

    # ------------------------------------------------------------------

    def _lp_batch_for(self, platform: str) -> RoundLPBatch | None:
        """One shared LP solve cache per platform class (if enabled)."""
        if not self.cfg.share_lp_cache:
            return None
        if platform not in self._lp_batches:
            self._lp_batches[platform] = RoundLPBatch()
        return self._lp_batches[platform]

    def _add_node(self, spec: NodeSpec, start_s: float) -> Node:
        node = Node(
            spec,
            scheduler=self.cfg.scheduler,
            lp_batch=self._lp_batch_for(spec.platform),
            start_s=start_s,
            index=len(self.nodes),
        )
        self.nodes.append(node)
        return node

    def live_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.state == UP]

    def node(self, node_id: str) -> Node:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"no node {node_id!r} in fleet")

    # ------------------------------------------------------------------

    def _session_states(self) -> dict[int, StreamState]:
        """id(session) → owning StreamState, via the segment registry."""
        out: dict[int, StreamState] = {}
        for st in self.dispatcher.streams.values():
            for seg in st.segments:
                out[id(seg.session)] = st
        return out

    def _apply_node_fault(self, ev: NodeFaultEvent) -> None:
        """Whole-node dropout/drain: evict everything, requeue survivors."""
        try:
            node = self.node(ev.node_id)
        except KeyError:
            # A fault can name an autoscaled node that was never
            # provisioned in this run; record and skip.
            self.node_fault_log.append(ev)
            return
        if node.state != UP:
            self.node_fault_log.append(ev)
            return
        running, queued = node.evict_all(ev.at_s)
        node.retire(ev.at_s, DOWN if ev.kind == NODE_DOWN else DRAINED)
        self.node_fault_log.append(ev)
        self.evicted_sessions += len(running)

        by_session = self._session_states()
        survivors: list[StreamState] = []
        for session in running:           # admission order — deterministic
            st = by_session[id(session)]
            seg = st.segments[-1]
            assert seg.session is session
            seg.t_evicted = ev.at_s
            if st.done:
                continue                  # finished exactly at the boundary
            st.pending_spec = st.continuation(ev.at_s)
            st.reroutes += 1
            self.reroutes += 1
            self.dispatcher.counts["rerouted"] += 1
            survivors.append(st)
        displaced: list[StreamState] = []
        for session in queued:            # never ran here; spec unchanged
            st = by_session[id(session)]
            seg = st.segments.pop()       # placement never materialized
            assert seg.session is session and not session.records
            displaced.append(st)
        self.dispatcher.requeue(survivors + displaced, ev.at_s)

    # ------------------------------------------------------------------

    def _autoscale_tick(self, t: float) -> None:
        live = self.live_nodes()
        n_scaled = sum(1 for n in live if n.index >= self.n_baseline)
        headroom = sum(n.spec.headroom for n in live)
        committed = sum(n.committed_fraction() for n in live)
        load = committed / headroom if headroom > 0 else 0.0
        verdict, reason = self.autoscaler.tick(
            self.dispatcher.depth, len(live), n_scaled, load
        )
        if verdict == SCALE_UP:
            platform = self.autoscaler.next_platform()
            template = self.cfg.nodes[0]
            taken = {n.node_id for n in self.nodes}
            k = len(self.nodes)
            while f"n{k}" in taken:
                k += 1
            spec = NodeSpec(
                node_id=f"n{k}",
                platform=platform,
                headroom=template.headroom,
                max_queue=template.max_queue,
            )
            node = self._add_node(spec, start_s=t)
            self.autoscaler.record(ScaleEvent(
                at_s=t, action="add", node_id=node.node_id,
                platform=platform, reason=reason,
            ))
        elif verdict == SCALE_DOWN:
            scaled = [n for n in live if n.index >= self.n_baseline]
            # Quietest first; newest (highest index) breaks ties.
            victim = min(
                scaled, key=lambda n: (n.n_running + n.n_queued, -n.index)
            )
            self.autoscaler.record(ScaleEvent(
                at_s=t, action="drain", node_id=victim.node_id,
                platform=victim.platform, reason=reason,
            ))
            self._apply_node_fault(
                NodeFaultEvent(node_id=victim.node_id, at_s=t, kind="drain")
            )

    # ------------------------------------------------------------------

    def _after_step(self, node: Node) -> None:
        """Post-round bookkeeping: autoscaler latency feed, concurrency."""
        for st in self.dispatcher.streams.values():
            for seg in st.segments:
                if seg.node_id != node.node_id:
                    continue
                recs = seg.session.records
                for rec in recs[seg.frames_seen:]:
                    self.autoscaler.observe_frame(
                        seg.session.spec.deadline_class, rec.latency_s
                    )
                seg.frames_seen = len(recs)
        concurrent = sum(n.n_running for n in self.live_nodes())
        self.peak_concurrent = max(self.peak_concurrent, concurrent)

    def run(self, workload: list[StreamSpec]) -> ClusterMetrics:
        """Serve a complete workload across the fleet; returns metrics."""
        pending = sorted(workload, key=lambda s: (s.arrival_s, s.stream_id))
        i = 0
        faults = self.cfg.node_faults
        while True:
            self.ticks += 1
            if self.ticks > self.cfg.max_ticks:
                raise RuntimeError(
                    f"cluster exceeded max_ticks={self.cfg.max_ticks}"
                )

            t_arr = pending[i].arrival_s if i < len(pending) else None
            t_fault = faults.next_at_s()
            candidates = [
                (t_n, node.index, node)
                for node in self.live_nodes()
                if (t_n := node.next_action_s()) is not None
            ]
            if candidates:
                t_step, _, step_node = min(
                    candidates, key=lambda c: (c[0], c[1])
                )
            else:
                t_step, step_node = None, None

            times = [t for t in (t_arr, t_fault, t_step) if t is not None]
            if not times:
                # Every node idle, no arrivals or faults left. Parked
                # streams get one more placement pass on the fleet clock
                # (a finishing round frees capacity *after* the pre-step
                # drain already ran); only a truly unplaceable head
                # strands. Mirrors the service draining its admission
                # queue before reporting DONE.
                if self.dispatcher.queue:
                    t_idle = max((n.now for n in self.nodes), default=0.0)
                    if self.dispatcher.drain(t_idle):
                        continue
                break
            t = min(times)

            # 1. Node faults fire first at their trigger time.
            if t_fault is not None and t_fault <= t + 1e-12:
                for ev in faults.pop_due(t):
                    self._apply_node_fault(ev)
                self.dispatcher.drain(t)
                continue

            # 2. A pure arrival (earlier than any node can act): deliver,
            # dispatch, and re-evaluate — placement may wake a node.
            if t_step is None or (t_arr is not None and t_arr < t_step - 1e-12):
                while i < len(pending) and pending[i].arrival_s <= t_arr + 1e-12:
                    self.dispatcher.submit(pending[i], pending[i].arrival_s)
                    i += 1
                self.dispatcher.drain(t_arr)
                self._autoscale_tick(t_arr)
                concurrent = sum(n.n_running for n in self.live_nodes())
                self.peak_concurrent = max(self.peak_concurrent, concurrent)
                continue

            # 3. Step the earliest actionable node one scheduling round,
            # after delivering every arrival due by its action time.
            while i < len(pending) and pending[i].arrival_s <= t_step + 1e-12:
                self.dispatcher.submit(pending[i], pending[i].arrival_s)
                i += 1
            self.dispatcher.drain(t_step)
            self._autoscale_tick(t_step)
            next_arrival = pending[i].arrival_s if i < len(pending) else None
            assert step_node is not None
            step_node.step(next_arrival)
            self._after_step(step_node)

        # Streams stuck in the global queue with no routable node left.
        for st in self.dispatcher.queue:
            st.state = S_STRANDED
            _journal(
                self.dispatcher, "strand", self.dispatcher.now,
                detail=st.stream_id,
            )
        self.dispatcher.queue.clear()

        for node in self.nodes:
            node.service.finalize()
        self._metrics = ClusterMetrics.collect(self)

        if os.environ.get("REPRO_SANITIZE", "").lower() in ("1", "strict"):
            from repro.sanitizers import TimelineSanitizer

            TimelineSanitizer.check_cluster(self).raise_if_dirty()
        return self._metrics

    # ------------------------------------------------------------------

    @property
    def metrics(self) -> ClusterMetrics:
        if self._metrics is None:
            raise RuntimeError("nothing served yet; call run() first")
        return self._metrics

    def export_metrics(self, path: str | Path) -> None:
        """Write the cluster metrics as JSON."""
        import json

        Path(path).write_text(json.dumps(self.metrics.to_dict(), indent=1))

    def export_trace(self, path: str | Path) -> int:
        """Write a Chrome trace with node-namespaced stream processes.

        Each (node, session) pair gets its own pid — streams are named
        ``node/stream`` so a rerouted stream shows up once per node it
        ran on, with the eviction gap visible between the segments. Node
        ``k``'s sessions occupy the pid block ``1000·(k+1)+1 …``, via the
        existing stream-trace union exporter.
        """
        from repro.hw.trace_export import StreamTrace, export_stream_traces

        traces = []
        for node in self.nodes:
            for j, session in enumerate(node.service.sessions, start=1):
                frames = [
                    (session.framework.reports[r.index - 1].timeline, r.start_s)
                    for r in session.records
                ]
                traces.append(
                    StreamTrace(
                        pid=1000 * (node.index + 1) + j,
                        name=(
                            f"{node.node_id}/{session.stream_id} "
                            f"({session.spec.deadline_class}, "
                            f"{session.spec.fps_target:g} fps)"
                        ),
                        frames=frames,
                        fault_log=session.framework.fault_log,
                    )
                )
        return export_stream_traces(traces, path)


__all__ = [
    "Cluster",
    "ClusterConfig",
    "Dispatcher",
    "Segment",
    "StreamState",
]
