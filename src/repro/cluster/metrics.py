"""Aggregate fleet metrics: per-class and per-node tails, reroutes, scaling.

Everything is computed from simulated time. Frame latencies aggregate
across every node (a rerouted stream's segments all contribute), keyed
both per deadline class — the fleet's SLO view — and per node. Queue
wait is the *global dispatch queue* wait (time between entering the
cluster queue and being placed on a node); the per-node admission wait
is already inside each node's ServiceMetrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.service.metrics import latency_percentiles_ms, per_class_summary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.cluster.dispatcher import Cluster


@dataclass(frozen=True)
class NodeMetrics:
    """Headline numbers of one node's run inside the fleet."""

    node_id: str
    platform: str
    state: str
    joined_s: float
    retired_s: float | None
    rounds: int
    frames: int
    sessions: int
    p99_ms: float
    deadline_miss_rate: float
    device_utilization: dict[str, float]
    admission: dict[str, int]

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "platform": self.platform,
            "state": self.state,
            "joined_s": self.joined_s,
            "retired_s": self.retired_s,
            "rounds": self.rounds,
            "frames": self.frames,
            "sessions": self.sessions,
            "p99_ms": self.p99_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "device_utilization": dict(self.device_utilization),
            "admission": dict(self.admission),
        }


@dataclass(frozen=True)
class ClusterMetrics:
    """Aggregate outcome of one fleet run."""

    policy: str
    duration_s: float
    ticks: int
    n_nodes: int
    n_nodes_live: int
    nodes: tuple[NodeMetrics, ...]
    classes: dict[str, dict]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    deadline_miss_rate: float
    streams: dict[str, int]            # cluster-level stream outcome counts
    frames_encoded: int
    peak_concurrent: int
    reroutes: int
    evicted_sessions: int
    node_faults: int
    queue_wait_p50_s: float
    queue_wait_p95_s: float
    queue_wait_max_s: float
    dispatch: dict[str, int] = field(default_factory=dict)
    autoscale_events: tuple[dict, ...] = ()
    lp_cache: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def collect(cls, cluster: "Cluster") -> "ClusterMetrics":
        node_rows: list[NodeMetrics] = []
        all_lat: list[float] = []
        missable = 0
        missed = 0
        frames_encoded = 0
        all_sessions = []
        for node in cluster.nodes:
            m = node.service.metrics
            frames = sum(sm.frames for sm in m.streams)
            frames_encoded += frames
            all_sessions.extend(node.service.sessions)
            for s in node.service.sessions:
                for r in s.records:
                    all_lat.append(r.latency_s)
                    if not math.isinf(r.deadline_s):
                        missable += 1
                        missed += int(r.missed)
            node_rows.append(NodeMetrics(
                node_id=node.node_id,
                platform=node.platform,
                state=node.state,
                joined_s=node.joined_s,
                retired_s=node.retired_s,
                rounds=m.rounds,
                frames=frames,
                sessions=len(m.streams),
                p99_ms=m.p99_ms,
                deadline_miss_rate=m.deadline_miss_rate,
                device_utilization=m.device_utilization,
                admission=m.admission,
            ))

        stream_counts: dict[str, int] = {}
        waits = []
        for st in cluster.dispatcher.streams.values():
            key = "done" if st.done else st.state
            stream_counts[key] = stream_counts.get(key, 0) + 1
            waits.append(st.queue_wait_s)
        wait_pct = latency_percentiles_ms(waits)  # values in "ms of seconds"

        lat = latency_percentiles_ms(all_lat)
        lp_cache = {
            platform: {
                "hits": batch.hits,
                "misses": batch.misses,
                "hit_rate": round(batch.hit_rate, 4),
            }
            for platform, batch in sorted(cluster._lp_batches.items())
        }
        return cls(
            policy=cluster.cfg.policy,
            duration_s=max((n.now for n in cluster.nodes), default=0.0),
            ticks=cluster.ticks,
            n_nodes=len(cluster.nodes),
            n_nodes_live=len(cluster.live_nodes()),
            nodes=tuple(node_rows),
            classes=per_class_summary(all_sessions),
            p50_ms=lat["p50"],
            p95_ms=lat["p95"],
            p99_ms=lat["p99"],
            deadline_miss_rate=(missed / missable) if missable else 0.0,
            streams=stream_counts,
            frames_encoded=frames_encoded,
            peak_concurrent=cluster.peak_concurrent,
            reroutes=cluster.reroutes,
            evicted_sessions=cluster.evicted_sessions,
            node_faults=len(cluster.node_fault_log),
            queue_wait_p50_s=wait_pct["p50"] / 1e3,
            queue_wait_p95_s=wait_pct["p95"] / 1e3,
            queue_wait_max_s=max(waits, default=0.0),
            dispatch=dict(cluster.dispatcher.counts),
            autoscale_events=tuple(
                {
                    "at_s": e.at_s,
                    "action": e.action,
                    "node_id": e.node_id,
                    "platform": e.platform,
                    "reason": e.reason,
                }
                for e in cluster.autoscaler.events
            ),
            lp_cache=lp_cache,
        )

    def node(self, node_id: str) -> NodeMetrics:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"no node {node_id!r} in metrics")

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "duration_s": self.duration_s,
            "ticks": self.ticks,
            "n_nodes": self.n_nodes,
            "n_nodes_live": self.n_nodes_live,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "classes": {k: dict(v) for k, v in self.classes.items()},
            "streams": dict(self.streams),
            "frames_encoded": self.frames_encoded,
            "peak_concurrent": self.peak_concurrent,
            "reroutes": self.reroutes,
            "evicted_sessions": self.evicted_sessions,
            "node_faults": self.node_faults,
            "queue_wait_p50_s": self.queue_wait_p50_s,
            "queue_wait_p95_s": self.queue_wait_p95_s,
            "queue_wait_max_s": self.queue_wait_max_s,
            "dispatch": dict(self.dispatch),
            "autoscale_events": list(self.autoscale_events),
            "lp_cache": {k: dict(v) for k, v in self.lp_cache.items()},
            "nodes": [n.to_dict() for n in self.nodes],
        }


__all__ = ["ClusterMetrics", "NodeMetrics"]
