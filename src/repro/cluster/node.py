"""One fleet node: an :class:`EncodingService` over a platform preset.

A node is the unit of placement and of failure in the cluster layer. It
wraps one complete multi-stream :class:`~repro.service.service.EncodingService`
(its own admission controller, co-scheduler, sessions and simulated
clock) built on a platform preset — mixed fleets are just nodes over
different presets (SysHK-class fast nodes next to SysNF-class slow ones).

The node exposes exactly the service's stepping primitives to the
cluster driver: the dispatcher offers streams through
:meth:`Node.offer`, the fleet loop advances the node one scheduling
round at a time through :meth:`Node.step`, and the fault machinery empties
it through :meth:`Node.evict_all`. Because a node's rounds run on the
service's own code path, a single-node fleet is bit-identical to
``repro serve`` on the same workload (see DESIGN.md → Cluster layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.noise import FaultSchedule
from repro.service.admission import ADMITTED, QUEUED, REJECTED
from repro.service.scheduler import RoundLPBatch, SchedulerConfig
from repro.service.service import EncodingService, ServiceConfig
from repro.service.session import RUNNING
from repro.service.session import QUEUED as SESSION_QUEUED
from repro.service.session import EncodingSession, StreamSpec
from repro.sanitizers.protocols.journal import record as _journal

#: Node lifecycle states.
UP, DOWN, DRAINED = "up", "down", "drained"

#: Session state stamped on sessions a node fault/drain tore away from
#: their node (distinct from the service-level queued/running/done).
EVICTED = "evicted"


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one fleet node."""

    node_id: str
    platform: str = "SysHK"
    headroom: float = 1.0
    max_queue: int = 8
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    #: Execution backend of the node's service: "sim" simulates frame
    #: times; "process" really encodes on a local worker pool.
    backend: str = "sim"
    exec_workers: int = 0

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")


class Node:
    """Runtime state of one fleet node."""

    def __init__(
        self,
        spec: NodeSpec,
        scheduler: SchedulerConfig | None = None,
        lp_batch: RoundLPBatch | None = None,
        start_s: float = 0.0,
        index: int = 0,
    ) -> None:
        self.spec = spec
        self.index = index
        self.service = EncodingService(
            ServiceConfig(
                platform=spec.platform,
                headroom=spec.headroom,
                max_queue=spec.max_queue,
                faults=spec.faults,
                scheduler=scheduler or SchedulerConfig(),
                backend=spec.backend,
                exec_workers=spec.exec_workers,
            ),
            lp_batch=lp_batch,
        )
        # A node added by the autoscaler mid-run starts on the fleet clock.
        self.service.now = max(self.service.now, start_s)
        self.state = UP
        _journal(self, "create", start_s, detail=spec.node_id)
        self.joined_s = start_s
        self.retired_s: float | None = None

    # ------------------------------------------------------------------

    @property
    def node_id(self) -> str:
        return self.spec.node_id

    @property
    def platform(self) -> str:
        return self.spec.platform

    @property
    def now(self) -> float:
        return self.service.now

    @property
    def accepting(self) -> bool:
        """Routable: up, not draining or gone."""
        return self.state == UP

    @property
    def n_running(self) -> int:
        return len(self.service.admission.running)

    @property
    def n_queued(self) -> int:
        return len(self.service.admission.queue)

    @property
    def idle(self) -> bool:
        return self.n_running == 0 and self.n_queued == 0

    def committed_fraction(self) -> float:
        """Platform fraction promised to this node's running sessions."""
        svc = self.service
        live = svc.live_devices(svc.rounds + 1)
        return svc.admission.committed_fraction(live)

    def load(self) -> float:
        """Committed fraction normalized by the admission headroom."""
        return self.committed_fraction() / self.spec.headroom

    def demand_fraction(self, spec: StreamSpec) -> float:
        """Model-estimated fraction of *this node* the stream needs."""
        svc = self.service
        live = svc.live_devices(svc.rounds + 1)
        return svc.capacity.demand_fraction(spec, live)

    def fps_capacity(self, spec: StreamSpec) -> float:
        """Sustainable fps for streams of this shape on this node."""
        svc = self.service
        live = svc.live_devices(svc.rounds + 1)
        return svc.capacity.fps_capacity(
            spec.codec_config(), spec.num_ref_frames, live
        )

    # ------------------------------------------------------------------

    def has_room(self, spec: StreamSpec) -> bool:
        """Would an offer land (admit or queue) rather than reject?

        Approximates :meth:`AdmissionController.has_room` without
        materializing a session: admission fits a newcomer while its
        demand fraction still fits under the headroom and nobody is
        waiting; otherwise the bounded node queue must have a free slot.
        """
        adm = self.service.admission
        svc = self.service
        live = svc.live_devices(svc.rounds + 1)
        if not adm.queue:
            demand = adm.capacity.demand_fraction(spec, live)
            if adm.committed_fraction(live) + demand <= adm.headroom + 1e-9:
                return True
        return len(adm.queue) < adm.max_queue

    def offer(self, spec: StreamSpec, now: float) -> tuple[EncodingSession, str]:
        """Submit a routed stream to this node's admission controller.

        The node's clock is pulled forward to the dispatch time first (a
        node that idled in the past admits on the fleet clock, exactly as
        the standalone service admits on its own clock after an idle
        jump); clocks never move backwards.
        """
        svc = self.service
        svc.now = max(svc.now, now)
        _journal(self, "offer", svc.now, detail=spec.stream_id)
        live = svc.live_devices(svc.rounds + 1)
        session = svc.submit(spec, live)
        if session.state == RUNNING:
            return session, ADMITTED
        if session.state == SESSION_QUEUED:
            return session, QUEUED
        return session, REJECTED

    # ------------------------------------------------------------------

    def next_action_s(self) -> float | None:
        """Earliest simulated time this node can make progress, or None.

        ``now`` while any running session has a captured frame waiting or
        the admission queue is non-empty (draining can admit or the
        liveness backstop fires); otherwise the earliest next frame
        capture among running sessions; ``None`` for a fully idle node.
        """
        svc = self.service
        if self.state in (DOWN, DRAINED):
            return None
        for s in svc.admission.running:
            if s.has_pending(svc.now):
                return svc.now
        if svc.admission.queue:
            return svc.now
        events = [
            s.next_capture_s() for s in svc.admission.running if not s.done
        ]
        return min(events) if events else None

    def step(self, next_arrival_s: float | None = None) -> str:
        """Advance the node one service round (see ``EncodingService``)."""
        _journal(self, "step", self.service.now, detail=self.node_id)
        live = self.service.begin_round()
        return self.service.step_round(live, next_arrival_s)

    # ------------------------------------------------------------------

    def evict_all(self, now: float) -> tuple[list[EncodingSession], list[EncodingSession]]:
        """Tear every session off this node (fault or drain at ``now``).

        Running sessions keep their frame records (encoded frames stay
        counted on this node — conservation is checked by SAN-E3) and are
        stamped ``EVICTED``; queued sessions never ran here, so they are
        removed from the node's session list entirely and only their
        specs travel back to the global queue. Returns
        ``(evicted_running, removed_queued)``.
        """
        svc = self.service
        svc.now = max(svc.now, now)
        _journal(self, "evict_all", svc.now, detail=self.node_id)
        running, queued = svc.admission.evict_all()
        for s in running:
            s.state = EVICTED
            _journal(s, "evict", svc.now, detail=s.stream_id)
        for s in queued:
            svc.sessions.remove(s)
        return running, queued

    def retire(self, now: float, state: str) -> None:
        if state not in (DOWN, DRAINED):
            raise ValueError(f"retire state must be down/drained, got {state!r}")
        self.state = state
        self.retired_s = now
        _journal(self, "retire", max(now, self.service.now), detail=self.node_id)
        # A retired process-backed node must not leak worker pools or
        # shared-memory segments (no-op for sim sessions).
        self.service.close()


__all__ = [
    "DOWN",
    "DRAINED",
    "EVICTED",
    "Node",
    "NodeSpec",
    "UP",
]
