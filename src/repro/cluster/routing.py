"""Pluggable stream→node routing policies for the fleet dispatcher.

A policy ranks the routable nodes for one stream and picks the best.
All policies are **deterministic**: scores are explicit tuples and every
tie breaks on the node's stable insertion index, never on dict or set
iteration order — the determinism regression suite pins fleet runs
bit-identical across ``PYTHONHASHSEED`` and shuffled node insertion.

Three built-ins (select with ``repro fleet --policy``):

``least-loaded``
    Classic join-the-shortest-queue on committed capacity: route to the
    node whose committed fraction (normalized by headroom) is lowest,
    with the node's wait-queue depth as the first-order tiebreak.

``slack``
    Deadline-slack-aware: estimate how much of the stream's deadline
    budget the node would eat before service begins (queued work ahead
    of it plus the capacity overflow its own demand causes), normalize
    by the stream's per-frame deadline budget, and pick the node with
    the most remaining slack. Streams with no deadline (background)
    degrade to least-loaded. The formulation follows the on-line
    slack-based scheduling framing of the MDP slice-parallel-decoder
    paper (PAPERS.md) — route by time-to-deadline pressure, not raw load.

``affinity``
    Class-affinity packing over a heterogeneous fleet, in the spirit of
    the bi-criteria pipeline-mapping paper (PAPERS.md): realtime streams
    pack onto the *fastest* nodes that still have room, background
    streams onto the *slowest* (keeping fast silicon free for deadline
    traffic), standard streams go least-loaded. Node speed is the
    calibrated fps capacity of the node's platform for this stream shape.
"""

from __future__ import annotations

import math

from repro.cluster.node import Node
from repro.service.session import StreamSpec


class RoutingPolicy:
    """Base class: rank nodes by :meth:`score` (lower wins)."""

    name = "base"

    def score(self, node: Node, spec: StreamSpec, now: float) -> tuple:
        raise NotImplementedError

    def choose(
        self, nodes: list[Node], spec: StreamSpec, now: float
    ) -> Node | None:
        """Best routable node for a stream, or None when none accepts.

        Nodes with room (admit or queue without rejecting) are strictly
        preferred over full ones; within each group the policy score
        decides and the node index breaks ties.
        """
        best: tuple | None = None
        best_node: Node | None = None
        for node in nodes:
            if not node.accepting:
                continue
            key = (
                0 if node.has_room(spec) else 1,
                self.score(node, spec, now),
                node.index,
            )
            if best is None or key < best:
                best, best_node = key, node
        return best_node


class LeastLoadedPolicy(RoutingPolicy):
    """Route to the node with the smallest normalized committed load."""

    name = "least-loaded"

    def score(self, node: Node, spec: StreamSpec, now: float) -> tuple:
        return (node.n_queued, node.load())


class SlackAwarePolicy(RoutingPolicy):
    """Route to the node leaving the stream the most deadline slack."""

    name = "slack"

    def score(self, node: Node, spec: StreamSpec, now: float) -> tuple:
        budget = spec.klass.budget_factor
        if math.isinf(budget):
            # No deadline to protect: pack like least-loaded.
            return (1, node.n_queued, node.load())
        demand = node.demand_fraction(spec)
        free = node.spec.headroom - node.committed_fraction()
        # Capacity the stream would overdraw, in platform fractions,
        # plus everything already parked in the node's wait queue —
        # both delay the stream's first frame proportionally to its
        # full-node frame time (demand / fps = frame_s × demand share).
        overdraw = max(0.0, demand - free) + node.n_queued * demand
        frame_s = demand / spec.fps_target  # noqa: REP004 - fps_target validated > 0
        wait_est_s = (overdraw / demand) * frame_s if demand > 0 else 0.0
        budget_s = budget * spec.period_s
        slack_used = wait_est_s / budget_s if budget_s > 0 else math.inf
        return (0, slack_used, node.load())


class ClassAffinityPolicy(RoutingPolicy):
    """Pack realtime on fast nodes, background on slow ones."""

    name = "affinity"

    def score(self, node: Node, spec: StreamSpec, now: float) -> tuple:
        fps = node.fps_capacity(spec)
        klass = spec.deadline_class
        if klass == "realtime":
            speed_rank = -fps   # fastest first
        elif klass == "background":
            speed_rank = fps    # slowest first
        else:
            speed_rank = 0.0    # standard: speed-agnostic, load decides
        return (speed_rank, node.n_queued, node.load())


#: Policy registry for the CLI and ClusterConfig.
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    SlackAwarePolicy.name: SlackAwarePolicy,
    ClassAffinityPolicy.name: ClassAffinityPolicy,
}


def get_policy(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    try:
        return ROUTING_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; "
            f"available: {sorted(ROUTING_POLICIES)}"
        ) from None


__all__ = [
    "ClassAffinityPolicy",
    "LeastLoadedPolicy",
    "ROUTING_POLICIES",
    "RoutingPolicy",
    "SlackAwarePolicy",
    "get_policy",
]
