"""Fleet-scale serving: multi-node cluster simulation + dispatch tier.

Simulates a fleet of heterogeneous nodes — each one a complete
multi-stream :class:`~repro.service.service.EncodingService` over a
platform preset — behind a cluster-level dispatcher: a bounded global
work queue feeding per-node admission controllers, pluggable routing
policies (:mod:`~repro.cluster.routing`), whole-node fault domains with
evict-and-reroute (:mod:`~repro.cluster.faults`), a reactive autoscaler
(:mod:`~repro.cluster.autoscale`) and aggregate per-class/per-node SLO
metrics (:mod:`~repro.cluster.metrics`). The front door is
:class:`~repro.cluster.dispatcher.Cluster` (CLI: ``repro fleet``). A
single-node cluster is bit-identical to ``repro serve``.
"""

from repro.cluster.autoscale import AutoscaleConfig, Autoscaler, ScaleEvent
from repro.cluster.dispatcher import (
    Cluster,
    ClusterConfig,
    Dispatcher,
    Segment,
    StreamState,
)
from repro.cluster.faults import (
    NODE_DOWN,
    NODE_DRAIN,
    NodeFaultEvent,
    NodeFaultSchedule,
    parse_node_fault_spec,
    parse_node_fault_specs,
)
from repro.cluster.metrics import ClusterMetrics, NodeMetrics
from repro.cluster.node import Node, NodeSpec
from repro.cluster.routing import (
    ROUTING_POLICIES,
    ClassAffinityPolicy,
    LeastLoadedPolicy,
    RoutingPolicy,
    SlackAwarePolicy,
    get_policy,
)

__all__ = [
    "AutoscaleConfig",
    "Autoscaler",
    "ClassAffinityPolicy",
    "Cluster",
    "ClusterConfig",
    "ClusterMetrics",
    "Dispatcher",
    "LeastLoadedPolicy",
    "NODE_DOWN",
    "NODE_DRAIN",
    "Node",
    "NodeFaultEvent",
    "NodeFaultSchedule",
    "NodeMetrics",
    "NodeSpec",
    "ROUTING_POLICIES",
    "RoutingPolicy",
    "ScaleEvent",
    "Segment",
    "SlackAwarePolicy",
    "StreamState",
    "get_policy",
    "parse_node_fault_spec",
    "parse_node_fault_specs",
]
