"""Reactive fleet autoscaling on queue depth and per-class p99 breaches.

The autoscaler observes the cluster at every dispatch tick (simulated
time only — no wall clock) and reacts:

**Scale out** when pressure is *sustained*: the global dispatch queue
has been at or above ``queue_high`` for ``sustain_ticks`` consecutive
ticks, or the rolling realtime-class p99 frame latency has exceeded
``p99_slo_ms`` for that long. A new node is provisioned from the cyclic
``template`` platform list and joins on the fleet clock.

**Scale in** when the fleet has been *sustainedly idle*: the global
queue empty and aggregate normalized load below ``idle_low`` for
``idle_ticks`` consecutive ticks. Only nodes the autoscaler itself added
are drained (LIFO — most recently provisioned first), so an operator's
baseline fleet is never shrunk; draining re-routes any sessions through
the usual node-drain fault path.

Both directions honor a ``cooldown_ticks`` refractory period so one
burst cannot thrash the fleet, and the fleet size stays inside
``[min_nodes, max_nodes]``. All decisions read deterministic cluster
state, so autoscaled runs stay bit-reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.service.metrics import latency_percentiles_ms


@dataclass(frozen=True)
class AutoscaleConfig:
    """Autoscaler tunables (see module docstring for semantics)."""

    enabled: bool = False
    min_nodes: int = 1
    max_nodes: int = 8
    template: tuple[str, ...] = ("SysHK",)
    queue_high: int = 4
    sustain_ticks: int = 3
    p99_slo_ms: float | None = None
    p99_window: int = 64
    idle_low: float = 0.25
    idle_ticks: int = 50
    cooldown_ticks: int = 10

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes ({self.max_nodes}) must be >= min_nodes "
                f"({self.min_nodes})"
            )
        if not self.template:
            raise ValueError("template must name at least one platform")
        if self.queue_high < 1:
            raise ValueError(f"queue_high must be >= 1, got {self.queue_high}")
        if self.sustain_ticks < 1:
            raise ValueError(
                f"sustain_ticks must be >= 1, got {self.sustain_ticks}"
            )


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action, for the metrics/audit log."""

    at_s: float
    action: str          # "add" | "drain"
    node_id: str
    platform: str
    reason: str


#: Autoscaler verdicts returned by :meth:`Autoscaler.tick`.
SCALE_UP, SCALE_DOWN, HOLD = "up", "down", "hold"


class Autoscaler:
    """Sustained-pressure reactive scaler (decisions only, no mutation).

    The cluster driver owns node creation/draining; the scaler just
    answers "what should happen now" from the observed queue depth,
    load, and recent realtime frame latencies it is fed.
    """

    def __init__(self, cfg: AutoscaleConfig) -> None:
        self.cfg = cfg
        self._pressure_ticks = 0
        self._idle_ticks = 0
        self._cooldown = 0
        self._template_i = 0
        self._recent_rt_ms: deque[float] = deque(maxlen=cfg.p99_window)
        self.events: list[ScaleEvent] = []

    # ------------------------------------------------------------------

    def observe_frame(self, deadline_class: str, latency_s: float) -> None:
        """Feed one completed frame into the rolling p99 window."""
        if deadline_class == "realtime":
            self._recent_rt_ms.append(latency_s * 1e3)

    def realtime_p99_ms(self) -> float | None:
        if not self._recent_rt_ms:
            return None
        return latency_percentiles_ms(list(self._recent_rt_ms))["p99"]

    def next_platform(self) -> str:
        """Cyclic pick from the provisioning template."""
        name = self.cfg.template[self._template_i % len(self.cfg.template)]
        self._template_i += 1
        return name

    # ------------------------------------------------------------------

    def tick(
        self, queue_depth: int, n_nodes: int, n_scaled: int, load: float
    ) -> tuple[str, str]:
        """One decision step; returns ``(verdict, reason)``.

        ``n_scaled`` is how many currently-live nodes the autoscaler
        added (the only ones it may drain); ``load`` is the aggregate
        committed fraction over aggregate headroom of live nodes.
        """
        cfg = self.cfg
        if not cfg.enabled:
            return HOLD, "disabled"
        if self._cooldown > 0:
            self._cooldown -= 1

        p99 = self.realtime_p99_ms()
        breach = (
            cfg.p99_slo_ms is not None
            and p99 is not None
            and p99 > cfg.p99_slo_ms
        )
        pressured = queue_depth >= cfg.queue_high or breach
        if pressured:
            self._pressure_ticks += 1
            self._idle_ticks = 0
        else:
            self._pressure_ticks = 0

        idle = queue_depth == 0 and load < cfg.idle_low
        if idle:
            self._idle_ticks += 1
        else:
            self._idle_ticks = 0

        if (
            self._pressure_ticks >= cfg.sustain_ticks
            and n_nodes < cfg.max_nodes
            and self._cooldown == 0
        ):
            self._pressure_ticks = 0
            self._cooldown = cfg.cooldown_ticks
            reason = (
                f"realtime p99 {p99:.1f} ms > SLO {cfg.p99_slo_ms:.1f} ms"
                if breach and p99 is not None and cfg.p99_slo_ms is not None
                else f"queue depth >= {cfg.queue_high} for "
                f"{cfg.sustain_ticks} ticks"
            )
            return SCALE_UP, reason

        if (
            self._idle_ticks >= cfg.idle_ticks
            and n_scaled > 0
            and n_nodes > cfg.min_nodes
            and self._cooldown == 0
        ):
            self._idle_ticks = 0
            self._cooldown = cfg.cooldown_ticks
            return SCALE_DOWN, (
                f"queue empty and load < {cfg.idle_low:g} for "
                f"{cfg.idle_ticks} ticks"
            )
        return HOLD, "steady"

    def record(self, event: ScaleEvent) -> None:
        self.events.append(event)


__all__ = [
    "AutoscaleConfig",
    "Autoscaler",
    "HOLD",
    "SCALE_DOWN",
    "SCALE_UP",
    "ScaleEvent",
]
