"""Calibrated device and platform presets.

Models of the paper's evaluation hardware (§IV), calibrated so that the
single-device 1080p encoding speeds and their ratios land where the paper
reports them:

=========  =========================  ====================================
Preset     Paper hardware             Calibration anchors (1080p, 32×32
                                      SA, 1 RF)
=========  =========================  ====================================
CPU_N      Intel Nehalem i7 950       ≈ 12 fps; CPU_H ≈ 1.7 × CPU_N
CPU_H      Intel Haswell i7 4770K     ≈ 21 fps
GPU_F      NVIDIA Fermi GTX 580       ≈ 26 fps (real-time at 32×32/1RF);
                                      single copy engine, PCIe gen-2
GPU_K      NVIDIA Kepler GTX 780 Ti   ≈ 55 fps ≈ 2 × GPU_F; dual copy
                                      engine, PCIe gen-3
SysNF      CPU_N + GPU_F              ≈ 1.3 × GPU_F
SysNFF     CPU_N + 2 × GPU_F          up to ≈ 2.2 × GPU_F, ≈ 5 × CPU_N
SysHK      CPU_H + GPU_K              ≈ 1.3 × GPU_K, ≈ 3 × CPU_H;
                                      real-time at 64×64/1RF and ≤4 RFs
=========  =========================  ====================================

Module-time splits follow the paper's workload characterization ([4]):
ME+INT+SME ≈ 90 % of single-device inter-loop time, R* ≈ 10 %.
"""

from __future__ import annotations

from repro.hw.device import DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.rates import ModuleRates
from repro.hw.topology import Platform

#: 1080p geometry used for calibration (68 MB rows of 120 MBs).
_ROWS_1080P = 68
_MBS_1080P = _ROWS_1080P * 120


def _rates(me_ms: float, int_ms: float, sme_ms: float, rstar_ms: float) -> ModuleRates:
    """Convert per-frame 1080p module times (ms) into rate constants."""
    return ModuleRates(
        me_mb_us=me_ms * 1e3 / _MBS_1080P,
        int_row_us=int_ms * 1e3 / _ROWS_1080P,
        sme_row_us=sme_ms * 1e3 / _ROWS_1080P,
        rstar_row_us=rstar_ms * 1e3 / _ROWS_1080P,
    )


CPU_N = DeviceSpec(
    name="CPU_N",
    kind="cpu",
    rates=_rates(me_ms=54.0, int_ms=8.3, sme_ms=12.5, rstar_ms=8.3),
)

CPU_H = DeviceSpec(
    name="CPU_H",
    kind="cpu",
    rates=_rates(me_ms=31.0, int_ms=4.8, sme_ms=7.0, rstar_ms=4.8),
)

GPU_F = DeviceSpec(
    name="GPU_F",
    kind="gpu",
    rates=_rates(me_ms=24.0, int_ms=3.7, sme_ms=5.5, rstar_ms=3.7),
    link=LinkSpec(h2d_gbps=5.5, d2h_gbps=5.0, latency_s=15e-6, copy_engines=1),
    memory_bytes=1.5 * 2**30,   # GTX 580: 1.5 GiB
)

GPU_K = DeviceSpec(
    name="GPU_K",
    kind="gpu",
    rates=_rates(me_ms=11.0, int_ms=1.5, sme_ms=2.5, rstar_ms=2.0),
    link=LinkSpec(h2d_gbps=10.0, d2h_gbps=9.0, latency_s=8e-6, copy_engines=2),
    memory_bytes=3 * 2**30,     # GTX 780 Ti: 3 GiB
)


def _gpu_variant(spec: DeviceSpec, name: str) -> DeviceSpec:
    """A same-silicon copy of a GPU spec under a different name."""
    return DeviceSpec(
        name=name, kind=spec.kind, rates=spec.rates, link=spec.link,
        memory_bytes=spec.memory_bytes,
    )


DEVICE_SPECS: dict[str, DeviceSpec] = {
    s.name: s for s in (CPU_N, CPU_H, GPU_F, GPU_K)
}

_PLATFORM_BUILDERS = {
    # Single-device "platforms" (baselines of Fig. 6).
    "CPU_N": lambda: Platform(name="CPU_N", specs=[CPU_N]),
    "CPU_H": lambda: Platform(name="CPU_H", specs=[CPU_H]),
    "GPU_F": lambda: Platform(name="GPU_F", specs=[GPU_F]),
    "GPU_K": lambda: Platform(name="GPU_K", specs=[GPU_K]),
    # Heterogeneous systems (paper §IV).
    "SysNF": lambda: Platform(name="SysNF", specs=[GPU_F, CPU_N]),
    "SysNFF": lambda: Platform(
        name="SysNFF",
        specs=[GPU_F, _gpu_variant(GPU_F, "GPU_F2"), CPU_N],
    ),
    "SysHK": lambda: Platform(name="SysHK", specs=[GPU_K, CPU_H]),
}


def list_platforms() -> list[str]:
    """Names of all available platform presets."""
    return sorted(_PLATFORM_BUILDERS)


def get_platform(name: str) -> Platform:
    """Build a fresh platform preset by name (new DES resources)."""
    try:
        builder = _PLATFORM_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {list_platforms()}"
        ) from None
    return builder()


def multi_gpu_platform(
    n_gpus: int,
    gpu: DeviceSpec = GPU_F,
    cpu: DeviceSpec | None = CPU_N,
    name: str | None = None,
) -> Platform:
    """Build a CPU + N-identical-GPU platform (scalability studies).

    The paper argues FEVES scales beyond the single accelerator of
    ME-offload designs; this helper generates the SysNF/SysNFF family for
    arbitrary GPU counts.
    """
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    specs: list[DeviceSpec] = [
        gpu if i == 0 else _gpu_variant(gpu, f"{gpu.name}{i + 1}")
        for i in range(n_gpus)
    ]
    if cpu is not None:
        specs.append(cpu)
    return Platform(
        name=name or f"Sys{n_gpus}x{gpu.name}", specs=specs
    )


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a single device spec by name."""
    try:
        return DEVICE_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICE_SPECS)}"
        ) from None
