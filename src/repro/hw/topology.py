"""Platform topology: one CPU device plus zero or more GPU accelerators.

Mirrors the paper's Fig. 3: ``n_c`` CPU cores (modelled as one aggregate
CPU device) and ``n_w`` accelerators behind interconnection buses. Device
ordering follows the paper's convention for Algorithm 2: accelerators
first (``i = 1..n_w``, with the R*-selected accelerator at index 0 in the
GPU-centric configuration), then the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.device import Device, DeviceSpec


@dataclass
class Platform:
    """A heterogeneous CPU + multi-GPU system instance."""

    name: str
    specs: list[DeviceSpec]
    devices: list[Device] = field(init=False)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a platform needs at least one device")
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")
        n_cpu = sum(1 for s in self.specs if s.kind == "cpu")
        if n_cpu > 1:
            raise ValueError("at most one aggregate CPU device is supported")
        self.devices = [Device(spec=s) for s in self.specs]

    @property
    def gpus(self) -> list[Device]:
        """Accelerators in declaration order."""
        return [d for d in self.devices if d.is_accelerator]

    @property
    def cpu(self) -> Device | None:
        """The aggregate CPU device, if present."""
        for d in self.devices:
            if not d.is_accelerator:
                return d
        return None

    @property
    def n_workers(self) -> int:
        """Paper's ``n_w``: number of accelerators."""
        return len(self.gpus)

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        for d in self.devices:
            if d.name == name:
                return d
        raise KeyError(f"no device named {name!r} in platform {self.name!r}")

    def fresh(self) -> "Platform":
        """A new instance with clean DES resources (same specs)."""
        return Platform(name=self.name, specs=list(self.specs))
