"""Timeline utilities: per-frame Gantt-style records and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.des import OpRecord


@dataclass(frozen=True)
class FaultLogEntry:
    """Structured per-frame fault/decision record.

    One entry per encoded inter frame documents which devices the
    scheduler considered live while executing it, what it evicted or
    re-admitted (with a human-readable reason per device), the simulated
    time the frame lost to fault stalls and host-side redo work, and
    whether the distribution came from the LP.
    """

    frame_index: int
    live: tuple[str, ...]
    evicted: tuple[str, ...] = ()
    readmitted: tuple[str, ...] = ()
    reasons: tuple[tuple[str, str], ...] = ()  # (device, why) pairs
    time_lost_s: float = 0.0
    used_lp: bool = False
    rstar_device: str = ""

    @property
    def eventful(self) -> bool:
        """True when something fault-related happened this frame."""
        return bool(self.evicted or self.readmitted or self.time_lost_s > 0)

    def reason_for(self, device: str) -> str | None:
        for name, why in self.reasons:
            if name == device:
                return why
        return None

    def to_dict(self) -> dict:
        """JSON-friendly representation (for trace export)."""
        return {
            "frame": self.frame_index,
            "live": list(self.live),
            "evicted": list(self.evicted),
            "readmitted": list(self.readmitted),
            "reasons": dict(self.reasons),
            "time_lost_s": self.time_lost_s,
            "used_lp": self.used_lp,
            "rstar_device": self.rstar_device,
        }


@dataclass
class FrameTimeline:
    """Schedule of one encoded frame."""

    frame_index: int
    records: list[OpRecord]
    tau1: float = 0.0
    tau2: float = 0.0
    tau_tot: float = 0.0
    _busy: dict[str, float] | None = field(default=None, repr=False, compare=False)

    def busy_by_resource(self) -> dict[str, float]:
        """Busy seconds per resource, computed in one pass and memoized.

        Accumulating per resource in record order adds the same floats in
        the same order as the per-resource filtered scans did, so the
        sums are bit-identical; callers iterating over many resources go
        from O(records × resources) to O(records). Records are treated
        as immutable once the timeline exists (they are — the simulator
        emits them once per frame).
        """
        if self._busy is None:
            busy: dict[str, float] = {}
            for r in self.records:
                busy[r.resource] = busy.get(r.resource, 0.0) + r.duration
            self._busy = busy
        return self._busy

    def busy_time(self, resource: str) -> float:
        """Total occupied simulated seconds of a resource."""
        return self.busy_by_resource().get(resource, 0.0)

    def utilization(self, resource: str) -> float:
        """Busy fraction of a resource over the frame makespan."""
        if self.tau_tot <= 0:
            return 0.0
        return self.busy_time(resource) / self.tau_tot

    def by_category(self) -> dict[str, float]:
        """Total simulated seconds per op category (compute/h2d/d2h)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.category] = out.get(r.category, 0.0) + r.duration
        return out

    def gantt_text(self, width: int = 72) -> str:
        """ASCII Gantt chart of the frame (one line per resource)."""
        if not self.records or self.tau_tot <= 0:
            return "(empty timeline)"
        resources = sorted({r.resource for r in self.records})
        lines = [f"frame {self.frame_index}  tau_tot={self.tau_tot * 1e3:.3f} ms"]
        scale = width / self.tau_tot
        for res in resources:
            row = [" "] * width
            for rec in self.records:
                if rec.resource != res:
                    continue
                a = min(width - 1, int(rec.start * scale))
                b = min(width, max(a + 1, int(rec.end * scale)))
                ch = {"compute": "#", "h2d": ">", "d2h": "<", "fault": "X"}.get(
                    rec.category, "?"
                )
                for i in range(a, b):
                    row[i] = ch
            lines.append(f"{res:>18s} |{''.join(row)}|")
        return "\n".join(lines)


@dataclass
class EncodingTrace:
    """Accumulated per-frame timing of one encoding run."""

    platform: str
    frame_times_s: list[float] = field(default_factory=list)
    timelines: list[FrameTimeline] = field(default_factory=list)

    def add(self, timeline: FrameTimeline) -> None:
        self.timelines.append(timeline)
        self.frame_times_s.append(timeline.tau_tot)

    @property
    def inter_frame_times_s(self) -> list[float]:
        """Times of inter frames only (frame 0 is intra in IPPP)."""
        return self.frame_times_s

    def mean_fps(self, skip: int = 0) -> float:
        """Mean frames/second over frames ``skip:`` (skip warm-up frames)."""
        times = self.frame_times_s[skip:]
        if not times:
            return 0.0
        return len(times) / sum(times)

    def steady_state_fps(self, warmup: int = 2) -> float:
        """fps after the framework has adapted (paper's steady regime)."""
        return self.mean_fps(skip=min(warmup, max(0, len(self.frame_times_s) - 1)))
