"""Per-device module rate models — the simulator's ground truth.

Each device is characterized by how long it takes to process one MB (or MB
row) of each inter-loop module. The framework never reads these numbers:
it only observes op durations and *learns* effective speeds through its
Performance Characterization, exactly as on real hardware.

Scaling laws (per MB row of a frame with ``mb_cols`` MBs):

- **ME** ∝ ``mb_cols × (SA_side / 32)² × active_refs`` — FSBM evaluates
  ``SA²`` candidates per reference; quadrupling the SA side quadruples the
  load (the paper's Fig. 6(a) "quadruplication" remark corresponds to the
  doubling of the side per step).
- **INT** ∝ ``mb_cols`` — exactly one new RF is interpolated per frame,
  regardless of SA or reference count.
- **SME** ∝ ``mb_cols`` — the refinement evaluates a constant candidate
  ring around each of the 41 sub-partitions, on the already-chosen
  reference.
- **R\\*** ∝ ``mb_cols`` per row (MC+TQ+TQ⁻¹+DBL over the whole frame on
  one device).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.config import CodecConfig
from repro.util.validation import check_positive

#: Reference search-area side for the ``me_mb_us`` calibration point.
BASE_SA_SIDE = 32


@dataclass(frozen=True)
class ModuleRates:
    """Device speed constants (µs granularity at the SA=32, 1-ref point).

    Attributes
    ----------
    me_mb_us:
        ME microseconds per MB per reference at a 32×32 search area.
    int_row_us:
        INT microseconds per MB row (one RF interpolation).
    sme_row_us:
        SME microseconds per MB row.
    rstar_row_us:
        R* (MC+TQ+TQ⁻¹+DBL) microseconds per MB row.
    """

    me_mb_us: float
    int_row_us: float
    sme_row_us: float
    rstar_row_us: float

    def __post_init__(self) -> None:
        for name in ("me_mb_us", "int_row_us", "sme_row_us", "rstar_row_us"):
            check_positive(name, getattr(self, name))

    def me_row_s(self, cfg: CodecConfig, active_refs: int) -> float:
        """Seconds to motion-estimate one MB row."""
        if active_refs < 1:
            raise ValueError(f"active_refs must be >= 1, got {active_refs}")
        scale = (cfg.sa_side / BASE_SA_SIDE) ** 2
        return self.me_mb_us * 1e-6 * cfg.mb_cols * scale * active_refs

    def int_row_s(self, cfg: CodecConfig) -> float:
        """Seconds to interpolate one MB row of the new RF."""
        return self.int_row_us * 1e-6 * (cfg.mb_cols / (1920 / 16))

    def sme_row_s(self, cfg: CodecConfig) -> float:
        """Seconds to sub-pel refine one MB row."""
        return self.sme_row_us * 1e-6 * (cfg.mb_cols / (1920 / 16))

    def rstar_row_s(self, cfg: CodecConfig) -> float:
        """Seconds of R* processing per MB row."""
        return self.rstar_row_us * 1e-6 * (cfg.mb_cols / (1920 / 16))

    def rstar_frame_s(self, cfg: CodecConfig) -> float:
        """Seconds to run the complete R* block for one frame."""
        return self.rstar_row_s(cfg) * cfg.mb_rows
