"""Interconnect (PCIe) link model.

Accelerators fetch data from host DRAM over an interconnect with
*asymmetric* bandwidth — the paper's Performance Characterization
explicitly measures host→device (hd) and device→host (dh) directions
separately — plus a fixed per-transfer latency that penalizes many small
transfers (which is why the Data Access Management block coalesces
row-range transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class LinkSpec:
    """PCIe-style link characteristics.

    Attributes
    ----------
    h2d_gbps / d2h_gbps:
        Sustained bandwidth in GB/s (10⁹ bytes) per direction.
    latency_s:
        Fixed setup cost per transfer.
    copy_engines:
        1 = a single copy engine shared by both directions (transfers in
        opposite directions serialize, as on the paper's Fermi GPUs);
        2 = dual copy engines (h2d and d2h overlap, as on Kepler).
    """

    h2d_gbps: float
    d2h_gbps: float
    latency_s: float = 10e-6
    copy_engines: int = 1

    def __post_init__(self) -> None:
        check_positive("h2d_gbps", self.h2d_gbps)
        check_positive("d2h_gbps", self.d2h_gbps)
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.copy_engines not in (1, 2):
            raise ValueError(f"copy_engines must be 1 or 2, got {self.copy_engines}")

    def transfer_s(self, nbytes: float, direction: str) -> float:
        """Simulated seconds to move ``nbytes`` in ``"h2d"`` or ``"d2h"``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        if direction == "h2d":
            bw = self.h2d_gbps
        elif direction == "d2h":
            bw = self.d2h_gbps
        else:
            raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
        return self.latency_s + nbytes / (bw * 1e9)


@dataclass(frozen=True)
class BufferSizes:
    """Bytes moved per MB row for each inter-loop buffer (paper Fig. 5).

    Derived from the codec geometry: CF/RF rows are 16 luma lines (plus
    4:2:0 chroma where the consumer needs it), the SF is 16× the luma area,
    and MV rows carry every sub-partition's vector.
    """

    width: int
    height: int
    mv_bytes_per_part: int = 6  # int16 dy, dx + ref byte + flags

    @property
    def cf_row(self) -> int:
        """Current-frame luma bytes per MB row (ME/SME input)."""
        return 16 * self.width

    @property
    def cf_row_full(self) -> int:
        """Current-frame YUV bytes per MB row (MC input)."""
        return 16 * self.width * 3 // 2

    @property
    def rf_frame(self) -> int:
        """Full reconstructed reference frame (YUV 4:2:0)."""
        return self.width * self.height * 3 // 2

    @property
    def rf_row(self) -> int:
        """Reconstructed RF bytes per MB row (YUV 4:2:0)."""
        return 16 * self.width * 3 // 2

    @property
    def sf_row(self) -> int:
        """SF bytes per MB row: 16 quarter-pel samples per luma pixel."""
        return 16 * 16 * self.width

    @property
    def mv_row(self) -> int:
        """Motion-vector bytes per MB row (41 sub-partitions per MB)."""
        return (self.width // 16) * 41 * self.mv_bytes_per_part
