"""Device memory footprint model.

The paper notes the SF structure alone is "as large as 16 RFs" — at 1080p
with many reference frames the working set approaches the VRAM of the
evaluated GPUs (GTX 580: 1.5 GB). This module estimates each device's
resident footprint for a codec configuration so platforms can be validated
before a run:

- reference frames: ``num_ref_frames`` YUV reconstructions;
- SFs: one quarter-pel plane (16× luma) per reference;
- current frame, MV buffers, and the MC working set on the R* device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.config import CodecConfig
from repro.hw.device import DeviceSpec
from repro.hw.interconnect import BufferSizes
from repro.hw.topology import Platform


@dataclass(frozen=True)
class MemoryFootprint:
    """Estimated resident bytes per buffer class on one accelerator."""

    refs: int
    sfs: int
    current: int
    mvs: int
    overhead: int

    @property
    def total(self) -> int:
        return self.refs + self.sfs + self.current + self.mvs + self.overhead


def device_footprint(
    cfg: CodecConfig, is_rstar: bool = False, overhead_bytes: int = 64 << 20
) -> MemoryFootprint:
    """Footprint of one accelerator under a codec configuration.

    ``overhead_bytes`` covers the CUDA context/allocator slack real
    deployments budget for (default 64 MiB).
    """
    sizes = BufferSizes(width=cfg.width, height=cfg.height)
    n = cfg.mb_rows
    refs = cfg.num_ref_frames * sizes.rf_frame
    sfs = cfg.num_ref_frames * sizes.sf_row * n
    current = sizes.cf_row_full * n
    mvs = 2 * sizes.mv_row * n  # ME output + SME-refined
    if is_rstar:
        current += sizes.rf_frame  # reconstruction under construction
    return MemoryFootprint(
        refs=refs, sfs=sfs, current=current, mvs=mvs, overhead=overhead_bytes
    )


def max_reference_frames(
    spec: DeviceSpec, cfg: CodecConfig, is_rstar: bool = False
) -> int:
    """Largest ``num_ref_frames`` whose footprint fits the device memory.

    Returns 16 (the H.264 cap) when the device declares no memory size.
    """
    if spec.memory_bytes is None:
        return 16
    for refs in range(16, 0, -1):
        probe = CodecConfig(
            width=cfg.width,
            height=cfg.height,
            search_range=cfg.search_range,
            num_ref_frames=refs,
        )
        if device_footprint(probe, is_rstar).total <= spec.memory_bytes:
            return refs
    return 0


def validate_platform_memory(
    platform: Platform, cfg: CodecConfig
) -> dict[str, MemoryFootprint]:
    """Check every accelerator's footprint against its declared memory.

    Returns the per-device footprints; raises ``ValueError`` naming the
    first device whose working set cannot fit.
    """
    out: dict[str, MemoryFootprint] = {}
    for i, dev in enumerate(platform.devices):
        if not dev.is_accelerator:
            continue
        fp = device_footprint(cfg, is_rstar=(i == 0))
        out[dev.name] = fp
        cap = dev.spec.memory_bytes
        if cap is not None and fp.total > cap:
            raise ValueError(
                f"device {dev.name}: working set {fp.total / 2**30:.2f} GiB "
                f"exceeds its {cap / 2**30:.2f} GiB memory "
                f"(max_reference_frames={max_reference_frames(dev.spec, cfg)})"
            )
    return out
