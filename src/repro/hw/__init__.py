"""Heterogeneous platform simulator.

FEVES was evaluated on real CPU+GPU desktops; this package replaces the
hardware with a deterministic discrete-event simulator exposing the same
observable surface the framework needs: per-op execution/transfer times on
devices with distinct speeds, PCIe links with asymmetric bandwidth, and
single- vs dual-copy-engine concurrency between kernels and transfers.

- :mod:`repro.hw.des` — dependency-graph discrete-event kernel.
- :mod:`repro.hw.rates` — per-module device rate models (the ground truth
  the framework must *learn* through measurement).
- :mod:`repro.hw.device` / :mod:`repro.hw.interconnect` — device and link
  descriptions.
- :mod:`repro.hw.topology` — platform = devices + links.
- :mod:`repro.hw.presets` — calibrated models of the paper's devices
  (CPU_N, CPU_H, GPU_F, GPU_K) and systems (SysNF, SysNFF, SysHK).
- :mod:`repro.hw.noise` — load-fluctuation injection (paper Fig. 7).
"""

from repro.hw.calibration import ModuleTiming, calibrate_device, measure_link
from repro.hw.des import Op, Resource, Simulator
from repro.hw.device import Device, DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.memory import device_footprint, validate_platform_memory
from repro.hw.presets import get_platform, list_platforms, multi_gpu_platform
from repro.hw.rates import ModuleRates
from repro.hw.topology import Platform
from repro.hw.trace_export import export_chrome_trace

__all__ = [
    "Device",
    "DeviceSpec",
    "LinkSpec",
    "ModuleRates",
    "ModuleTiming",
    "Op",
    "Platform",
    "Resource",
    "Simulator",
    "calibrate_device",
    "device_footprint",
    "export_chrome_trace",
    "get_platform",
    "list_platforms",
    "measure_link",
    "multi_gpu_platform",
    "validate_platform_memory",
]
