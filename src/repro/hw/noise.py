"""Load-fluctuation injection.

The paper runs on non-dedicated desktops: §IV reports sudden performance
changes ("e.g. other processes started running") at specific frames, which
the framework detects through its online Performance Characterization and
absorbs within one frame. This module reproduces both phenomena:

- :class:`PerturbationSchedule` — deterministic slowdown events at given
  frames (Fig. 7's spikes at frames 76/81 for 1 RF and 31/71/92 for 2 RFs);
- :class:`GaussianJitter` — mild multiplicative measurement noise so that
  the characterization never sees perfectly clean numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PerturbationEvent:
    """One transient slowdown: ``device`` runs ``factor``× slower during
    frames ``[frame, frame + duration)``."""

    frame: int
    device: str
    factor: float
    duration: int = 1

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")


class PerturbationSchedule:
    """Deterministic per-(frame, device) slowdown factors."""

    def __init__(self, events: list[PerturbationEvent] | None = None) -> None:
        self.events = list(events or [])

    def factor(self, frame: int, device: str) -> float:
        """Combined slowdown multiplier for a device at a frame (≥ 1 == slower)."""
        f = 1.0
        for ev in self.events:
            if ev.device == device and ev.frame <= frame < ev.frame + ev.duration:
                f *= ev.factor
        return f

    @classmethod
    def paper_fig7b(cls, device: str, num_refs: int) -> "PerturbationSchedule":
        """The Fig. 7(b) events: frames 76/81 for 1 RF, 31/71/92 for 2 RFs."""
        frames = {1: (76, 81), 2: (31, 71, 92)}.get(num_refs, ())
        return cls(
            [PerturbationEvent(frame=f, device=device, factor=2.0) for f in frames]
        )


@dataclass
class GaussianJitter:
    """Multiplicative jitter ``max(0.05, 1 + N(0, sigma))`` per sample."""

    sigma: float = 0.0
    seed: int = 1234
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def sample(self) -> float:
        if self.sigma == 0.0:
            return 1.0
        return max(0.05, 1.0 + float(self._rng.normal(0.0, self.sigma)))


@dataclass
class NoiseModel:
    """Combined deterministic schedule + random jitter applied to durations."""

    schedule: PerturbationSchedule = field(default_factory=PerturbationSchedule)
    jitter: GaussianJitter = field(default_factory=GaussianJitter)

    def scale(self, frame: int, device: str) -> float:
        """Duration multiplier for one op of ``device`` at ``frame``."""
        return self.schedule.factor(frame, device) * self.jitter.sample()
