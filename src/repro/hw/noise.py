"""Load-fluctuation and device-fault injection.

The paper runs on non-dedicated desktops: §IV reports sudden performance
changes ("e.g. other processes started running") at specific frames, which
the framework detects through its online Performance Characterization and
absorbs within one frame. This module reproduces those phenomena and their
harder cousins:

- :class:`PerturbationSchedule` — deterministic slowdown events at given
  frames (Fig. 7's spikes at frames 76/81 for 1 RF and 31/71/92 for 2 RFs);
- :class:`GaussianJitter` — mild multiplicative measurement noise so that
  the characterization never sees perfectly clean numbers;
- :class:`FaultSchedule` — device *faults*: permanent dropout, transient
  hang with recovery, permanent performance degradation and copy-engine
  failure. Unlike perturbations, dropout/hang faults are surfaced to the
  framework as events (the device produces no results at all) rather than
  as inflated timings, so the scheduler must evict and later re-admit the
  device instead of merely re-weighting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PerturbationEvent:
    """One transient load change: ``device`` runs ``factor``× slower during
    frames ``[frame, frame + duration)``.

    ``factor`` is a strictly positive duration multiplier: values ≥ 1 model
    slowdowns (other processes stealing the device), values in (0, 1) model
    speed-ups (a competing process exiting). Overlapping events for the
    same device compose multiplicatively, so their order in the schedule
    never matters.
    """

    frame: int
    device: str
    factor: float
    duration: int = 1

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")


class PerturbationSchedule:
    """Deterministic per-(frame, device) slowdown factors."""

    def __init__(self, events: list[PerturbationEvent] | None = None) -> None:
        self.events = list(events or [])

    def factor(self, frame: int, device: str) -> float:
        """Combined duration multiplier for a device at a frame.

        ≥ 1 == slower, (0, 1) == faster. Overlapping events multiply, so
        the result is independent of event order (deterministic
        composition).
        """
        f = 1.0
        for ev in self.events:
            if ev.device == device and ev.frame <= frame < ev.frame + ev.duration:
                f *= ev.factor
        return f

    @classmethod
    def paper_fig7b(cls, device: str, num_refs: int) -> "PerturbationSchedule":
        """The Fig. 7(b) events: frames 76/81 for 1 RF, 31/71/92 for 2 RFs."""
        frames = {1: (76, 81), 2: (31, 71, 92)}.get(num_refs, ())
        return cls(
            [PerturbationEvent(frame=f, device=device, factor=2.0) for f in frames]
        )


@dataclass
class GaussianJitter:
    """Multiplicative jitter ``max(0.05, 1 + N(0, sigma))`` per sample."""

    sigma: float = 0.0
    seed: int = 1234
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def sample(self) -> float:
        if self.sigma <= 0.0:
            return 1.0
        return max(0.05, 1.0 + float(self._rng.normal(0.0, self.sigma)))


@dataclass
class NoiseModel:
    """Combined deterministic schedule + random jitter applied to durations."""

    schedule: PerturbationSchedule = field(default_factory=PerturbationSchedule)
    jitter: GaussianJitter = field(default_factory=GaussianJitter)

    def scale(self, frame: int, device: str) -> float:
        """Duration multiplier for one op of ``device`` at ``frame``."""
        return self.schedule.factor(frame, device) * self.jitter.sample()


# --------------------------- device faults -----------------------------------

#: Supported fault kinds.
#:
#: - ``dropout``: the device disappears permanently at ``frame`` (crash,
#:   unplug). It never recovers; ``duration`` must be 0.
#: - ``hang``: the device stalls for ``duration`` frames starting at
#:   ``frame`` and then recovers. ``clear_characterization`` controls
#:   whether its performance history survives the outage (a rebooted
#:   device must be re-probed; a merely wedged one keeps its profile).
#: - ``degrade``: the device permanently (``duration`` = 0) or temporarily
#:   runs ``factor``× slower on *compute* from ``frame`` on — e.g. thermal
#:   throttling. Surfaced through timings, absorbed by characterization.
#: - ``copy_fail``: the device's copy engines degrade by ``factor``×
#:   (PCIe link renegotiating down, a failing DMA engine). Transfers slow
#:   down; the LP reroutes work away from the device once the measured
#:   bandwidth collapses.
FAULT_KINDS = ("dropout", "hang", "degrade", "copy_fail")


@dataclass(frozen=True)
class FaultEvent:
    """One device fault (see :data:`FAULT_KINDS` for semantics).

    ``frame`` uses the same 1-based inter-frame index as
    :class:`PerturbationEvent`. ``factor`` applies to ``degrade`` /
    ``copy_fail`` only and must be ≥ 1 (faults never speed a device up —
    use :class:`PerturbationEvent` for load relief).
    """

    frame: int
    device: str
    kind: str
    factor: float = 2.0
    duration: int = 0
    clear_characterization: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.frame < 1:
            raise ValueError(f"frame must be >= 1, got {self.frame}")
        if self.factor < 1.0:
            raise ValueError(
                f"fault factor must be >= 1 (== slower), got {self.factor}"
            )
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.kind == "dropout" and self.duration != 0:
            raise ValueError("dropout is permanent; duration must be 0")
        if self.kind == "hang" and self.duration < 1:
            raise ValueError("hang needs duration >= 1 (frames until recovery)")

    def _active(self, frame: int) -> bool:
        """Whether this event is in effect at ``frame``."""
        if frame < self.frame:
            return False
        return self.duration == 0 or frame < self.frame + self.duration


class FaultSchedule:
    """Deterministic per-(frame, device) fault injection.

    Queried by the framework each inter frame: :meth:`down` reports
    unavailability events (dropout/hang), :meth:`compute_factor` /
    :meth:`copy_factor` report degradation multipliers. Overlapping
    degradations compose multiplicatively, like perturbations.
    """

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self.events = list(events or [])

    @property
    def empty(self) -> bool:
        return not self.events

    def devices(self) -> set[str]:
        """Names of all devices any event refers to (for validation)."""
        return {ev.device for ev in self.events}

    def down(self, frame: int, device: str) -> FaultEvent | None:
        """The event keeping ``device`` unavailable at ``frame``, if any."""
        for ev in self.events:
            if (
                ev.device == device
                and ev.kind in ("dropout", "hang")
                and ev._active(frame)
            ):
                return ev
        return None

    def compute_factor(self, frame: int, device: str) -> float:
        """Combined compute-duration multiplier from ``degrade`` events."""
        f = 1.0
        for ev in self.events:
            if ev.device == device and ev.kind == "degrade" and ev._active(frame):
                f *= ev.factor
        return f

    def copy_factor(self, frame: int, device: str) -> float:
        """Combined transfer-duration multiplier from ``copy_fail`` events."""
        f = 1.0
        for ev in self.events:
            if ev.device == device and ev.kind == "copy_fail" and ev._active(frame):
                f *= ev.factor
        return f
