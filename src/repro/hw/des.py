"""Discrete-event simulation kernel.

The Video Coding Manager expresses one frame's work as a DAG of *ops*
(kernels and transfers), each bound to a *resource* (a device compute
engine or a copy engine). Resources execute their ops serially in issue
order — exactly the semantics of CUDA streams/copy queues the paper's
orchestration relies on — while ops on different resources overlap freely
subject to dependencies.

Because per-resource order is fixed at issue time, the schedule is fully
determined: every op starts at the maximum of its dependencies' end times
and the end of the previous op on its resource. :meth:`Simulator.run`
evaluates the DAG in topological order, optionally executing attached
Python thunks (the real NumPy computation in ``compute="real"`` mode) as
each op "runs".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

import numpy as np


@dataclass
class Resource:
    """A serially-executing engine (device compute queue or copy engine)."""

    name: str
    ops: list["Op"] = field(default_factory=list, repr=False)

    def reset(self) -> None:
        self.ops.clear()


@dataclass(eq=False)
class Op:
    """One unit of simulated work.

    Parameters
    ----------
    label:
        Human-readable name (appears in timelines, e.g. ``"ME[gpu1]"``).
    resource:
        The engine this op occupies for ``duration`` simulated seconds.
    duration:
        Simulated execution time (from the rate models).
    deps:
        Ops that must complete before this op starts (in addition to the
        implicit previous-op-on-resource ordering).
    thunk:
        Optional callable performing the real computation; invoked once
        when the op is evaluated, with the op itself as argument. Its
        return value is stored in :attr:`result`.
    category:
        Coarse tag (``"compute"`` / ``"h2d"`` / ``"d2h"`` / ``"fault"``)
        for reporting. ``"fault"`` marks stall intervals injected when a
        device dies mid-frame (watchdog/detection time).
    fail_ok:
        When True, an exception raised by the thunk is captured in
        :attr:`error` instead of aborting the whole schedule — the fault
        surfaces as an op-level event and downstream recovery ops still
        run. When False (default) thunk exceptions propagate.
    """

    label: str
    resource: Resource
    duration: float
    deps: list["Op"] = field(default_factory=list)
    thunk: Callable[["Op"], Any] | None = None
    category: str = "compute"
    fail_ok: bool = False
    start: float | None = None
    end: float | None = None
    result: Any = None
    error: BaseException | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"op {self.label!r}: negative duration {self.duration}")
        self.resource.ops.append(self)


@dataclass
class OpRecord:
    """Immutable record of one executed op (for timelines and tests)."""

    label: str
    resource: str
    category: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Simulator:
    """Evaluates an op DAG and produces the schedule.

    Typical use: create :class:`Resource` objects, build :class:`Op` objects
    against them (issue order per resource = creation order), then call
    :meth:`run`.
    """

    def __init__(self, resources: list[Resource]) -> None:
        names = [r.name for r in resources]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate resource names: {names}")
        self.resources = list(resources)

    def run(
        self,
        execute_thunks: bool = True,
        parallel_workers: int = 0,
        fast: bool = True,
    ) -> list[OpRecord]:
        """Schedule (and optionally execute) all issued ops.

        Returns op records sorted by start time. Raises ``RuntimeError`` on
        a dependency cycle (including cycles through resource ordering).

        ``fast=True`` (default) runs the index-based scheduling loop:
        integer adjacency lists and a deque replace per-op dict lookups
        and the O(n) ``list.pop(0)``. The FIFO evaluation order and the
        start/end arithmetic are exactly those of the reference loop
        (``fast=False``), so schedules are bit-identical; the flag exists
        for the equivalence suite and the cold-path benchmark.

        ``parallel_workers`` > 1 executes the attached thunks on a thread
        pool, dispatching each op the moment its dependencies complete —
        the literal parallelism of the paper's collaborative execution
        (NumPy releases the GIL inside its kernels). Results are identical
        to serial execution because the dependency DAG fully orders every
        data exchange.
        """
        ops: list[Op] = [op for r in self.resources for op in r.ops]
        if fast:
            preds_idx, succs_idx = self._evaluate_fast(
                ops, execute_thunks, parallel_workers
            )
            if execute_thunks and parallel_workers > 1:
                preds = {
                    op: [ops[j] for j in preds_idx[k]] for k, op in enumerate(ops)
                }
                succs = {
                    op: [ops[j] for j in succs_idx[k]] for k, op in enumerate(ops)
                }
                self._run_thunks_parallel(ops, preds, succs, parallel_workers)
        else:
            preds, succs = self._evaluate_reference(
                ops, execute_thunks, parallel_workers
            )
            if execute_thunks and parallel_workers > 1:
                self._run_thunks_parallel(ops, preds, succs, parallel_workers)

        records = [
            OpRecord(
                label=op.label,
                resource=op.resource.name,
                category=op.category,
                start=op.start,  # type: ignore[arg-type]
                end=op.end,  # type: ignore[arg-type]
            )
            for op in ops
        ]
        records.sort(key=lambda rec: (rec.start, rec.resource, rec.label))
        return records

    def _evaluate_reference(
        self, ops: list[Op], execute_thunks: bool, parallel_workers: int
    ) -> tuple[dict[Op, list[Op]], dict[Op, list[Op]]]:
        """Reference Kahn evaluation over per-op dicts (the slow path)."""
        # Effective predecessor sets: explicit deps + previous op in queue.
        preds: dict[Op, list[Op]] = {}
        for r in self.resources:
            for i, op in enumerate(r.ops):
                p = list(op.deps)
                if i > 0:
                    p.append(r.ops[i - 1])
                preds[op] = p
        for op in ops:
            for d in op.deps:
                if d not in preds:
                    raise RuntimeError(
                        f"op {op.label!r} depends on {d.label!r}, which is not "
                        "issued on any resource of this simulator"
                    )

        indeg = {op: len(preds[op]) for op in ops}
        succs: dict[Op, list[Op]] = {op: [] for op in ops}
        for op, ps in preds.items():
            for p in ps:
                succs[p].append(op)

        # Kahn's algorithm; FIFO keeps evaluation deterministic.
        serial_thunks = execute_thunks and parallel_workers <= 1
        ready = [op for op in ops if indeg[op] == 0]
        done = 0
        while ready:
            op = ready.pop(0)
            t0 = max((p.end for p in preds[op]), default=0.0)
            op.start = t0
            op.end = t0 + op.duration
            if serial_thunks and op.thunk is not None:
                try:
                    op.result = op.thunk(op)
                except Exception as exc:
                    if not op.fail_ok:
                        raise
                    op.error = exc
            done += 1
            for s in succs[op]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if done != len(ops):
            stuck = [op.label for op in ops if op.start is None][:8]
            raise RuntimeError(f"dependency cycle involving ops: {stuck}")
        return preds, succs

    def _evaluate_fast(
        self, ops: list[Op], execute_thunks: bool, parallel_workers: int
    ) -> tuple[list[list[int]], list[list[int]]]:
        """Index-based Kahn evaluation (the fast path).

        Same traversal as :meth:`_evaluate_reference` — integer adjacency
        lists built in the identical order, a deque for the FIFO ready
        queue (``popleft`` ≡ ``pop(0)``), and a running max over plain
        floats for start times — so every op gets the bit-identical
        start/end and thunks fire in the identical order.
        """
        idx = {op: k for k, op in enumerate(ops)}
        n = len(ops)
        preds_idx: list[list[int]] = [[] for _ in range(n)]
        for r in self.resources:
            prev = -1
            for op in r.ops:
                k = idx[op]
                lst = preds_idx[k]
                for d in op.deps:
                    j = idx.get(d)
                    if j is None:
                        raise RuntimeError(
                            f"op {op.label!r} depends on {d.label!r}, which is not "
                            "issued on any resource of this simulator"
                        )
                    lst.append(j)
                if prev >= 0:
                    lst.append(prev)
                prev = k

        indeg = [len(ps) for ps in preds_idx]
        succs_idx: list[list[int]] = [[] for _ in range(n)]
        for k, ps in enumerate(preds_idx):
            for p in ps:
                succs_idx[p].append(k)

        serial_thunks = execute_thunks and parallel_workers <= 1
        ends = [0.0] * n
        ready = deque(k for k in range(n) if indeg[k] == 0)
        done = 0
        while ready:
            k = ready.popleft()
            op = ops[k]
            t0 = 0.0
            for p in preds_idx[k]:
                e = ends[p]
                if e > t0:
                    t0 = e
            op.start = t0
            end = t0 + op.duration
            op.end = end
            ends[k] = end
            if serial_thunks and op.thunk is not None:
                try:
                    op.result = op.thunk(op)
                except Exception as exc:
                    if not op.fail_ok:
                        raise
                    op.error = exc
            done += 1
            for s in succs_idx[k]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if done != n:
            stuck = [op.label for op in ops if op.start is None][:8]
            raise RuntimeError(f"dependency cycle involving ops: {stuck}")
        return preds_idx, succs_idx

    def _run_thunks_parallel(
        self,
        ops: list[Op],
        preds: dict[Op, list[Op]],
        succs: dict[Op, list[Op]],
        workers: int,
    ) -> None:
        """Execute thunks on a thread pool in dependency order.

        Ops are dispatched as soon as every predecessor's thunk has
        finished. Error semantics match the serial Kahn loop: a
        ``fail_ok`` op's exception is captured on the op and its
        successors still run; a fatal exception aborts the DAG — no new
        op is submitted after it is observed, in-flight ops drain, and
        the fatal error of the *earliest issued* failed op is raised
        (deterministic regardless of thread completion order).
        """
        from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait

        pending = {op: len(preds[op]) for op in ops}
        order = {op: k for k, op in enumerate(ops)}
        fatal: list[tuple[Op, BaseException]] = []
        submitted = 0

        def execute(op: Op) -> tuple[Op, BaseException | None]:
            # Never raises: the worker reports the exception with its op so
            # the drain loop can abort deterministically.
            if op.thunk is not None:
                try:
                    op.result = op.thunk(op)
                except Exception as exc:
                    if not op.fail_ok:
                        return op, exc
                    op.error = exc
            return op, None

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures: set[Future[tuple[Op, BaseException | None]]] = set()
            for op in ops:
                if pending[op] == 0:
                    futures.add(pool.submit(execute, op))
                    submitted += 1
            while futures:
                # The executor and every future it waits on are created
                # and joined inside this call, so no fork can snapshot
                # the wait mid-acquire; REP201's reachability chain here
                # is a tail-name collision (generic run/encode names).
                finished, futures = wait(futures, return_when=FIRST_COMPLETED)  # noqa: REP201
                for fut in finished:
                    op, exc = fut.result()
                    if exc is not None:
                        fatal.append((op, exc))
                        continue
                    if fatal:
                        # Aborting: let in-flight work drain, submit nothing.
                        continue
                    for s in succs[op]:
                        pending[s] -= 1
                        if pending[s] == 0:
                            futures.add(pool.submit(execute, s))
                            submitted += 1
        if fatal:
            fatal.sort(key=lambda pair: order[pair[0]])
            raise fatal[0][1]
        if submitted != len(ops):
            stuck = [op.label for op in ops if pending[op] > 0][:8]
            raise RuntimeError(
                f"thunk scheduling stalled; never-ready ops: {stuck}"
            )

    def makespan(self) -> float:
        """End time of the last op (valid after :meth:`run`)."""
        ends = [op.end for r in self.resources for op in r.ops if op.end is not None]
        return max(ends, default=0.0)

    def reset(self) -> None:
        """Discard all issued ops, keeping the resources."""
        for r in self.resources:
            r.reset()


def validate_schedule(records: list[OpRecord]) -> None:
    """Assert no two ops overlap on the same resource (test helper).

    Zero-duration ops (barriers) occupy no time and cannot overlap.

    :meth:`Simulator.run` emits records globally sorted by (start,
    resource, label), so each resource's sub-sequence already arrives
    sorted by start; the per-resource re-sort this function used to do on
    every call was O(n log n) of pure waste on that path. Sortedness by
    (start, end) is now *detected* in one vectorized pass and the stable
    re-sort (``np.lexsort`` ≡ ``sorted`` with a (start, end) key) only
    runs when the input really is unsorted, e.g. hand-built records in
    tests. Overlaps are then found by one vectorized comparison of
    consecutive intervals; the first offending pair raises with the same
    message as the scalar loop did.
    """
    by_res: dict[str, list[OpRecord]] = {}
    for rec in records:
        if rec.duration > 0:
            by_res.setdefault(rec.resource, []).append(rec)
    eps = 1e-12
    for name, recs in by_res.items():
        if len(recs) < 2:
            continue
        starts = np.array([r.start for r in recs])
        ends = np.array([r.end for r in recs])
        ds = np.diff(starts)
        in_order = bool(
            np.all((ds > 0) | ((ds == 0) & (np.diff(ends) >= 0)))
        )
        if not in_order:
            order = np.lexsort((ends, starts))
            starts = starts[order]
            ends = ends[order]
            recs = [recs[i] for i in order]
        bad = np.nonzero(starts[1:] < ends[:-1] - eps)[0]
        if bad.size:
            i = int(bad[0])
            a, b = recs[i], recs[i + 1]
            raise AssertionError(
                f"overlap on {name}: {a.label}[{a.start:.6f},{a.end:.6f}] vs "
                f"{b.label}[{b.start:.6f},{b.end:.6f}]"
            )
