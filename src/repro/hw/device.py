"""Device model: a CPU pool or a GPU accelerator with its engines.

A device owns DES resources: one compute engine, and (for accelerators)
one or two copy engines depending on the link's copy-engine count. The
multi-core CPU is modelled as a single device whose rate constants already
reflect all cores + SIMD — matching the paper, which treats "the CPU" as
one processing device p_i alongside the GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.des import Resource
from repro.hw.interconnect import LinkSpec
from repro.hw.rates import ModuleRates


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one processing device.

    ``memory_bytes`` is the accelerator's local memory (None = unmodelled;
    CPUs use host DRAM and are never capacity-checked).
    """

    name: str
    kind: str  # "cpu" | "gpu"
    rates: ModuleRates
    link: LinkSpec | None = None
    memory_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ValueError(f"kind must be 'cpu' or 'gpu', got {self.kind!r}")
        if self.kind == "gpu" and self.link is None:
            raise ValueError(f"GPU device {self.name!r} requires a link")
        if self.kind == "cpu" and self.link is not None:
            raise ValueError(f"CPU device {self.name!r} must not have a link")

    @property
    def is_accelerator(self) -> bool:
        return self.kind == "gpu"


@dataclass
class Device:
    """Runtime device: spec + DES resources.

    Resources
    ---------
    - ``compute``: the kernel-execution engine.
    - ``copy_h2d`` / ``copy_d2h``: copy engine(s). With a single-copy-engine
      link both names alias the *same* resource, so transfers in opposite
      directions serialize — the behaviour the paper's Fig. 4 schedule is
      designed around. CPU devices have no copy engines (``None``): host
      data is accessed in place.

    Fault state
    -----------
    ``fault_compute_scale`` / ``fault_copy_scale`` are per-frame duration
    multipliers set by the framework from its :class:`~repro.hw.noise.
    FaultSchedule` (``degrade`` and ``copy_fail`` events). They model the
    device genuinely running slower — the characterization *measures* the
    degraded speed, it is never told about it — while dropout/hang faults
    are surfaced as events instead of timings and never pass through here.
    """

    spec: DeviceSpec
    compute: Resource = field(init=False)
    copy_h2d: Resource | None = field(init=False, default=None)
    copy_d2h: Resource | None = field(init=False, default=None)
    fault_compute_scale: float = field(init=False, default=1.0)
    fault_copy_scale: float = field(init=False, default=1.0)
    share_scale: float = field(init=False, default=1.0)

    def __post_init__(self) -> None:
        self.compute = Resource(name=f"{self.spec.name}.compute")
        if self.spec.is_accelerator:
            assert self.spec.link is not None
            if self.spec.link.copy_engines == 2:
                self.copy_h2d = Resource(name=f"{self.spec.name}.copyH2D")
                self.copy_d2h = Resource(name=f"{self.spec.name}.copyD2H")
            else:
                shared = Resource(name=f"{self.spec.name}.copy")
                self.copy_h2d = shared
                self.copy_d2h = shared

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_accelerator(self) -> bool:
        return self.spec.is_accelerator

    def resources(self) -> list[Resource]:
        """Unique DES resources of this device."""
        out = [self.compute]
        if self.copy_h2d is not None:
            out.append(self.copy_h2d)
        if self.copy_d2h is not None and self.copy_d2h is not self.copy_h2d:
            out.append(self.copy_d2h)
        return out

    def set_fault_scales(self, compute: float = 1.0, copy: float = 1.0) -> None:
        """Install this frame's degradation multipliers (both ≥ 1)."""
        if compute < 1.0 or copy < 1.0:
            raise ValueError(
                f"fault scales must be >= 1, got compute={compute}, copy={copy}"
            )
        self.fault_compute_scale = compute
        self.fault_copy_scale = copy

    def set_capacity_share(self, share: float) -> None:
        """Grant this device's engines a fractional capacity share.

        ``share`` ∈ (0, 1] is the slice of compute *and* copy throughput
        one encoding session may use while the platform is time-shared
        between streams (processor-sharing model): every simulated
        duration stretches by ``1/share``. Like fault degradation, the
        scale is measured by the Performance Characterization — a session
        granted 50% of a device simply observes a device half as fast and
        its LP redistributes accordingly. ``share=1`` (the default) is an
        exact no-op, keeping single-session runs bit-identical.
        """
        if not 0.0 < share <= 1.0:
            raise ValueError(f"capacity share must be in (0, 1], got {share}")
        self.share_scale = 1.0 / share

    def transfer_s(self, nbytes: float, direction: str) -> float:
        """Simulated transfer time over this device's link (0 for CPU).

        Includes the current ``fault_copy_scale`` (copy-engine
        degradation) and the session's ``share_scale`` (multi-stream
        time-sharing), so every planned transfer — and therefore every
        bandwidth the characterization measures — reflects both.
        """
        if not self.spec.is_accelerator:
            return 0.0
        assert self.spec.link is not None
        return (
            self.spec.link.transfer_s(nbytes, direction)
            * self.fault_copy_scale
            * self.share_scale
        )
