"""Timeline export in Chrome trace-event format.

Dump frame timelines to the JSON consumed by ``chrome://tracing`` /
Perfetto, one "thread" per DES resource — the practical way to eyeball a
multi-frame FEVES schedule outside the terminal.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.hw.timeline import FrameTimeline

#: Category colors follow trace-viewer conventions via the ``cat`` field.
_CATEGORY = {"compute": "kernel", "h2d": "transfer_in", "d2h": "transfer_out"}


def timeline_to_events(
    timeline: FrameTimeline, time_offset_s: float = 0.0, pid: int = 1
) -> list[dict]:
    """Convert one frame's records to trace-event dicts (``X`` events)."""
    events: list[dict] = []
    resources = sorted({r.resource for r in timeline.records})
    tids = {res: i + 1 for i, res in enumerate(resources)}
    for res, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": res},
            }
        )
    for rec in timeline.records:
        if rec.duration <= 0:
            continue
        events.append(
            {
                "name": rec.label,
                "cat": _CATEGORY.get(rec.category, rec.category),
                "ph": "X",
                "pid": pid,
                "tid": tids[rec.resource],
                "ts": (time_offset_s + rec.start) * 1e6,   # µs
                "dur": rec.duration * 1e6,
                "args": {"frame": timeline.frame_index},
            }
        )
    return events


def export_chrome_trace(
    timelines: list[FrameTimeline], path: str | Path
) -> int:
    """Write consecutive frame timelines as one chrome trace JSON file.

    Frames are laid out back-to-back on a common clock. Returns the number
    of duration events written.
    """
    events: list[dict] = []
    offset = 0.0
    seen_meta: set[tuple[int, int]] = set()
    for tl in timelines:
        for ev in timeline_to_events(tl, time_offset_s=offset):
            if ev["ph"] == "M":
                key = (ev["pid"], ev["tid"])
                if key in seen_meta:
                    continue
                seen_meta.add(key)
            events.append(ev)
        offset += max(tl.tau_tot, 0.0)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))
    return sum(1 for e in events if e["ph"] == "X")
