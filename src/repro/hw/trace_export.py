"""Timeline and fault-log export in Chrome trace-event format.

Dump frame timelines to the JSON consumed by ``chrome://tracing`` /
Perfetto, one "thread" per DES resource — the practical way to eyeball a
multi-frame FEVES schedule outside the terminal. Device-fault activity
(eviction, re-admission, stall intervals) rides along: fault stalls are
ordinary duration events with category ``fault``, and the per-frame
:class:`~repro.hw.timeline.FaultLogEntry` records become instant events at
each frame's start, so the moment a GPU dies is visible in the same view
as the schedule reacting to it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.hw.timeline import FaultLogEntry, FrameTimeline

#: Category colors follow trace-viewer conventions via the ``cat`` field.
_CATEGORY = {
    "compute": "kernel",
    "h2d": "transfer_in",
    "d2h": "transfer_out",
    "fault": "fault",
}


def timeline_to_events(
    timeline: FrameTimeline, time_offset_s: float = 0.0, pid: int = 1
) -> list[dict]:
    """Convert one frame's records to trace-event dicts (``X`` events)."""
    events: list[dict] = []
    resources = sorted({r.resource for r in timeline.records})
    tids = {res: i + 1 for i, res in enumerate(resources)}
    for res, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": res},
            }
        )
    for rec in timeline.records:
        if rec.duration <= 0:
            continue
        events.append(
            {
                "name": rec.label,
                "cat": _CATEGORY.get(rec.category, rec.category),
                "ph": "X",
                "pid": pid,
                "tid": tids[rec.resource],
                "ts": (time_offset_s + rec.start) * 1e6,   # µs
                "dur": rec.duration * 1e6,
                "args": {"frame": timeline.frame_index},
            }
        )
    return events


def fault_log_to_events(
    entries: list[FaultLogEntry],
    frame_offsets_s: dict[int, float],
    pid: int = 1,
) -> list[dict]:
    """Instant events ("i" phase) for eventful fault-log entries.

    ``frame_offsets_s`` maps each frame index to its start time on the
    common trace clock; entries for frames without a timeline are skipped.
    """
    events: list[dict] = []
    for entry in entries:
        if not entry.eventful or entry.frame_index not in frame_offsets_s:
            continue
        parts = []
        if entry.evicted:
            parts.append("evicted " + ",".join(entry.evicted))
        if entry.readmitted:
            parts.append("readmitted " + ",".join(entry.readmitted))
        if entry.time_lost_s > 0:
            parts.append(f"lost {entry.time_lost_s * 1e3:.1f}ms")
        events.append(
            {
                "name": "; ".join(parts) or "fault",
                "cat": "fault",
                "ph": "i",
                "s": "g",  # global scope: draw across all threads
                "pid": pid,
                "tid": 0,
                "ts": frame_offsets_s[entry.frame_index] * 1e6,
                "args": entry.to_dict(),
            }
        )
    return events


def export_chrome_trace(
    timelines: list[FrameTimeline],
    path: str | Path,
    fault_log: list[FaultLogEntry] | None = None,
) -> int:
    """Write consecutive frame timelines as one chrome trace JSON file.

    Frames are laid out back-to-back on a common clock; an optional fault
    log contributes instant events at the start of each eventful frame.
    Returns the number of duration events written.
    """
    events: list[dict] = []
    offset = 0.0
    seen_meta: set[tuple[int, int]] = set()
    frame_offsets: dict[int, float] = {}
    for tl in timelines:
        frame_offsets[tl.frame_index] = offset
        for ev in timeline_to_events(tl, time_offset_s=offset):
            if ev["ph"] == "M":
                key = (ev["pid"], ev["tid"])
                if key in seen_meta:
                    continue
                seen_meta.add(key)
            events.append(ev)
        offset += max(tl.tau_tot, 0.0)
    if fault_log:
        events.extend(fault_log_to_events(fault_log, frame_offsets))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))
    return sum(1 for e in events if e["ph"] == "X")


def export_fault_log(entries: list[FaultLogEntry], path: str | Path) -> int:
    """Write the structured per-frame fault/decision log as JSON.

    Returns the number of entries written. The file is a JSON array of
    per-frame objects (see :meth:`FaultLogEntry.to_dict`), suitable for
    postmortem tooling and diffing across runs.
    """
    payload = [entry.to_dict() for entry in entries]
    Path(path).write_text(json.dumps(payload, indent=1))
    return len(payload)
