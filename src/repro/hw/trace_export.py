"""Timeline and fault-log export in Chrome trace-event format.

Dump frame timelines to the JSON consumed by ``chrome://tracing`` /
Perfetto, one "thread" per DES resource — the practical way to eyeball a
multi-frame FEVES schedule outside the terminal. Device-fault activity
(eviction, re-admission, stall intervals) rides along: fault stalls are
ordinary duration events with category ``fault``, and the per-frame
:class:`~repro.hw.timeline.FaultLogEntry` records become instant events at
each frame's start, so the moment a GPU dies is visible in the same view
as the schedule reacting to it.

Multi-stream runs are namespaced by *process*: each encoding session
exports under its own ``pid`` with a ``process_name`` metadata record, so
N concurrent streams render as N labelled process groups instead of
interleaving into one row (see :func:`export_stream_traces`, used by
``EncodingService.export_trace``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.hw.timeline import FaultLogEntry, FrameTimeline

#: Category colors follow trace-viewer conventions via the ``cat`` field.
_CATEGORY = {
    "compute": "kernel",
    "h2d": "transfer_in",
    "d2h": "transfer_out",
    "fault": "fault",
}


def resource_tids(timelines: list[FrameTimeline]) -> dict[str, int]:
    """Stable resource → tid mapping over a set of frame timelines.

    Built from the union of resources so a frame that happens to miss a
    resource (an evicted device, an idle copy engine) cannot shift the
    tids of later frames.
    """
    resources = sorted({r.resource for tl in timelines for r in tl.records})
    return {res: i + 1 for i, res in enumerate(resources)}


def thread_metadata_events(tids: dict[str, int], pid: int = 1) -> list[dict]:
    """``thread_name`` metadata records for a resource → tid mapping."""
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": res},
        }
        for res, tid in tids.items()
    ]


def process_metadata_events(pid: int, name: str, sort_index: int = 0) -> list[dict]:
    """``process_name``/``process_sort_index`` metadata for one stream."""
    return [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        },
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": sort_index},
        },
    ]


def timeline_to_events(
    timeline: FrameTimeline,
    time_offset_s: float = 0.0,
    pid: int = 1,
    tids: dict[str, int] | None = None,
    stream: str | None = None,
) -> list[dict]:
    """Convert one frame's records to trace-event dicts (``X`` events).

    When ``tids`` is provided it is used as the (caller-stable) resource
    → tid mapping and no thread metadata is emitted — multi-frame and
    multi-stream exporters emit the metadata once per pid themselves.
    ``stream`` adds a stream/session id to every event's args.
    """
    events: list[dict] = []
    if tids is None:
        tids = resource_tids([timeline])
        events.extend(thread_metadata_events(tids, pid=pid))
    for rec in timeline.records:
        if rec.duration <= 0:
            continue
        args: dict = {"frame": timeline.frame_index}
        if stream is not None:
            args["stream"] = stream
        events.append(
            {
                "name": rec.label,
                "cat": _CATEGORY.get(rec.category, rec.category),
                "ph": "X",
                "pid": pid,
                "tid": tids[rec.resource],
                "ts": (time_offset_s + rec.start) * 1e6,   # µs
                "dur": rec.duration * 1e6,
                "args": args,
            }
        )
    return events


def fault_log_to_events(
    entries: list[FaultLogEntry],
    frame_offsets_s: dict[int, float],
    pid: int = 1,
    scope: str = "g",
) -> list[dict]:
    """Instant events ("i" phase) for eventful fault-log entries.

    ``frame_offsets_s`` maps each frame index to its start time on the
    common trace clock; entries for frames without a timeline are skipped.
    ``scope`` is the trace-viewer instant scope: ``"g"`` (global) for
    single-process traces, ``"p"`` (process) for per-stream exports.
    """
    events: list[dict] = []
    for entry in entries:
        if not entry.eventful or entry.frame_index not in frame_offsets_s:
            continue
        parts = []
        if entry.evicted:
            parts.append("evicted " + ",".join(entry.evicted))
        if entry.readmitted:
            parts.append("readmitted " + ",".join(entry.readmitted))
        if entry.time_lost_s > 0:
            parts.append(f"lost {entry.time_lost_s * 1e3:.1f}ms")
        events.append(
            {
                "name": "; ".join(parts) or "fault",
                "cat": "fault",
                "ph": "i",
                "s": scope,
                "pid": pid,
                "tid": 0,
                "ts": frame_offsets_s[entry.frame_index] * 1e6,
                "args": entry.to_dict(),
            }
        )
    return events


def export_chrome_trace(
    timelines: list[FrameTimeline],
    path: str | Path,
    fault_log: list[FaultLogEntry] | None = None,
    pid: int = 1,
) -> int:
    """Write consecutive frame timelines as one chrome trace JSON file.

    Frames are laid out back-to-back on a common clock with one stable
    resource → tid mapping across all of them; an optional fault log
    contributes instant events at the start of each eventful frame.
    Returns the number of duration events written.
    """
    tids = resource_tids(timelines)
    events: list[dict] = list(thread_metadata_events(tids, pid=pid))
    offset = 0.0
    frame_offsets: dict[int, float] = {}
    for tl in timelines:
        frame_offsets[tl.frame_index] = offset
        events.extend(timeline_to_events(tl, time_offset_s=offset, pid=pid, tids=tids))
        offset += max(tl.tau_tot, 0.0)
    if fault_log:
        events.extend(fault_log_to_events(fault_log, frame_offsets, pid=pid))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))
    return sum(1 for e in events if e["ph"] == "X")


def export_fault_log(entries: list[FaultLogEntry], path: str | Path) -> int:
    """Write the structured per-frame fault/decision log as JSON.

    Returns the number of entries written. The file is a JSON array of
    per-frame objects (see :meth:`FaultLogEntry.to_dict`), suitable for
    postmortem tooling and diffing across runs.
    """
    payload = [entry.to_dict() for entry in entries]
    Path(path).write_text(json.dumps(payload, indent=1))
    return len(payload)


@dataclass
class StreamTrace:
    """One stream's worth of trace material for a multi-stream export.

    ``frames`` pairs each frame timeline with its absolute start time on
    the shared service clock (frames of different streams overlap — that
    is the point).
    """

    pid: int
    name: str
    frames: list[tuple[FrameTimeline, float]]
    fault_log: list[FaultLogEntry] | None = None
    sort_index: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.sort_index < 0:
            self.sort_index = self.pid


def export_stream_traces(streams: list[StreamTrace], path: str | Path) -> int:
    """Write a multi-stream Chrome trace, one process (pid) per stream.

    Every stream gets its own ``pid`` with ``process_name`` metadata and a
    tid mapping stable across all of its frames, so concurrent sessions
    render as separate labelled process groups in chrome://tracing /
    Perfetto instead of interleaving into one row. Per-stream fault logs
    become process-scoped instant events at the frames they struck.
    Returns the number of duration events written.
    """
    events: list[dict] = []
    for st in streams:
        events.extend(process_metadata_events(st.pid, st.name, st.sort_index))
        tids = resource_tids([tl for tl, _ in st.frames])
        events.extend(thread_metadata_events(tids, pid=st.pid))
        frame_offsets: dict[int, float] = {}
        for tl, start_s in st.frames:
            frame_offsets[tl.frame_index] = start_s
            events.extend(
                timeline_to_events(
                    tl,
                    time_offset_s=start_s,
                    pid=st.pid,
                    tids=tids,
                    stream=st.name,
                )
            )
        if st.fault_log:
            events.extend(
                fault_log_to_events(
                    st.fault_log, frame_offsets, pid=st.pid, scope="p"
                )
            )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))
    return sum(1 for e in events if e["ph"] == "X")
