"""Calibration: build device models from measured module timings.

The paper's framework never needs an a-priori model — it measures on the
fly — but *this repository's simulator* does: to study a new machine you
must translate benchmark timings into :class:`ModuleRates`/:class:`LinkSpec`
presets. This module does that translation, plus the inverse sanity check
(predicting single-device fps from a spec), so downstream users can add
their own hardware in a few lines:

    spec = calibrate_device(
        "myGPU", kind="gpu",
        measurements=[ModuleTiming("me", rows=68, seconds=0.012, sa_side=32,
                                    n_refs=1, mb_cols=120), ...],
        link=measure_link(h2d_samples, d2h_samples),
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.codec.config import CodecConfig
from repro.hw.device import DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.rates import BASE_SA_SIDE, ModuleRates
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ModuleTiming:
    """One measured module execution.

    ``module`` ∈ {"me", "int", "sme", "rstar"}; ``rows`` MB rows processed
    in ``seconds``. ME timings additionally need the search-area side and
    reference count they were measured at.
    """

    module: str
    rows: int
    seconds: float
    mb_cols: int
    sa_side: int = BASE_SA_SIDE
    n_refs: int = 1

    def __post_init__(self) -> None:
        if self.module not in ("me", "int", "sme", "rstar"):
            raise ValueError(f"unknown module {self.module!r}")
        check_positive("rows", self.rows)
        check_positive("seconds", self.seconds)
        check_positive("mb_cols", self.mb_cols)
        check_positive("sa_side", self.sa_side)
        check_positive("n_refs", self.n_refs)


def fit_rates(measurements: list[ModuleTiming]) -> ModuleRates:
    """Least-squares-free fit: average each module's normalized constant.

    ME samples are normalized by ``(sa_side/32)² · n_refs`` so measurements
    at different settings combine consistently; INT/SME/R* are normalized
    to the 1080p 120-MB row width used by :class:`ModuleRates`.

    Memoized on the (frozen, hashable) measurement tuple: sweep scripts
    re-fit the same timing set for every configuration point.
    """
    return _fit_rates_cached(tuple(measurements))


@lru_cache(maxsize=256)
def _fit_rates_cached(measurements: tuple[ModuleTiming, ...]) -> ModuleRates:
    acc: dict[str, list[float]] = {"me": [], "int": [], "sme": [], "rstar": []}
    for m in measurements:
        per_row_us = m.seconds * 1e6 / m.rows
        if m.module == "me":
            scale = (m.sa_side / BASE_SA_SIDE) ** 2 * m.n_refs
            acc["me"].append(per_row_us / (m.mb_cols * scale))
        else:
            acc[m.module].append(per_row_us * (120 / m.mb_cols))
    missing = [k for k, v in acc.items() if not v]
    if missing:
        raise ValueError(f"no measurements for modules: {missing}")
    return ModuleRates(
        me_mb_us=sum(acc["me"]) / len(acc["me"]),
        int_row_us=sum(acc["int"]) / len(acc["int"]),
        sme_row_us=sum(acc["sme"]) / len(acc["sme"]),
        rstar_row_us=sum(acc["rstar"]) / len(acc["rstar"]),
    )


def measure_link(
    h2d_samples: list[tuple[float, float]],
    d2h_samples: list[tuple[float, float]],
    copy_engines: int = 1,
) -> LinkSpec:
    """Fit a link from ``(bytes, seconds)`` transfer samples per direction.

    Uses a simple two-point linear fit (latency + 1/bandwidth·bytes) when
    samples of different sizes are available, otherwise assumes the
    throughput includes latency.
    """

    def fit(samples: list[tuple[float, float]]) -> tuple[float, float]:
        if not samples:
            raise ValueError("need at least one transfer sample")
        if len(samples) == 1:
            nbytes, secs = samples[0]
            return 0.0, nbytes / secs
        xs = sorted(samples)
        (b0, t0), (b1, t1) = xs[0], xs[-1]
        if b1 == b0:
            return 0.0, b0 / t0
        inv_bw = (t1 - t0) / (b1 - b0)
        if inv_bw <= 0:
            # Noisy samples where the larger transfer was not slower:
            # fall back to the throughput of the largest sample.
            return 0.0, b1 / t1
        latency = max(0.0, t0 - b0 * inv_bw)
        return latency, 1.0 / inv_bw

    lat_h, bw_h = fit(h2d_samples)
    lat_d, bw_d = fit(d2h_samples)
    return LinkSpec(
        h2d_gbps=bw_h / 1e9,
        d2h_gbps=bw_d / 1e9,
        latency_s=(lat_h + lat_d) / 2,
        copy_engines=copy_engines,
    )


def calibrate_device(
    name: str,
    kind: str,
    measurements: list[ModuleTiming],
    link: LinkSpec | None = None,
) -> DeviceSpec:
    """Build a :class:`DeviceSpec` from measured timings."""
    return DeviceSpec(name=name, kind=kind, rates=fit_rates(measurements), link=link)


@lru_cache(maxsize=256)
def predict_single_device_fps(spec: DeviceSpec, cfg: CodecConfig) -> float:
    """Analytic fps estimate of the whole inter loop on one device.

    Ignores transfer overlap (adds CF upload serially for accelerators) —
    a quick sanity check that a calibrated spec reproduces the measured
    machine before running full simulations. Pure function of two frozen
    dataclasses, memoized (speedup/efficiency plots call it per device
    per sweep point).
    """
    r = spec.rates
    t = (
        r.me_row_s(cfg, cfg.num_ref_frames) * cfg.mb_rows
        + r.int_row_s(cfg) * cfg.mb_rows
        + r.sme_row_s(cfg) * cfg.mb_rows
        + r.rstar_frame_s(cfg)
    )
    if spec.is_accelerator:
        assert spec.link is not None
        t += spec.link.transfer_s(cfg.width * cfg.height, "h2d")
    return 1.0 / t
