"""Single-device reference encoder.

Runs the complete H.264/AVC inter loop of Fig. 1 sequentially on one
device: ME → INT → SME → MC → TQ → TQ⁻¹ → DBL → entropy accounting. The
FEVES framework must produce *bit-exact* identical reconstructions and bit
counts when it splits ME/INT/SME across devices — the integration tests in
``tests/core`` assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codec.config import CodecConfig
from repro.codec.deblock import BlockInfo, deblock_plane
from repro.codec.frames import YuvFrame
from repro.codec.gop import ReferenceStore
from repro.codec.interpolation import interpolate_plane
from repro.codec.intra import intra_encode_frame
from repro.codec.mc import motion_compensate
from repro.codec.me import motion_estimate_rows
from repro.codec.quality import frame_psnr
from repro.codec.entropy import get_coder
from repro.codec.residual import code_chroma_plane, code_luma_plane, reconstruct
from repro.codec.slices import dbl_skip_luma_rows
from repro.codec.sme import subpel_refine_rows
from repro.codec.syntax import FrameSyntax


@dataclass
class EncodedFrame:
    """Per-frame encoding outcome."""

    index: int
    is_intra: bool
    bits: int
    psnr: dict[str, float]
    recon: YuvFrame
    mode_histogram: dict[tuple[int, int], int] = field(default_factory=dict)
    syntax: FrameSyntax | None = None

    @property
    def bytes(self) -> float:
        return self.bits / 8.0


@dataclass
class ResidualData:
    """Everything the residual stage produces for one inter frame."""

    recon: YuvFrame          # prediction + reconstructed residual (pre-DBL)
    bits: int                # exact entropy-coder cost of all levels
    cnz4: np.ndarray         # luma 4×4 non-zero grid (DBL input)
    luma: "object"           # CodedPlane
    u: "object"              # CodedChromaPlane
    v: "object"              # CodedChromaPlane


def encode_inter_residual(
    cur: YuvFrame,
    pred: YuvFrame,
    qp: int,
) -> tuple[YuvFrame, int, np.ndarray]:
    """TQ/TQ⁻¹ the inter residual and reconstruct (shared with the framework).

    Returns ``(recon_frame_before_dbl, residual_bits, luma_cnz4_grid)``.
    Use :func:`encode_inter_residual_full` when the level arrays are needed
    (bitstream serialization).
    """
    data = encode_inter_residual_full(cur, pred, qp)
    return data.recon, data.bits, data.cnz4


def encode_inter_residual_full(
    cur: YuvFrame,
    pred: YuvFrame,
    qp: int,
    coder=None,
) -> ResidualData:
    """TQ/TQ⁻¹ the inter residual, keeping all syntax elements."""
    res_y = cur.y.astype(np.int64) - pred.y.astype(np.int64)
    res_u = cur.u.astype(np.int64) - pred.u.astype(np.int64)
    res_v = cur.v.astype(np.int64) - pred.v.astype(np.int64)
    coded_y = code_luma_plane(res_y, qp, intra=False, coder=coder)
    coded_u = code_chroma_plane(res_u, qp, intra=False, coder=coder)
    coded_v = code_chroma_plane(res_v, qp, intra=False, coder=coder)
    recon = YuvFrame(
        reconstruct(pred.y, coded_y.recon_residual),
        reconstruct(pred.u, coded_u.recon_residual),
        reconstruct(pred.v, coded_v.recon_residual),
    )
    bits = coded_y.bits + coded_u.bits + coded_v.bits
    return ResidualData(
        recon=recon, bits=bits, cnz4=coded_y.cnz4,
        luma=coded_y, u=coded_u, v=coded_v,
    )


def deblock_frame(
    recon: YuvFrame,
    mv4: np.ndarray,
    ref4: np.ndarray,
    cnz4: np.ndarray,
    intra4: np.ndarray,
    qp: int,
    skip_luma_rows: frozenset[int] = frozenset(),
) -> YuvFrame:
    """Apply DBL to all three planes (shared with the framework's R* path).

    ``skip_luma_rows`` carries the slice boundaries when cross-slice
    filtering is disabled (see :mod:`repro.codec.slices`).
    """
    info = BlockInfo(mv=mv4, ref=ref4, cnz=cnz4, intra=intra4)
    return YuvFrame(
        deblock_plane(recon.y, info, qp, chroma=False,
                      skip_luma_rows=skip_luma_rows),
        deblock_plane(recon.u, info, qp, chroma=True,
                      skip_luma_rows=skip_luma_rows),
        deblock_plane(recon.v, info, qp, chroma=True,
                      skip_luma_rows=skip_luma_rows),
    )


class ReferenceEncoder:
    """Sequential H.264/AVC inter-loop encoder (ground truth for FEVES)."""

    def __init__(
        self,
        cfg: CodecConfig,
        keep_syntax: bool = False,
        gop_size: int = 0,
        scene_cut_threshold: float | None = None,
    ) -> None:
        """``gop_size`` > 0 inserts an I frame every that many frames
        (periodic intra refresh); 0 codes a single leading I frame.

        ``scene_cut_threshold`` enables adaptive intra placement: when the
        mean absolute luma difference against the previous *source* frame
        exceeds the threshold (a scene change — inter prediction would be
        useless), the frame is coded intra and the GOP restarts.
        """
        if gop_size < 0:
            raise ValueError("gop_size must be >= 0")
        if scene_cut_threshold is not None and scene_cut_threshold <= 0:
            raise ValueError("scene_cut_threshold must be > 0")
        self.cfg = cfg
        self.keep_syntax = keep_syntax
        self.gop_size = gop_size
        self.scene_cut_threshold = scene_cut_threshold
        self.coder = get_coder(cfg.entropy_coder)
        self.store = ReferenceStore(max_refs=cfg.num_ref_frames)
        self._frame_index = 0
        self._prev_source_y: np.ndarray | None = None
        self.scene_cuts: list[int] = []

    def reset(self) -> None:
        """Forget all references; the next frame is coded intra."""
        self.store = ReferenceStore(max_refs=self.cfg.num_ref_frames)
        self._frame_index = 0

    def encode_frame(self, cur: YuvFrame) -> EncodedFrame:
        """Encode the next frame (I if first of the GOP, P otherwise)."""
        if cur.y.shape != (self.cfg.height, self.cfg.width):
            raise ValueError(
                f"frame {cur.y.shape} does not match config "
                f"{(self.cfg.height, self.cfg.width)}"
            )
        idx = self._frame_index
        self._frame_index += 1
        intra_now = idx == 0 or (self.gop_size > 0 and idx % self.gop_size == 0)
        if (
            not intra_now
            and self.scene_cut_threshold is not None
            and self._prev_source_y is not None
        ):
            diff = float(
                np.abs(
                    cur.y.astype(np.int32) - self._prev_source_y.astype(np.int32)
                ).mean()
            )
            if diff > self.scene_cut_threshold:
                intra_now = True
                self.scene_cuts.append(idx)
        self._prev_source_y = cur.y
        if intra_now:
            return self._encode_intra(cur, idx)
        return self._encode_inter(cur, idx)

    def _encode_intra(self, cur: YuvFrame, idx: int) -> EncodedFrame:
        result = intra_encode_frame(cur, self.cfg)
        h, w = cur.y.shape
        intra4 = np.ones((h // 4, w // 4), dtype=bool)
        mv4 = np.zeros((h // 4, w // 4, 2), dtype=np.int32)
        ref4 = np.full((h // 4, w // 4), -1, dtype=np.int32)
        recon = deblock_frame(
            result.recon, mv4, ref4, result.cnz4, intra4, self.cfg.qp_i,
            skip_luma_rows=dbl_skip_luma_rows(self.cfg),
        )
        self.store.reset(recon)
        syntax = FrameSyntax(is_intra=True, intra=result) if self.keep_syntax else None
        return EncodedFrame(
            index=idx,
            is_intra=True,
            bits=result.bits,
            psnr=frame_psnr(cur, recon),
            recon=recon,
            syntax=syntax,
        )

    def _encode_inter(self, cur: YuvFrame, idx: int) -> EncodedFrame:
        cfg = self.cfg
        qp = cfg.qp_p
        h, w = cur.y.shape
        mb_rows = h // 16

        # INT: interpolate the newest RF (produced by the previous frame).
        self.store.push_sf(interpolate_plane(self.store.frames[0].y))

        refs = self.store.active_refs()
        sfs = self.store.active_sfs()

        # ME over the full frame.
        me_field = motion_estimate_rows(
            cur.y, [r.y for r in refs], 0, mb_rows, cfg
        )
        # SME refinement.
        sme_field = subpel_refine_rows(cur.y, sfs, me_field, 0, mb_rows, cfg)
        # MC: mode decision + prediction.
        mc = motion_compensate(
            cur, sme_field, sfs, self.store.active_chroma(), cfg, qp
        )
        # TQ / TQ⁻¹ and reconstruction.
        res = encode_inter_residual_full(cur, mc.pred, qp, coder=self.coder)
        recon, res_bits, cnz4 = res.recon, res.bits, res.cnz4
        # DBL.
        intra4 = np.zeros((h // 4, w // 4), dtype=bool)
        recon = deblock_frame(
            recon, mc.mv4, mc.ref4, cnz4, intra4, qp,
            skip_luma_rows=dbl_skip_luma_rows(cfg),
        )

        self.store.push(recon)

        syntax = None
        if self.keep_syntax:
            syntax = FrameSyntax(
                is_intra=False,
                mode_idx=mc.mode_idx,
                mv4=mc.mv4,
                ref4=mc.ref4,
                mode_shapes=sme_field.mode_shapes,
                luma_levels=res.luma.levels,
                u_ac=res.u.ac_levels,
                u_dc=res.u.dc_levels,
                v_ac=res.v.ac_levels,
                v_dc=res.v.dc_levels,
            )

        hist: dict[tuple[int, int], int] = {}
        for mode_i, shape in enumerate(sme_field.mode_shapes):
            hist[shape] = int((mc.mode_idx == mode_i).sum())
        return EncodedFrame(
            index=idx,
            is_intra=False,
            bits=res_bits + mc.header_bits,
            psnr=frame_psnr(cur, recon),
            recon=recon,
            mode_histogram=hist,
            syntax=syntax,
        )

    def encode_sequence(self, frames: list[YuvFrame]) -> list[EncodedFrame]:
        """Encode a list of frames as one IPPP GOP."""
        return [self.encode_frame(f) for f in frames]
