"""Frame containers and macroblock geometry.

The framework distributes work in units of macroblock (MB) rows; this module
provides the geometry arithmetic (row ↔ pixel ranges) used by every codec
kernel and by the Data Access Management block when it sizes transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.config import MB_SIZE
from repro.util.validation import check_multiple_of


@dataclass(frozen=True)
class FrameGeometry:
    """Luma/chroma dimensions of a 4:2:0 frame, in pixels and MB units."""

    width: int
    height: int

    def __post_init__(self) -> None:
        check_multiple_of("width", self.width, MB_SIZE)
        check_multiple_of("height", self.height, MB_SIZE)

    @property
    def mb_cols(self) -> int:
        return self.width // MB_SIZE

    @property
    def mb_rows(self) -> int:
        return self.height // MB_SIZE

    @property
    def chroma_width(self) -> int:
        return self.width // 2

    @property
    def chroma_height(self) -> int:
        return self.height // 2

    def luma_row_slice(self, mb_row: int) -> slice:
        """Pixel-row slice of the luma plane covered by one MB row."""
        self._check_row(mb_row)
        return slice(mb_row * MB_SIZE, (mb_row + 1) * MB_SIZE)

    def luma_rows_slice(self, row0: int, nrows: int) -> slice:
        """Pixel-row slice covered by ``nrows`` MB rows starting at ``row0``."""
        self._check_row(row0)
        if nrows < 0 or row0 + nrows > self.mb_rows:
            raise ValueError(
                f"rows [{row0}, {row0 + nrows}) out of range 0..{self.mb_rows}"
            )
        return slice(row0 * MB_SIZE, (row0 + nrows) * MB_SIZE)

    def chroma_rows_slice(self, row0: int, nrows: int) -> slice:
        """Chroma-plane pixel-row slice for ``nrows`` MB rows (4:2:0 ⇒ 8 px/row)."""
        lu = self.luma_rows_slice(row0, nrows)
        return slice(lu.start // 2, lu.stop // 2)

    def _check_row(self, mb_row: int) -> None:
        if not 0 <= mb_row < self.mb_rows:
            raise ValueError(f"mb_row {mb_row} out of range 0..{self.mb_rows - 1}")


@dataclass
class YuvFrame:
    """One 4:2:0 frame: uint8 planes ``y`` (H×W), ``u`` and ``v`` (H/2×W/2)."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        for name, plane in (("y", self.y), ("u", self.u), ("v", self.v)):
            if plane.dtype != np.uint8:
                raise TypeError(f"plane {name} must be uint8, got {plane.dtype}")
            if plane.ndim != 2:
                raise ValueError(f"plane {name} must be 2-D, got shape {plane.shape}")
        h, w = self.y.shape
        if self.u.shape != (h // 2, w // 2) or self.v.shape != (h // 2, w // 2):
            raise ValueError(
                "chroma planes must be half-size of luma: "
                f"y={self.y.shape} u={self.u.shape} v={self.v.shape}"
            )

    @property
    def geometry(self) -> FrameGeometry:
        h, w = self.y.shape
        return FrameGeometry(width=w, height=h)

    def copy(self) -> "YuvFrame":
        return YuvFrame(self.y.copy(), self.u.copy(), self.v.copy())

    @classmethod
    def blank(cls, width: int, height: int, value: int = 128) -> "YuvFrame":
        """Uniform frame (useful as an initial reference and in tests)."""
        return cls(
            y=np.full((height, width), value, dtype=np.uint8),
            u=np.full((height // 2, width // 2), value, dtype=np.uint8),
            v=np.full((height // 2, width // 2), value, dtype=np.uint8),
        )


def pad_plane(plane: np.ndarray, pad: int) -> np.ndarray:
    """Replicate-pad a plane by ``pad`` pixels on every side.

    H.264 permits unrestricted motion vectors: samples outside the picture
    are obtained by edge replication. FSBM and interpolation both search/
    filter over the padded plane so that boundary MBs see the full SA.
    """
    if pad < 0:
        raise ValueError(f"pad must be >= 0, got {pad}")
    if pad == 0:
        return plane.copy()
    return np.pad(plane, pad, mode="edge")


def mb_view(plane: np.ndarray, mb_row: int, mb_col: int, size: int = MB_SIZE) -> np.ndarray:
    """Read-only view of one macroblock from a plane."""
    r0, c0 = mb_row * size, mb_col * size
    if r0 + size > plane.shape[0] or c0 + size > plane.shape[1]:
        raise ValueError(
            f"MB ({mb_row},{mb_col}) size {size} exceeds plane {plane.shape}"
        )
    return plane[r0 : r0 + size, c0 : c0 + size]
