"""Bitstream syntax: frame-level serialization of all coded elements.

Defines the repository's concrete bitstream (an H.264-like but simplified
layout, matching the CAVLC-lite entropy coder): a sequence header followed
by per-frame packets. Every syntax element round-trips exactly, and the
standalone decoder (:mod:`repro.codec.decoder`) reconstructs frames
bit-identically to the encoder's reconstruction — the closed-loop,
drift-free property of a correct hybrid codec.

Packet layout
-------------
Sequence header: magic ``FEVS``, dimensions (in MBs), QPs, reference count,
search range, and the enabled partition-mode list (the P-frame ``mode_idx``
alphabet).

I frame: ``1`` flag bit, then per MB in raster order: 16 luma level blocks,
U DC group + 4 U AC blocks, V DC group + 4 V AC blocks. The DC predictors
are derived by the decoder from its own reconstruction.

P frame: ``0`` flag bit, then per MB in raster order: ``ue(mode_idx)`` and,
per partition, ``ue(ref)`` + MVD (``se``×2, predicted from the decoded MV
of the left MB's top-right 4×4 cell); then all luma level blocks in plane
raster order, then U DC groups / U AC blocks, then V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import MB_SIZE, PARTITION_MODES, CodecConfig
from repro.codec.entropy import (
    get_coder,
    read_se,
    read_ue,
    write_se,
    write_ue,
)
from repro.codec.intra import IntraFrameResult, mpm_for_block
from repro.codec.intra4 import I4_DC, decode_mode, encode_mode
from repro.codec.slices import slice_start_block_rows
from repro.codec.partitions import get_mode

#: Stream magic ("FEVS").
MAGIC = 0x46455653


@dataclass
class FrameSyntax:
    """All syntax elements of one encoded frame (producer side)."""

    is_intra: bool
    intra: IntraFrameResult | None = None
    mode_idx: np.ndarray | None = None
    mv4: np.ndarray | None = None
    ref4: np.ndarray | None = None
    mode_shapes: tuple[tuple[int, int], ...] = ()
    luma_levels: np.ndarray | None = None       # (n_blocks, 4, 4)
    u_ac: np.ndarray | None = None              # (n_blocks_c, 4, 4)
    u_dc: np.ndarray | None = None              # (n_mb, 2, 2)
    v_ac: np.ndarray | None = None
    v_dc: np.ndarray | None = None


def write_sequence_header(w: BitWriter, cfg: CodecConfig) -> None:
    """Serialize the stream-level parameters."""
    w.write_bits(MAGIC, 32)
    write_ue(w, cfg.width // MB_SIZE - 1)
    write_ue(w, cfg.height // MB_SIZE - 1)
    write_ue(w, cfg.qp_i)
    write_ue(w, cfg.qp_p)
    write_ue(w, cfg.num_ref_frames - 1)
    write_ue(w, cfg.search_range - 1)
    write_ue(w, len(cfg.enabled_partitions) - 1)
    for shape in cfg.enabled_partitions:
        write_ue(w, PARTITION_MODES.index(shape))
    write_ue(w, 0 if cfg.entropy_coder == "lite" else 1)
    write_ue(w, cfg.num_slices - 1)
    w.write_bit(1 if cfg.deblock_across_slices else 0)


def read_sequence_header(r: BitReader) -> CodecConfig:
    """Parse the stream-level parameters back into a :class:`CodecConfig`."""
    if r.read_bits(32) != MAGIC:
        raise ValueError("not a FEVS stream (bad magic)")
    width = (read_ue(r) + 1) * MB_SIZE
    height = (read_ue(r) + 1) * MB_SIZE
    qp_i = read_ue(r)
    qp_p = read_ue(r)
    num_refs = read_ue(r) + 1
    search_range = read_ue(r) + 1
    n_modes = read_ue(r) + 1
    shapes = tuple(PARTITION_MODES[read_ue(r)] for _ in range(n_modes))
    coder = ("lite", "cavlc")[read_ue(r)]
    num_slices = read_ue(r) + 1
    deblock_across = r.read_bit() == 1
    return CodecConfig(
        width=width,
        height=height,
        qp_i=qp_i,
        qp_p=qp_p,
        num_ref_frames=num_refs,
        search_range=search_range,
        enabled_partitions=shapes,
        entropy_coder=coder,
        num_slices=num_slices,
        deblock_across_slices=deblock_across,
    )


def _mv_pred_from_grid(mv4: np.ndarray, mb_row: int, mb_col: int) -> np.ndarray:
    """Decodable MV predictor: left MB's top-right 4×4 cell (0 at column 0)."""
    if mb_col == 0:
        return np.zeros(2, dtype=np.int64)
    return mv4[4 * mb_row, 4 * mb_col - 1].astype(np.int64)


def write_frame(
    w: BitWriter, syn: FrameSyntax, coder=None, cfg: CodecConfig | None = None
) -> None:
    """Serialize one frame's syntax (``coder`` defaults to CAVLC-lite)."""
    coder = coder or get_coder("lite")
    w.write_bit(1 if syn.is_intra else 0)
    if syn.is_intra:
        _write_intra(w, syn, coder, cfg)
    else:
        _write_inter(w, syn, coder)


def _write_intra(
    w: BitWriter, syn: FrameSyntax, coder, cfg: CodecConfig | None = None
) -> None:
    intra = syn.intra
    if intra is None or intra.luma_levels is None:
        raise ValueError("intra frame was encoded without keep_syntax")
    assert intra.luma_modes is not None and intra.chroma_modes is not None
    assert intra.mb_types is not None and intra.i4_modes is not None
    mb_rows, mb_cols = intra.mb_types.shape
    grid_starts = (
        slice_start_block_rows(cfg) if cfg is not None else frozenset((0,))
    )
    lmodes = intra.luma_modes.reshape(-1)
    cmodes = intra.chroma_modes.reshape(-1)
    types = intra.mb_types.reshape(-1)
    # Replay the Intra_4x4 MPM context exactly as the decoder will.
    grid = np.full((mb_rows * 4, mb_cols * 4), I4_DC, dtype=np.int32)
    for mb in range(mb_rows * mb_cols):
        mr, mc = divmod(mb, mb_cols)
        w.write_bit(int(types[mb]))
        if types[mb] == 0:
            write_ue(w, int(lmodes[mb]))
            grid[4 * mr : 4 * mr + 4, 4 * mc : 4 * mc + 4] = I4_DC
        else:
            for blk in range(16):
                by, bx = divmod(blk, 4)
                gy, gx = 4 * mr + by, 4 * mc + bx
                mpm = mpm_for_block(grid, gy, gx, grid_starts)
                mode = int(intra.i4_modes[mb, blk])
                encode_mode(w, mode, mpm)
                grid[gy, gx] = mode
        write_ue(w, int(cmodes[mb]))
        for blk in intra.luma_levels[mb]:
            coder.write_block(w, blk)
        for dc, ac in ((intra.u_dc, intra.u_ac), (intra.v_dc, intra.v_ac)):
            assert dc is not None and ac is not None
            coder.write_chroma_dc(w, dc[mb])
            for blk in ac[mb]:
                coder.write_block(w, blk)


def _write_inter(w: BitWriter, syn: FrameSyntax, coder) -> None:
    assert syn.mode_idx is not None and syn.mv4 is not None
    assert syn.ref4 is not None and syn.luma_levels is not None
    mb_rows, mb_cols = syn.mode_idx.shape
    for r in range(mb_rows):
        for c in range(mb_cols):
            mode_i = int(syn.mode_idx[r, c])
            write_ue(w, mode_i)
            mode = get_mode(syn.mode_shapes[mode_i])
            pred = _mv_pred_from_grid(syn.mv4, r, c)
            for oy, ox in mode.origins:
                gy, gx = (16 * r + int(oy)) // 4, (16 * c + int(ox)) // 4
                qmv = syn.mv4[gy, gx].astype(np.int64)
                write_ue(w, int(syn.ref4[gy, gx]))
                write_se(w, int(qmv[0] - pred[0]))
                write_se(w, int(qmv[1] - pred[1]))
    for blk in syn.luma_levels:
        coder.write_block(w, blk)
    for dc_arr, ac_arr in ((syn.u_dc, syn.u_ac), (syn.v_dc, syn.v_ac)):
        assert dc_arr is not None and ac_arr is not None
        for dc in dc_arr:
            coder.write_chroma_dc(w, dc)
        for blk in ac_arr:
            coder.write_block(w, blk)


@dataclass
class ParsedInterFrame:
    """Decoder-side view of a P frame's syntax."""

    mode_idx: np.ndarray
    mv4: np.ndarray
    ref4: np.ndarray
    luma_levels: np.ndarray
    u_ac: np.ndarray
    u_dc: np.ndarray
    v_ac: np.ndarray
    v_dc: np.ndarray


@dataclass
class ParsedIntraFrame:
    """Decoder-side view of an I frame's syntax."""

    luma_levels: np.ndarray   # (n_mb, 16, 4, 4)
    u_ac: np.ndarray          # (n_mb, 4, 4, 4)
    u_dc: np.ndarray          # (n_mb, 2, 2)
    v_ac: np.ndarray
    v_dc: np.ndarray
    luma_modes: np.ndarray | None = None    # (n_mb,) I16 modes
    chroma_modes: np.ndarray | None = None
    mb_types: np.ndarray | None = None      # (n_mb,) 0=I16, 1=I4
    i4_modes: np.ndarray | None = None      # (n_mb, 16)


def read_frame(
    r: BitReader, cfg: CodecConfig
) -> tuple[bool, ParsedIntraFrame | ParsedInterFrame]:
    """Parse one frame packet. Returns ``(is_intra, parsed)``."""
    coder = get_coder(cfg.entropy_coder)
    is_intra = r.read_bit() == 1
    if is_intra:
        return True, _read_intra(r, cfg, coder)
    return False, _read_inter(r, cfg, coder)


def _read_intra(r: BitReader, cfg: CodecConfig, coder) -> ParsedIntraFrame:
    n_mb = cfg.mb_rows * cfg.mb_cols
    luma = np.zeros((n_mb, 16, 4, 4), dtype=np.int32)
    u_ac = np.zeros((n_mb, 4, 4, 4), dtype=np.int32)
    u_dc = np.zeros((n_mb, 2, 2), dtype=np.int32)
    v_ac = np.zeros((n_mb, 4, 4, 4), dtype=np.int32)
    v_dc = np.zeros((n_mb, 2, 2), dtype=np.int32)
    lmodes = np.zeros(n_mb, dtype=np.int32)
    cmodes = np.zeros(n_mb, dtype=np.int32)
    types = np.zeros(n_mb, dtype=np.int32)
    i4 = np.zeros((n_mb, 16), dtype=np.int32)
    mb_cols = cfg.mb_cols
    grid = np.full((cfg.mb_rows * 4, mb_cols * 4), I4_DC, dtype=np.int32)
    grid_starts = slice_start_block_rows(cfg)
    for mb in range(n_mb):
        mr, mc = divmod(mb, mb_cols)
        types[mb] = r.read_bit()
        if types[mb] == 0:
            lmodes[mb] = read_ue(r)
            if lmodes[mb] > 3:
                raise ValueError("invalid intra prediction mode")
            grid[4 * mr : 4 * mr + 4, 4 * mc : 4 * mc + 4] = I4_DC
        else:
            for blk in range(16):
                by, bx = divmod(blk, 4)
                gy, gx = 4 * mr + by, 4 * mc + bx
                mpm = mpm_for_block(grid, gy, gx, grid_starts)
                mode = decode_mode(r, mpm)
                i4[mb, blk] = mode
                grid[gy, gx] = mode
        cmodes[mb] = read_ue(r)
        if cmodes[mb] > 3:
            raise ValueError("invalid intra prediction mode")
        for b in range(16):
            luma[mb, b] = coder.read_block(r)
        for dc, ac in ((u_dc, u_ac), (v_dc, v_ac)):
            dc[mb] = coder.read_chroma_dc(r)
            for b in range(4):
                ac[mb, b] = coder.read_block(r)
    return ParsedIntraFrame(
        luma, u_ac, u_dc, v_ac, v_dc, lmodes, cmodes, types, i4
    )


def _read_inter(r: BitReader, cfg: CodecConfig, coder) -> ParsedInterFrame:
    mb_rows, mb_cols = cfg.mb_rows, cfg.mb_cols
    h, w = cfg.height, cfg.width
    shapes = cfg.enabled_partitions
    mode_idx = np.zeros((mb_rows, mb_cols), dtype=np.int32)
    mv4 = np.zeros((h // 4, w // 4, 2), dtype=np.int32)
    ref4 = np.zeros((h // 4, w // 4), dtype=np.int32)
    for mr in range(mb_rows):
        for mc in range(mb_cols):
            mode_i = read_ue(r)
            if mode_i >= len(shapes):
                raise ValueError(f"invalid mode index {mode_i}")
            mode_idx[mr, mc] = mode_i
            mode = get_mode(shapes[mode_i])
            pred = _mv_pred_from_grid(mv4, mr, mc)
            bh, bw = mode.shape
            for oy, ox in mode.origins:
                ref = read_ue(r)
                if ref >= 16:
                    raise ValueError(f"invalid reference index {ref}")
                qdy = read_se(r) + int(pred[0])
                qdx = read_se(r) + int(pred[1])
                if abs(qdy) > 1 << 16 or abs(qdx) > 1 << 16:
                    raise ValueError("motion vector out of range")
                gy, gx = (16 * mr + int(oy)) // 4, (16 * mc + int(ox)) // 4
                mv4[gy : gy + bh // 4, gx : gx + bw // 4] = (qdy, qdx)
                ref4[gy : gy + bh // 4, gx : gx + bw // 4] = ref
    n_luma = (h // 4) * (w // 4)
    luma = np.zeros((n_luma, 4, 4), dtype=np.int32)
    for b in range(n_luma):
        luma[b] = coder.read_block(r)
    n_cblk = (h // 8) * (w // 8)
    n_mb = mb_rows * mb_cols
    out = {}
    for plane in ("u", "v"):
        dc = np.zeros((n_mb, 2, 2), dtype=np.int32)
        for mb in range(n_mb):
            dc[mb] = coder.read_chroma_dc(r)
        ac = np.zeros((n_cblk, 4, 4), dtype=np.int32)
        for b in range(n_cblk):
            ac[b] = coder.read_block(r)
        out[plane] = (ac, dc)
    return ParsedInterFrame(
        mode_idx=mode_idx,
        mv4=mv4,
        ref4=ref4,
        luma_levels=luma,
        u_ac=out["u"][0],
        u_dc=out["u"][1],
        v_ac=out["v"][0],
        v_dc=out["v"][1],
    )
