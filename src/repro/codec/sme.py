"""SME: Sub-pixel Motion Estimation.

Refines the full-pel MVs produced by ME to quarter-pel accuracy using the
interpolated SF (paper §II: "By relying on the MVs from the ME and the SFs
from the INT, the SME is applied to further refine the MVs"). The standard
two-step refinement is used: the 8 half-pel neighbours of the full-pel
position are evaluated first, then the 8 quarter-pel neighbours of the best
half-pel position. Distortion is SAD against the current frame.

Like ME, the kernel processes MB rows (the ``s`` distribution vector of
Algorithm 2) and is vectorized across all sub-partitions of a row via
fancy-indexed SF gathers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.me import MotionField
from repro.codec.partitions import get_mode
from repro.codec.satd import block_metric

def _ring(step: int) -> list[tuple[int, int]]:
    """Candidate offsets: the current position first, then its 8 neighbours.

    Centre-first ordering makes ties resolve toward the smaller refinement,
    keeping the search deterministic and bias-free on flat content.
    """
    offs = [(dy, dx) for dy in (-step, 0, step) for dx in (-step, 0, step)]
    offs.remove((0, 0))
    return [(0, 0)] + offs


#: Stage offsets in quarter-pel units: half-pel ring then quarter-pel ring.
_HALF_RING = _ring(2)
_QUARTER_RING = _ring(1)


@dataclass
class SubpelField:
    """Quarter-pel motion data for a band of MB rows.

    ``qmvs[shape][r, c, p]`` is the refined ``(qdy, qdx)`` displacement in
    quarter-pel units relative to the co-located position; ``refs`` carries
    over the ME reference choice and ``sads`` the refined distortion.
    """

    row0: int
    nrows: int
    mb_cols: int
    mode_shapes: tuple[tuple[int, int], ...]
    qmvs: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    refs: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    sads: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)

    @staticmethod
    def merge(parts: list["SubpelField"]) -> "SubpelField":
        """Stitch contiguous row bands (cross-device reassembly)."""
        if not parts:
            raise ValueError("nothing to merge")
        parts = sorted(parts, key=lambda p: p.row0)
        row = parts[0].row0
        for p in parts:
            if p.row0 != row:
                raise ValueError(f"bands not contiguous at row {row} (got {p.row0})")
            row += p.nrows
        first = parts[0]
        out = SubpelField(
            row0=first.row0,
            nrows=sum(p.nrows for p in parts),
            mb_cols=first.mb_cols,
            mode_shapes=first.mode_shapes,
        )
        for shape in first.mode_shapes:
            out.qmvs[shape] = np.concatenate([p.qmvs[shape] for p in parts], axis=0)
            out.refs[shape] = np.concatenate([p.refs[shape] for p in parts], axis=0)
            out.sads[shape] = np.concatenate([p.sads[shape] for p in parts], axis=0)
        return out


def _gather_blocks(
    sf: np.ndarray, qys: np.ndarray, qxs: np.ndarray, bh: int, bw: int
) -> np.ndarray:
    """Gather ``(n, bh, bw)`` pixel blocks at quarter-pel positions."""
    rows = qys[:, None] + 4 * np.arange(bh, dtype=np.int64)[None, :]
    cols = qxs[:, None] + 4 * np.arange(bw, dtype=np.int64)[None, :]
    return sf[rows[:, :, None], cols[:, None, :]]


def _block_sads(cur_blocks: np.ndarray, cand_blocks: np.ndarray) -> np.ndarray:
    """SADs between matching ``(n, bh, bw)`` block stacks."""
    diff = cur_blocks.astype(np.int32) - cand_blocks.astype(np.int32)
    return np.abs(diff).sum(axis=(1, 2)).astype(np.int64)


def subpel_refine_rows(
    cur_y: np.ndarray,
    sfs: list[np.ndarray],
    me_field: MotionField,
    row0: int,
    nrows: int,
    cfg: CodecConfig,
) -> SubpelField:
    """Refine MVs to quarter-pel for MB rows ``[row0, row0 + nrows)``.

    Parameters
    ----------
    cur_y:
        Current luma plane ``(H, W)``.
    sfs:
        One SF per reference frame (list index = reference index), each of
        shape ``(4H, 4W)`` as produced by :mod:`repro.codec.interpolation`.
    me_field:
        Full-frame (or at least band-covering) ME output whose ``row0``/
        ``nrows`` span includes the requested band.
    row0, nrows:
        Band of MB rows to refine (the framework's ``s`` distribution).

    Returns
    -------
    :class:`SubpelField` for the band. When ``cfg.subpel`` is false the
    full-pel MVs are returned scaled to quarter-pel units with their ME SADs
    (ablation path).
    """
    h, w = cur_y.shape
    mb_cols = w // MB_SIZE
    if row0 < me_field.row0 or row0 + nrows > me_field.row0 + me_field.nrows:
        raise ValueError(
            f"SME band [{row0},{row0 + nrows}) not covered by ME band "
            f"[{me_field.row0},{me_field.row0 + me_field.nrows})"
        )
    out = SubpelField(
        row0=row0, nrows=nrows, mb_cols=mb_cols, mode_shapes=me_field.mode_shapes
    )
    for shape in me_field.mode_shapes:
        nparts = get_mode(shape).nparts
        out.qmvs[shape] = np.zeros((nrows, mb_cols, nparts, 2), dtype=np.int32)
        out.refs[shape] = np.zeros((nrows, mb_cols, nparts), dtype=np.int32)
        out.sads[shape] = np.zeros((nrows, mb_cols, nparts), dtype=np.int64)
    if nrows == 0:
        return out

    n_refs = len(sfs)
    for shape in me_field.mode_shapes:
        mode = get_mode(shape)
        bh, bw = shape
        src = slice(row0 - me_field.row0, row0 - me_field.row0 + nrows)
        mvs = me_field.mvs[shape][src]      # (nrows, mbc, nparts, 2)
        refs = me_field.refs[shape][src]
        sads = me_field.sads[shape][src]
        out.refs[shape][:] = refs

        # Flatten every sub-partition instance of the band.
        rr, cc, pp = np.meshgrid(
            np.arange(nrows), np.arange(mb_cols), np.arange(mode.nparts),
            indexing="ij",
        )
        rr, cc, pp = rr.ravel(), cc.ravel(), pp.ravel()
        oy = mode.origins[pp, 0]
        ox = mode.origins[pp, 1]
        base_y = (row0 + rr) * MB_SIZE + oy          # partition origin, pixels
        base_x = cc * MB_SIZE + ox
        cur_blocks = _stack_cur_blocks(cur_y, base_y, base_x, bh, bw)

        flat_mv = mvs.reshape(-1, 2)
        flat_ref = refs.ravel()
        # Start at the full-pel position in quarter units.
        best_q = 4 * flat_mv.astype(np.int64)
        best_sad = sads.ravel().astype(np.int64).copy()

        if cfg.subpel:
            metric = block_metric(cfg.subpel_metric)
            for ring in (_HALF_RING, _QUARTER_RING):
                best_q, best_sad = _evaluate_ring(
                    ring, best_q, cur_blocks, sfs, flat_ref,
                    base_y, base_x, bh, bw, h, w, n_refs, metric,
                )

        out.qmvs[shape][rr, cc, pp] = best_q.astype(np.int32)
        out.sads[shape][rr, cc, pp] = best_sad
    return out


def _stack_cur_blocks(
    cur_y: np.ndarray, base_y: np.ndarray, base_x: np.ndarray, bh: int, bw: int
) -> np.ndarray:
    """Gather the current-frame blocks of every sub-partition instance."""
    rows = base_y[:, None] + np.arange(bh, dtype=np.int64)[None, :]
    cols = base_x[:, None] + np.arange(bw, dtype=np.int64)[None, :]
    return cur_y[rows[:, :, None], cols[:, None, :]]


def _evaluate_ring(
    ring: list[tuple[int, int]],
    centre_q: np.ndarray,
    cur_blocks: np.ndarray,
    sfs: list[np.ndarray],
    flat_ref: np.ndarray,
    base_y: np.ndarray,
    base_x: np.ndarray,
    bh: int,
    bw: int,
    height: int,
    width: int,
    n_refs: int,
    metric=_block_sads,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one candidate ring around ``centre_q``; return best (qmv, sad).

    Every candidate — including the centre — is scored on SF samples after
    border clamping, so the SAD recorded for the winner always matches the
    prediction MC will later build. Strict-improvement updates plus
    centre-first ring order make ties resolve toward the smaller offset.
    """
    n = centre_q.shape[0]
    best_q = np.empty_like(centre_q)
    best = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    first = True
    for qdy_off, qdx_off in ring:
        qy = 4 * base_y + centre_q[:, 0] + qdy_off
        qx = 4 * base_x + centre_q[:, 1] + qdx_off
        # Clamp block positions inside the SF (restricted-MV border policy).
        qy = np.clip(qy, 0, 4 * (height - bh))
        qx = np.clip(qx, 0, 4 * (width - bw))
        sad_k = np.empty(n, dtype=np.int64)
        for ref in range(n_refs):
            mask = flat_ref == ref
            if not mask.any():
                continue
            blocks = _gather_blocks(sfs[ref], qy[mask], qx[mask], bh, bw)
            sad_k[mask] = metric(cur_blocks[mask], blocks)
        eff_qdy = qy - 4 * base_y  # effective displacement after clamping
        eff_qdx = qx - 4 * base_x
        better = sad_k < best if not first else np.ones(n, dtype=bool)
        best[better] = sad_k[better]
        best_q[better, 0] = eff_qdy[better]
        best_q[better, 1] = eff_qdx[better]
        first = False
    return best_q, best
