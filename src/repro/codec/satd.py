"""SATD: sum of absolute Hadamard-transformed differences.

The distortion metric real encoders (JM, x264) use for sub-pel refinement
and mode decisions: transform the residual with a 4×4 Hadamard and sum the
absolute coefficients. Because the transform concentrates the energy the
way the codec's DCT will, SATD predicts the actual coding cost better than
plain SAD — at ~3× the arithmetic. Select with
``CodecConfig(subpel_metric="satd")``; the paper's kernels (and our
default) use SAD.
"""

from __future__ import annotations

import numpy as np

#: Unnormalized 4×4 Hadamard matrix.
H4 = np.array(
    [
        [1, 1, 1, 1],
        [1, 1, -1, -1],
        [1, -1, -1, 1],
        [1, -1, 1, -1],
    ],
    dtype=np.int64,
)


def satd_blocks(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """SATD between matching ``(n, bh, bw)`` uint8 block stacks.

    ``bh``/``bw`` must be multiples of 4; the blocks are tiled into 4×4
    cells, each transformed with ``H4 · D · H4ᵀ``, and the absolute
    coefficient sums are halved (the JM normalization) and accumulated.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    n, bh, bw = a.shape
    if bh % 4 or bw % 4:
        raise ValueError(f"block {bh}x{bw} not 4x4-tileable")
    diff = a.astype(np.int64) - b.astype(np.int64)
    tiles = (
        diff.reshape(n, bh // 4, 4, bw // 4, 4)
        .transpose(0, 1, 3, 2, 4)
        .reshape(-1, 4, 4)
    )
    coeffs = np.einsum("ij,njk,lk->nil", H4, tiles, H4)
    per_tile = np.abs(coeffs).sum(axis=(1, 2)) // 2
    return per_tile.reshape(n, -1).sum(axis=1)


def sad_blocks(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain SAD between matching ``(n, bh, bw)`` block stacks."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = a.astype(np.int32) - b.astype(np.int32)
    return np.abs(diff).sum(axis=(1, 2)).astype(np.int64)


def block_metric(name: str):
    """Distortion-function factory: ``"sad"`` or ``"satd"``."""
    if name == "sad":
        return sad_blocks
    if name == "satd":
        return satd_blocks
    raise ValueError(f"unknown metric {name!r}; expected sad|satd")
