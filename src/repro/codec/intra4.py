"""Intra_4x4 prediction: per-block directional modes.

The H.264 tool that makes I frames competitive on detailed content: each
4×4 luma block picks its own prediction direction from already-
reconstructed neighbour samples, and the chosen mode is signalled against
the *most probable mode* (the minimum of the left and top blocks' modes —
1 bit when the prediction hits, a fixed-length remainder otherwise, the
spec's exact signalling structure).

Five of the nine spec modes are implemented (documented in DESIGN.md):
``0=V, 1=H, 2=DC, 3=DDL (diagonal down-left), 4=DDR (diagonal down-right)``
— the remaining four diagonals follow the same machinery and are omitted.
Encoder and decoder share every formula, so the closed decoding loop stays
bit-exact.

Block scan order is raster within the MB (blocks above and to the left are
always reconstructed first); the top-right neighbour is available unless
the block sits in the last block-column of its MB with blocks above still
undecoded — the same reachability the spec's z-scan rules encode.
"""

from __future__ import annotations

import numpy as np

#: Implemented Intra_4x4 modes.
I4_V, I4_H, I4_DC, I4_DDL, I4_DDR = 0, 1, 2, 3, 4
N_I4_MODES = 5
I4_MODE_NAMES = ("V", "H", "DC", "DDL", "DDR")

#: Bits to signal a non-MPM mode (alphabet of N_I4_MODES − 1 remainders).
REM_BITS = 2


def neighbours4(
    recon: np.ndarray, r0: int, c0: int, has_top: bool | None = None
) -> tuple[np.ndarray | None, np.ndarray | None, int | None, np.ndarray | None]:
    """Collect (top[4], left[4], corner, top_right[4]) for a 4×4 block.

    ``None`` marks unavailable sample groups. ``top_right`` falls back to
    replicating ``top[3]`` when the diagonal samples are not decodable yet
    (spec behaviour), and is ``None`` only when ``top`` itself is.
    """
    h, w = recon.shape
    if has_top is None:
        has_top = r0 > 0
    top = recon[r0 - 1, c0 : c0 + 4].astype(np.int64) if has_top else None
    left = recon[r0 : r0 + 4, c0 - 1].astype(np.int64) if c0 > 0 else None
    corner = int(recon[r0 - 1, c0 - 1]) if (has_top and c0 > 0) else None
    top_right: np.ndarray | None = None
    if top is not None:
        tr_decodable = (
            c0 + 8 <= w and (r0 % 16 == 0 or c0 % 16 != 12)
        )
        if tr_decodable:
            top_right = recon[r0 - 1, c0 + 4 : c0 + 8].astype(np.int64)
        else:
            top_right = np.full(4, int(top[3]), dtype=np.int64)
    return top, left, corner, top_right


def available_modes4(top, left, corner) -> list[int]:
    """Modes usable with the given neighbour availability (DC first)."""
    modes = [I4_DC]
    if top is not None:
        modes.append(I4_V)
        modes.append(I4_DDL)
    if left is not None:
        modes.append(I4_H)
    if top is not None and left is not None and corner is not None:
        modes.append(I4_DDR)
    return modes


def predict4(
    mode: int,
    top: np.ndarray | None,
    left: np.ndarray | None,
    corner: int | None,
    top_right: np.ndarray | None,
) -> np.ndarray:
    """Build the 4×4 prediction for one mode (int32, clipped)."""
    if mode == I4_DC:
        parts = [p for p in (top, left) if p is not None]
        if not parts:
            return np.full((4, 4), 128, dtype=np.int32)
        samples = np.concatenate(parts)
        dc = int((samples.sum() + len(samples) // 2) // len(samples))
        return np.full((4, 4), dc, dtype=np.int32)
    if mode == I4_V:
        if top is None:
            raise ValueError("V needs top samples")
        return np.broadcast_to(top.astype(np.int32), (4, 4)).copy()
    if mode == I4_H:
        if left is None:
            raise ValueError("H needs left samples")
        return np.broadcast_to(left.astype(np.int32)[:, None], (4, 4)).copy()
    if mode == I4_DDL:
        if top is None or top_right is None:
            raise ValueError("DDL needs top + top-right samples")
        t = np.concatenate([top, top_right])  # t[0..7]
        pred = np.zeros((4, 4), dtype=np.int32)
        for y in range(4):
            for x in range(4):
                if x == 3 and y == 3:
                    pred[y, x] = (t[6] + 3 * t[7] + 2) >> 2
                else:
                    pred[y, x] = (t[x + y] + 2 * t[x + y + 1] + t[x + y + 2] + 2) >> 2
        return pred
    if mode == I4_DDR:
        if top is None or left is None or corner is None:
            raise ValueError("DDR needs top + left + corner samples")
        pred = np.zeros((4, 4), dtype=np.int32)
        for y in range(4):
            for x in range(4):
                if x > y:
                    k = x - y
                    a = corner if k - 2 < 0 else top[k - 2]
                    b = corner if k - 1 < 0 else top[k - 1]
                    pred[y, x] = (a + 2 * b + top[k] + 2) >> 2
                elif x < y:
                    k = y - x
                    a = corner if k - 2 < 0 else left[k - 2]
                    b = corner if k - 1 < 0 else left[k - 1]
                    pred[y, x] = (a + 2 * b + left[k] + 2) >> 2
                else:
                    pred[y, x] = (top[0] + 2 * corner + left[0] + 2) >> 2
        return pred
    raise ValueError(f"unknown Intra_4x4 mode {mode}")


def most_probable_mode(left_mode: int | None, top_mode: int | None) -> int:
    """Spec MPM rule: min of the neighbour modes, DC when either missing."""
    if left_mode is None or top_mode is None:
        return I4_DC
    return min(left_mode, top_mode)


def mode_signal_bits(mode: int, mpm: int) -> int:
    """Cost of signalling ``mode`` against the most probable mode."""
    return 1 if mode == mpm else 1 + REM_BITS


def encode_mode(w, mode: int, mpm: int) -> None:
    """Write the MPM-predicted mode signal."""
    if mode == mpm:
        w.write_bit(1)
        return
    w.write_bit(0)
    rem = mode if mode < mpm else mode - 1
    w.write_bits(rem, REM_BITS)


def decode_mode(r, mpm: int) -> int:
    """Read the MPM-predicted mode signal."""
    if r.read_bit() == 1:
        return mpm
    rem = r.read_bits(REM_BITS)
    mode = rem if rem < mpm else rem + 1
    if mode >= N_I4_MODES:
        raise ValueError(f"invalid Intra_4x4 mode {mode}")
    return mode


def choose_mode4(
    cur_block: np.ndarray,
    recon: np.ndarray,
    r0: int,
    c0: int,
    mpm: int,
    lam: float,
    has_top: bool | None = None,
) -> tuple[int, np.ndarray]:
    """Best mode for one 4×4 block: SAD + λ·signal bits."""
    top, left, corner, top_right = neighbours4(recon, r0, c0, has_top)
    best = None
    for mode in available_modes4(top, left, corner):
        pred = predict4(mode, top, left, corner, top_right)
        sad = int(np.abs(cur_block.astype(np.int64) - pred).sum())
        cost = sad + lam * mode_signal_bits(mode, mpm)
        if best is None or cost < best[0]:
            best = (cost, mode, pred)
    assert best is not None
    return best[1], best[2]
