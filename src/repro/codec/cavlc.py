"""CAVLC-structured coefficient coder (table-free variant).

Implements the *algorithmic* structure of H.264 CAVLC (spec §9.2) — the
part that gives CAVLC its efficiency on transform coefficients:

- **trailing ones**: up to three trailing ±1 coefficients cost one sign
  bit each instead of a level code;
- **adaptive level codes**: levels are coded as unary prefix + fixed
  suffix whose length adapts upward as large magnitudes appear (the spec's
  ``suffixLength`` state machine, including the first-level ``−2``
  adjustment when magnitude ≥ 2 is guaranteed);
- **total_zeros / run_before**: zero runs are coded against the known
  remaining-zeros budget, so high-frequency tails cost almost nothing.

Where the spec uses context-selected VLC tables (coeff_token by nC,
total_zeros, run_before) we substitute self-describing codes (documented
in DESIGN.md): ``ue(total)`` + 2-bit trailing-ones count, ``ue`` for
total_zeros, and minimal-width FLC for run_before bounded by zeros-left.
Everything round-trips exactly; bit costs track real CAVLC behaviour
(trailing-one-heavy blocks cheap, dense high-magnitude blocks expensive).

Select with ``CodecConfig(entropy_coder="cavlc")``.
"""

from __future__ import annotations

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.entropy import (
    read_ue,
    write_ue,
    zigzag_scan,
    zigzag_unscan,
)

#: Escape threshold for the unary level prefix (spec: 15).
_PREFIX_ESCAPE = 15
#: Maximum adaptive suffix length (spec: 6).
_MAX_SUFFIX = 6


def _flc_width(maxval: int) -> int:
    """Bits needed for a fixed-length code of values in [0, maxval]."""
    return max(1, int(maxval).bit_length()) if maxval > 0 else 0


def _write_level(w: BitWriter, level: int, suffix_length: int) -> None:
    """Unary-prefix / adaptive-suffix level code (spec 9.2.2.1 layout)."""
    level_code = (abs(level) - 1) * 2 + (1 if level < 0 else 0)
    prefix = level_code >> suffix_length
    if prefix < _PREFIX_ESCAPE:
        w.write_bits(0, prefix)
        w.write_bit(1)
        if suffix_length:
            w.write_bits(level_code & ((1 << suffix_length) - 1), suffix_length)
    else:
        # Escape: 15 zeros + marker, then the remainder as Exp-Golomb
        # (the spec uses a growing FLC; ue() is our unbounded substitute).
        w.write_bits(0, _PREFIX_ESCAPE)
        w.write_bit(1)
        write_ue(w, level_code - (_PREFIX_ESCAPE << suffix_length))


def _read_level(r: BitReader, suffix_length: int) -> int:
    prefix = 0
    while r.read_bit() == 0:
        prefix += 1
        if prefix > 64:
            raise ValueError("malformed level prefix")
    if prefix < _PREFIX_ESCAPE:
        level_code = prefix << suffix_length
        if suffix_length:
            level_code |= r.read_bits(suffix_length)
    else:
        level_code = (_PREFIX_ESCAPE << suffix_length) + read_ue(r)
    if level_code > 1 << 31:
        raise ValueError("coefficient level out of range")
    mag = level_code // 2 + 1
    return -mag if level_code & 1 else mag


def _encode_coeffs(w: BitWriter, scanned: np.ndarray, n_coeffs: int) -> None:
    """Encode one scanned coefficient vector of length ``n_coeffs``."""
    vec = [int(v) for v in scanned[:n_coeffs]]
    nz = [i for i, v in enumerate(vec) if v != 0]
    total = len(nz)
    write_ue(w, total)
    if total == 0:
        return

    # Trailing ones: ±1 coefficients at the high-frequency end (max 3).
    t1s = 0
    for idx in reversed(nz):
        if abs(vec[idx]) == 1 and t1s < 3:
            t1s += 1
        else:
            break
    w.write_bits(t1s, 2)
    for idx in reversed(nz[total - t1s:]) if t1s else []:
        w.write_bit(1 if vec[idx] < 0 else 0)

    # Remaining levels, highest frequency first, adaptive suffix.
    remaining = nz[: total - t1s]
    suffix_length = 1 if total > 10 and t1s < 3 else 0
    first = True
    for idx in reversed(remaining):
        level = vec[idx]
        if first and t1s < 3:
            # Magnitude ≥ 2 is guaranteed here; shift the alphabet down.
            level = level - 1 if level > 0 else level + 1
        _write_level(w, level, suffix_length)
        if suffix_length == 0:
            suffix_length = 1
        if abs(vec[idx]) > (3 << (suffix_length - 1)) and suffix_length < _MAX_SUFFIX:
            suffix_length += 1
        first = False

    # total_zeros: zeros below the last significant coefficient.
    last = nz[-1]
    total_zeros = last + 1 - total
    write_ue(w, total_zeros)

    # run_before per coefficient (highest frequency first), FLC bounded by
    # the zeros still unaccounted for; the final run is implied.
    zeros_left = total_zeros
    prev = last
    for idx in reversed(nz[:-1]):
        if zeros_left == 0:
            break
        run = prev - idx - 1
        width = _flc_width(zeros_left)
        w.write_bits(run, width)
        zeros_left -= run
        prev = idx
    # (the run before the first coefficient is whatever zeros remain)


def _decode_coeffs(r: BitReader, n_coeffs: int) -> np.ndarray:
    vec = np.zeros(n_coeffs, dtype=np.int64)
    total = read_ue(r)
    if total > n_coeffs:
        raise ValueError(f"invalid total_coeffs {total}")
    if total == 0:
        return vec
    t1s = r.read_bits(2)
    if t1s > min(3, total):
        raise ValueError(f"invalid trailing_ones {t1s}")
    t1_signs = [r.read_bit() for _ in range(t1s)]

    levels: list[int] = []  # highest frequency first
    suffix_length = 1 if total > 10 and t1s < 3 else 0
    first = True
    for _ in range(total - t1s):
        level = _read_level(r, suffix_length)
        if first and t1s < 3:
            level = level + 1 if level > 0 else level - 1
        if suffix_length == 0:
            suffix_length = 1
        if abs(level) > (3 << (suffix_length - 1)) and suffix_length < _MAX_SUFFIX:
            suffix_length += 1
        levels.append(level)
        first = False

    total_zeros = read_ue(r)
    if total + total_zeros > n_coeffs:
        raise ValueError("total_zeros out of range")

    # Reconstruct scan positions: trailing ones first (highest), then the
    # coded levels, separated by run_before values.
    magnitudes: list[int] = []
    for sign in t1_signs:
        magnitudes.append(-1 if sign else 1)
    magnitudes.extend(levels)  # highest-frequency first ordering overall

    pos = total + total_zeros - 1  # scan index of the last significant coeff
    zeros_left = total_zeros
    out_positions: list[int] = []
    for k in range(total):
        out_positions.append(pos)
        if k == total - 1:
            break
        if zeros_left > 0:
            width = _flc_width(zeros_left)
            run = r.read_bits(width)
            if run > zeros_left:
                raise ValueError("run_before exceeds zeros_left")
        else:
            run = 0
        zeros_left -= run
        pos = pos - run - 1
    for p, mag in zip(out_positions, magnitudes, strict=True):
        vec[p] = mag
    return vec


class CavlcCoder:
    """Coefficient coder with the CAVLC structure (see module docstring)."""

    name = "cavlc"

    def write_block(self, w: BitWriter, block: np.ndarray) -> None:
        _encode_coeffs(w, zigzag_scan(np.asarray(block, dtype=np.int64)), 16)

    def read_block(self, r: BitReader) -> np.ndarray:
        return zigzag_unscan(_decode_coeffs(r, 16))

    def write_chroma_dc(self, w: BitWriter, dc: np.ndarray) -> None:
        _encode_coeffs(w, np.asarray(dc, dtype=np.int64).reshape(-1), 4)

    def read_chroma_dc(self, r: BitReader) -> np.ndarray:
        return _decode_coeffs(r, 4).reshape(2, 2)

    def block_bits(self, blocks: np.ndarray) -> np.ndarray:
        """Exact per-block bit cost (counting pass; not vectorized)."""
        blocks = np.asarray(blocks, dtype=np.int64)
        out = np.zeros(blocks.shape[0], dtype=np.int64)
        for i in range(blocks.shape[0]):
            w = BitWriter()
            self.write_block(w, blocks[i])
            out[i] = w.bit_count
        return out

    def chroma_dc_bits(self, dcs: np.ndarray) -> int:
        total = 0
        for dc in np.asarray(dcs, dtype=np.int64).reshape(-1, 2, 2):
            w = BitWriter()
            self.write_chroma_dc(w, dc)
            total += w.bit_count
        return total
