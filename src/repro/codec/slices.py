"""Slice partitioning: independently-predictable MB-row groups.

The paper's §III observes that DBL's neighbouring-MB dependencies prevent
collaborative processing of the R* block — which is why FEVES maps all of
R* to one device. H.264's escape hatch is *slices*: groups of MB rows with
intra prediction confined inside each slice and (optionally) deblocking
disabled across slice boundaries, making the filter slice-parallel at a
small compression cost. This module provides the geometry; the encoder,
syntax and decoder consume it, and ``benchmarks/test_slices.py`` quantifies
the trade-off the paper implicitly made.
"""

from __future__ import annotations

from repro.codec.config import MB_SIZE, CodecConfig


def slice_bounds(mb_rows: int, num_slices: int) -> list[tuple[int, int]]:
    """Half-open MB-row intervals of each slice (as even as possible)."""
    if not 1 <= num_slices <= mb_rows:
        raise ValueError(
            f"num_slices must be in 1..{mb_rows}, got {num_slices}"
        )
    base, extra = divmod(mb_rows, num_slices)
    bounds = []
    row = 0
    for i in range(num_slices):
        n = base + (1 if i < extra else 0)
        bounds.append((row, row + n))
        row += n
    return bounds


def slice_start_mb_rows(cfg: CodecConfig) -> frozenset[int]:
    """MB-row indices where a new slice begins (always includes 0)."""
    return frozenset(
        b[0] for b in slice_bounds(cfg.mb_rows, cfg.num_slices)
    )


def slice_start_luma_rows(cfg: CodecConfig) -> frozenset[int]:
    """Luma pixel rows at slice starts (intra prediction barriers)."""
    return frozenset(r * MB_SIZE for r in slice_start_mb_rows(cfg))


def slice_start_block_rows(cfg: CodecConfig) -> frozenset[int]:
    """4×4-block grid rows at slice starts (MPM context barriers)."""
    return frozenset(r * 4 for r in slice_start_mb_rows(cfg))


def dbl_skip_luma_rows(cfg: CodecConfig) -> frozenset[int]:
    """Luma pixel rows whose horizontal DBL edge is skipped.

    Empty when ``deblock_across_slices`` (the default, matching the paper)
    or with a single slice; otherwise the interior slice-start rows.
    """
    if cfg.deblock_across_slices or cfg.num_slices == 1:
        return frozenset()
    return frozenset(
        r for r in slice_start_luma_rows(cfg) if r != 0
    )
