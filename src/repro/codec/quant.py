"""H.264/AVC quantization tables and QP arithmetic.

These are the standard multiplication-factor (MF) and rescaling (V) tables
of the 4×4 integer transform, indexed by ``QP % 6`` and the coefficient's
position class. Together with the ``QP // 6`` shift they implement
division-free quantization exactly as in the reference encoder.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_range

#: MF[qp % 6][pos_class] — forward quantization multipliers.
MF_TABLE = np.array(
    [
        [13107, 5243, 8066],
        [11916, 4660, 7490],
        [10082, 4194, 6554],
        [9362, 3647, 5825],
        [8192, 3355, 5243],
        [7282, 2893, 4559],
    ],
    dtype=np.int64,
)

#: V[qp % 6][pos_class] — dequantization (rescaling) multipliers.
V_TABLE = np.array(
    [
        [10, 16, 13],
        [11, 18, 14],
        [13, 20, 16],
        [14, 23, 18],
        [16, 25, 20],
        [18, 29, 23],
    ],
    dtype=np.int64,
)

#: Position-class matrix: 0 for (even,even), 1 for (odd,odd), 2 mixed.
POS_CLASS = np.array(
    [
        [0, 2, 0, 2],
        [2, 1, 2, 1],
        [0, 2, 0, 2],
        [2, 1, 2, 1],
    ],
    dtype=np.int64,
)

#: Chroma QP for luma QP 30..51 (identity below 30) — Table 8-15 of the spec.
_CHROMA_QP_HIGH = (
    29, 30, 31, 32, 32, 33, 34, 34, 35, 35, 36,
    36, 37, 37, 37, 38, 38, 38, 39, 39, 39, 39,
)


def chroma_qp(qp: int) -> int:
    """Map a luma QP to the chroma QP (H.264 Table 8-15)."""
    check_range("qp", qp, 0, 51)
    if qp < 30:
        return qp
    return _CHROMA_QP_HIGH[qp - 30]


def mf_matrix(qp: int) -> np.ndarray:
    """4×4 forward-quant multiplier matrix for the given QP."""
    check_range("qp", qp, 0, 51)
    return MF_TABLE[qp % 6][POS_CLASS]


def v_matrix(qp: int) -> np.ndarray:
    """4×4 rescale multiplier matrix for the given QP."""
    check_range("qp", qp, 0, 51)
    return V_TABLE[qp % 6][POS_CLASS]


def quant_step(qp: int) -> float:
    """Effective quantizer step size Qstep(QP) ≈ 0.625 · 2^(QP/6).

    Used by tests to bound reconstruction error: the TQ→TQ⁻¹ round trip
    must not deviate from the input by more than about one step.
    """
    check_range("qp", qp, 0, 51)
    base = (0.625, 0.6875, 0.8125, 0.875, 1.0, 1.125)
    return base[qp % 6] * (1 << (qp // 6))
