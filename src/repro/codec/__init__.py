"""H.264/AVC inter-loop codec substrate (pure NumPy).

This package implements every module of the H.264/AVC inter-prediction loop
shown in Fig. 1 of the FEVES paper:

- :mod:`repro.codec.me` — Motion Estimation (Full-Search Block-Matching over
  all 7 MB partition modes, multiple reference frames).
- :mod:`repro.codec.interpolation` — INT: 6-tap half-pel + bilinear
  quarter-pel Sub-pixel interpolated Frame (SF) generation.
- :mod:`repro.codec.sme` — Sub-pixel Motion Estimation refinement.
- :mod:`repro.codec.mc` — Motion Compensation and partition-mode decision.
- :mod:`repro.codec.transform` / :mod:`repro.codec.quant` — TQ and TQ⁻¹
  (4×4 integer transform, H.264 quantization tables).
- :mod:`repro.codec.deblock` — DBL: in-loop deblocking filter.
- :mod:`repro.codec.entropy` / :mod:`repro.codec.bitstream` — Exp-Golomb and
  CAVLC-style entropy coding with exact bit accounting.
- :mod:`repro.codec.encoder` — single-device reference encoder pipeline used
  as ground truth for the collaborative framework.
"""

from repro.codec.config import CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.encoder import EncodedFrame, ReferenceEncoder
from repro.codec.frames import FrameGeometry, YuvFrame
from repro.codec.ratecontrol import RateControlledEncoder, RateController
from repro.codec.stats import SequenceStats, motion_stats, rd_sweep, summarize
from repro.codec.stream import StreamEncoder, read_stream, write_stream

__all__ = [
    "CodecConfig",
    "EncodedFrame",
    "FrameGeometry",
    "RateControlledEncoder",
    "RateController",
    "ReferenceEncoder",
    "SequenceDecoder",
    "SequenceStats",
    "StreamEncoder",
    "YuvFrame",
    "motion_stats",
    "rd_sweep",
    "read_stream",
    "summarize",
    "write_stream",
]
