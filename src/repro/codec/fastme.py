"""Fast motion estimation: diamond search (DS).

A content-adaptive ME used as an *ablation* against the paper's FSBM. The
paper deliberately uses Full-Search Block-Matching because its per-MB-row
cost is content-independent — which is exactly what makes the K^m
"seconds per MB row" characterization of Algorithm 2 a faithful model.
Diamond search is 1–2 orders of magnitude cheaper but its cost varies with
motion content, so per-row times stop being a stable device property. The
benchmarks quantify both effects: the R-D cost of DS vs FSBM (small) and
the per-row workload variance (large), motivating the paper's choice.

Algorithm: classic DS (Zhu & Ma) — iterate the Large Diamond Search
Pattern from the co-located position until the best point is the centre,
then one Small Diamond step. Sub-partition MVs are chosen per partition
over the set of *visited* candidates (their 4×4 cell SADs are reused, like
FSBM's SAD-reuse).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.frames import pad_plane
from repro.codec.me import MotionField, _SAD_DTYPE
from repro.codec.partitions import all_modes, partition_sads
from repro.codec.sad import strip_cell_sads

#: Large diamond: centre + 8 points at L1 distance 2.
LDSP = ((0, 0), (-2, 0), (2, 0), (0, -2), (0, 2), (-1, -1), (-1, 1), (1, -1), (1, 1))
#: Small diamond: centre + 4 points at L1 distance 1.
SDSP = ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1))


@dataclass
class FastMEStats:
    """Workload accounting: candidates evaluated per MB row.

    ``candidates_per_row[r]`` counts SAD evaluations in row ``r`` — for
    FSBM this would be ``mb_cols * (2*search_range+1)**2 * n_refs``
    exactly; for DS it depends on the content.
    """

    candidates_per_row: list[int]

    @property
    def total(self) -> int:
        return sum(self.candidates_per_row)

    def row_variation(self) -> float:
        """(max-min)/max of the per-row workload (0 = content-independent)."""
        if not self.candidates_per_row or max(self.candidates_per_row) == 0:
            return 0.0
        mx, mn = max(self.candidates_per_row), min(self.candidates_per_row)
        return (mx - mn) / mx


def diamond_search_rows(
    cur_y: np.ndarray,
    refs_y: list[np.ndarray],
    row0: int,
    nrows: int,
    cfg: CodecConfig,
) -> tuple[MotionField, FastMEStats]:
    """Diamond-search ME over MB rows ``[row0, row0 + nrows)``.

    Returns a :class:`MotionField` (same contract as
    :func:`repro.codec.me.motion_estimate_rows`) plus workload statistics.
    MVs are bounded by ``cfg.search_range`` like FSBM's.
    """
    h, w = cur_y.shape
    mb_cols = w // MB_SIZE
    sr = cfg.search_range
    n_refs = min(len(refs_y), cfg.num_ref_frames)
    modes = all_modes(cfg.enabled_partitions)
    padded = [pad_plane(ref, sr) for ref in refs_y[:n_refs]]

    out = MotionField(
        row0=row0, nrows=nrows, mb_cols=mb_cols,
        mode_shapes=tuple(m.shape for m in modes),
    )
    for m in modes:
        out.mvs[m.shape] = np.zeros((nrows, mb_cols, m.nparts, 2), dtype=np.int32)
        out.refs[m.shape] = np.zeros((nrows, mb_cols, m.nparts), dtype=np.int32)
        out.sads[m.shape] = np.full(
            (nrows, mb_cols, m.nparts), np.iinfo(np.int64).max, dtype=_SAD_DTYPE
        )
    stats = FastMEStats(candidates_per_row=[0] * nrows)
    if nrows == 0:
        return out, stats

    for r in range(row0, row0 + nrows):
        out_r = r - row0
        cur_strip = cur_y[r * MB_SIZE : (r + 1) * MB_SIZE, :]
        for c in range(mb_cols):
            cur_mb = cur_strip[:, c * MB_SIZE : (c + 1) * MB_SIZE]
            for ref_idx, ref_pad in enumerate(padded):
                visited: dict[tuple[int, int], np.ndarray] = {}
                n_evals = _search_mb(
                    cur_mb, ref_pad, r, c, sr, visited
                )
                stats.candidates_per_row[out_r] += n_evals
                _commit_best(out, out_r, c, ref_idx, visited, modes)
    return out, stats


def _cells_at(
    cur_mb: np.ndarray,
    ref_pad: np.ndarray,
    mb_row: int,
    mb_col: int,
    sr: int,
    dy: int,
    dx: int,
) -> np.ndarray:
    """4×4 cell SADs of one MB at one displacement (padded reference)."""
    y0 = mb_row * MB_SIZE + sr + dy
    x0 = mb_col * MB_SIZE + sr + dx
    ref_mb = ref_pad[y0 : y0 + MB_SIZE, x0 : x0 + MB_SIZE]
    return strip_cell_sads(cur_mb, ref_mb)[0]


def _search_mb(
    cur_mb: np.ndarray,
    ref_pad: np.ndarray,
    mb_row: int,
    mb_col: int,
    sr: int,
    visited: dict[tuple[int, int], np.ndarray],
) -> int:
    """Run LDSP/SDSP from (0,0); fills ``visited`` with cell-SAD grids."""

    def evaluate(dy: int, dx: int) -> int:
        key = (dy, dx)
        if key not in visited:
            visited[key] = _cells_at(cur_mb, ref_pad, mb_row, mb_col, sr, dy, dx)
        return int(visited[key].sum())

    cy, cx = 0, 0
    best = evaluate(0, 0)
    # LDSP iterations (bounded to keep worst case finite).
    for _ in range(2 * sr):
        best_off = (0, 0)
        for dy, dx in LDSP[1:]:
            ny, nx = cy + dy, cx + dx
            if abs(ny) > sr or abs(nx) > sr:
                continue
            s = evaluate(ny, nx)
            if s < best:
                best = s
                best_off = (dy, dx)
        if best_off == (0, 0):
            break
        cy += best_off[0]
        cx += best_off[1]
    # Final SDSP refinement.
    for dy, dx in SDSP[1:]:
        ny, nx = cy + dy, cx + dx
        if abs(ny) <= sr and abs(nx) <= sr:
            evaluate(ny, nx)
    return len(visited)


def _commit_best(
    out: MotionField,
    out_r: int,
    c: int,
    ref_idx: int,
    visited: dict[tuple[int, int], np.ndarray],
    modes,
) -> None:
    """Per partition, pick the best displacement among visited candidates."""
    offsets = list(visited.keys())
    cells = np.stack([visited[k] for k in offsets])  # (n_vis, 4, 4)
    for mode in modes:
        psads = partition_sads(cells, mode).astype(_SAD_DTYPE)  # (n_vis, nparts)
        best_i = psads.argmin(axis=0)
        for p in range(mode.nparts):
            s = psads[best_i[p], p]
            if s < out.sads[mode.shape][out_r, c, p]:
                out.sads[mode.shape][out_r, c, p] = s
                out.refs[mode.shape][out_r, c, p] = ref_idx
                out.mvs[mode.shape][out_r, c, p] = offsets[best_i[p]]
