"""TQ and TQ⁻¹: the H.264/AVC 4×4 integer transform with quantization.

Implements, vectorized over stacks of 4×4 blocks:

- forward core transform ``W = Cf · X · Cfᵀ``;
- division-free quantization ``Z = sign(W) · ((|W| · MF + f) >> qbits)``;
- rescaling ``W' = Z · V << (QP // 6)``;
- inverse core transform with the standard ``(… + 32) >> 6`` rounding;
- the 2×2 Hadamard chroma-DC pass used by inter macroblocks.

Residual planes are processed as ``(n, 4, 4)`` stacks obtained with
:func:`plane_to_blocks` / :func:`blocks_to_plane`, so TQ of a band of MB
rows is a handful of ``einsum`` calls regardless of frame size.
"""

from __future__ import annotations

import numpy as np

from repro.codec.quant import mf_matrix, v_matrix
from repro.util.validation import check_range

#: Forward core-transform matrix.
CF = np.array(
    [[1, 1, 1, 1], [2, 1, -1, -2], [1, -1, -1, 1], [1, -2, 2, -1]],
    dtype=np.int64,
)

#: Inverse core-transform matrix scaled by 2 (so it stays integral);
#: the inverse pass compensates with an extra >>1 folded into the >>6.
_CI2 = np.array(
    [[2, 2, 2, 2], [2, 1, -1, -2], [2, -2, -2, 2], [1, -2, 2, -1]],
    dtype=np.int64,
)


def plane_to_blocks(plane: np.ndarray) -> np.ndarray:
    """Split an ``(H, W)`` plane (H, W multiples of 4) into ``(n, 4, 4)``.

    Blocks are ordered raster-scan by 4×4 block position; the inverse is
    :func:`blocks_to_plane`.
    """
    h, w = plane.shape
    if h % 4 or w % 4:
        raise ValueError(f"plane {plane.shape} not 4x4-aligned")
    return (
        plane.reshape(h // 4, 4, w // 4, 4).transpose(0, 2, 1, 3).reshape(-1, 4, 4)
    )


def blocks_to_plane(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Reassemble ``(n, 4, 4)`` blocks into an ``(height, width)`` plane."""
    if height % 4 or width % 4:
        raise ValueError(f"target {height}x{width} not 4x4-aligned")
    n = (height // 4) * (width // 4)
    if blocks.shape != (n, 4, 4):
        raise ValueError(f"expected {(n, 4, 4)}, got {blocks.shape}")
    return (
        blocks.reshape(height // 4, width // 4, 4, 4)
        .transpose(0, 2, 1, 3)
        .reshape(height, width)
    )


def forward_transform(blocks: np.ndarray) -> np.ndarray:
    """Core transform of ``(n, 4, 4)`` residual blocks (int64 coefficients)."""
    x = blocks.astype(np.int64)
    return np.einsum("ij,njk,lk->nil", CF, x, CF)


def quantize(coeffs: np.ndarray, qp: int, intra: bool) -> np.ndarray:
    """Quantize transformed coefficients.

    ``f`` is the standard dead-zone offset: ``2**qbits / 3`` for intra and
    ``2**qbits / 6`` for inter blocks.
    """
    check_range("qp", qp, 0, 51)
    qbits = 15 + qp // 6
    f = (1 << qbits) // (3 if intra else 6)
    mf = mf_matrix(qp)
    mag = (np.abs(coeffs) * mf + f) >> qbits
    return (np.sign(coeffs) * mag).astype(np.int32)


def dequantize(levels: np.ndarray, qp: int) -> np.ndarray:
    """Rescale quantized levels back to coefficient magnitude."""
    check_range("qp", qp, 0, 51)
    v = v_matrix(qp)
    return (levels.astype(np.int64) * v) << (qp // 6)


def inverse_transform(coeffs: np.ndarray) -> np.ndarray:
    """Inverse core transform with standard rounding: ``(·// + 32) >> 6``.

    Uses the doubled inverse matrix ``_CI2`` (integral ½ factors), which
    contributes a factor 4 compensated by shifting 8 instead of 6.
    """
    w = coeffs.astype(np.int64)
    y = np.einsum("ji,njk,kl->nil", _CI2, w, _CI2)
    return ((y + 128) >> 8).astype(np.int64)


def tq(blocks: np.ndarray, qp: int, intra: bool = False) -> np.ndarray:
    """TQ: forward transform + quantization of ``(n, 4, 4)`` residuals."""
    return quantize(forward_transform(blocks), qp, intra)


def itq(levels: np.ndarray, qp: int) -> np.ndarray:
    """TQ⁻¹: dequantization + inverse transform back to residuals."""
    return inverse_transform(dequantize(levels, qp))


def hadamard2x2(dc: np.ndarray) -> np.ndarray:
    """2×2 Hadamard used for chroma DC (its own inverse up to scale 4)."""
    h = np.array([[1, 1], [1, -1]], dtype=np.int64)
    return np.einsum("ij,njk,kl->nil", h, dc.astype(np.int64), h)


def chroma_dc_quantize(dc: np.ndarray, qp: int, intra: bool) -> np.ndarray:
    """Quantize Hadamard-transformed 2×2 chroma DC values."""
    check_range("qp", qp, 0, 51)
    qbits = 15 + qp // 6 + 1
    f = (1 << qbits) // (3 if intra else 6)
    mf00 = mf_matrix(qp)[0, 0]
    mag = (np.abs(dc) * mf00 + f) >> qbits
    return (np.sign(dc) * mag).astype(np.int32)


def chroma_dc_dequantize(levels: np.ndarray, qp: int) -> np.ndarray:
    """Rescale inverse-Hadamard'd chroma-DC levels.

    Returns values at the *dequantized-coefficient* scale expected by
    :func:`inverse_transform` (4× the forward-transform output, like
    :func:`dequantize` for AC coefficients) — insert the result at the
    (0,0) position of the dequantized block before the inverse transform.
    """
    check_range("qp", qp, 0, 51)
    v00 = v_matrix(qp)[0, 0]
    return (levels.astype(np.int64) * v00 * (1 << (qp // 6))) >> 1
