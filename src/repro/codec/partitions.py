"""MB partition-mode bookkeeping.

H.264/AVC allows 7 inter partitionings of a 16×16 macroblock: 16×16, 16×8,
8×16, 8×8, 8×4, 4×8 and 4×4 (paper §II). Each mode tiles the MB with
``nparts`` equal rectangles. This module precomputes, for every mode, the
membership of the sixteen 4×4 SAD cells in each sub-partition, so partition
SADs are a single matrix product away from the cell-SAD grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.codec.config import MB_SIZE, PARTITION_MODES


@dataclass(frozen=True)
class PartitionMode:
    """One of the 7 partitionings.

    Attributes
    ----------
    shape:
        ``(height, width)`` of each sub-partition in pixels.
    nparts:
        Number of sub-partitions tiling the MB.
    origins:
        ``(nparts, 2)`` int array of each sub-partition's ``(y, x)`` pixel
        offset inside the MB, in raster order.
    cell_matrix:
        ``(nparts, 16)`` float matrix; row *p* has ones at the flattened
        4×4-cell indices belonging to sub-partition *p*. For a cell-SAD grid
        ``g`` of shape ``(..., 16)``, partition SADs are ``g @ cell_matrix.T``.
    """

    shape: tuple[int, int]
    nparts: int
    origins: np.ndarray
    cell_matrix: np.ndarray

    @property
    def pixels(self) -> int:
        """Pixels per sub-partition."""
        return self.shape[0] * self.shape[1]


def _build_mode(shape: tuple[int, int]) -> PartitionMode:
    h, w = shape
    if MB_SIZE % h or MB_SIZE % w:
        raise ValueError(f"partition {shape} does not tile a 16x16 MB")
    tiles_y, tiles_x = MB_SIZE // h, MB_SIZE // w
    nparts = tiles_y * tiles_x
    origins = np.array(
        [(ty * h, tx * w) for ty in range(tiles_y) for tx in range(tiles_x)],
        dtype=np.int32,
    )
    cells_y, cells_x = h // 4, w // 4
    mat = np.zeros((nparts, 16), dtype=np.float64)
    for p, (oy, ox) in enumerate(origins):
        cy0, cx0 = oy // 4, ox // 4
        for cy in range(cy0, cy0 + cells_y):
            for cx in range(cx0, cx0 + cells_x):
                mat[p, cy * 4 + cx] = 1.0
    return PartitionMode(shape=shape, nparts=nparts, origins=origins, cell_matrix=mat)


@lru_cache(maxsize=None)
def get_mode(shape: tuple[int, int]) -> PartitionMode:
    """Return the (cached) :class:`PartitionMode` for a ``(h, w)`` shape."""
    if shape not in PARTITION_MODES:
        raise ValueError(f"unknown partition shape {shape!r}")
    return _build_mode(shape)


def all_modes(
    enabled: tuple[tuple[int, int], ...] = PARTITION_MODES
) -> list[PartitionMode]:
    """Partition modes for every enabled shape, in canonical order."""
    return [get_mode(s) for s in PARTITION_MODES if s in enabled]


def partition_sads(cell_sads: np.ndarray, mode: PartitionMode) -> np.ndarray:
    """Aggregate cell SADs ``(..., 4, 4)`` into partition SADs ``(..., nparts)``."""
    flat = cell_sads.reshape(*cell_sads.shape[:-2], 16)
    return flat @ mode.cell_matrix.T


def total_subpartitions(
    enabled: tuple[tuple[int, int], ...] = PARTITION_MODES
) -> int:
    """Total sub-partitions evaluated per MB (41 when all modes are on)."""
    return sum(m.nparts for m in all_modes(enabled))
