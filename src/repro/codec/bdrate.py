"""Bjøntegaard-Delta metrics (BD-rate / BD-PSNR).

The standard tool for comparing two encoders' R-D curves (VCEG-M33): fit a
cubic polynomial to each curve in (log-rate, PSNR) space and integrate the
gap over the overlapping interval. Used here to quantify the cost of codec
ablations (partition subsets, disabling sub-pel refinement, fast ME).
"""

from __future__ import annotations

import math

import numpy as np

from repro.codec.stats import RdPoint


def _prepare(points: list[RdPoint]) -> tuple[np.ndarray, np.ndarray]:
    if len(points) < 4:
        raise ValueError("BD metrics need at least 4 R-D points")
    pts = sorted(points, key=lambda p: p.bits)
    rates = np.array([math.log10(p.bits) for p in pts])
    psnrs = np.array([p.psnr_y for p in pts])
    if not np.all(np.diff(psnrs) > 0):
        raise ValueError("R-D points must be monotone (higher rate, higher PSNR)")
    return rates, psnrs


def bd_rate(anchor: list[RdPoint], test: list[RdPoint]) -> float:
    """Average bitrate difference (%) of ``test`` vs ``anchor`` at equal PSNR.

    Negative = the test encoder needs fewer bits (better).
    """
    ra, pa = _prepare(anchor)
    rt, pt = _prepare(test)
    # Integrate log-rate as a function of PSNR over the common interval.
    lo = max(pa.min(), pt.min())
    hi = min(pa.max(), pt.max())
    if hi <= lo:
        raise ValueError("R-D curves do not overlap in PSNR")
    fa = np.polynomial.polynomial.Polynomial.fit(pa, ra, 3)
    ft = np.polynomial.polynomial.Polynomial.fit(pt, rt, 3)
    int_a = (fa.integ()(hi) - fa.integ()(lo)) / (hi - lo)
    int_t = (ft.integ()(hi) - ft.integ()(lo)) / (hi - lo)
    return (10.0 ** (int_t - int_a) - 1.0) * 100.0


def bd_psnr(anchor: list[RdPoint], test: list[RdPoint]) -> float:
    """Average PSNR difference (dB) of ``test`` vs ``anchor`` at equal rate.

    Positive = the test encoder is better.
    """
    ra, pa = _prepare(anchor)
    rt, pt = _prepare(test)
    lo = max(ra.min(), rt.min())
    hi = min(ra.max(), rt.max())
    if hi <= lo:
        raise ValueError("R-D curves do not overlap in rate")
    fa = np.polynomial.polynomial.Polynomial.fit(ra, pa, 3)
    ft = np.polynomial.polynomial.Polynomial.fit(rt, pt, 3)
    int_a = (fa.integ()(hi) - fa.integ()(lo)) / (hi - lo)
    int_t = (ft.integ()(hi) - ft.integ()(lo)) / (hi - lo)
    return float(int_t - int_a)
