"""Sequence-level rate/distortion statistics and R-D sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec.config import CodecConfig
from repro.codec.encoder import EncodedFrame, ReferenceEncoder
from repro.codec.frames import YuvFrame


@dataclass
class SequenceStats:
    """Aggregated statistics of one encoded sequence."""

    n_frames: int
    total_bits: int
    mean_psnr_y: float
    mean_psnr_u: float
    mean_psnr_v: float
    intra_bits: int
    inter_bits: int
    mode_histogram: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def mean_bits_per_frame(self) -> float:
        return self.total_bits / self.n_frames if self.n_frames else 0.0

    def kbps(self, fps: float) -> float:
        """Bitrate in kbit/s at a given display rate."""
        if fps <= 0:
            raise ValueError("fps must be > 0")
        return self.mean_bits_per_frame * fps / 1000.0


def summarize(frames: list[EncodedFrame]) -> SequenceStats:
    """Aggregate per-frame outcomes into sequence statistics."""
    if not frames:
        raise ValueError("no frames to summarize")
    finite = [f for f in frames if f.psnr["y"] != float("inf")]
    psnr_src = finite or frames
    hist: dict[tuple[int, int], int] = {}
    for f in frames:
        for shape, n in f.mode_histogram.items():
            hist[shape] = hist.get(shape, 0) + n
    return SequenceStats(
        n_frames=len(frames),
        total_bits=sum(f.bits for f in frames),
        mean_psnr_y=sum(f.psnr["y"] for f in psnr_src) / len(psnr_src),
        mean_psnr_u=sum(f.psnr["u"] for f in psnr_src) / len(psnr_src),
        mean_psnr_v=sum(f.psnr["v"] for f in psnr_src) / len(psnr_src),
        intra_bits=sum(f.bits for f in frames if f.is_intra),
        inter_bits=sum(f.bits for f in frames if not f.is_intra),
        mode_histogram=hist,
    )


@dataclass(frozen=True)
class MotionStats:
    """Statistics of a decoded/encoded motion field (quarter-pel units)."""

    mean_magnitude: float
    max_magnitude: float
    zero_fraction: float
    ref_histogram: dict[int, int]


def motion_stats(mv4, ref4) -> MotionStats:
    """Summarize per-4×4-block MV (``(H/4, W/4, 2)``) and ref grids."""
    import numpy as np

    mv = np.asarray(mv4, dtype=np.float64)
    mags = np.sqrt((mv**2).sum(axis=-1))
    refs = np.asarray(ref4).ravel()
    hist: dict[int, int] = {}
    for r in np.unique(refs):
        hist[int(r)] = int((refs == r).sum())
    return MotionStats(
        mean_magnitude=float(mags.mean()),
        max_magnitude=float(mags.max()),
        zero_fraction=float((mags == 0).mean()),
        ref_histogram=hist,
    )


@dataclass(frozen=True)
class RdPoint:
    """One rate/distortion operating point."""

    qp: int
    bits: int
    psnr_y: float


def rd_sweep(
    frames: list[YuvFrame],
    base_cfg: CodecConfig,
    qps: tuple[int, ...] = (22, 27, 32, 37),
) -> list[RdPoint]:
    """Encode the sequence at several QPs (VCEG-style R-D curve)."""
    points: list[RdPoint] = []
    for qp in qps:
        cfg = CodecConfig(
            width=base_cfg.width,
            height=base_cfg.height,
            search_range=base_cfg.search_range,
            num_ref_frames=base_cfg.num_ref_frames,
            qp_i=max(0, qp - 1),
            qp_p=qp,
            enabled_partitions=base_cfg.enabled_partitions,
            subpel=base_cfg.subpel,
        )
        out = ReferenceEncoder(cfg).encode_sequence(frames)
        stats = summarize(out)
        points.append(RdPoint(qp=qp, bits=stats.total_bits, psnr_y=stats.mean_psnr_y))
    return points
