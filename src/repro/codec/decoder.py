"""Standalone decoder: reconstructs frames from the serialized bitstream.

Mirrors the encoder's reconstruction loop exactly — same SF interpolation,
same clamped quarter-pel luma / eighth-pel chroma prediction, same TQ⁻¹ and
deblocking — so decoding an encoded stream yields reconstructions
bit-identical to the encoder's reference frames, with zero drift across
arbitrarily long GOPs (asserted in ``tests/codec/test_stream.py``).
"""

from __future__ import annotations

import numpy as np

from repro.codec.bitstream import BitReader
from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.deblock import BlockInfo, deblock_plane
from repro.codec.frames import YuvFrame
from repro.codec.gop import ReferenceStore
from repro.codec.interpolation import interpolate_plane
from repro.codec.intra4 import neighbours4, predict4
from repro.codec.intra_pred import predict_block
from repro.codec.mc import build_prediction
from repro.codec.partitions import get_mode
from repro.codec.residual import (
    decode_chroma_levels,
    decode_luma_levels,
    reconstruct,
)
from repro.codec.slices import dbl_skip_luma_rows, slice_start_luma_rows
from repro.codec.syntax import (
    ParsedInterFrame,
    ParsedIntraFrame,
    read_frame,
    read_sequence_header,
)


class SequenceDecoder:
    """Decodes a sequence of frame packets produced by the stream encoder."""

    def __init__(self, cfg: CodecConfig) -> None:
        self.cfg = cfg
        self.store = ReferenceStore(max_refs=cfg.num_ref_frames)
        self._frames_decoded = 0

    @classmethod
    def from_header(cls, header: bytes) -> "SequenceDecoder":
        """Construct from a serialized sequence header packet."""
        return cls(read_sequence_header(BitReader(header)))

    def decode_packet(self, packet: bytes) -> YuvFrame:
        """Decode one frame packet and return the reconstructed frame."""
        r = BitReader(packet)
        is_intra, parsed = read_frame(r, self.cfg)
        self._frames_decoded += 1
        if is_intra:
            assert isinstance(parsed, ParsedIntraFrame)
            return self._decode_intra(parsed)
        assert isinstance(parsed, ParsedInterFrame)
        return self._decode_inter(parsed)

    def conceal_lost_frame(self) -> YuvFrame:
        """Frame-copy error concealment for a lost packet.

        Repeats the newest reference as this frame's reconstruction and
        advances the reference window, so decoding can continue (with
        drift) until the next intra refresh. Raises if no reference exists
        yet (a lost I frame cannot be concealed).
        """
        if not self.store.frames:
            raise RuntimeError("cannot conceal: no reference frame decoded yet")
        self._frames_decoded += 1
        self.store.push_sf(interpolate_plane(self.store.frames[0].y))
        recon = self.store.frames[0].copy()
        self.store.push(recon)
        return recon

    # ------------------------------------------------------------------------

    def _decode_intra(self, p: ParsedIntraFrame) -> YuvFrame:
        cfg = self.cfg
        qp = cfg.qp_i
        h, w = cfg.height, cfg.width
        recon_y = np.zeros((h, w), dtype=np.uint8)
        recon_u = np.zeros((h // 2, w // 2), dtype=np.uint8)
        recon_v = np.zeros((h // 2, w // 2), dtype=np.uint8)
        cnz4 = np.zeros((h // 4, w // 4), dtype=bool)
        assert p.luma_modes is not None and p.chroma_modes is not None
        assert p.mb_types is not None and p.i4_modes is not None
        luma_starts = slice_start_luma_rows(cfg)
        chroma_starts = frozenset(row // 2 for row in luma_starts)
        for mr in range(cfg.mb_rows):
            for mc in range(cfg.mb_cols):
                mb = mr * cfg.mb_cols + mc
                y0, x0 = mr * MB_SIZE, mc * MB_SIZE
                cy0, cx0 = y0 // 2, x0 // 2
                if p.mb_types[mb] == 0:
                    pred = predict_block(
                        recon_y, y0, x0, MB_SIZE, int(p.luma_modes[mb]),
                        has_top=y0 not in luma_starts,
                    )
                    res = decode_luma_levels(
                        p.luma_levels[mb].astype(np.int32), 16, 16, qp
                    )
                    recon_y[y0 : y0 + 16, x0 : x0 + 16] = reconstruct(pred, res)
                else:
                    for blk in range(16):
                        by, bx = divmod(blk, 4)
                        br, bc = y0 + 4 * by, x0 + 4 * bx
                        top, left, corner, tr = neighbours4(
                            recon_y, br, bc,
                            has_top=br not in luma_starts,
                        )
                        pred4 = predict4(
                            int(p.i4_modes[mb, blk]), top, left, corner, tr
                        )
                        res4 = decode_luma_levels(
                            p.luma_levels[mb, blk : blk + 1].astype(np.int32),
                            4, 4, qp,
                        )
                        recon_y[br : br + 4, bc : bc + 4] = reconstruct(
                            pred4, res4
                        )
                cnz4[y0 // 4 : y0 // 4 + 4, x0 // 4 : x0 // 4 + 4] = (
                    p.luma_levels[mb] != 0
                ).any(axis=(1, 2)).reshape(4, 4)
                for plane_rec, ac, dc in (
                    (recon_u, p.u_ac, p.u_dc),
                    (recon_v, p.v_ac, p.v_dc),
                ):
                    pred_c = predict_block(
                        plane_rec, cy0, cx0, 8, int(p.chroma_modes[mb]),
                        has_top=cy0 not in chroma_starts,
                    )
                    res_c = decode_chroma_levels(
                        ac[mb].astype(np.int32), dc[mb : mb + 1], 8, 8, qp
                    )
                    plane_rec[cy0 : cy0 + 8, cx0 : cx0 + 8] = reconstruct(
                        pred_c, res_c
                    )
        intra4 = np.ones((h // 4, w // 4), dtype=bool)
        mv4 = np.zeros((h // 4, w // 4, 2), dtype=np.int32)
        ref4 = np.full((h // 4, w // 4), -1, dtype=np.int32)
        recon = self._deblock(
            YuvFrame(recon_y, recon_u, recon_v), mv4, ref4, cnz4, intra4, qp
        )
        self.store.reset(recon)
        return recon

    def _decode_inter(self, p: ParsedInterFrame) -> YuvFrame:
        cfg = self.cfg
        qp = cfg.qp_p
        h, w = cfg.height, cfg.width

        # INT: same single-RF interpolation schedule as the encoder.
        self.store.push_sf(interpolate_plane(self.store.frames[0].y))
        sfs = self.store.active_sfs()
        chroma = self.store.active_chroma()

        # Expand the decoded MV grid into per-mode arrays for MC.
        shapes = cfg.enabled_partitions
        qmvs: dict[tuple[int, int], np.ndarray] = {}
        refs: dict[tuple[int, int], np.ndarray] = {}
        rr, cc = np.meshgrid(
            np.arange(cfg.mb_rows), np.arange(cfg.mb_cols), indexing="ij"
        )
        for shape in shapes:
            mode = get_mode(shape)
            q = np.zeros((cfg.mb_rows, cfg.mb_cols, mode.nparts, 2), dtype=np.int32)
            f = np.zeros((cfg.mb_rows, cfg.mb_cols, mode.nparts), dtype=np.int32)
            for pi, (oy, ox) in enumerate(mode.origins):
                gy = 4 * rr + int(oy) // 4
                gx = 4 * cc + int(ox) // 4
                q[:, :, pi] = p.mv4[gy, gx]
                f[:, :, pi] = p.ref4[gy, gx]
            qmvs[shape] = q
            refs[shape] = f

        pred, mv4, ref4 = build_prediction(
            p.mode_idx, shapes, qmvs, refs, sfs, chroma, h, w
        )

        res_y = decode_luma_levels(p.luma_levels, h, w, qp)
        res_u = decode_chroma_levels(p.u_ac, p.u_dc, h // 2, w // 2, qp)
        res_v = decode_chroma_levels(p.v_ac, p.v_dc, h // 2, w // 2, qp)
        recon = YuvFrame(
            reconstruct(pred.y, res_y),
            reconstruct(pred.u, res_u),
            reconstruct(pred.v, res_v),
        )
        cnz4 = (p.luma_levels != 0).any(axis=(1, 2)).reshape(h // 4, w // 4)
        intra4 = np.zeros((h // 4, w // 4), dtype=bool)
        recon = self._deblock(recon, mv4, ref4, cnz4, intra4, qp)
        self.store.push(recon)
        return recon

    def _deblock(
        self,
        recon: YuvFrame,
        mv4: np.ndarray,
        ref4: np.ndarray,
        cnz4: np.ndarray,
        intra4: np.ndarray,
        qp: int,
    ) -> YuvFrame:
        info = BlockInfo(mv=mv4, ref=ref4, cnz=cnz4, intra=intra4)
        skip = dbl_skip_luma_rows(self.cfg)
        return YuvFrame(
            deblock_plane(recon.y, info, qp, chroma=False, skip_luma_rows=skip),
            deblock_plane(recon.u, info, qp, chroma=True, skip_luma_rows=skip),
            deblock_plane(recon.v, info, qp, chroma=True, skip_luma_rows=skip),
        )
