"""GOP structure and reference-frame / SF store.

The paper encodes IPPP sequences: one I frame then P frames. Reference
management follows the sliding window: the newest ``num_ref_frames``
reconstructions are the active references, and each frame's inter loop
interpolates exactly one new SF — that of the RF reconstructed by the
previous frame (paper Fig. 5: "a single RF is produced during the encoding
of a single inter-frame"). This is why Fig. 7(b) shows a warm-up ramp: with
R reference frames configured, frames 2..R see an increasing number of
available references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codec.frames import YuvFrame

#: H.264 upper bound on the reference list length.
MAX_REFS = 16


@dataclass
class ReferenceStore:
    """Sliding-window store of reconstructed RFs and their SFs.

    Index 0 is always the newest reference. ``sfs`` is kept aligned with
    ``frames``: ``sfs[i]`` is the quarter-pel SF of ``frames[i]`` (it may be
    momentarily missing for index 0 until the current frame's INT runs —
    exactly the dependency the framework's τ1 point synchronizes).
    """

    max_refs: int
    frames: list[YuvFrame] = field(default_factory=list)
    sfs: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 1 <= self.max_refs <= MAX_REFS:
            raise ValueError(f"max_refs must be 1..{MAX_REFS}, got {self.max_refs}")

    @property
    def num_active(self) -> int:
        """References currently usable by ME/SME (≤ configured maximum)."""
        return min(len(self.frames), self.max_refs)

    def reset(self, first: YuvFrame) -> None:
        """Start a new GOP from a freshly reconstructed I frame."""
        self.frames = [first]
        self.sfs = []

    def push(self, recon: YuvFrame) -> None:
        """Insert the newest reconstruction (evicting beyond the window)."""
        self.frames.insert(0, recon)
        del self.frames[self.max_refs :]
        del self.sfs[self.max_refs - 1 :]

    def push_sf(self, sf: np.ndarray) -> None:
        """Attach the SF of the newest RF (must be pending exactly one)."""
        if len(self.sfs) != len(self.frames) - 1:
            raise RuntimeError(
                f"SF store misaligned: {len(self.sfs)} SFs for "
                f"{len(self.frames)} frames"
            )
        self.sfs.insert(0, sf)

    def active_refs(self) -> list[YuvFrame]:
        """The reference frames visible to the current frame's ME."""
        return self.frames[: self.num_active]

    def active_sfs(self) -> list[np.ndarray]:
        """SFs aligned with :meth:`active_refs` (requires INT already ran)."""
        if len(self.sfs) < self.num_active:
            raise RuntimeError("SF for the newest RF not interpolated yet")
        return self.sfs[: self.num_active]

    def active_chroma(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """``(u, v)`` planes of the active references (for chroma MC)."""
        return [(f.u, f.v) for f in self.active_refs()]
