"""Distortion / quality metrics for encoded output."""

from __future__ import annotations

import math

import numpy as np
from scipy.ndimage import uniform_filter

from repro.codec.frames import YuvFrame


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two planes."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    diff = a.astype(np.float64) - b.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 255.0) -> float:
    """PSNR in dB between two planes (``inf`` for identical planes)."""
    m = mse(a, b)
    if m <= 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / m)


def frame_psnr(a: YuvFrame, b: YuvFrame) -> dict[str, float]:
    """Per-plane PSNR of two frames: keys ``y``, ``u``, ``v``."""
    return {
        "y": psnr(a.y, b.y),
        "u": psnr(a.u, b.u),
        "v": psnr(a.v, b.v),
    }


def ssim(a: np.ndarray, b: np.ndarray, window: int = 8, peak: float = 255.0) -> float:
    """Structural similarity index (mean SSIM, uniform window).

    The standard Wang et al. formulation with a ``window``×``window`` box
    filter; returns a value in (−1, 1], 1.0 for identical planes.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if window < 2 or window > min(a.shape):
        raise ValueError(f"window {window} invalid for planes of {a.shape}")
    x = a.astype(np.float64)
    y = b.astype(np.float64)
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2
    mu_x = uniform_filter(x, window)
    mu_y = uniform_filter(y, window)
    xx = uniform_filter(x * x, window) - mu_x * mu_x
    yy = uniform_filter(y * y, window) - mu_y * mu_y
    xy = uniform_filter(x * y, window) - mu_x * mu_y
    num = (2 * mu_x * mu_y + c1) * (2 * xy + c2)
    den = (mu_x**2 + mu_y**2 + c1) * (xx + yy + c2)
    # Crop the border where the window leaves the plane.
    half = window // 2
    s = (num / den)[half:-half or None, half:-half or None]
    return float(s.mean())
