"""DBL: H.264/AVC in-loop deblocking filter.

Implements boundary-strength derivation and the normal (bS 1–3) and strong
(bS 4) edge filters with the standard α/β/tc0 tables. Edges are processed
in spec order — vertical edges left→right then horizontal edges top→bottom,
each operating on already-filtered samples — but each edge is filtered
vectorized across its whole length, so the cost is ~(W+H)/4 vector ops per
plane instead of per-pixel Python.

The paper assigns DBL to a single device precisely because of the
neighbouring-MB dependencies this ordering creates; the sequential-edge
structure here mirrors that constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.quant import chroma_qp
from repro.util.validation import check_range

# --- Standard clipping tables (index = clip3(0, 51, QP + offset)) ---------

ALPHA_TABLE = np.array(
    [0] * 16
    + [4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20, 22, 25, 28, 32, 36,
       40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162, 182, 203,
       226, 255, 255],
    dtype=np.int32,
)

BETA_TABLE = np.array(
    [0] * 16
    + [2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11,
       11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16, 17, 17, 18, 18],
    dtype=np.int32,
)

#: tc0[bS - 1][index] for bS in 1..3.
TC0_TABLE = np.array(
    [
        [0] * 16
        + [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,
           1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 4, 4],
        [0] * 16
        + [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1,
           1, 1, 2, 2, 2, 2, 3, 3, 3, 4, 4, 5, 6, 6, 7],
        [0] * 16
        + [0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
           2, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 6, 6, 7, 8,
           ],
    ],
    dtype=np.int32,
)


@dataclass
class BlockInfo:
    """Per-4×4-block metadata used for boundary-strength derivation.

    Arrays are indexed on the 4×4-block grid ``(H/4, W/4)``:

    - ``mv``: ``(..., 2)`` quarter-pel motion vector of the covering
      partition (zero for intra blocks);
    - ``ref``: reference index (−1 for intra);
    - ``cnz``: non-zero coded-coefficient flag;
    - ``intra``: intra-coded flag.
    """

    mv: np.ndarray
    ref: np.ndarray
    cnz: np.ndarray
    intra: np.ndarray

    def __post_init__(self) -> None:
        g = self.ref.shape
        if self.mv.shape != (*g, 2) or self.cnz.shape != g or self.intra.shape != g:
            raise ValueError("inconsistent BlockInfo array shapes")


def boundary_strength(
    info: BlockInfo, axis: int, edge_idx: int, mb_edge: bool
) -> np.ndarray:
    """bS along one edge of the 4×4-block grid.

    Parameters
    ----------
    axis:
        0 for a horizontal edge (between block rows), 1 for vertical.
    edge_idx:
        Index of the *q*-side block row/column (edge lies between
        ``edge_idx - 1`` and ``edge_idx``).
    mb_edge:
        Whether this edge coincides with a macroblock boundary (affects the
        intra bS: 4 at MB edges, 3 inside).

    Returns
    -------
    int32 array of bS values along the edge (length = perpendicular size).
    """
    if axis == 0:
        p = (slice(edge_idx - 1, edge_idx), slice(None))
        q = (slice(edge_idx, edge_idx + 1), slice(None))
        squeeze = 0
    else:
        p = (slice(None), slice(edge_idx - 1, edge_idx))
        q = (slice(None), slice(edge_idx, edge_idx + 1))
        squeeze = 1
    intra_pq = info.intra[p] | info.intra[q]
    cnz_pq = info.cnz[p] | info.cnz[q]
    ref_diff = info.ref[p] != info.ref[q]
    mv_diff = (np.abs(info.mv[p] - info.mv[q]) >= 4).any(axis=-1)
    bs = np.zeros_like(intra_pq, dtype=np.int32)
    bs[ref_diff | mv_diff] = 1
    bs[cnz_pq] = 2
    bs[intra_pq] = 4 if mb_edge else 3
    return np.squeeze(bs, axis=squeeze)


def _clip3(lo: np.ndarray, hi: np.ndarray, x: np.ndarray) -> np.ndarray:
    return np.minimum(np.maximum(x, lo), hi)


def _filter_edge_luma(
    lines: np.ndarray, bs: np.ndarray, qp: int
) -> np.ndarray:
    """Filter one luma edge.

    ``lines`` has shape ``(n, 8)`` — for each of the *n* positions along the
    edge, samples ``p3 p2 p1 p0 q0 q1 q2 q3`` perpendicular to it. Returns
    the filtered lines (same shape). ``bs`` has shape ``(n,)``.
    """
    check_range("qp", qp, 0, 51)
    idx = int(np.clip(qp, 0, 51))
    alpha = int(ALPHA_TABLE[idx])
    beta = int(BETA_TABLE[idx])
    s = lines.astype(np.int32)
    p3, p2, p1, p0 = s[:, 0], s[:, 1], s[:, 2], s[:, 3]
    q0, q1, q2, q3 = s[:, 4], s[:, 5], s[:, 6], s[:, 7]

    filt = (
        (bs > 0)
        & (np.abs(p0 - q0) < alpha)
        & (np.abs(p1 - p0) < beta)
        & (np.abs(q1 - q0) < beta)
    )
    ap = np.abs(p2 - p0) < beta
    aq = np.abs(q2 - q0) < beta
    out = s.copy()

    # --- normal filter (bS 1..3) ------------------------------------------
    normal = filt & (bs < 4)
    if normal.any():
        tc0 = TC0_TABLE[np.clip(bs, 1, 3) - 1, idx]
        tc = tc0 + ap.astype(np.int32) + aq.astype(np.int32)
        delta = _clip3(-tc, tc, ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3)
        p0n = np.clip(p0 + delta, 0, 255)
        q0n = np.clip(q0 - delta, 0, 255)
        dp1 = _clip3(-tc0, tc0, (p2 + ((p0 + q0 + 1) >> 1) - 2 * p1) >> 1)
        dq1 = _clip3(-tc0, tc0, (q2 + ((p0 + q0 + 1) >> 1) - 2 * q1) >> 1)
        out[:, 3] = np.where(normal, p0n, out[:, 3])
        out[:, 4] = np.where(normal, q0n, out[:, 4])
        out[:, 2] = np.where(normal & ap, p1 + dp1, out[:, 2])
        out[:, 5] = np.where(normal & aq, q1 + dq1, out[:, 5])

    # --- strong filter (bS 4) ----------------------------------------------
    strong = filt & (bs == 4)
    if strong.any():
        small_gap = np.abs(p0 - q0) < ((alpha >> 2) + 2)
        sp = strong & small_gap & ap
        wq = strong & small_gap & aq
        p0s = (p2 + 2 * p1 + 2 * p0 + 2 * q0 + q1 + 4) >> 3
        p1s = (p2 + p1 + p0 + q0 + 2) >> 2
        p2s = (2 * p3 + 3 * p2 + p1 + p0 + q0 + 4) >> 3
        q0s = (q2 + 2 * q1 + 2 * q0 + 2 * p0 + p1 + 4) >> 3
        q1s = (q2 + q1 + q0 + p0 + 2) >> 2
        q2s = (2 * q3 + 3 * q2 + q1 + q0 + p0 + 4) >> 3
        p0w = (2 * p1 + p0 + q1 + 2) >> 2
        q0w = (2 * q1 + q0 + p1 + 2) >> 2
        out[:, 3] = np.where(sp, p0s, np.where(strong, p0w, out[:, 3]))
        out[:, 2] = np.where(sp, p1s, out[:, 2])
        out[:, 1] = np.where(sp, p2s, out[:, 1])
        out[:, 4] = np.where(wq, q0s, np.where(strong, q0w, out[:, 4]))
        out[:, 5] = np.where(wq, q1s, out[:, 5])
        out[:, 6] = np.where(wq, q2s, out[:, 6])

    return np.clip(out, 0, 255)


def _filter_edge_chroma(lines: np.ndarray, bs: np.ndarray, qp: int) -> np.ndarray:
    """Filter one chroma edge: ``lines`` is ``(n, 4)`` = ``p1 p0 q0 q1``."""
    idx = int(np.clip(chroma_qp(qp), 0, 51))
    alpha = int(ALPHA_TABLE[idx])
    beta = int(BETA_TABLE[idx])
    s = lines.astype(np.int32)
    p1, p0, q0, q1 = s[:, 0], s[:, 1], s[:, 2], s[:, 3]
    filt = (
        (bs > 0)
        & (np.abs(p0 - q0) < alpha)
        & (np.abs(p1 - p0) < beta)
        & (np.abs(q1 - q0) < beta)
    )
    out = s.copy()
    normal = filt & (bs < 4)
    if normal.any():
        tc = TC0_TABLE[np.clip(bs, 1, 3) - 1, idx] + 1
        delta = _clip3(-tc, tc, ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3)
        out[:, 1] = np.where(normal, np.clip(p0 + delta, 0, 255), out[:, 1])
        out[:, 2] = np.where(normal, np.clip(q0 - delta, 0, 255), out[:, 2])
    strong = filt & (bs == 4)
    if strong.any():
        out[:, 1] = np.where(strong, (2 * p1 + p0 + q1 + 2) >> 2, out[:, 1])
        out[:, 2] = np.where(strong, (2 * q1 + q0 + p1 + 2) >> 2, out[:, 2])
    return np.clip(out, 0, 255)


def deblock_plane(
    plane: np.ndarray,
    info: BlockInfo,
    qp: int,
    chroma: bool = False,
    skip_luma_rows: frozenset[int] = frozenset(),
) -> np.ndarray:
    """Deblock one plane in place-order: vertical edges, then horizontal.

    Parameters
    ----------
    plane:
        uint8 luma ``(H, W)`` or chroma ``(H/2, W/2)`` plane.
    info:
        Per-4×4-luma-block metadata (chroma reuses the co-located luma bS).
    qp:
        Slice QP (chroma QP derived internally when ``chroma``).
    skip_luma_rows:
        Luma pixel rows whose horizontal edge is not filtered — the slice
        boundaries when ``deblock_across_slices`` is off, which is what
        makes the filter slice-parallel.

    Returns
    -------
    Filtered plane (uint8 copy).
    """
    out = plane.astype(np.int32).copy()
    h, w = out.shape
    # Chroma: one chroma sample = 2 luma samples; chroma block edges every
    # 4 chroma px ⇒ every 8 luma px ⇒ every 2nd luma 4×4-grid line, and one
    # luma grid line spans 2 chroma samples.
    grid_step = 2 if chroma else 1
    samples_per_block = 2 if chroma else 4
    taps = 2 if chroma else 4

    # Vertical edges (filter across columns), left to right.
    for bx in range(1, w // 4):
        gx = bx * grid_step
        mb_edge = (gx % 4) == 0
        bs = boundary_strength(info, axis=1, edge_idx=gx, mb_edge=mb_edge)
        # Expand bS from block granularity to sample rows.
        bs_rows = np.repeat(bs, samples_per_block)[:h]
        x0 = bx * 4
        cols = out[:, x0 - taps : x0 + taps]
        if chroma:
            filtered = _filter_edge_chroma(cols, bs_rows, qp)
        else:
            filtered = _filter_edge_luma(cols, bs_rows, qp)
        out[:, x0 - taps : x0 + taps] = filtered

    # Horizontal edges (filter across rows), top to bottom.
    for by in range(1, h // 4):
        gy = by * grid_step
        luma_row = by * 4 * (2 if chroma else 1)
        if luma_row in skip_luma_rows:
            continue  # slice boundary with cross-slice filtering disabled
        mb_edge = (gy % 4) == 0
        bs = boundary_strength(info, axis=0, edge_idx=gy, mb_edge=mb_edge)
        bs_cols = np.repeat(bs, samples_per_block)[:w]
        y0 = by * 4
        rows = out[y0 - taps : y0 + taps, :].T
        if chroma:
            filtered = _filter_edge_chroma(rows, bs_cols, qp)
        else:
            filtered = _filter_edge_luma(rows, bs_cols, qp)
        out[y0 - taps : y0 + taps, :] = filtered.T

    return out.astype(np.uint8)
