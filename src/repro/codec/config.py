"""Encoder configuration.

The FEVES evaluation (paper §IV) follows the VCEG common conditions [11]:
IPPP GOP, Baseline profile, QP = 27 for the I slice and 28 for P slices,
Full-Search Block-Matching ME, square search areas (SA) of 32–256 pixels
per side and 1–8 reference frames.

A "32×32 SA" in the paper means displacements of ±16 pixels around the
co-located position, i.e. ``search_range = SA_side // 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_multiple_of, check_range

#: Macroblock side in luma pixels (H.264/AVC fixed value).
MB_SIZE = 16

#: The 7 inter partition modes of H.264/AVC, as (height, width) in pixels.
PARTITION_MODES: tuple[tuple[int, int], ...] = (
    (16, 16),
    (16, 8),
    (8, 16),
    (8, 8),
    (8, 4),
    (4, 8),
    (4, 4),
)


@dataclass(frozen=True)
class CodecConfig:
    """Static encoding parameters shared by every device and module.

    Parameters
    ----------
    width, height:
        Luma frame dimensions; must be multiples of 16 (whole macroblocks).
    search_range:
        FSBM displacement bound per axis; the paper's "SA size" equals
        ``2 * search_range`` (e.g. 32×32 SA ⇒ ``search_range=16``).
    num_ref_frames:
        Maximum number of reconstructed reference frames used by ME/SME.
    qp_i, qp_p:
        Quantization parameters for I and P slices (VCEG: 27 / 28).
    enabled_partitions:
        Subset of :data:`PARTITION_MODES` evaluated during mode decision.
    subpel:
        When ``False``, SME is skipped and full-pel MVs are used directly
        (useful for ablations; the paper always refines).
    subpel_metric:
        Distortion metric for the SME candidate search: ``"sad"`` (paper)
        or ``"satd"`` (Hadamard-domain, better RD at ~3× the arithmetic).
    lambda_mode:
        Lagrangian multiplier weighting MV/mode rate against distortion in
        mode decision; ``None`` derives the standard
        ``0.85 * 2**((QP - 12) / 3)``.
    entropy_coder:
        Residual coefficient coder: ``"lite"`` (vectorized CAVLC-lite,
        default) or ``"cavlc"`` (CAVLC-structured: trailing ones +
        adaptive level codes — see :mod:`repro.codec.cavlc`).
    num_slices:
        Horizontal slices per frame (groups of MB rows). Intra prediction
        never crosses a slice boundary.
    deblock_across_slices:
        When ``False`` the loop filter skips slice-boundary edges, making
        DBL slice-parallel at a small quality/rate cost (see
        ``benchmarks/test_slices.py``).
    """

    #: 1080p defaults; like every H.264 encoder we code 1080 lines as 68 MB
    #: rows (1088 coded samples, bottom 8 cropped at display).
    width: int = 1920
    height: int = 1088
    search_range: int = 16
    num_ref_frames: int = 1
    qp_i: int = 27
    qp_p: int = 28
    enabled_partitions: tuple[tuple[int, int], ...] = field(
        default=PARTITION_MODES
    )
    subpel: bool = True
    subpel_metric: str = "sad"
    lambda_mode: float | None = None
    entropy_coder: str = "lite"
    num_slices: int = 1
    deblock_across_slices: bool = True

    def __post_init__(self) -> None:
        if self.entropy_coder not in ("lite", "cavlc"):
            raise ValueError(
                f"entropy_coder must be 'lite' or 'cavlc', got "
                f"{self.entropy_coder!r}"
            )
        if self.subpel_metric not in ("sad", "satd"):
            raise ValueError(
                f"subpel_metric must be 'sad' or 'satd', got "
                f"{self.subpel_metric!r}"
            )
        check_multiple_of("width", self.width, MB_SIZE)
        check_multiple_of("height", self.height, MB_SIZE)
        check_range("search_range", self.search_range, 1, 256)
        check_range("num_ref_frames", self.num_ref_frames, 1, 16)
        check_range("qp_i", self.qp_i, 0, 51)
        check_range("qp_p", self.qp_p, 0, 51)
        if not self.enabled_partitions:
            raise ValueError("enabled_partitions must not be empty")
        for part in self.enabled_partitions:
            if part not in PARTITION_MODES:
                raise ValueError(f"unknown partition mode {part!r}")
        if (16, 16) not in self.enabled_partitions:
            raise ValueError("the 16x16 partition mode is mandatory")
        if not 1 <= self.num_slices <= self.height // MB_SIZE:
            raise ValueError(
                f"num_slices must be in 1..{self.height // MB_SIZE}, "
                f"got {self.num_slices}"
            )

    @property
    def sa_side(self) -> int:
        """Search-area side in pixels, as quoted by the paper (2×range)."""
        return 2 * self.search_range

    @property
    def mb_cols(self) -> int:
        """Number of macroblock columns."""
        return self.width // MB_SIZE

    @property
    def mb_rows(self) -> int:
        """Number of macroblock rows — the framework's unit of distribution."""
        return self.height // MB_SIZE

    def qp_for(self, is_intra: bool) -> int:
        """QP used for a frame of the given slice type."""
        return self.qp_i if is_intra else self.qp_p

    def lambda_for(self, qp: int) -> float:
        """Mode-decision Lagrangian for the given QP."""
        if self.lambda_mode is not None:
            return self.lambda_mode
        return 0.85 * 2.0 ** ((qp - 12) / 3.0)
