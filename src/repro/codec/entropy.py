"""Entropy coding: Exp-Golomb codes and a CAVLC-style coefficient coder.

H.264 Baseline uses Exp-Golomb for header/MV syntax and CAVLC for residual
coefficients. We implement Exp-Golomb exactly; for coefficients we use a
simplified but fully decodable "CAVLC-lite" scheme (documented in DESIGN.md):
zig-zag scan, ``ue(total_coeffs)``, then per non-zero coefficient
``se(level)`` followed by ``ue(run_before)``. Bit counts therefore track the
real coder's behaviour (few large low-frequency levels cheap, dense blocks
expensive) without the nC-context VLC tables.

All length functions are vectorized so the mode-decision rate term costs a
couple of array ops per frame.
"""

from __future__ import annotations

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter

#: Zig-zag scan order of a 4×4 block (frame coding).
ZIGZAG_4X4: tuple[tuple[int, int], ...] = (
    (0, 0), (0, 1), (1, 0), (2, 0),
    (1, 1), (0, 2), (0, 3), (1, 2),
    (2, 1), (3, 0), (3, 1), (2, 2),
    (1, 3), (2, 3), (3, 2), (3, 3),
)

_ZZ_ROWS = np.array([p[0] for p in ZIGZAG_4X4])
_ZZ_COLS = np.array([p[1] for p in ZIGZAG_4X4])


# --- Exp-Golomb ------------------------------------------------------------

def ue_len(k: np.ndarray | int) -> np.ndarray | int:
    """Bit length of the unsigned Exp-Golomb code of ``k`` (vectorized)."""
    kk = np.asarray(k, dtype=np.int64)
    if (kk < 0).any():
        raise ValueError("ue operand must be non-negative")
    length = 2 * np.floor(np.log2(kk + 1)).astype(np.int64) + 1
    return int(length) if np.isscalar(k) else length


def se_to_ue(v: np.ndarray | int) -> np.ndarray | int:
    """Map a signed value to its unsigned Exp-Golomb index."""
    vv = np.asarray(v, dtype=np.int64)
    mapped = np.where(vv > 0, 2 * vv - 1, -2 * vv)
    return int(mapped) if np.isscalar(v) else mapped


def se_len(v: np.ndarray | int) -> np.ndarray | int:
    """Bit length of the signed Exp-Golomb code of ``v`` (vectorized)."""
    return ue_len(se_to_ue(v))


def write_ue(w: BitWriter, k: int) -> None:
    """Write an unsigned Exp-Golomb code."""
    if k < 0:
        raise ValueError("ue operand must be non-negative")
    kp1 = k + 1
    nbits = kp1.bit_length()
    w.write_bits(0, nbits - 1)      # prefix zeros
    w.write_bits(kp1, nbits)        # info bits (leading 1 included)


def read_ue(r: BitReader) -> int:
    """Read an unsigned Exp-Golomb code."""
    zeros = 0
    while r.read_bit() == 0:
        zeros += 1
        if zeros > 63:
            raise ValueError("malformed Exp-Golomb code")
    info = (1 << zeros) | r.read_bits(zeros)
    return info - 1


def write_se(w: BitWriter, v: int) -> None:
    """Write a signed Exp-Golomb code."""
    write_ue(w, int(se_to_ue(v)))


def read_se(r: BitReader) -> int:
    """Read a signed Exp-Golomb code."""
    k = read_ue(r)
    if k % 2:
        return (k + 1) // 2
    return -(k // 2)


# --- CAVLC-lite coefficient coding -----------------------------------------

def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Scan a 4×4 block into a 16-vector (or a stack ``(n,4,4)``→``(n,16)``)."""
    if block.shape[-2:] != (4, 4):
        raise ValueError(f"expected trailing 4x4, got {block.shape}")
    return block[..., _ZZ_ROWS, _ZZ_COLS]


def zigzag_unscan(vec: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_scan`."""
    if vec.shape[-1] != 16:
        raise ValueError(f"expected trailing 16, got {vec.shape}")
    out = np.zeros((*vec.shape[:-1], 4, 4), dtype=vec.dtype)
    out[..., _ZZ_ROWS, _ZZ_COLS] = vec
    return out


def write_block(w: BitWriter, block: np.ndarray) -> None:
    """Encode one 4×4 level block (CAVLC-lite)."""
    scanned = zigzag_scan(np.asarray(block, dtype=np.int64))
    nz = np.nonzero(scanned)[0]
    write_ue(w, len(nz))
    prev = -1
    for idx in nz:
        write_ue(w, int(idx - prev - 1))  # run of zeros before this coeff
        write_se(w, int(scanned[idx]))
        prev = idx


def read_block(r: BitReader) -> np.ndarray:
    """Decode one 4×4 level block written by :func:`write_block`."""
    total = read_ue(r)
    if total > 16:
        raise ValueError(f"invalid total_coeffs {total}")
    vec = np.zeros(16, dtype=np.int64)
    pos = -1
    for _ in range(total):
        run = read_ue(r)
        pos += run + 1
        if pos > 15:
            raise ValueError("coefficient index out of block")
        level = read_se(r)
        if abs(level) > 1 << 30:
            raise ValueError("coefficient level out of range")
        vec[pos] = level
    return zigzag_unscan(vec)


def block_bits(blocks: np.ndarray) -> np.ndarray:
    """Exact CAVLC-lite bit cost of each block in a ``(n, 4, 4)`` stack.

    Vectorized equivalent of writing each block with :func:`write_block` and
    measuring — used for rate accounting without materializing a bitstream.
    """
    scanned = zigzag_scan(np.asarray(blocks, dtype=np.int64))  # (n, 16)
    nz = scanned != 0
    total = nz.sum(axis=1)
    bits = ue_len(total).astype(np.int64)
    # level bits
    bits += np.where(nz, se_len(scanned), 0).sum(axis=1)
    # run bits: gaps between consecutive nonzero scan positions
    idx = np.arange(16)[None, :]
    prev_nz = np.where(nz, idx, -10_000)
    prev_best = np.maximum.accumulate(
        np.concatenate([np.full((scanned.shape[0], 1), -1), prev_nz[:, :-1]], axis=1),
        axis=1,
    )
    runs = np.where(nz, idx - prev_best - 1, 0)
    bits += np.where(nz, ue_len(np.maximum(runs, 0)), 0).sum(axis=1)
    return bits


class LiteCoder:
    """The default CAVLC-lite coefficient coder as a pluggable object."""

    name = "lite"

    def write_block(self, w: BitWriter, block: np.ndarray) -> None:
        write_block(w, block)

    def read_block(self, r: BitReader) -> np.ndarray:
        return read_block(r)

    def write_chroma_dc(self, w: BitWriter, dc: np.ndarray) -> None:
        write_chroma_dc(w, dc)

    def read_chroma_dc(self, r: BitReader) -> np.ndarray:
        return read_chroma_dc(r)

    def block_bits(self, blocks: np.ndarray) -> np.ndarray:
        return block_bits(blocks)

    def chroma_dc_bits(self, dcs: np.ndarray) -> int:
        total = 0
        for dc in np.asarray(dcs, dtype=np.int64).reshape(-1, 2, 2):
            w = BitWriter()
            write_chroma_dc(w, dc)
            total += w.bit_count
        return total


def get_coder(name: str):
    """Coefficient-coder factory: ``"lite"`` or ``"cavlc"``."""
    if name == "lite":
        return LiteCoder()
    if name == "cavlc":
        from repro.codec.cavlc import CavlcCoder

        return CavlcCoder()
    raise ValueError(f"unknown entropy coder {name!r}; expected lite|cavlc")


def write_chroma_dc(w: BitWriter, dc: np.ndarray) -> None:
    """Encode a 2×2 chroma-DC level block."""
    flat = np.asarray(dc, dtype=np.int64).reshape(-1)
    nz = np.nonzero(flat)[0]
    write_ue(w, len(nz))
    prev = -1
    for idx in nz:
        write_ue(w, int(idx - prev - 1))
        write_se(w, int(flat[idx]))
        prev = idx


def read_chroma_dc(r: BitReader) -> np.ndarray:
    """Decode a 2×2 chroma-DC block written by :func:`write_chroma_dc`."""
    total = read_ue(r)
    if total > 4:
        raise ValueError(f"invalid chroma-DC count {total}")
    flat = np.zeros(4, dtype=np.int64)
    pos = -1
    for _ in range(total):
        run = read_ue(r)
        pos += run + 1
        if pos > 3:
            raise ValueError("chroma-DC index out of block")
        level = read_se(r)
        if abs(level) > 1 << 30:
            raise ValueError("chroma-DC level out of range")
        flat[pos] = level
    return flat.reshape(2, 2)
