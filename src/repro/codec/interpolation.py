"""INT: Sub-pixel interpolated Frame (SF) generation.

H.264/AVC quarter-pel motion compensation requires the reference frame
interpolated to quarter-sample resolution. Half-pel samples come from the
standard 6-tap FIR (1, −5, 20, 20, −5, 1)/32 — applied horizontally (``b``),
vertically (``h``) and on intermediate values for the centre position
(``j``) — and quarter-pel samples are rounded averages of the two nearest
integer/half samples (paper §II: "6-tap and linear filters").

The SF is stored as a dense ``(4H, 4W)`` uint8 plane where
``SF[4y + fy, 4x + fx]`` is the sample at fractional offset ``(fy/4, fx/4)``
from integer position ``(y, x)`` — hence the paper's remark that the SF
structure is as large as 16 reference frames.

The module exposes a full-plane kernel and a row-band kernel. The band
kernel is what the framework distributes (the ``l`` vector of Algorithm 2);
it is bit-exact with the corresponding rows of the full-plane result, which
is what makes cross-device stitching of the SF legal.
"""

from __future__ import annotations

import numpy as np

from repro.codec.config import MB_SIZE
from repro.codec.frames import pad_plane

#: Halo (integer pels) needed around a band: 6-tap reach (−2..+3) plus the
#: +1 sample used by quarter-pel averages.
PAD = 4

_TAPS = (1, -5, 20, 20, -5, 1)
_OFFS = (-2, -1, 0, 1, 2, 3)


def _filt6_h(a: np.ndarray, x0: int, width: int) -> np.ndarray:
    """Horizontal 6-tap filter (unrounded int32) at columns x0..x0+width-1."""
    out = np.zeros((a.shape[0], width), dtype=np.int32)
    for tap, off in zip(_TAPS, _OFFS, strict=True):
        out += tap * a[:, x0 + off : x0 + off + width].astype(np.int32)
    return out


def _filt6_v(a: np.ndarray, y0: int, height: int) -> np.ndarray:
    """Vertical 6-tap filter (unrounded int32) at rows y0..y0+height-1."""
    out = np.zeros((height, a.shape[1]), dtype=np.int32)
    for tap, off in zip(_TAPS, _OFFS, strict=True):
        out += tap * a[y0 + off : y0 + off + height, :].astype(np.int32)
    return out


def _round_half(raw: np.ndarray) -> np.ndarray:
    """(raw + 16) >> 5, clipped to uint8 — one filter pass."""
    return np.clip((raw + 16) >> 5, 0, 255).astype(np.uint8)


def _avg(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Quarter-pel rounded average of two uint8 sample grids."""
    return ((a.astype(np.uint16) + b.astype(np.uint16) + 1) >> 1).astype(np.uint8)


def _interp_core(gpad: np.ndarray, height: int, width: int) -> np.ndarray:
    """Interpolate the ``(height, width)`` region of a PAD-padded plane."""
    p = PAD
    if gpad.shape != (height + 2 * p, width + 2 * p):
        raise ValueError(
            f"padded plane {gpad.shape} != {(height + 2 * p, width + 2 * p)}"
        )
    # Integer samples on the extended grid (one extra row/col for averages).
    ge = gpad[p : p + height + 1, p : p + width + 1]

    # b: horizontal half-pels. Rows: all padded rows (reused by j's vertical
    # pass); cols 0..width (extra col for m/k/r via the h grid instead).
    b_raw_full = _filt6_h(gpad, p, width)          # (H+2p, W)
    b_ext = _round_half(b_raw_full[p : p + height + 1, :])  # (H+1, W)
    b = b_ext[:height, :]

    # h: vertical half-pels, with one extra column for m = h(x+1).
    h_raw = _filt6_v(gpad[:, p : p + width + 1], p, height)  # (H, W+1)
    h_ext = _round_half(h_raw)
    h_half = h_ext[:, :width]

    # j: centre half-pel — vertical 6-tap over unrounded b values.
    j_raw = np.zeros((height, width), dtype=np.int64)
    for tap, off in zip(_TAPS, _OFFS, strict=True):
        j_raw += tap * b_raw_full[p + off : p + off + height, :].astype(np.int64)
    j = np.clip((j_raw + 512) >> 10, 0, 255).astype(np.uint8)

    g_int = ge[:height, :width]
    g_right = ge[:height, 1:]
    g_down = ge[1:, :width]
    m = h_ext[:, 1:]      # h at x+1
    s = b_ext[1:, :]      # b at y+1

    sf = np.empty((4 * height, 4 * width), dtype=np.uint8)
    sf[0::4, 0::4] = g_int
    sf[0::4, 1::4] = _avg(g_int, b)
    sf[0::4, 2::4] = b
    sf[0::4, 3::4] = _avg(b, g_right)
    sf[1::4, 0::4] = _avg(g_int, h_half)
    sf[1::4, 1::4] = _avg(b, h_half)
    sf[1::4, 2::4] = _avg(b, j)
    sf[1::4, 3::4] = _avg(b, m)
    sf[2::4, 0::4] = h_half
    sf[2::4, 1::4] = _avg(h_half, j)
    sf[2::4, 2::4] = j
    sf[2::4, 3::4] = _avg(j, m)
    sf[3::4, 0::4] = _avg(h_half, g_down)
    sf[3::4, 1::4] = _avg(h_half, s)
    sf[3::4, 2::4] = _avg(j, s)
    sf[3::4, 3::4] = _avg(m, s)
    return sf


def interpolate_plane(y: np.ndarray) -> np.ndarray:
    """Quarter-pel SF of a whole luma plane: ``(H, W)`` → ``(4H, 4W)``."""
    h, w = y.shape
    return _interp_core(pad_plane(y, PAD), h, w)


def interpolate_rows(y: np.ndarray, row0: int, nrows: int) -> np.ndarray:
    """SF band for MB rows ``[row0, row0+nrows)``: shape ``(64*nrows, 4W)``.

    Bit-exact with ``interpolate_plane(y)[64*row0 : 64*(row0+nrows), :]`` —
    the property that lets the framework interpolate different bands on
    different devices and stitch the SF in host memory.
    """
    h, w = y.shape
    mb_rows = h // MB_SIZE
    if h % MB_SIZE:
        raise ValueError(f"plane height {h} not MB-aligned")
    if not 0 <= row0 <= mb_rows or nrows < 0 or row0 + nrows > mb_rows:
        raise ValueError(f"band [{row0}, {row0 + nrows}) outside 0..{mb_rows}")
    if nrows == 0:
        return np.empty((0, 4 * w), dtype=np.uint8)
    ypad = pad_plane(y, PAD)
    band_h = nrows * MB_SIZE
    strip = ypad[row0 * MB_SIZE : row0 * MB_SIZE + band_h + 2 * PAD, :]
    return _interp_core(strip, band_h, w)


def subpel_block(sf: np.ndarray, qy: int, qx: int, bh: int, bw: int) -> np.ndarray:
    """Sample a ``(bh, bw)`` pixel block at quarter-pel position ``(qy, qx)``.

    ``(qy, qx)`` are quarter-pel coordinates of the block's top-left sample;
    they must satisfy ``0 <= qy <= 4*(H - bh)`` (use :func:`clamp_qpos`).
    """
    return sf[qy : qy + 4 * bh : 4, qx : qx + 4 * bw : 4]


def clamp_qpos(qy: int, qx: int, bh: int, bw: int, height: int, width: int) -> tuple[int, int]:
    """Clamp a quarter-pel block position so the block fits inside the SF.

    H.264 allows unrestricted MVs; our SF covers exactly the frame, so both
    SME candidate evaluation and MC prediction clamp identically (restricted-
    MV behaviour at frame borders — see DESIGN.md substitutions).
    """
    qy = max(0, min(qy, 4 * (height - bh)))
    qx = max(0, min(qx, 4 * (width - bw)))
    return qy, qx
