"""Intra coding for the I frames of each GOP.

The paper's evaluation uses IPPP sequences — the intra path only bootstraps
reference frames, with all the interesting work in the inter loop. Still,
the implementation is realistic: per-MB mode decision over the Intra_16x16
luma modes (V / H / DC / Plane) and the corresponding 8×8 chroma modes,
predicted from *reconstructed* neighbours (so macroblocks are processed in
raster order) and signalled in the bitstream for the standalone decoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.frames import YuvFrame
from repro.codec.entropy import get_coder, ue_len
from repro.codec.intra4 import (
    I4_DC,
    choose_mode4,
    mode_signal_bits,
    most_probable_mode,
)
from repro.codec.intra_pred import choose_mode, predict_block
from repro.codec.residual import code_chroma_plane, code_luma_plane, reconstruct
from repro.codec.slices import (
    slice_start_block_rows,
    slice_start_luma_rows,
)


def mpm_for_block(
    mode4_grid: np.ndarray,
    gy: int,
    gx: int,
    slice_grows: frozenset[int] = frozenset((0,)),
) -> int:
    """Most-probable Intra_4x4 mode from the decoded mode grid.

    Shared by the encoder, the bitstream writer and the decoder so the MPM
    context always matches. ``slice_grows`` are 4×4-grid rows where a slice
    begins (the top neighbour is treated as unavailable there).
    """
    left = int(mode4_grid[gy, gx - 1]) if gx > 0 else None
    top = int(mode4_grid[gy - 1, gx]) if (gy > 0 and gy not in slice_grows) else None
    return most_probable_mode(left, top)


@dataclass
class IntraFrameResult:
    """Reconstruction, rate and syntax elements of one intra frame.

    Level arrays are in MB raster order (for the bitstream serializer):
    ``luma_levels`` is ``(n_mb, 16, 4, 4)``; per chroma plane, ``*_ac`` is
    ``(n_mb, 4, 4, 4)`` (four AC blocks per MB, zero DC) and ``*_dc`` is
    ``(n_mb, 2, 2)``.
    """

    recon: YuvFrame
    bits: int
    cnz4: np.ndarray
    luma_levels: np.ndarray | None = None
    u_ac: np.ndarray | None = None
    u_dc: np.ndarray | None = None
    v_ac: np.ndarray | None = None
    v_dc: np.ndarray | None = None
    luma_modes: np.ndarray | None = None   # (mb_rows, mb_cols) I16 modes
    chroma_modes: np.ndarray | None = None
    mb_types: np.ndarray | None = None     # (mb_rows, mb_cols) 0=I16, 1=I4
    i4_modes: np.ndarray | None = None     # (n_mb, 16) per-block I4 modes


def _dc_predict(recon: np.ndarray, r0: int, c0: int, size: int) -> int:
    """DC predictor from reconstructed top/left neighbours (128 fallback)."""
    acc: list[np.ndarray] = []
    if r0 > 0:
        acc.append(recon[r0 - 1, c0 : c0 + size])
    if c0 > 0:
        acc.append(recon[r0 : r0 + size, c0 - 1])
    if not acc:
        return 128
    samples = np.concatenate(acc)
    return int((samples.astype(np.int64).sum() + len(samples) // 2) // len(samples))


def intra_encode_frame(cur: YuvFrame, cfg: CodecConfig) -> IntraFrameResult:
    """Encode one I frame.

    Per MB the encoder evaluates two luma candidates and keeps the better
    SAD + λ·bits trade-off:

    - **Intra_16x16**: one V/H/DC/Plane prediction for the whole MB;
    - **Intra_4x4**: sixteen per-block directional predictions with
      MPM-based mode signalling (each block predicted from the progressive
      reconstruction, so detailed content gets sharper predictors).

    Chroma uses an 8×8 V/H/DC/Plane mode shared by U and V.
    """
    qp = cfg.qp_i
    lam = cfg.lambda_for(qp)
    coder = get_coder(cfg.entropy_coder)
    h, w = cur.y.shape
    mb_rows, mb_cols = h // MB_SIZE, w // MB_SIZE

    recon_y = np.zeros((h, w), dtype=np.uint8)
    recon_u = np.zeros((h // 2, w // 2), dtype=np.uint8)
    recon_v = np.zeros((h // 2, w // 2), dtype=np.uint8)
    cnz4 = np.zeros((h // 4, w // 4), dtype=bool)
    bits = 0
    n_mb = mb_rows * mb_cols
    luma_levels = np.zeros((n_mb, 16, 4, 4), dtype=np.int32)
    c_ac = {
        "u": np.zeros((n_mb, 4, 4, 4), dtype=np.int32),
        "v": np.zeros((n_mb, 4, 4, 4), dtype=np.int32),
    }
    c_dc = {
        "u": np.zeros((n_mb, 2, 2), dtype=np.int32),
        "v": np.zeros((n_mb, 2, 2), dtype=np.int32),
    }
    luma_modes = np.zeros((mb_rows, mb_cols), dtype=np.int32)
    chroma_modes = np.zeros((mb_rows, mb_cols), dtype=np.int32)
    mb_types = np.zeros((mb_rows, mb_cols), dtype=np.int32)
    i4_modes = np.zeros((n_mb, 16), dtype=np.int32)
    mode4_grid = np.full((h // 4, w // 4), I4_DC, dtype=np.int32)
    luma_starts = slice_start_luma_rows(cfg)
    chroma_starts = frozenset(r // 2 for r in luma_starts)
    grid_starts = slice_start_block_rows(cfg)

    for r in range(mb_rows):
        for c in range(mb_cols):
            mb = r * mb_cols + c
            y0, x0 = r * MB_SIZE, c * MB_SIZE
            cy0, cx0 = y0 // 2, x0 // 2

            cur_mb = cur.y[y0 : y0 + 16, x0 : x0 + 16]

            mb_has_top = y0 not in luma_starts

            # --- Intra_16x16 candidate (does not touch recon_y) ----------
            mode_y, pred_y = choose_mode(
                cur_mb, recon_y, y0, x0, MB_SIZE, lam, has_top=mb_has_top
            )
            coded16 = code_luma_plane(
                cur_mb.astype(np.int64) - pred_y, qp, intra=True, coder=coder
            )
            recon16 = reconstruct(pred_y, coded16.recon_residual)
            bits16 = coded16.bits + int(ue_len(mode_y)) + 1  # +1 mb_type bit
            sad16 = int(np.abs(cur_mb.astype(np.int64) - recon16).sum())

            # --- Intra_4x4 candidate (codes progressively into recon_y) --
            bits4 = 1  # mb_type bit
            levels4 = np.zeros((16, 4, 4), dtype=np.int32)
            modes4 = np.zeros(16, dtype=np.int32)
            for blk in range(16):
                by, bx = divmod(blk, 4)
                br, bc = y0 + 4 * by, x0 + 4 * bx
                gy, gx = br // 4, bc // 4
                mpm = mpm_for_block(mode4_grid, gy, gx, grid_starts)
                cur_blk = cur.y[br : br + 4, bc : bc + 4]
                mode4, pred4 = choose_mode4(
                    cur_blk, recon_y, br, bc, mpm, lam,
                    has_top=br not in luma_starts,
                )
                coded_blk = code_luma_plane(
                    cur_blk.astype(np.int64) - pred4, qp, intra=True,
                    coder=coder,
                )
                recon_y[br : br + 4, bc : bc + 4] = reconstruct(
                    pred4, coded_blk.recon_residual
                )
                levels4[blk] = coded_blk.levels[0]
                modes4[blk] = mode4
                mode4_grid[gy, gx] = mode4
                bits4 += coded_blk.bits + mode_signal_bits(mode4, mpm)
            sad4 = int(np.abs(
                cur_mb.astype(np.int64)
                - recon_y[y0 : y0 + 16, x0 : x0 + 16]
            ).sum())

            # --- MB-type decision ----------------------------------------
            if sad16 + lam * bits16 <= sad4 + lam * bits4:
                mb_types[r, c] = 0
                luma_modes[r, c] = mode_y
                recon_y[y0 : y0 + 16, x0 : x0 + 16] = recon16
                mode4_grid[y0 // 4 : y0 // 4 + 4, x0 // 4 : x0 // 4 + 4] = I4_DC
                cnz4[y0 // 4 : y0 // 4 + 4, x0 // 4 : x0 // 4 + 4] = coded16.cnz4
                bits += bits16
                luma_levels[mb] = coded16.levels
            else:
                mb_types[r, c] = 1
                i4_modes[mb] = modes4
                cnz4[y0 // 4 : y0 // 4 + 4, x0 // 4 : x0 // 4 + 4] = (
                    levels4 != 0
                ).any(axis=(1, 2)).reshape(4, 4)
                bits += bits4
                luma_levels[mb] = levels4

            # Chroma: one mode shared by U and V (H.264 behaviour), chosen
            # on the U plane.
            cur_u = cur.u[cy0 : cy0 + 8, cx0 : cx0 + 8]
            c_has_top = cy0 not in chroma_starts
            mode_c, _ = choose_mode(
                cur_u, recon_u, cy0, cx0, 8, lam, has_top=c_has_top
            )
            chroma_modes[r, c] = mode_c
            bits += int(ue_len(mode_c))
            for plane_name, plane_cur, plane_rec in (
                ("u", cur.u, recon_u), ("v", cur.v, recon_v)
            ):
                pred_c = predict_block(
                    plane_rec, cy0, cx0, 8, mode_c, has_top=c_has_top
                )
                res_c = (
                    plane_cur[cy0 : cy0 + 8, cx0 : cx0 + 8].astype(np.int64)
                    - pred_c
                )
                coded_c = code_chroma_plane(res_c, qp, intra=True, coder=coder)
                plane_rec[cy0 : cy0 + 8, cx0 : cx0 + 8] = reconstruct(
                    pred_c, coded_c.recon_residual
                )
                bits += coded_c.bits
                c_ac[plane_name][mb] = coded_c.ac_levels
                c_dc[plane_name][mb] = coded_c.dc_levels[0]

    return IntraFrameResult(
        recon=YuvFrame(recon_y, recon_u, recon_v),
        bits=bits,
        cnz4=cnz4,
        luma_levels=luma_levels,
        u_ac=c_ac["u"],
        u_dc=c_dc["u"],
        v_ac=c_ac["v"],
        v_dc=c_dc["v"],
        luma_modes=luma_modes,
        chroma_modes=chroma_modes,
        mb_types=mb_types,
        i4_modes=i4_modes,
    )
