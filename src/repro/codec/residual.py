"""Residual coding: TQ → bit accounting → TQ⁻¹, vectorized per plane.

The inter path transforms whole residual planes at once (stacks of 4×4
blocks); the intra path reuses the same entry points per macroblock. Chroma
planes get the standard extra 2×2 Hadamard pass over the per-block DC
coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.entropy import block_bits, se_len, ue_len
from repro.codec.quant import chroma_qp
from repro.codec.transform import (
    blocks_to_plane,
    chroma_dc_dequantize,
    chroma_dc_quantize,
    dequantize,
    forward_transform,
    hadamard2x2,
    inverse_transform,
    plane_to_blocks,
    quantize,
)


@dataclass
class CodedPlane:
    """Result of coding one residual plane.

    Attributes
    ----------
    recon_residual:
        Reconstructed residual (what the decoder would add to the
        prediction), same shape as the input, int32.
    bits:
        Exact entropy-coder bit cost of the plane's levels.
    cnz4:
        ``(H/4, W/4)`` bool grid — 4×4 blocks with any non-zero level
        (feeds DBL boundary strengths).
    levels:
        Quantized level blocks ``(n, 4, 4)`` in raster block order (the
        actual syntax elements; used by bitstream writing and tests).
    """

    recon_residual: np.ndarray
    bits: int
    cnz4: np.ndarray
    levels: np.ndarray


def decode_luma_levels(
    levels: np.ndarray, height: int, width: int, qp: int
) -> np.ndarray:
    """Decoder-side TQ⁻¹ of a luma plane's level blocks (raster order)."""
    recon_blocks = inverse_transform(dequantize(levels, qp))
    return blocks_to_plane(recon_blocks, height, width).astype(np.int32)


def code_luma_plane(
    residual: np.ndarray, qp: int, intra: bool, coder=None
) -> CodedPlane:
    """TQ + TQ⁻¹ + rate accounting for a luma residual plane.

    ``coder`` is an optional coefficient coder (see
    :func:`repro.codec.entropy.get_coder`); ``None`` uses the vectorized
    CAVLC-lite accounting.
    """
    h, w = residual.shape
    blocks = plane_to_blocks(residual.astype(np.int64))
    coeffs = forward_transform(blocks)
    levels = quantize(coeffs, qp, intra)
    recon = decode_luma_levels(levels, h, w, qp)
    if coder is None or coder.name == "lite":
        bits = int(block_bits(levels).sum())
    else:
        bits = int(coder.block_bits(levels).sum())
    cnz4 = (levels != 0).any(axis=(1, 2)).reshape(h // 4, w // 4)
    return CodedPlane(recon_residual=recon, bits=bits, cnz4=cnz4, levels=levels)


@dataclass
class CodedChromaPlane:
    """Result of coding one chroma residual plane (AC blocks + DC Hadamard)."""

    recon_residual: np.ndarray
    bits: int
    ac_levels: np.ndarray
    dc_levels: np.ndarray


def _chroma_dc_bits(dc_levels: np.ndarray) -> int:
    """CAVLC-lite cost of the ``(nmb, 2, 2)`` chroma-DC level blocks."""
    flat = dc_levels.reshape(-1, 4)
    nz = flat != 0
    total = nz.sum(axis=1)
    bits = ue_len(total).astype(np.int64)
    bits += np.where(nz, se_len(flat), 0).sum(axis=1)
    idx = np.arange(4)[None, :]
    prev_nz = np.where(nz, idx, -10_000)
    prev_best = np.maximum.accumulate(
        np.concatenate([np.full((flat.shape[0], 1), -1), prev_nz[:, :-1]], axis=1),
        axis=1,
    )
    runs = np.where(nz, idx - prev_best - 1, 0)
    bits += np.where(nz, ue_len(np.maximum(runs, 0)), 0).sum(axis=1)
    return int(bits.sum())


def decode_chroma_levels(
    ac_levels: np.ndarray,
    dc_levels: np.ndarray,
    height: int,
    width: int,
    luma_qp: int,
) -> np.ndarray:
    """Decoder-side TQ⁻¹ of a chroma plane (AC blocks + 2×2 DC Hadamard).

    ``ac_levels`` are ``(n, 4, 4)`` blocks in raster order with zero DC;
    ``dc_levels`` are ``(n_mb, 2, 2)`` per-MB quantized DC groups.
    """
    qp = chroma_qp(luma_qp)
    by, bx = height // 4, width // 4
    deq = dequantize(ac_levels, qp)
    dc_recon = chroma_dc_dequantize(hadamard2x2(dc_levels), qp)
    dc_back = (
        dc_recon.reshape(by // 2, bx // 2, 2, 2).transpose(0, 2, 1, 3).reshape(by, bx)
    )
    deq[:, 0, 0] = dc_back.reshape(-1)
    recon_blocks = inverse_transform(deq)
    return blocks_to_plane(recon_blocks, height, width).astype(np.int32)


def code_chroma_plane(
    residual: np.ndarray, luma_qp: int, intra: bool, coder=None
) -> CodedChromaPlane:
    """TQ + TQ⁻¹ for a chroma residual plane with the 2×2 DC Hadamard pass.

    ``residual`` is the full chroma plane ``(H/2, W/2)``; one MB contributes
    an 8×8 region, i.e. a 2×2 group of 4×4 blocks whose DC coefficients go
    through the Hadamard/quant side path.
    """
    qp = chroma_qp(luma_qp)
    h, w = residual.shape
    if h % 8 or w % 8:
        raise ValueError(f"chroma plane {residual.shape} not 8x8-aligned")
    blocks = plane_to_blocks(residual.astype(np.int64))
    coeffs = forward_transform(blocks)

    # DC side path: group per MB (2×2 neighbouring blocks).
    by, bx = h // 4, w // 4
    dc_grid = coeffs[:, 0, 0].reshape(by, bx)
    dc_mb = (
        dc_grid.reshape(by // 2, 2, bx // 2, 2).transpose(0, 2, 1, 3).reshape(-1, 2, 2)
    )
    dc_t = hadamard2x2(dc_mb)
    dc_levels = chroma_dc_quantize(dc_t, qp, intra)

    # AC path: zero the DC before quantization.
    ac_coeffs = coeffs.copy()
    ac_coeffs[:, 0, 0] = 0
    ac_levels = quantize(ac_coeffs, qp, intra)
    ac_levels[:, 0, 0] = 0

    recon = decode_chroma_levels(ac_levels, dc_levels, h, w, luma_qp)
    if coder is None or coder.name == "lite":
        bits = int(block_bits(ac_levels).sum()) + _chroma_dc_bits(dc_levels)
    else:
        bits = int(coder.block_bits(ac_levels).sum()) + coder.chroma_dc_bits(
            dc_levels
        )
    return CodedChromaPlane(
        recon_residual=recon, bits=bits, ac_levels=ac_levels, dc_levels=dc_levels
    )


def reconstruct(pred: np.ndarray, recon_residual: np.ndarray) -> np.ndarray:
    """Clip prediction + reconstructed residual to uint8."""
    return np.clip(pred.astype(np.int32) + recon_residual, 0, 255).astype(np.uint8)
