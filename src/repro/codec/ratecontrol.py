"""Rate control: per-frame QP adaptation toward a target bitrate.

The paper encodes at fixed QP (VCEG common conditions); real deployments
need the encoder to hold a bitrate. This module implements the classic
buffer-based controller: a virtual decoder buffer drains at the target
rate and fills with each frame's actual bits, and the P-frame QP steps to
keep the buffer near half-full. QP moves are clamped to ±2 per frame to
avoid visible quality pumping.

Works with any encoder that takes a per-frame QP, and integrates with
:class:`ReferenceEncoder` through :class:`RateControlledEncoder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec.config import CodecConfig
from repro.codec.encoder import EncodedFrame, ReferenceEncoder
from repro.codec.frames import YuvFrame
from repro.util.validation import check_positive, check_range


@dataclass
class RateController:
    """Virtual-buffer rate controller.

    Parameters
    ----------
    target_bps:
        Target bitrate in bits/second.
    fps:
        Display rate used to derive the per-frame bit budget.
    initial_qp:
        Starting P-frame QP.
    buffer_frames:
        Virtual buffer size in frame budgets (latency/quality trade-off).
    max_step:
        Maximum QP change per frame.
    """

    target_bps: float
    fps: float
    initial_qp: int = 30
    buffer_frames: float = 4.0
    max_step: int = 2
    qp_min: int = 8
    qp_max: int = 48

    _qp: int = field(init=False)
    _buffer_bits: float = field(init=False)
    _complexity: float | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        check_positive("target_bps", self.target_bps)
        check_positive("fps", self.fps)
        check_range("initial_qp", self.initial_qp, 0, 51)
        check_positive("buffer_frames", self.buffer_frames)
        check_range("max_step", self.max_step, 1, 8)
        if not 0 <= self.qp_min <= self.qp_max <= 51:
            raise ValueError("require 0 <= qp_min <= qp_max <= 51")
        self._qp = self.initial_qp
        self._buffer_bits = 0.0  # deviation from the half-full ideal

    @property
    def frame_budget(self) -> float:
        """Bits available per frame at the target rate."""
        return self.target_bps / self.fps  # noqa: REP004 - fps validated > 0 in __post_init__

    @property
    def qp(self) -> int:
        """QP to use for the next P frame."""
        return self._qp

    @property
    def buffer_fullness(self) -> float:
        """Signed buffer deviation in frame budgets (0 = on target)."""
        return self._buffer_bits / self.frame_budget

    def update(self, frame_bits: int) -> int:
        """Record a coded frame; returns the QP for the next frame.

        Model-based control: maintain an EWMA estimate of the content
        complexity ``C`` in the exponential rate model
        ``bits ≈ C · 2^(−QP/6)`` (one quantizer-step doubling per 6 QP),
        then invert the model toward a target that includes a gentle
        buffer-deviation correction. Unlike P-on-buffer control, the model
        inversion has a true fixed point at the budget, so it converges
        instead of hunting. Steps stay clamped to ``±max_step``.
        """
        import math

        if frame_bits < 0:
            raise ValueError("frame_bits must be >= 0")
        self._buffer_bits += frame_bits - self.frame_budget
        # Clamp the virtual buffer so one huge I frame cannot wind up an
        # unbounded debt that mutes the controller for seconds.
        limit = self.buffer_frames * self.frame_budget
        self._buffer_bits = max(-limit, min(limit, self._buffer_bits))

        # Complexity estimate from the frame just coded.
        observed = max(frame_bits, 1.0) * 2.0 ** (self._qp / 6.0)
        if self._complexity is None:
            self._complexity = observed
        else:
            self._complexity = 0.5 * self._complexity + 0.5 * observed

        # Aim slightly below/above budget to bleed off the buffer deviation.
        deviation = self._buffer_bits / self.frame_budget
        correction = max(0.5, min(2.0, 1.0 - 0.25 * deviation))
        target_bits = self.frame_budget * correction
        qp_star = 6.0 * math.log2(self._complexity / target_bits)
        step = qp_star - self._qp
        step = max(-self.max_step, min(self.max_step, step))
        self._qp = int(round(
            max(self.qp_min, min(self.qp_max, self._qp + step))
        ))
        return self._qp


class RateControlledEncoder:
    """IPPP encoder with closed-loop rate control.

    Re-instantiates the (frozen) codec config each frame with the QP the
    controller chose; everything else — references, SFs, GOP state — is
    carried by an internal :class:`ReferenceEncoder` whose config is
    swapped in place (allowed because only the QP fields change, which are
    per-frame parameters in H.264).
    """

    def __init__(
        self,
        cfg: CodecConfig,
        target_bps: float,
        fps: float = 25.0,
        gop_size: int = 0,
    ) -> None:
        self.base_cfg = cfg
        self.controller = RateController(
            target_bps=target_bps, fps=fps, initial_qp=cfg.qp_p
        )
        self._enc = ReferenceEncoder(cfg, gop_size=gop_size)
        self.qp_history: list[int] = []

    def _cfg_with_qp(self, qp: int) -> CodecConfig:
        c = self.base_cfg
        return CodecConfig(
            width=c.width,
            height=c.height,
            search_range=c.search_range,
            num_ref_frames=c.num_ref_frames,
            qp_i=max(0, qp - 1),
            qp_p=qp,
            enabled_partitions=c.enabled_partitions,
            subpel=c.subpel,
            lambda_mode=c.lambda_mode,
            entropy_coder=c.entropy_coder,
        )

    def encode_frame(self, frame: YuvFrame) -> EncodedFrame:
        """Encode one frame at the controller's current QP."""
        qp = self.controller.qp
        self.qp_history.append(qp)
        self._enc.cfg = self._cfg_with_qp(qp)
        encoded = self._enc.encode_frame(frame)
        self.controller.update(encoded.bits)
        return encoded

    def encode_sequence(self, frames: list[YuvFrame]) -> list[EncodedFrame]:
        return [self.encode_frame(f) for f in frames]

    def achieved_bps(self, outputs: list[EncodedFrame]) -> float:
        """Mean bitrate of an encoded sequence at the controller's fps."""
        if not outputs:
            raise ValueError("no encoded frames")
        return sum(f.bits for f in outputs) / len(outputs) * self.controller.fps
