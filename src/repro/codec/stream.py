"""Stream encoder and simple file container.

:class:`StreamEncoder` wraps the reference encoder and emits one
byte-aligned packet per frame (sequence header available separately). The
file helpers add a minimal length-prefixed container so whole clips can be
written to disk and decoded back:

    header_len(u32 BE) header  { packet_len(u32 BE) packet }*
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.codec.bitstream import BitWriter
from repro.codec.config import CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.encoder import EncodedFrame, ReferenceEncoder
from repro.codec.entropy import get_coder
from repro.codec.frames import YuvFrame
from repro.codec.syntax import write_frame, write_sequence_header


class StreamEncoder:
    """Encodes frames and serializes each into a standalone packet."""

    def __init__(
        self,
        cfg: CodecConfig,
        gop_size: int = 0,
        scene_cut_threshold: float | None = None,
    ) -> None:
        self.cfg = cfg
        self._enc = ReferenceEncoder(
            cfg,
            keep_syntax=True,
            gop_size=gop_size,
            scene_cut_threshold=scene_cut_threshold,
        )
        self._coder = get_coder(cfg.entropy_coder)

    def sequence_header(self) -> bytes:
        """Serialized stream parameters (feed to the decoder first)."""
        w = BitWriter()
        write_sequence_header(w, self.cfg)
        return w.to_bytes()

    def encode_frame(self, frame: YuvFrame) -> tuple[EncodedFrame, bytes]:
        """Encode the next frame; returns ``(stats, packet_bytes)``."""
        encoded = self._enc.encode_frame(frame)
        assert encoded.syntax is not None
        w = BitWriter()
        write_frame(w, encoded.syntax, self._coder, self.cfg)
        return encoded, w.to_bytes()

    def reset(self) -> None:
        """Start a new GOP (next frame will be intra)."""
        self._enc.reset()


def write_stream(path: str | Path, frames: list[YuvFrame], cfg: CodecConfig) -> list[EncodedFrame]:
    """Encode ``frames`` to a length-prefixed container file.

    Returns the per-frame statistics; the on-disk bytes fully describe the
    clip (decodable with :func:`read_stream`).
    """
    enc = StreamEncoder(cfg)
    stats: list[EncodedFrame] = []
    with open(path, "wb") as fh:
        header = enc.sequence_header()
        fh.write(struct.pack(">I", len(header)))
        fh.write(header)
        for frame in frames:
            encoded, packet = enc.encode_frame(frame)
            stats.append(encoded)
            fh.write(struct.pack(">I", len(packet)))
            fh.write(packet)
    return stats


def read_stream(path: str | Path) -> tuple[CodecConfig, list[YuvFrame]]:
    """Decode a container file back into reconstructed frames."""
    with open(path, "rb") as fh:
        raw = fh.read()
    off = 0

    def take() -> bytes:
        nonlocal off
        if off + 4 > len(raw):
            raise ValueError("truncated stream container")
        (n,) = struct.unpack_from(">I", raw, off)
        off += 4
        if off + n > len(raw):
            raise ValueError("truncated packet")
        chunk = raw[off : off + n]
        off += n
        return chunk

    dec = SequenceDecoder.from_header(take())
    frames: list[YuvFrame] = []
    while off < len(raw):
        frames.append(dec.decode_packet(take()))
    return dec.cfg, frames
