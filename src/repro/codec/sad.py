"""Sum-of-Absolute-Differences kernels.

H.264 FSBM evaluates every displacement in the search area against every MB
partition. The standard trick (used by the paper's optimized kernels and
reproduced here in vectorized NumPy) is *SAD reuse*: compute the SAD of each
of the sixteen 4×4 cells of a macroblock once per displacement, then obtain
any of the 41 sub-partition SADs (1+2+2+4+8+8+16 across the 7 modes) as sums
of cell SADs.
"""

from __future__ import annotations

import numpy as np

from repro.codec.config import MB_SIZE

#: Number of 4×4 cells per MB side.
CELLS = MB_SIZE // 4


def sad(a: np.ndarray, b: np.ndarray) -> int:
    """Plain SAD between two equally-shaped uint8 blocks."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.abs(a.astype(np.int32) - b.astype(np.int32)).sum())


def strip_cell_sads(cur_strip: np.ndarray, ref_strip: np.ndarray) -> np.ndarray:
    """4×4-cell SADs for one MB row at one displacement.

    Parameters
    ----------
    cur_strip:
        Current-frame luma strip of shape ``(16, W)`` (one MB row).
    ref_strip:
        Displaced reference strip of identical shape.

    Returns
    -------
    ndarray of shape ``(mb_cols, 4, 4)`` int32 — SAD of each 4×4 cell of
    each MB in the row, indexed ``[mb, cell_row, cell_col]``.
    """
    if cur_strip.shape != ref_strip.shape:
        raise ValueError(
            f"strip shape mismatch: {cur_strip.shape} vs {ref_strip.shape}"
        )
    h, w = cur_strip.shape
    if h != MB_SIZE or w % MB_SIZE != 0:
        raise ValueError(f"strip must be (16, k*16), got {cur_strip.shape}")
    ad = np.abs(cur_strip.astype(np.int32) - ref_strip.astype(np.int32))
    # (16, W) -> (4, 4, W//4, 4) -> cell sums (4, W//4)
    cells = ad.reshape(CELLS, 4, w // 4, 4).sum(axis=(1, 3))
    mb_cols = w // MB_SIZE
    # (4, W//4) -> (4, mb_cols, 4) -> (mb_cols, 4, 4)
    return cells.reshape(CELLS, mb_cols, CELLS).transpose(1, 0, 2)


def strip_cell_sads_batch(
    cur_strip: np.ndarray, ref_windows: np.ndarray
) -> np.ndarray:
    """Cell SADs for one MB row at a batch of displacements.

    Parameters
    ----------
    cur_strip:
        ``(16, W)`` current strip.
    ref_windows:
        ``(n_disp, 16, W)`` displaced reference strips (usually a
        sliding-window view — no copy).

    Returns
    -------
    ndarray ``(n_disp, mb_cols, 4, 4)`` int32.
    """
    n, h, w = ref_windows.shape
    if (h, w) != cur_strip.shape or h != MB_SIZE or w % MB_SIZE != 0:
        raise ValueError(
            f"incompatible shapes cur={cur_strip.shape} windows={ref_windows.shape}"
        )
    ad = np.abs(ref_windows.astype(np.int16) - cur_strip.astype(np.int16))
    cells = ad.astype(np.int32).reshape(n, CELLS, 4, w // 4, 4).sum(axis=(2, 4))
    mb_cols = w // MB_SIZE
    return cells.reshape(n, CELLS, mb_cols, CELLS).transpose(0, 2, 1, 3)


def block_sad_grid(cur_block: np.ndarray, ref_block: np.ndarray) -> np.ndarray:
    """4×4-cell SAD grid ``(4, 4)`` for a single MB pair (test helper)."""
    if cur_block.shape != (MB_SIZE, MB_SIZE) or ref_block.shape != (MB_SIZE, MB_SIZE):
        raise ValueError("blocks must be 16x16")
    ad = np.abs(cur_block.astype(np.int32) - ref_block.astype(np.int32))
    return ad.reshape(CELLS, 4, CELLS, 4).sum(axis=(1, 3))
