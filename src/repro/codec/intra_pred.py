"""Intra prediction modes: Vertical, Horizontal, DC and Plane.

The H.264 Intra_16x16 luma modes and the corresponding 8×8 chroma modes.
Prediction always works from *reconstructed* neighbour samples (top row,
left column, top-left corner), so encoder and decoder derive identical
predictors from their own reconstruction loops.

Mode numbering follows the Intra_16x16 convention:
``0=V, 1=H, 2=DC, 3=Plane`` (chroma reuses the same numbering here).
Availability: DC always works (falls back to 128 with no neighbours),
V needs the row above, H the column left, Plane both plus the corner.
"""

from __future__ import annotations

import numpy as np

#: Mode indices.
MODE_V, MODE_H, MODE_DC, MODE_PLANE = 0, 1, 2, 3
MODE_NAMES = ("V", "H", "DC", "Plane")


def available_modes(has_top: bool, has_left: bool) -> list[int]:
    """Intra modes usable at a block position, cheapest-to-signal first."""
    modes = [MODE_DC]
    if has_top:
        modes.append(MODE_V)
    if has_left:
        modes.append(MODE_H)
    if has_top and has_left:
        modes.append(MODE_PLANE)
    return modes


def _dc_value(top: np.ndarray | None, left: np.ndarray | None) -> int:
    parts = [p for p in (top, left) if p is not None]
    if not parts:
        return 128
    samples = np.concatenate(parts).astype(np.int64)
    return int((samples.sum() + len(samples) // 2) // len(samples))


def _plane(top: np.ndarray, left: np.ndarray, corner: int, size: int) -> np.ndarray:
    """H.264 plane prediction (8.3.3.4 structure) for a size×size block."""
    half = size // 2
    # Gradient accumulators use the corner sample for the extreme tap.
    top_ext = np.concatenate(([corner], top)).astype(np.int64)   # index 0 = p[-1,-1]
    left_ext = np.concatenate(([corner], left)).astype(np.int64)
    h_acc = 0
    v_acc = 0
    for x in range(1, half + 1):
        h_acc += x * (int(top_ext[half + x]) - int(top_ext[half - x]))
        v_acc += x * (int(left_ext[half + x]) - int(left_ext[half - x]))
    if size == 16:
        b = (5 * h_acc + 32) >> 6
        c = (5 * v_acc + 32) >> 6
    else:  # size == 8 (chroma)
        b = (17 * h_acc + 16) >> 5
        c = (17 * v_acc + 16) >> 5
    a = 16 * (int(top[size - 1]) + int(left[size - 1]))
    yy, xx = np.mgrid[0:size, 0:size]
    pred = (a + b * (xx - (half - 1)) + c * (yy - (half - 1)) + 16) >> 5
    return np.clip(pred, 0, 255).astype(np.int32)


def predict_block(
    recon: np.ndarray,
    r0: int,
    c0: int,
    size: int,
    mode: int,
    has_top: bool | None = None,
    has_left: bool | None = None,
) -> np.ndarray:
    """Build the ``size``×``size`` intra prediction at (r0, c0).

    ``has_top``/``has_left`` override neighbour availability (used at
    slice boundaries, where prediction must not cross even though samples
    exist). Raises ``ValueError`` when the mode's neighbours are
    unavailable.
    """
    if has_top is None:
        has_top = r0 > 0
    if has_left is None:
        has_left = c0 > 0
    top = recon[r0 - 1, c0 : c0 + size].astype(np.int64) if has_top else None
    left = recon[r0 : r0 + size, c0 - 1].astype(np.int64) if has_left else None

    if mode == MODE_DC:
        return np.full((size, size), _dc_value(top, left), dtype=np.int32)
    if mode == MODE_V:
        if top is None:
            raise ValueError("V prediction needs the row above")
        return np.broadcast_to(top.astype(np.int32), (size, size)).copy()
    if mode == MODE_H:
        if left is None:
            raise ValueError("H prediction needs the column left")
        return np.broadcast_to(
            left.astype(np.int32)[:, None], (size, size)
        ).copy()
    if mode == MODE_PLANE:
        if top is None or left is None:
            raise ValueError("Plane prediction needs both neighbours")
        corner = int(recon[r0 - 1, c0 - 1])
        return _plane(top, left, corner, size)
    raise ValueError(f"unknown intra mode {mode}")


def choose_mode(
    cur_block: np.ndarray,
    recon: np.ndarray,
    r0: int,
    c0: int,
    size: int,
    lam: float,
    has_top: bool | None = None,
    has_left: bool | None = None,
) -> tuple[int, np.ndarray]:
    """Pick the minimum-cost mode: SAD(cur − pred) + λ·signal_bits.

    Returns ``(mode, prediction)``. Deterministic tie-breaking via the
    availability ordering (DC first).
    """
    from repro.codec.entropy import ue_len

    if has_top is None:
        has_top = r0 > 0
    if has_left is None:
        has_left = c0 > 0
    best_mode = -1
    best_pred: np.ndarray | None = None
    best_cost = None
    for mode in available_modes(has_top, has_left):
        pred = predict_block(recon, r0, c0, size, mode, has_top, has_left)
        sad = np.abs(cur_block.astype(np.int64) - pred).sum()
        cost = float(sad) + lam * float(ue_len(mode))
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_mode = mode
            best_pred = pred
    assert best_pred is not None
    return best_mode, best_pred
