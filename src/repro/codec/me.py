"""Motion Estimation: Full-Search Block-Matching (FSBM).

The ME module (paper Fig. 1) exhaustively evaluates every integer
displacement inside the search area, for every reference frame and every
sub-partition of every macroblock, and keeps the candidate with minimum SAD
per sub-partition. FSBM makes the computational load content-independent —
the property the paper leans on when it models per-device speed as a
constant "time per MB row" (the K^m parameters of Algorithm 2).

The kernel is organized exactly like the optimized implementations in the
paper's module library: one MB row at a time (the framework's distribution
unit), with 4×4 cell-SAD reuse shared by all 7 partition modes, vectorized
across the displacement batch and all MBs of the row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.frames import pad_plane
from repro.codec.partitions import PartitionMode, all_modes, partition_sads
from repro.codec.sad import strip_cell_sads_batch

#: dtype for stored SAD values (4×4 cells over 256-pel MBs fit easily).
_SAD_DTYPE = np.int64


@dataclass
class MotionField:
    """Best full-pel motion data for a band of MB rows.

    All per-mode arrays are indexed ``[row - row0, mb_col, part]``; motion
    vectors are ``(dy, dx)`` full-pel displacements relative to the
    co-located position, and ``refs`` holds the winning reference index.
    """

    row0: int
    nrows: int
    mb_cols: int
    mode_shapes: tuple[tuple[int, int], ...]
    mvs: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    refs: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    sads: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)

    def check_consistent(self) -> None:
        """Validate array shapes against the declared geometry."""
        from repro.codec.partitions import get_mode

        for shape in self.mode_shapes:
            nparts = get_mode(shape).nparts
            want_mv = (self.nrows, self.mb_cols, nparts, 2)
            want_scalar = (self.nrows, self.mb_cols, nparts)
            if self.mvs[shape].shape != want_mv:
                raise ValueError(f"mvs[{shape}] shape {self.mvs[shape].shape} != {want_mv}")
            if self.refs[shape].shape != want_scalar:
                raise ValueError(f"refs[{shape}] bad shape")
            if self.sads[shape].shape != want_scalar:
                raise ValueError(f"sads[{shape}] bad shape")

    def slice_rows(self, row0: int, nrows: int) -> "MotionField":
        """A sub-band view of this field covering ``[row0, row0 + nrows)``.

        The inverse of :meth:`merge`: the process backend ships each SME
        work item only the MB rows it refines instead of the whole merged
        field (the slice pickles as a copy of just those rows).
        """
        if row0 < self.row0 or row0 + nrows > self.row0 + self.nrows:
            raise ValueError(
                f"band [{row0}, {row0 + nrows}) outside field "
                f"[{self.row0}, {self.row0 + self.nrows})"
            )
        a = row0 - self.row0
        out = MotionField(
            row0=row0, nrows=nrows, mb_cols=self.mb_cols,
            mode_shapes=self.mode_shapes,
        )
        for shape in self.mode_shapes:
            out.mvs[shape] = self.mvs[shape][a : a + nrows]
            out.refs[shape] = self.refs[shape][a : a + nrows]
            out.sads[shape] = self.sads[shape][a : a + nrows]
        return out

    @staticmethod
    def merge(parts: list["MotionField"]) -> "MotionField":
        """Stitch row-band results (from different devices) into one field.

        Bands must be contiguous and non-overlapping once sorted by ``row0``;
        this is how the Video Coding Manager reassembles the per-device ME
        outputs after the MV device-to-host transfers.
        """
        if not parts:
            raise ValueError("nothing to merge")
        parts = sorted(parts, key=lambda p: p.row0)
        row = parts[0].row0
        for p in parts:
            if p.row0 != row:
                raise ValueError(f"bands not contiguous at row {row} (got {p.row0})")
            row += p.nrows
        first = parts[0]
        merged = MotionField(
            row0=first.row0,
            nrows=sum(p.nrows for p in parts),
            mb_cols=first.mb_cols,
            mode_shapes=first.mode_shapes,
        )
        for shape in first.mode_shapes:
            merged.mvs[shape] = np.concatenate([p.mvs[shape] for p in parts], axis=0)
            merged.refs[shape] = np.concatenate([p.refs[shape] for p in parts], axis=0)
            merged.sads[shape] = np.concatenate([p.sads[shape] for p in parts], axis=0)
        return merged


def motion_estimate_rows(
    cur_y: np.ndarray,
    refs_y: list[np.ndarray],
    row0: int,
    nrows: int,
    cfg: CodecConfig,
    refs_prepadded: bool = False,
) -> MotionField:
    """FSBM for MB rows ``[row0, row0 + nrows)`` of the current luma plane.

    Parameters
    ----------
    cur_y:
        Current-frame luma plane, ``(H, W)`` uint8.
    refs_y:
        Reconstructed reference luma planes, newest first (list index is the
        H.264 reference index). Either raw ``(H, W)`` planes or, when
        ``refs_prepadded`` is set, planes already replicate-padded by
        ``cfg.search_range`` on each side.
    row0, nrows:
        Band of MB rows to process — the framework's distribution unit.
    cfg:
        Codec configuration (search range, enabled partitions, #refs).

    Returns
    -------
    :class:`MotionField` with, per enabled partition mode, the minimum-SAD
    displacement, winning reference index and SAD value of every
    sub-partition. Ties break toward the earlier reference, then the
    smaller ``dy``, then the smaller ``dx`` (deterministic full search).
    """
    h, w = cur_y.shape
    if h % MB_SIZE or w % MB_SIZE:
        raise ValueError(f"plane {cur_y.shape} not MB-aligned")
    mb_rows, mb_cols = h // MB_SIZE, w // MB_SIZE
    if not 0 <= row0 < mb_rows or nrows < 0 or row0 + nrows > mb_rows:
        raise ValueError(f"band [{row0}, {row0 + nrows}) outside 0..{mb_rows}")
    if not refs_y:
        raise ValueError("at least one reference frame required")
    sr = cfg.search_range
    n_refs = min(len(refs_y), cfg.num_ref_frames)
    modes = all_modes(cfg.enabled_partitions)

    field_out = MotionField(
        row0=row0,
        nrows=nrows,
        mb_cols=mb_cols,
        mode_shapes=tuple(m.shape for m in modes),
    )
    for m in modes:
        field_out.mvs[m.shape] = np.zeros((nrows, mb_cols, m.nparts, 2), dtype=np.int32)
        field_out.refs[m.shape] = np.zeros((nrows, mb_cols, m.nparts), dtype=np.int32)
        field_out.sads[m.shape] = np.full(
            (nrows, mb_cols, m.nparts), np.iinfo(np.int64).max, dtype=_SAD_DTYPE
        )
    if nrows == 0:
        return field_out

    padded_refs = []
    for ref in refs_y[:n_refs]:
        if refs_prepadded:
            if ref.shape != (h + 2 * sr, w + 2 * sr):
                raise ValueError(
                    f"pre-padded ref shape {ref.shape} != {(h + 2 * sr, w + 2 * sr)}"
                )
            padded_refs.append(ref)
        else:
            if ref.shape != (h, w):
                raise ValueError(f"ref shape {ref.shape} != {(h, w)}")
            padded_refs.append(pad_plane(ref, sr))

    for r in range(row0, row0 + nrows):
        out_r = r - row0
        cur_strip = cur_y[r * MB_SIZE : (r + 1) * MB_SIZE, :]
        for ref_idx, ref_pad in enumerate(padded_refs):
            _search_row(
                cur_strip, ref_pad, r, ref_idx, sr, modes, field_out, out_r
            )
    return field_out


def _search_row(
    cur_strip: np.ndarray,
    ref_pad: np.ndarray,
    mb_row: int,
    ref_idx: int,
    sr: int,
    modes: list[PartitionMode],
    out: MotionField,
    out_r: int,
) -> None:
    """Exhaustive search of one MB row against one padded reference."""
    w = cur_strip.shape[1]
    # Padded strip containing every vertical displacement of this MB row:
    # padded coords of pixel row (mb_row*16 + dy) are offset by +sr.
    strip = ref_pad[mb_row * MB_SIZE : mb_row * MB_SIZE + MB_SIZE + 2 * sr, :]
    # windows[dy, dx] is the reference strip displaced by (dy - sr, dx - sr).
    windows = sliding_window_view(strip, (MB_SIZE, w))  # (2sr+1, 2sr+1, 16, W)

    for dy_i in range(2 * sr + 1):
        cell = strip_cell_sads_batch(cur_strip, windows[dy_i])  # (ndx, mbc, 4, 4)
        dy = dy_i - sr
        for mode in modes:
            psads = partition_sads(cell, mode).astype(_SAD_DTYPE)  # (ndx, mbc, nparts)
            best_dx_i = psads.argmin(axis=0)  # (mbc, nparts) first-min ⇒ smaller dx
            mbc, nparts = best_dx_i.shape
            cols = np.arange(mbc)[:, None]
            parts = np.arange(nparts)[None, :]
            best_sad = psads[best_dx_i, cols, parts]
            cur_best = out.sads[mode.shape][out_r]
            improved = best_sad < cur_best  # strict ⇒ earlier ref/dy wins ties
            if improved.any():
                out.sads[mode.shape][out_r][improved] = best_sad[improved]
                out.refs[mode.shape][out_r][improved] = ref_idx
                out.mvs[mode.shape][out_r, :, :, 0][improved] = dy
                out.mvs[mode.shape][out_r, :, :, 1][improved] = (
                    best_dx_i[improved] - sr
                )
