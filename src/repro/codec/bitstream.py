"""Bit-level I/O for the entropy coder.

A minimal MSB-first bit writer/reader pair. The writer tracks exact bit
counts (the encoder's rate figures) and can emit a byte-aligned buffer; the
reader exists so tests can prove every syntax element round-trips.
"""

from __future__ import annotations


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nacc = 0
        self.bit_count = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._acc = (self._acc << 1) | bit
        self._nacc += 1
        self.bit_count += 1
        if self._nacc == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._nacc = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append ``nbits`` bits of ``value`` (MSB first)."""
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        if value < 0 or (nbits < 63 and value >= (1 << nbits)):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        for i in range(nbits - 1, -1, -1):
            self.write_bit((value >> i) & 1)

    def to_bytes(self) -> bytes:
        """Byte-aligned contents (zero-padded in the final byte)."""
        out = bytearray(self._bytes)
        if self._nacc:
            out.append(self._acc << (8 - self._nacc))
        return bytes(out)


class BitReader:
    """MSB-first bit consumer over a byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_read(self) -> int:
        return self._pos

    def read_bit(self) -> int:
        byte_i, bit_i = divmod(self._pos, 8)
        if byte_i >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._pos += 1
        return (self._data[byte_i] >> (7 - bit_i)) & 1

    def read_bits(self, nbits: int) -> int:
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.read_bit()
        return value
