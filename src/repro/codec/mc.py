"""MC: partition-mode decision and motion-compensated prediction.

Per the paper (§II), MC selects the best MB-partitioning mode for each MB
"according to the adopted distortion metric and the refined MVs from the
SME", then builds the prediction so the residual can be transformed. We use
the standard Lagrangian decision: ``cost = SAD + λ·(mode/ref/MVD bits)``
with Exp-Golomb code lengths for the rate term.

Luma prediction samples the quarter-pel SF; chroma prediction uses the
standard H.264 eighth-pel bilinear interpolation on the reference chroma
planes. Everything is vectorized over the MBs that picked a given mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.entropy import se_len, ue_len
from repro.codec.frames import YuvFrame
from repro.codec.partitions import get_mode
from repro.codec.sme import SubpelField


@dataclass
class MCResult:
    """Outcome of mode decision + prediction for a full frame.

    Attributes
    ----------
    pred:
        Predicted frame (uint8 planes).
    mode_idx:
        ``(mb_rows, mb_cols)`` chosen partition-mode index into
        ``field.mode_shapes``.
    mv4, ref4:
        Per-4×4-luma-block grids ``(H/4, W/4, 2)`` / ``(H/4, W/4)`` of the
        covering partition's quarter-pel MV and reference index (consumed by
        DBL's boundary-strength derivation and by entropy coding).
    header_bits:
        Total mode + reference + MVD bits of the frame.
    distortion:
        Sum of the winning partitions' SADs (reporting only).
    """

    pred: YuvFrame
    mode_idx: np.ndarray
    mv4: np.ndarray
    ref4: np.ndarray
    header_bits: int
    distortion: int


def _mv_predictors(field: SubpelField) -> np.ndarray:
    """Per-MB MV predictor: the 16×16 MV of the left neighbour (0 at col 0).

    A simplification of the H.264 median predictor that stays raster-
    parallel (documented in DESIGN.md); used for MVD rate accounting only.
    """
    base = field.qmvs[(16, 16)][:, :, 0, :]  # (rows, cols, 2)
    pred = np.zeros_like(base)
    pred[:, 1:] = base[:, :-1]
    return pred


def decide_modes(field: SubpelField, cfg: CodecConfig, qp: int) -> np.ndarray:
    """Choose the minimum-cost partition mode per MB.

    Returns ``(nrows, mb_cols)`` indices into ``field.mode_shapes``. Ties
    break toward the earlier (larger-partition) mode, matching the encoder's
    preference for cheaper signalling.
    """
    lam = cfg.lambda_for(qp)
    pred = _mv_predictors(field)
    costs = []
    for mode_i, shape in enumerate(field.mode_shapes):
        dist = field.sads[shape].sum(axis=-1).astype(np.float64)
        mvd = field.qmvs[shape] - pred[:, :, None, :]
        mv_bits = se_len(mvd).sum(axis=(-2, -1))
        ref_bits = ue_len(field.refs[shape]).sum(axis=-1)
        mode_bits = int(ue_len(mode_i))
        costs.append(dist + lam * (mv_bits + ref_bits + mode_bits))
    cost = np.stack(costs, axis=0)
    return cost.argmin(axis=0)


def _gather_sf_blocks(
    sf: np.ndarray, qys: np.ndarray, qxs: np.ndarray, bh: int, bw: int
) -> np.ndarray:
    rows = qys[:, None] + 4 * np.arange(bh, dtype=np.int64)[None, :]
    cols = qxs[:, None] + 4 * np.arange(bw, dtype=np.int64)[None, :]
    return sf[rows[:, :, None], cols[:, None, :]]


def _chroma_predict(
    ref_plane: np.ndarray, cqy: np.ndarray, cqx: np.ndarray, ch: int, cw: int
) -> np.ndarray:
    """Eighth-pel bilinear chroma prediction for a stack of blocks.

    ``cqy/cqx`` are eighth-chroma-sample positions of each block's top-left
    corner (numerically equal to the luma quarter-pel position).
    """
    hh, ww = ref_plane.shape
    iy, fy = cqy >> 3, (cqy & 7).astype(np.int64)
    ix, fx = cqx >> 3, (cqx & 7).astype(np.int64)
    ry = iy[:, None] + np.arange(ch, dtype=np.int64)[None, :]
    rx = ix[:, None] + np.arange(cw, dtype=np.int64)[None, :]
    ry0 = np.clip(ry, 0, hh - 1)
    rx0 = np.clip(rx, 0, ww - 1)
    ry1 = np.clip(ry + 1, 0, hh - 1)
    rx1 = np.clip(rx + 1, 0, ww - 1)
    a = ref_plane[ry0[:, :, None], rx0[:, None, :]].astype(np.int64)
    b = ref_plane[ry0[:, :, None], rx1[:, None, :]].astype(np.int64)
    c = ref_plane[ry1[:, :, None], rx0[:, None, :]].astype(np.int64)
    d = ref_plane[ry1[:, :, None], rx1[:, None, :]].astype(np.int64)
    wy = fy[:, None, None]
    wx = fx[:, None, None]
    num = (
        (8 - wx) * (8 - wy) * a
        + wx * (8 - wy) * b
        + (8 - wx) * wy * c
        + wx * wy * d
        + 32
    )
    return (num >> 6).astype(np.uint8)


def build_prediction(
    mode_idx: np.ndarray,
    mode_shapes: tuple[tuple[int, int], ...],
    qmvs: dict[tuple[int, int], np.ndarray],
    refs: dict[tuple[int, int], np.ndarray],
    sfs: list[np.ndarray],
    ref_chroma: list[tuple[np.ndarray, np.ndarray]],
    height: int,
    width: int,
) -> tuple[YuvFrame, np.ndarray, np.ndarray]:
    """Build the motion-compensated frame from per-mode MV/ref arrays.

    Shared by the encoder's MC stage and the standalone decoder — both must
    sample the SF (luma, clamped at borders) and the reference chroma
    (eighth-pel bilinear) identically for drift-free reconstruction.

    Returns ``(pred_frame, mv4_grid, ref4_grid)``.
    """
    h, w = height, width
    pred_y = np.zeros((h, w), dtype=np.uint8)
    pred_u = np.zeros((h // 2, w // 2), dtype=np.uint8)
    pred_v = np.zeros((h // 2, w // 2), dtype=np.uint8)
    mv4 = np.zeros((h // 4, w // 4, 2), dtype=np.int32)
    ref4 = np.zeros((h // 4, w // 4), dtype=np.int32)
    n_refs = len(sfs)

    for mode_i, shape in enumerate(mode_shapes):
        sel = mode_idx == mode_i
        if not sel.any():
            continue
        mode = get_mode(shape)
        bh, bw = shape
        rr, cc = np.nonzero(sel)
        for p in range(mode.nparts):
            oy, ox = int(mode.origins[p, 0]), int(mode.origins[p, 1])
            base_y = rr * MB_SIZE + oy
            base_x = cc * MB_SIZE + ox
            qmv = qmvs[shape][rr, cc, p]         # (n, 2)
            prefs = refs[shape][rr, cc, p]
            qy = np.clip(4 * base_y + qmv[:, 0], 0, 4 * (h - bh)).astype(np.int64)
            qx = np.clip(4 * base_x + qmv[:, 1], 0, 4 * (w - bw)).astype(np.int64)

            # Per-4×4-block metadata for DBL / entropy.
            for cy in range(bh // 4):
                for cx in range(bw // 4):
                    g_r = (base_y // 4) + cy
                    g_c = (base_x // 4) + cx
                    mv4[g_r, g_c] = qmv
                    ref4[g_r, g_c] = prefs

            for ref in range(n_refs):
                mask = prefs == ref
                if not mask.any():
                    continue
                blocks = _gather_sf_blocks(sfs[ref], qy[mask], qx[mask], bh, bw)
                rows = base_y[mask][:, None] + np.arange(bh)[None, :]
                cols = base_x[mask][:, None] + np.arange(bw)[None, :]
                pred_y[rows[:, :, None], cols[:, None, :]] = blocks

                cqy = (4 * base_y[mask] + qmv[mask, 0]).astype(np.int64)
                cqx = (4 * base_x[mask] + qmv[mask, 1]).astype(np.int64)
                ch, cw = bh // 2, bw // 2
                u_ref, v_ref = ref_chroma[ref]
                u_blocks = _chroma_predict(u_ref, cqy, cqx, ch, cw)
                v_blocks = _chroma_predict(v_ref, cqy, cqx, ch, cw)
                crows = (base_y[mask] // 2)[:, None] + np.arange(ch)[None, :]
                ccols = (base_x[mask] // 2)[:, None] + np.arange(cw)[None, :]
                pred_u[crows[:, :, None], ccols[:, None, :]] = u_blocks
                pred_v[crows[:, :, None], ccols[:, None, :]] = v_blocks

    return YuvFrame(pred_y, pred_u, pred_v), mv4, ref4


def motion_compensate(
    cur: YuvFrame,
    field: SubpelField,
    sfs: list[np.ndarray],
    ref_chroma: list[tuple[np.ndarray, np.ndarray]],
    cfg: CodecConfig,
    qp: int,
) -> MCResult:
    """Run mode decision and build the full-frame prediction.

    Parameters
    ----------
    cur:
        Current frame (used for geometry and distortion reporting).
    field:
        Full-frame SME output.
    sfs:
        Quarter-pel SF per reference (luma).
    ref_chroma:
        ``(u, v)`` reconstructed chroma planes per reference.
    """
    h, w = cur.y.shape
    mb_rows = h // MB_SIZE
    if field.row0 != 0 or field.nrows != mb_rows:
        raise ValueError("MC requires a full-frame SubpelField")
    mode_idx = decide_modes(field, cfg, qp)

    pred_mv = _mv_predictors(field)
    header_bits = 0
    distortion = 0
    for mode_i, shape in enumerate(field.mode_shapes):
        sel = mode_idx == mode_i
        if not sel.any():
            continue
        rr, cc = np.nonzero(sel)
        header_bits += int(ue_len(mode_i)) * len(rr)
        mvd = field.qmvs[shape][rr, cc] - pred_mv[rr, cc][:, None, :]
        header_bits += int(se_len(mvd).sum())
        header_bits += int(ue_len(field.refs[shape][rr, cc]).sum())
        distortion += int(field.sads[shape][rr, cc].sum())

    pred, mv4, ref4 = build_prediction(
        mode_idx, field.mode_shapes, field.qmvs, field.refs,
        sfs, ref_chroma, h, w,
    )
    return MCResult(
        pred=pred,
        mode_idx=mode_idx,
        mv4=mv4,
        ref4=ref4,
        header_bits=header_bits,
        distortion=distortion,
    )
