"""Equidistant static partitioning baseline (homogeneous multi-GPU SoA [8]).

Splits every distributed module into equal MB-row bands each frame, with
two variants:

- ``include_cpu=False`` (default, the [8] setting): only the GPUs compute,
  "CPUs are not used for computing and an equidistant partitioning of
  CF/RFs is applied";
- ``include_cpu=True``: the equidistant split also covers the CPU — this is
  what FEVES's *initialization* frame does, so the gap between this
  baseline and FEVES isolates the benefit of the adaptive LP.
"""

from __future__ import annotations

from repro.baselines.runner import PolicyRunner
from repro.codec.config import CodecConfig
from repro.core.bounds import ExtraTransfers, ls_bounds, ms_bounds
from repro.core.config import FrameworkConfig
from repro.core.distribution import Distribution
from repro.core.load_balancing import LoadDecision
from repro.hw.topology import Platform


def equidistant_decision(
    platform: Platform,
    codec_cfg: CodecConfig,
    include_cpu: bool,
    halo: int = 2,
) -> LoadDecision:
    """Static equal split across GPUs (optionally including the CPU)."""
    n = codec_cfg.mb_rows
    devices = platform.devices
    d = len(devices)
    active = [
        i for i, dev in enumerate(devices) if include_cpu or dev.is_accelerator
    ]
    if not active:
        raise ValueError("no computing devices selected")
    per = Distribution.equidistant(n, len(active))
    rows = [0] * d
    for k, i in enumerate(active):
        rows[i] = per.rows[k]
    dist = Distribution(rows=tuple(rows), total=n)
    empty = ExtraTransfers(segments=(), rows=0)
    return LoadDecision(
        m=dist,
        l=dist,
        s=dist,
        delta_m=[
            ms_bounds(dist, dist, i) if devices[i].is_accelerator else empty
            for i in range(d)
        ],
        delta_l=[
            ls_bounds(dist, dist, i, halo) if devices[i].is_accelerator else empty
            for i in range(d)
        ],
    )


def run_equidistant(
    platform: Platform,
    codec_cfg: CodecConfig,
    n_inter_frames: int,
    include_cpu: bool = False,
    fw_cfg: FrameworkConfig | None = None,
) -> PolicyRunner:
    """Run the static equidistant baseline; R* goes to the first GPU."""
    decision = equidistant_decision(platform, codec_cfg, include_cpu)
    gpus = platform.gpus
    rstar = gpus[0].name if gpus else platform.devices[0].name

    def policy(idx, perf):
        return decision, rstar

    runner = PolicyRunner(platform, codec_cfg, policy, fw_cfg)
    runner.run(n_inter_frames)
    return runner
