"""ME-offload baseline ([5], [6]): only ME runs on one GPU.

The common pre-FEVES design: the most expensive module (ME) is offloaded to
a single GPU while the CPU performs INT, SME and the R* modules. Scales to
exactly one GPU — the limitation the paper calls out ("these approaches
offer a limited scalability since only one GPU device can be efficiently
employed").
"""

from __future__ import annotations

from repro.baselines.runner import PolicyRunner
from repro.codec.config import CodecConfig
from repro.core.bounds import ExtraTransfers, ms_bounds
from repro.core.config import FrameworkConfig
from repro.core.distribution import Distribution
from repro.core.load_balancing import LoadDecision
from repro.hw.topology import Platform


def offload_me_decision(platform: Platform, codec_cfg: CodecConfig) -> LoadDecision:
    """All ME on the first GPU; INT/SME (and R*) on the CPU."""
    n = codec_cfg.mb_rows
    devices = platform.devices
    d = len(devices)
    gpu_idx = next(
        (i for i, dev in enumerate(devices) if dev.is_accelerator), None
    )
    cpu_idx = next(
        (i for i, dev in enumerate(devices) if not dev.is_accelerator), None
    )
    if gpu_idx is None or cpu_idx is None:
        raise ValueError("offload-ME baseline needs one GPU and one CPU")
    m = Distribution.single_device(n, d, gpu_idx)
    ls = Distribution.single_device(n, d, cpu_idx)
    empty = ExtraTransfers(segments=(), rows=0)
    return LoadDecision(
        m=m,
        l=ls,
        s=ls,
        delta_m=[
            ms_bounds(m, ls, i) if devices[i].is_accelerator else empty
            for i in range(d)
        ],
        delta_l=[empty] * d,  # SME runs on the CPU: SF stays in host memory
    )


def run_offload_me(
    platform: Platform,
    codec_cfg: CodecConfig,
    n_inter_frames: int,
    fw_cfg: FrameworkConfig | None = None,
) -> PolicyRunner:
    """Run the ME-offload baseline (R* on the CPU, as in [5]/[6])."""
    decision = offload_me_decision(platform, codec_cfg)
    cpu = platform.cpu
    if cpu is None:
        raise ValueError("offload-ME baseline needs a CPU device")

    def policy(idx, perf):
        return decision, cpu.name

    runner = PolicyRunner(platform, codec_cfg, policy, fw_cfg)
    runner.run(n_inter_frames)
    return runner
