"""Single-device baseline: run the entire inter loop on one device.

These are the per-device curves of the paper's Fig. 6 (CPU_N, CPU_H, GPU_F,
GPU_K). The device both computes every module and — when it is a GPU —
pays the CF upload each frame, while the RF/SF stay resident on the device.
"""

from __future__ import annotations

from repro.baselines.runner import PolicyRunner
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.distribution import Distribution
from repro.core.load_balancing import LoadDecision
from repro.core.bounds import ExtraTransfers
from repro.hw.presets import get_platform
from repro.hw.topology import Platform


def _all_on(platform: Platform, codec_cfg: CodecConfig, device_index: int) -> LoadDecision:
    n = codec_cfg.mb_rows
    d = len(platform.devices)
    dist = Distribution.single_device(n, d, device_index)
    empty = ExtraTransfers(segments=(), rows=0)
    return LoadDecision(
        m=dist, l=dist, s=dist,
        delta_m=[empty] * d, delta_l=[empty] * d,
    )


def run_single_device(
    device_name: str,
    codec_cfg: CodecConfig,
    n_inter_frames: int,
    fw_cfg: FrameworkConfig | None = None,
) -> PolicyRunner:
    """Encode on a single-device platform preset; returns the runner."""
    platform = get_platform(device_name)
    if len(platform.devices) != 1:
        raise ValueError(f"{device_name!r} is not a single-device preset")

    def policy(idx, perf):
        return _all_on(platform, codec_cfg, 0), platform.devices[0].name

    runner = PolicyRunner(platform, codec_cfg, policy, fw_cfg)
    runner.run(n_inter_frames)
    return runner
