"""Shared baseline runner: a fixed scheduling *policy* instead of the LP.

Baselines reuse the full FEVES machinery (Video Coding Manager, Data Access
Management, DES platform) but replace the Load Balancing block with a
caller-supplied policy, so measured differences are attributable to the
scheduling decision alone — the comparison the paper's evaluation makes.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.codec.config import CodecConfig
from repro.core.coding_manager import FrameReport, VideoCodingManager
from repro.core.config import FrameworkConfig
from repro.core.data_access import DataAccessManager
from repro.core.load_balancing import LoadDecision
from repro.core.perf_model import PerformanceCharacterization
from repro.hw.interconnect import BufferSizes
from repro.hw.timeline import EncodingTrace
from repro.hw.topology import Platform

#: policy(frame_index, perf) -> (decision, rstar_device_name)
Policy = Callable[[int, PerformanceCharacterization], tuple[LoadDecision, str]]


class PolicyRunner:
    """Runs model-mode encoding under an arbitrary scheduling policy."""

    def __init__(
        self,
        platform: Platform,
        codec_cfg: CodecConfig,
        policy: Policy,
        fw_cfg: FrameworkConfig | None = None,
    ) -> None:
        self.platform = platform
        self.codec_cfg = codec_cfg
        self.policy = policy
        self.fw_cfg = fw_cfg or FrameworkConfig()
        sizes = BufferSizes(width=codec_cfg.width, height=codec_cfg.height)
        self.perf = PerformanceCharacterization(alpha=self.fw_cfg.ewma_alpha)
        self.manager = VideoCodingManager(platform, codec_cfg, self.fw_cfg)
        self.dam = DataAccessManager(platform, sizes)
        self.trace = EncodingTrace(platform=platform.name)
        self.reports: list[FrameReport] = []
        self._frames_done = 0

    def run(self, n_inter_frames: int) -> list[FrameReport]:
        """Encode ``n_inter_frames`` in model mode under the policy."""
        for _ in range(n_inter_frames):
            self._frames_done += 1
            idx = self._frames_done
            decision, rstar = self.policy(idx, self.perf)
            plan = self.dam.plan(decision, rstar)
            report = self.manager.run_frame(
                frame_index=idx,
                decision=decision,
                rstar_device=rstar,
                plan=plan,
                active_refs=min(idx, self.codec_cfg.num_ref_frames),
                perf=self.perf,
            )
            self.dam.commit(decision, rstar)
            self.trace.add(report.timeline)
            self.reports.append(report)
        return self.reports

    def steady_state_fps(self, warmup: int = 2) -> float:
        return self.trace.steady_state_fps(warmup=warmup)
