"""Baselines the paper compares against (§II related work).

- :mod:`repro.baselines.single_device` — the whole inter loop on one CPU or
  one GPU (the per-device bars of Fig. 6).
- :mod:`repro.baselines.equidistant` — static equidistant partitioning, as
  in homogeneous multi-GPU approaches [8] ("CPUs are not used for computing
  and an equidistant partitioning of CF/RFs is applied").
- :mod:`repro.baselines.offload_me` — offload only ME to a single GPU while
  the CPU runs the rest of the encoder ([5], [6]).
- :mod:`repro.baselines.oracle` — best *static* distribution computed from
  the simulator's ground-truth rates (upper bound for any non-adaptive
  scheduler; FEVES should approach it on stationary systems).
"""

from repro.baselines.equidistant import run_equidistant
from repro.baselines.offload_me import run_offload_me
from repro.baselines.oracle import run_oracle_static
from repro.baselines.runner import PolicyRunner
from repro.baselines.single_device import run_single_device

__all__ = [
    "PolicyRunner",
    "run_equidistant",
    "run_offload_me",
    "run_oracle_static",
    "run_single_device",
]
