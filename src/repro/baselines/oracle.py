"""Oracle static baseline: the best fixed distribution, known in advance.

Uses the simulator's *ground-truth* rate models (which FEVES never sees) to
solve the Algorithm-2 LP once, then applies that distribution to every
frame. On a stationary system this upper-bounds any static scheduler;
FEVES's adaptive loop should converge to within a few percent of it — and
beat it as soon as the platform's performance shifts.
"""

from __future__ import annotations

from repro.baselines.runner import PolicyRunner
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.load_balancing import LoadBalancer, LoadDecision
from repro.core.perf_model import PerformanceCharacterization
from repro.hw.interconnect import BufferSizes
from repro.hw.topology import Platform


def ground_truth_perf(
    platform: Platform, codec_cfg: CodecConfig, active_refs: int | None = None
) -> PerformanceCharacterization:
    """A characterization pre-filled from the simulator's true rate models."""
    refs = active_refs if active_refs is not None else codec_cfg.num_ref_frames
    perf = PerformanceCharacterization(alpha=1.0)
    sizes = BufferSizes(width=codec_cfg.width, height=codec_cfg.height)
    for dev in platform.devices:
        r = dev.spec.rates
        perf.observe_compute(dev.name, "me", 1, r.me_row_s(codec_cfg, refs))
        perf.observe_compute(dev.name, "int", 1, r.int_row_s(codec_cfg))
        perf.observe_compute(dev.name, "sme", 1, r.sme_row_s(codec_cfg))
        perf.observe_rstar(dev.name, r.rstar_frame_s(codec_cfg))
        if dev.is_accelerator:
            assert dev.spec.link is not None
            probe = float(sizes.sf_row)
            perf.observe_transfer(
                dev.name, "h2d", probe, dev.spec.link.transfer_s(probe, "h2d")
            )
            perf.observe_transfer(
                dev.name, "d2h", probe, dev.spec.link.transfer_s(probe, "d2h")
            )
    return perf


def oracle_decision(
    platform: Platform,
    codec_cfg: CodecConfig,
    fw_cfg: FrameworkConfig | None = None,
) -> tuple[LoadDecision, str]:
    """Solve the LP once with ground-truth rates; returns (decision, R* dev)."""
    fw_cfg = fw_cfg or FrameworkConfig()
    perf = ground_truth_perf(platform, codec_cfg)
    gpus = platform.gpus
    rstar = gpus[0].name if gpus else platform.devices[0].name
    balancer = LoadBalancer(platform, codec_cfg, fw_cfg)
    decision = balancer.solve(
        perf=perf,
        rstar_device=rstar,
        needs_rf={d.name: d.name != rstar for d in gpus},
        sigma_r_prev={d.name: 0 for d in gpus},
    )
    return decision, rstar


def run_oracle_static(
    platform: Platform,
    codec_cfg: CodecConfig,
    n_inter_frames: int,
    fw_cfg: FrameworkConfig | None = None,
) -> PolicyRunner:
    """Run the oracle static schedule for ``n_inter_frames``."""
    decision, rstar = oracle_decision(platform, codec_cfg, fw_cfg)

    def policy(idx, perf):
        return decision, rstar

    runner = PolicyRunner(platform, codec_cfg, policy, fw_cfg)
    runner.run(n_inter_frames)
    return runner
