#!/usr/bin/env python
"""Multi-stream encoding service on one shared platform.

Submits a broadcast-style mix of streams — a realtime contribution feed,
standard VOD channels, and a background transcode — to the encoding
service on SysHK. The admission controller commits capacity per stream,
the co-scheduler partitions the platform every round by deadline slack,
and midway through a GPU drops out: every session evicts it, rebalances
onto the CPU, and the deadline-miss metrics show who paid for the lost
capacity.

Run:  python examples/multi_stream_service.py
"""

from repro.hw.noise import FaultEvent, FaultSchedule
from repro.report import format_table
from repro.service import EncodingService, ServiceConfig, build_workload


def main() -> None:
    workload = build_workload(
        n_streams=4, n_frames=12, mix="broadcast", arrival_rate=8.0, seed=1
    )
    faults = FaultSchedule(
        [FaultEvent(frame=6, device="GPU_K", kind="dropout")]
    )
    service = EncodingService(ServiceConfig(platform="SysHK", faults=faults))
    metrics = service.run(workload)

    rows = [
        [
            m.stream_id,
            m.deadline_class,
            f"{m.fps_target:g}",
            m.frames,
            f"{m.p50_ms:.1f}",
            f"{m.p95_ms:.1f}",
            f"{100 * m.deadline_miss_rate:.0f}%",
            f"{m.achieved_fps:.1f}",
        ]
        for m in metrics.streams
    ]
    print(format_table(
        ["stream", "class", "fps", "frames", "p50 ms", "p95 ms",
         "miss", "ach fps"],
        rows,
        title="broadcast mix on SysHK — GPU_K drops out at round 6",
    ))
    print(
        f"\naggregate p95 latency: {metrics.p95_ms:.1f} ms, "
        f"deadline-miss rate: {100 * metrics.deadline_miss_rate:.0f}%"
    )
    print(
        f"fault events observed across streams: {metrics.fault_events} "
        f"(every session saw the dropout)"
    )
    util = ", ".join(
        f"{name.split('.')[0]} {100 * u:.0f}%"
        for name, u in metrics.device_utilization.items()
    )
    print(f"device utilization over the run: {util}")


if __name__ == "__main__":
    main()
