#!/usr/bin/env python
"""Rate-distortion analysis: QP sweeps and BD-rate of codec ablations.

Encodes a synthetic clip across a QP ladder with three encoder variants —
the full tool set, 16×16-only partitions, and full-pel-only motion (SME
disabled) — and reports R-D curves plus the Bjøntegaard-Delta rate cost of
each ablation relative to the full encoder.

Run:  python examples/rd_curves.py
"""

from repro.codec.bdrate import bd_rate
from repro.codec.config import CodecConfig
from repro.codec.stats import rd_sweep
from repro.report import ascii_series, format_table
from repro.video import SyntheticSequence

QPS = (22, 27, 32, 37)


def main() -> None:
    clip = SyntheticSequence(width=176, height=144, seed=8,
                             noise_sigma=1.5).frames(5)
    base = CodecConfig(width=176, height=144, search_range=8, num_ref_frames=2)

    variants = {
        "full (7 partitions, quarter-pel)": base,
        "16x16-only partitions": CodecConfig(
            width=176, height=144, search_range=8, num_ref_frames=2,
            enabled_partitions=((16, 16),),
        ),
        "full-pel only (SME off)": CodecConfig(
            width=176, height=144, search_range=8, num_ref_frames=2,
            subpel=False,
        ),
    }

    print(f"encoding {len(clip)} QCIF frames at QPs {QPS} "
          f"x {len(variants)} variants…\n")
    curves = {name: rd_sweep(clip, cfg, QPS) for name, cfg in variants.items()}

    rows = []
    for name, pts in curves.items():
        for p in pts:
            rows.append([name, p.qp, f"{p.bits / 1000:.0f}", f"{p.psnr_y:.2f}"])
    print(format_table(["variant", "QP", "kbit", "PSNR-Y dB"], rows,
                       title="R-D operating points"))

    print("\nR-D curves (x = operating point, low QP right-most):")
    print(ascii_series(
        {name.split(" ")[0]: [p.psnr_y for p in pts]
         for name, pts in curves.items()},
        y_label="PSNR-Y [dB] per QP step (38→22)",
        height=12,
    ))

    anchor = curves["full (7 partitions, quarter-pel)"]
    print("\nBD-rate vs the full encoder (positive = bits wasted):")
    for name, pts in curves.items():
        if pts is anchor:
            continue
        try:
            delta = bd_rate(anchor, pts)
            print(f"  {name:32s}: {delta:+.1f}%")
        except ValueError as exc:
            print(f"  {name:32s}: n/a ({exc})")


if __name__ == "__main__":
    main()
