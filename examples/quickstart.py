#!/usr/bin/env python
"""Quickstart: collaboratively encode a synthetic clip with FEVES.

Runs the framework in ``compute="real"`` mode on the SysHK preset
(Haswell CPU + Kepler GPU, simulated): the actual NumPy H.264 inter-loop
kernels execute, split across the devices by the adaptive LP, and the
output is verified bit-exact against the sequential reference encoder.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CodecConfig, FevesFramework, FrameworkConfig, get_platform
from repro.codec.encoder import ReferenceEncoder
from repro.report import format_table
from repro.video import SyntheticSequence


def main() -> None:
    # Small geometry so the real NumPy kernels finish in seconds.
    cfg = CodecConfig(width=192, height=160, search_range=8, num_ref_frames=2)
    clip = SyntheticSequence(
        width=cfg.width, height=cfg.height, seed=42, noise_sigma=2.0
    ).frames(8)

    print(f"Encoding {len(clip)} frames of {cfg.width}x{cfg.height} "
          f"(SA {cfg.sa_side}x{cfg.sa_side}, {cfg.num_ref_frames} RFs) on SysHK…")
    fw = FevesFramework(
        get_platform("SysHK"), cfg, FrameworkConfig(compute="real")
    )
    outcomes = fw.encode(clip)

    rows = []
    for o in outcomes:
        e = o.encoded
        assert e is not None
        rows.append(
            [
                e.index,
                "I" if e.is_intra else "P",
                f"{e.bits / 1000:.1f}",
                f"{e.psnr['y']:.2f}",
                f"{o.time_s * 1e3:.2f}" if not e.is_intra else "-",
            ]
        )
    print(format_table(
        ["frame", "type", "kbit", "PSNR-Y dB", "simulated ms"], rows
    ))
    print(f"\nsteady-state simulated speed: {fw.steady_state_fps():.1f} fps "
          f"(R* on {fw.rstar_device}, LB overhead "
          f"{fw.scheduling_overhead_ms:.2f} ms/frame)")

    # Verify against the single-device reference encoder: bit-exact.
    ref = ReferenceEncoder(cfg).encode_sequence(clip)
    for r, o in zip(ref, outcomes):
        assert o.encoded is not None
        assert r.bits == o.encoded.bits
        assert np.array_equal(r.recon.y, o.encoded.recon.y)
    print("collaborative output verified bit-exact against the reference "
          "encoder ✓")


if __name__ == "__main__":
    main()
