#!/usr/bin/env python
"""Self-adaptation under system load changes (the paper's Fig. 7 scenario).

Encodes 100 inter frames of 1080p on SysHK while injecting the paper's
load-perturbation events (other processes stealing CPU time at specific
frames). The online Performance Characterization detects each change from
the measured per-module times and the LP redistributes within one frame.

Run:  python examples/adaptive_under_load.py
"""

from repro import CodecConfig, FevesFramework, FrameworkConfig, get_platform
from repro.hw.noise import NoiseModel, PerturbationEvent, PerturbationSchedule
from repro.report import ascii_series, format_table


def main() -> None:
    cfg = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=2)
    events = [
        PerturbationEvent(frame=31, device="CPU_H", factor=2.0),
        PerturbationEvent(frame=55, device="CPU_H", factor=3.0, duration=20),
        PerturbationEvent(frame=92, device="GPU_K", factor=1.5),
    ]
    fw = FevesFramework(
        get_platform("SysHK"),
        cfg,
        FrameworkConfig(noise=NoiseModel(schedule=PerturbationSchedule(events))),
    )
    fw.run_model(100)
    times = fw.frame_times_ms()

    print(ascii_series(
        {"per-frame time": times},
        hline=40.0,
        hline_label="real-time (40 ms)",
        y_label="SysHK, 1080p, 32x32 SA, 2 RFs — injected load events at "
        "frames 31 (CPU x2), 55-74 (CPU x3, sustained), 92 (GPU x1.5)",
        height=16,
    ))

    rows = []
    for label, frame in (("baseline", 20), ("1-frame CPU spike", 31),
                         ("recovered", 33), ("sustained CPU load", 65),
                         ("GPU hiccup", 92), ("end", 100)):
        rep = fw.reports[frame - 1]
        rows.append([
            label,
            frame,
            f"{rep.tau_tot * 1e3:.1f}",
            str(rep.decision.m.rows),
        ])
    print()
    print(format_table(
        ["phase", "frame", "ms", "ME rows (GPU_K, CPU_H)"],
        rows,
        title="Load-balancer reactions (distribution vector m)",
    ))
    print("\nDuring the sustained CPU slowdown the LP moves ME rows from the"
          " CPU to the GPU and the frame time settles at a new optimum;"
          " single-frame spikes recover immediately (paper §IV).")


if __name__ == "__main__":
    main()
