#!/usr/bin/env python
"""Graceful degradation under device faults.

Encodes 1080p on SysNFF (CPU + two GPUs) while injecting device faults:
one GPU hangs mid-run and recovers, then permanently drops out. The
framework surfaces each fault as an event — the frame it strikes absorbs
a detection stall and host-side redo of the lost bands — then evicts the
device, re-solves the LP over the survivors on the very next frame, and
re-admits the hung device once its outage ends.

Run:  python examples/fault_tolerance.py
"""

from repro import CodecConfig, FevesFramework, FrameworkConfig, get_platform
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.report import ascii_series, format_table


def main() -> None:
    cfg = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)
    faults = FaultSchedule([
        FaultEvent(frame=20, device="GPU_F2", kind="hang", duration=8),
        FaultEvent(frame=45, device="GPU_F2", kind="dropout"),
    ])
    fw = FevesFramework(
        get_platform("SysNFF"), cfg, FrameworkConfig(faults=faults)
    )
    fw.run_model(60)
    times = fw.frame_times_ms()

    print(ascii_series(
        {"per-frame time": times},
        hline=40.0,
        hline_label="real-time (40 ms)",
        y_label="SysNFF, 1080p — GPU_F2 hangs at frame 20 (8 frames), "
        "permanently drops out at frame 45",
        height=16,
    ))

    rows = []
    for label, frame in (("3-device steady state", 15),
                         ("hang strikes", 20),
                         ("rebalanced on survivors", 22),
                         ("re-admitted", 29),
                         ("back to 3 devices", 35),
                         ("dropout strikes", 45),
                         ("2-device steady state", 60)):
        rep = fw.reports[frame - 1]
        entry = fw.fault_log[frame - 1]
        rows.append([
            label,
            frame,
            f"{rep.tau_tot * 1e3:.1f}",
            str(rep.decision.m.rows),
            ",".join(entry.live),
        ])
    print()
    print(format_table(
        ["phase", "frame", "ms", "ME rows", "live devices"],
        rows,
        title="Fault lifecycle (distribution vector m over GPU_F, GPU_F2, CPU_N)",
    ))

    # Compare the post-dropout steady state against a framework that never
    # had the faulty GPU: graceful degradation means they should match.
    oracle = FevesFramework(get_platform("SysNF"), cfg, FrameworkConfig())
    oracle.run_model(15)
    post_fault = fw.reports[-1].tau_tot
    oracle_t = oracle.reports[-1].tau_tot
    print(f"\npost-dropout frame time {post_fault * 1e3:.1f} ms vs "
          f"from-scratch SysNF {oracle_t * 1e3:.1f} ms "
          f"({abs(post_fault / oracle_t - 1) * 100:.1f}% apart): the eviction "
          "converges to the oracle schedule for the reduced platform.")


if __name__ == "__main__":
    main()
