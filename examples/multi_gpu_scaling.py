#!/usr/bin/env python
"""Multi-GPU scaling study (the paper's Fig. 6 scenario).

Model-mode 1080p encoding across every device/system preset and the
related-work baselines — reproduces the headline comparison: FEVES's
adaptive co-scheduling beats single devices, static equidistant splits and
single-module ME offloading.

Run:  python examples/multi_gpu_scaling.py
"""

from repro import CodecConfig, FevesFramework, FrameworkConfig, get_platform
from repro.baselines import (
    run_equidistant,
    run_offload_me,
    run_oracle_static,
    run_single_device,
)
from repro.report import ascii_bars, format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)
N = 15


def feves(platform_name: str) -> float:
    fw = FevesFramework(get_platform(platform_name), CFG, FrameworkConfig())
    fw.run_model(N)
    return fw.steady_state_fps()


def main() -> None:
    print("1080p, 32x32 SA, 1 RF — steady-state fps (simulated platforms)\n")

    singles = {
        name: run_single_device(name, CFG, N).steady_state_fps()
        for name in ("CPU_N", "CPU_H", "GPU_F", "GPU_K")
    }
    systems = {name: feves(name) for name in ("SysNF", "SysNFF", "SysHK")}

    print(format_table(
        ["config", "fps", "real-time?"],
        [
            [k, f"{v:.1f}", "yes" if v >= 25 else "no"]
            for k, v in {**singles, **systems}.items()
        ],
        title="Devices and FEVES systems",
    ))

    print("\nScheduling policies on SysNFF (CPU_N + 2x GPU_F):\n")
    policies = {
        "FEVES adaptive LP": systems["SysNFF"],
        "oracle static": run_oracle_static(
            get_platform("SysNFF"), CFG, N
        ).steady_state_fps(),
        "equidistant, GPUs only [8]": run_equidistant(
            get_platform("SysNFF"), CFG, N
        ).steady_state_fps(),
        "equidistant incl. CPU": run_equidistant(
            get_platform("SysNFF"), CFG, N, include_cpu=True
        ).steady_state_fps(),
        "ME offload to 1 GPU [5,6]": run_offload_me(
            get_platform("SysNF"), CFG, N
        ).steady_state_fps(),
    }
    print(ascii_bars(policies, unit=" fps"))

    print("\nTakeaways (paper §IV):")
    print(f"  SysNFF/GPU_F speedup: {systems['SysNFF'] / singles['GPU_F']:.2f}x "
          "(paper: up to 2.2x)")
    print(f"  SysNFF/CPU_N speedup: {systems['SysNFF'] / singles['CPU_N']:.2f}x "
          "(paper: up to 5x)")
    print(f"  SysHK /GPU_K speedup: {systems['SysHK'] / singles['GPU_K']:.2f}x "
          "(paper: ~1.3x)")
    print("  naively adding the CPU to an equidistant split *hurts* — "
          "adaptive balancing is what makes heterogeneity pay off.")


if __name__ == "__main__":
    main()
