#!/usr/bin/env python
"""Define a custom heterogeneous platform and inspect one frame's schedule.

Shows the extension surface a downstream user cares about: build your own
device specs (rates + link), assemble a Platform, run FEVES on it, and
read the per-frame Gantt timeline with the τ1/τ2/τtot synchronization
points of the paper's Fig. 4.

Run:  python examples/custom_platform.py
"""

from repro import CodecConfig, FevesFramework, FrameworkConfig
from repro.hw.device import DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.rates import ModuleRates
from repro.hw.topology import Platform


def main() -> None:
    # An asymmetric 3-device box: a big GPU with a dual copy engine, a
    # small GPU behind a slow PCIe link, and an 8-core CPU.
    big_gpu = DeviceSpec(
        name="bigGPU",
        kind="gpu",
        rates=ModuleRates(me_mb_us=1.2, int_row_us=20, sme_row_us=30,
                          rstar_row_us=25),
        link=LinkSpec(h2d_gbps=12.0, d2h_gbps=11.0, latency_s=8e-6,
                      copy_engines=2),
    )
    small_gpu = DeviceSpec(
        name="smallGPU",
        kind="gpu",
        rates=ModuleRates(me_mb_us=4.0, int_row_us=70, sme_row_us=100,
                          rstar_row_us=80),
        link=LinkSpec(h2d_gbps=3.0, d2h_gbps=2.5, latency_s=20e-6,
                      copy_engines=1),
    )
    cpu = DeviceSpec(
        name="CPU8",
        kind="cpu",
        rates=ModuleRates(me_mb_us=3.0, int_row_us=55, sme_row_us=80,
                          rstar_row_us=55),
    )
    platform = Platform(name="custom", specs=[big_gpu, small_gpu, cpu])

    cfg = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)
    fw = FevesFramework(platform, cfg, FrameworkConfig())
    outcomes = fw.run_model(8)

    print(f"custom platform: {[d.name for d in platform.devices]}")
    print(f"R* mapped (Dijkstra) to: {fw.rstar_device}")
    print(f"steady state: {fw.steady_state_fps():.1f} fps\n")

    last = fw.reports[-1]
    print("final load distributions (MB rows per device):")
    print(f"  ME : {last.decision.m.rows}")
    print(f"  INT: {last.decision.l.rows}")
    print(f"  SME: {last.decision.s.rows}")
    print(f"  sync points: tau1={last.tau1 * 1e3:.2f} ms  "
          f"tau2={last.tau2 * 1e3:.2f} ms  tau_tot={last.tau_tot * 1e3:.2f} ms\n")

    print("frame schedule (#=kernel  >=h2d  <=d2h):")
    print(last.timeline.gantt_text(width=76))

    util = {
        res: last.timeline.utilization(res)
        for dev in platform.devices
        for res in [r.name for r in dev.resources()]
    }
    print("\nresource utilization over the frame:")
    for res, u in util.items():
        print(f"  {res:>18s}: {u:5.1%}")


if __name__ == "__main__":
    main()
