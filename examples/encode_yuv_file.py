#!/usr/bin/env python
"""Encode a raw YUV 4:2:0 file (the JM/VCEG workflow).

Reads planar YUV420 input — generating a synthetic clip first if none is
supplied — encodes it with the reference encoder, and reports the per-frame
rate/distortion summary plus the mode-decision histogram.

Run:  python examples/encode_yuv_file.py [file.yuv WIDTH HEIGHT [N_FRAMES]]
"""

import sys
from pathlib import Path

from repro import CodecConfig
from repro.codec.encoder import ReferenceEncoder
from repro.report import format_table
from repro.video import SyntheticSequence, read_yuv420, write_yuv420


def main() -> None:
    if len(sys.argv) >= 4:
        path, width, height = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
        count = int(sys.argv[4]) if len(sys.argv) > 4 else None
    else:
        width, height, count = 176, 144, 6
        path = Path(__file__).parent / "_generated_qcif.yuv"
        if not Path(path).exists():
            print(f"(no input given — writing a synthetic QCIF clip to {path})")
            clip = SyntheticSequence(width=width, height=height, seed=3).frames(6)
            write_yuv420(path, clip)

    frames = read_yuv420(path, width, height, count)
    if not frames:
        raise SystemExit(f"no complete {width}x{height} frames in {path}")
    print(f"read {len(frames)} frames of {width}x{height} from {path}")

    cfg = CodecConfig(width=width, height=height, search_range=8,
                      num_ref_frames=2)
    enc = ReferenceEncoder(cfg)
    out = enc.encode_sequence(frames)

    rows = [
        [e.index, "I" if e.is_intra else "P", f"{e.bits / 1000:.1f}",
         f"{e.psnr['y']:.2f}", f"{e.psnr['u']:.2f}"]
        for e in out
    ]
    print(format_table(["frame", "type", "kbit", "PSNR-Y", "PSNR-U"], rows))

    total_kbit = sum(e.bits for e in out) / 1000
    print(f"\ntotal: {total_kbit:.1f} kbit "
          f"({total_kbit / len(out):.1f} kbit/frame)")

    hist: dict[tuple[int, int], int] = {}
    for e in out[1:]:
        for shape, n in e.mode_histogram.items():
            hist[shape] = hist.get(shape, 0) + n
    print("\ninter partition-mode usage (h x w):")
    for shape, n in sorted(hist.items(), key=lambda kv: -kv[1]):
        print(f"  {shape[0]:>2}x{shape[1]:<2}: {n}")


if __name__ == "__main__":
    main()
