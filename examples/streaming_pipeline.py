#!/usr/bin/env python
"""Streaming pipeline: rate control, scene cuts, packet loss, concealment.

Simulates a live-streaming use of the codec layer: the encoder holds a
target bitrate with closed-loop QP control and inserts intra frames at
scene cuts; the channel drops a packet; the decoder conceals the loss and
recovers at the next intra refresh.

Run:  python examples/streaming_pipeline.py
"""

from repro.codec.config import CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.frames import YuvFrame
from repro.codec.quality import psnr
from repro.codec.ratecontrol import RateControlledEncoder
from repro.codec.stream import StreamEncoder
from repro.report import format_table
from repro.video import SyntheticSequence

TARGET_KBPS = 250
LOST_FRAME = 5


def make_clip() -> list[YuvFrame]:
    a = SyntheticSequence(width=176, height=144, seed=6, noise_sigma=1.0,
                          n_objects=2, pan=(0.3, 0.8))
    scene_a = a.frames(9)
    scene_b = [YuvFrame((255 - f.y), f.u, f.v) for f in a.frames(9, start=9)]
    return scene_a + scene_b  # hard cut at frame 9


def main() -> None:
    clip = make_clip()
    cfg = CodecConfig(width=176, height=144, search_range=8, num_ref_frames=2)

    # --- rate-controlled encode ------------------------------------------
    rc = RateControlledEncoder(cfg, target_bps=TARGET_KBPS * 1000, fps=25.0)
    rc_out = rc.encode_sequence(clip)
    achieved = rc.achieved_bps(rc_out[4:]) / 1000
    print(f"rate control: target {TARGET_KBPS} kbps -> achieved "
          f"{achieved:.0f} kbps steady (QP path {rc.qp_history})\n")

    # --- streamed encode with scene-cut refresh + lossy channel ----------
    enc = StreamEncoder(cfg, scene_cut_threshold=20.0)
    dec = SequenceDecoder.from_header(enc.sequence_header())

    rows = []
    for i, frame in enumerate(clip):
        stats, packet = enc.encode_frame(frame)
        if i == LOST_FRAME:
            recon = dec.conceal_lost_frame()
            event = "LOST -> concealed"
        else:
            recon = dec.decode_packet(packet)
            event = "I (scene cut)" if stats.is_intra and i > 0 else (
                "I" if stats.is_intra else ""
            )
        rows.append([
            i,
            f"{len(packet)}B",
            event,
            f"{psnr(frame.y, recon.y):.1f}",
        ])
    print(format_table(
        ["frame", "packet", "event", "decoded PSNR-Y dB"],
        rows,
        title=f"Lossy channel: packet {LOST_FRAME} dropped; scene cut at 9",
    ))
    print("\nThe concealment keeps the stream decodable; drift persists "
          "until the scene-cut intra refresh restores full quality.")


if __name__ == "__main__":
    main()
