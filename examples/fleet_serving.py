#!/usr/bin/env python
"""Fleet-scale serving: a mixed cluster rides out a whole-node dropout.

Dispatches a broadcast-style stream mix across a 4-node heterogeneous
fleet (two hybrid SysHK nodes, one SysNF, one SysNFF) under slack-aware
routing. Early in the run node n0 — a SysHK carrying realtime traffic —
drops out: its sessions are evicted, their remaining frames rerouted as
continuations over the survivors, and the sanitizer's cluster invariants
(SAN-E1..E3) verify that no frame was lost or duplicated in the move.

Run:  python examples/fleet_serving.py
"""

from repro.cluster import (
    Cluster,
    ClusterConfig,
    NodeFaultEvent,
    NodeFaultSchedule,
    NodeSpec,
)
from repro.report import format_table
from repro.sanitizers import TimelineSanitizer
from repro.service import build_workload


def main() -> None:
    workload = build_workload(
        n_streams=8, n_frames=8, mix="broadcast", arrival_rate=12.0, seed=3
    )
    cluster = Cluster(ClusterConfig(
        nodes=(
            NodeSpec("n0", platform="SysHK", headroom=2.0),
            NodeSpec("n1", platform="SysNF", headroom=2.0),
            NodeSpec("n2", platform="SysNFF", headroom=2.0),
            NodeSpec("n3", platform="SysHK", headroom=2.0),
        ),
        policy="slack",
        node_faults=NodeFaultSchedule(
            [NodeFaultEvent("n0", at_s=0.15, kind="down")]
        ),
    ))
    metrics = cluster.run(workload)

    rows = [
        [
            n.node_id,
            n.platform,
            n.state,
            n.sessions,
            n.frames,
            f"{n.p99_ms:.1f}",
            f"{100 * n.deadline_miss_rate:.0f}%",
        ]
        for n in metrics.nodes
    ]
    print(format_table(
        ["node", "platform", "state", "sessions", "frames", "p99 ms", "miss"],
        rows,
        title="mixed fleet, slack routing — n0 drops out at t=0.15s",
    ))

    print(
        f"\nfleet: {metrics.frames_encoded} frames, "
        f"{metrics.streams.get('done', 0)} streams done, "
        f"{metrics.reroutes} sessions rerouted off n0, "
        f"aggregate p99 {metrics.p99_ms:.1f} ms"
    )
    for name, cls in sorted(metrics.classes.items()):
        print(
            f"  {name:<10} {cls['frames']:3d} frames  "
            f"p99 {cls['p99_ms']:8.1f} ms  "
            f"miss {100 * cls['deadline_miss_rate']:.0f}%"
        )

    report = TimelineSanitizer.check_cluster(cluster)
    print(
        "\nsanitizer (SAN-E1..E3 frame conservation across the reroute): "
        f"{'CLEAN' if report.clean else report.summary()}"
    )


if __name__ == "__main__":
    main()
