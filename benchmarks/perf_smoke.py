"""Perf smoke: measure the scheduling fast path and gate regressions.

Produces the two root-level snapshots the repository commits:

- ``BENCH_OVERHEAD.json`` — per-platform scheduling overhead of the cold
  path (every optimization off) vs the fast path (warm-start LP,
  characterization caches, vectorized DES) at rtol=0, where the two must
  produce bit-identical simulated timelines;
- ``BENCH_SERVICE.json`` — a small multi-stream service run on SysHK
  with the shared cross-session LP cache, recording round/frame counts,
  cache hit rate, and host-side wall time.

Usage::

    python benchmarks/perf_smoke.py --write   # refresh the snapshots
    python benchmarks/perf_smoke.py --check   # CI gate, exit 1 on regression

``--check`` compares fresh measurements against the committed snapshots
and fails when the fast path regresses by more than ``REGRESSION_TOL``
(25%). Absolute milliseconds vary across machines, so the gated metrics
are machine-normalized:

- ``relative_overhead`` = fast ms / cold ms, measured in the same
  process on the same host — a genuine fast-path regression raises it
  regardless of how fast the CI runner is;
- the service LP-cache ``hit_rate`` and the deterministic ``rounds`` /
  ``frames`` counts, which must not degrade at all;
- ``timelines_identical``, which must stay true (the fast path is only
  acceptable while bit-identical to the cold path).

``--check`` also rewrites the snapshot files afterwards so CI can upload
the fresh measurements as an artifact without a second run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.service import EncodingService, ServiceConfig, build_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
OVERHEAD_PATH = REPO_ROOT / "BENCH_OVERHEAD.json"
SERVICE_PATH = REPO_ROOT / "BENCH_SERVICE.json"

PLATFORMS = ("SysNF", "SysNFF", "SysHK")
N_FRAMES = 40
CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)

SERVICE_STREAMS = 4
SERVICE_FRAMES = 8

REGRESSION_TOL = 0.25


#: Repetitions per (platform, config); the minimum is kept. Wall-clock
#: noise only ever inflates a measurement, so min-of-N is the stable
#: estimator — a single run can jitter ±30% and trip the 25% gate.
N_REPS = 3


def _run(platform: str, fw_cfg: FrameworkConfig) -> FevesFramework:
    fw = FevesFramework(get_platform(platform), CFG, fw_cfg)
    fw.run_model(N_FRAMES)
    return fw


def _best_overhead(
    platform: str, fw_cfg: FrameworkConfig
) -> tuple[float, FevesFramework]:
    best_ms, best_fw = float("inf"), None
    for _ in range(N_REPS):
        fw = _run(platform, fw_cfg)
        if fw.scheduling_overhead_ms < best_ms:
            best_ms, best_fw = fw.scheduling_overhead_ms, fw
    assert best_fw is not None
    return best_ms, best_fw


def measure_overhead() -> dict:
    out: dict[str, dict] = {}
    for platform in PLATFORMS:
        cold_ms, cold = _best_overhead(platform, FrameworkConfig(
            lb_cache_rtol=0.0, lp_warm_start=False, char_cache=False,
            des_fast=False,
        ))
        fast_ms, fast = _best_overhead(platform, FrameworkConfig(
            lb_cache_rtol=0.0, lp_warm_start=True, char_cache=True,
            des_fast=True,
        ))
        out[platform] = {
            "cold_ms_per_frame": round(cold_ms, 4),
            "fast_ms_per_frame": round(fast_ms, 4),
            "speedup": round(cold_ms / fast_ms, 2) if fast_ms > 0 else None,
            "relative_overhead": (
                round(fast_ms / cold_ms, 4) if cold_ms > 0 else None
            ),
            "timelines_identical": (
                cold.frame_times_ms() == fast.frame_times_ms()
            ),
        }
    return {
        "benchmark": "scheduling overhead, cold vs fast path (rtol=0)",
        "config": "1080p, 32x32 SA, 1 RF",
        "n_frames": N_FRAMES,
        "platforms": out,
    }


def _service_point(n_streams: int, workload: list) -> dict:
    service = EncodingService(
        ServiceConfig(platform="SysHK", headroom=4.0, max_queue=2 * n_streams)
    )
    t0 = time.perf_counter()
    metrics = service.run(workload)
    wall_s = time.perf_counter() - t0
    return {
        "streams": n_streams,
        "frames_per_stream": SERVICE_FRAMES,
        "rounds": metrics.rounds,
        "frames": sum(m.frames for m in metrics.streams),
        "lp_cache_hits": service.lp_batch.hits,
        "lp_cache_misses": service.lp_batch.misses,
        "lp_cache_hit_rate": round(service.lp_batch.hit_rate, 4),
        "p95_ms": round(metrics.p95_ms, 3),
        "deadline_miss_rate": round(metrics.deadline_miss_rate, 4),
        "class_miss_rates": {
            name: round(c["deadline_miss_rate"], 4)
            for name, c in metrics.classes.items()
        },
        "wall_s": round(wall_s, 3),
    }


def measure_service() -> dict:
    # Two operating points: a saturated mixed-class load (the broadcast
    # mix oversubscribes SysHK, so per-class miss rates separate the
    # deadline tiers) and a light uniform load below the platform's
    # sustainable throughput, which must stay miss-free.
    saturated = _service_point(SERVICE_STREAMS, build_workload(
        SERVICE_STREAMS, n_frames=SERVICE_FRAMES, mix="broadcast"
    ))
    light = _service_point(2, build_workload(
        2, n_frames=SERVICE_FRAMES, fps_target=12.0
    ))
    return {
        "benchmark": "multi-stream service smoke (shared LP cache)",
        "platform": "SysHK",
        "workloads": {"saturated": saturated, "light": light},
    }


def write(overhead: dict, service: dict) -> None:
    OVERHEAD_PATH.write_text(json.dumps(overhead, indent=1) + "\n")
    SERVICE_PATH.write_text(json.dumps(service, indent=1) + "\n")
    print(f"wrote {OVERHEAD_PATH.name} and {SERVICE_PATH.name}")


def check(overhead: dict, service: dict) -> list[str]:
    """Compare fresh measurements against the committed snapshots."""
    failures: list[str] = []
    if not OVERHEAD_PATH.exists() or not SERVICE_PATH.exists():
        return ["missing committed BENCH_OVERHEAD.json / BENCH_SERVICE.json "
                "(run with --write and commit the output)"]
    snap_o = json.loads(OVERHEAD_PATH.read_text())
    snap_s = json.loads(SERVICE_PATH.read_text())

    for platform, cur in overhead["platforms"].items():
        if not cur["timelines_identical"]:
            failures.append(
                f"{platform}: fast-path timelines diverge from cold path"
            )
        snap = snap_o.get("platforms", {}).get(platform)
        if snap is None:
            continue
        rel, snap_rel = cur["relative_overhead"], snap.get("relative_overhead")
        if rel is not None and snap_rel:
            if rel > snap_rel * (1 + REGRESSION_TOL):
                failures.append(
                    f"{platform}: relative overhead {rel:.4f} regressed "
                    f">{REGRESSION_TOL:.0%} vs snapshot {snap_rel:.4f}"
                )

    for point, cur in service["workloads"].items():
        snap = snap_s.get("workloads", {}).get(point)
        if snap is None:
            continue
        for key in ("rounds", "frames", "deadline_miss_rate"):
            if key in snap and cur[key] != snap[key]:
                failures.append(
                    f"service[{point}] {key} changed: {snap[key]} -> "
                    f"{cur[key]} (deterministic metric should not move "
                    "without a model change)"
                )
        snap_hr = snap.get("lp_cache_hit_rate")
        if snap_hr:
            if cur["lp_cache_hit_rate"] < snap_hr * (1 - REGRESSION_TOL):
                failures.append(
                    f"service[{point}] LP-cache hit rate "
                    f"{cur['lp_cache_hit_rate']:.4f} regressed "
                    f">{REGRESSION_TOL:.0%} vs snapshot {snap_hr:.4f}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and write the root-level snapshots")
    mode.add_argument("--check", action="store_true",
                      help="measure, compare vs committed snapshots "
                           "(exit 1 on regression), then rewrite them")
    args = ap.parse_args(argv)

    overhead = measure_overhead()
    service = measure_service()
    for platform, v in overhead["platforms"].items():
        print(f"{platform}: cold {v['cold_ms_per_frame']:.3f} ms -> fast "
              f"{v['fast_ms_per_frame']:.3f} ms ({v['speedup']}x), "
              f"identical={v['timelines_identical']}")
    for point, v in service["workloads"].items():
        misses = ", ".join(
            f"{cls}={rate:.0%}" for cls, rate in v["class_miss_rates"].items()
        )
        print(f"service[{point}]: {v['frames']} frames / {v['rounds']} "
              f"rounds, LP-cache hit rate {v['lp_cache_hit_rate']:.2%}, "
              f"miss {misses or 'n/a'}, wall {v['wall_s']:.2f} s")

    if args.check:
        failures = check(overhead, service)
        write(overhead, service)
        if failures:
            for f in failures:
                print(f"PERF REGRESSION: {f}", file=sys.stderr)
            return 1
        print("perf smoke: no regression vs committed snapshots")
        return 0
    write(overhead, service)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
