"""Perf smoke: measure the scheduling fast path and gate regressions.

Produces the three root-level snapshots the repository commits:

- ``BENCH_OVERHEAD.json`` — per-platform scheduling overhead of the cold
  path (every optimization off) vs the fast path (warm-start LP,
  characterization caches, vectorized DES) at rtol=0, where the two must
  produce bit-identical simulated timelines;
- ``BENCH_SERVICE.json`` — a small multi-stream service run on SysHK
  with the shared cross-session LP cache, recording round/frame counts,
  cache hit rate, and host-side wall time;
- ``BENCH_PARALLEL.json`` — the true-parallel process backend vs the
  serial reference encoder: encode fps at 1/2/4/8 workers, bitstream
  bit-identity, and the calibrated LP's predicted-vs-measured makespan
  error.

Usage::

    python benchmarks/perf_smoke.py --write   # refresh the snapshots
    python benchmarks/perf_smoke.py --check   # CI gate, exit 1 on regression
    python benchmarks/perf_smoke.py --check --only parallel --workers 2

``--check`` compares fresh measurements against the committed snapshots
and fails when the fast path regresses by more than ``REGRESSION_TOL``
(25%). Absolute milliseconds vary across machines, so the gated metrics
are machine-normalized:

- ``relative_overhead`` = fast ms / cold ms, measured in the same
  process on the same host — a genuine fast-path regression raises it
  regardless of how fast the CI runner is;
- the service LP-cache ``hit_rate`` and the deterministic ``rounds`` /
  ``frames`` counts, which must not degrade at all;
- ``timelines_identical``, which must stay true (the fast path is only
  acceptable while bit-identical to the cold path);
- the process backend's ``bit_identical`` flags (always), its speedup
  vs the snapshot (same-core-count hosts only, 25% tolerance), the
  ≥2x-at-4-workers floor (hosts with ≥4 cores only), and a loose sanity
  bound on the calibrated makespan error (catches a broken calibration
  loop, not machine noise).

``--check`` also rewrites the snapshot files afterwards so CI can upload
the fresh measurements as an artifact without a second run. ``--only``
restricts the run to one section; ``--workers N`` caps the parallel
sweep so 2-vCPU CI runners measure only what they can host.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.service import EncodingService, ServiceConfig, build_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
OVERHEAD_PATH = REPO_ROOT / "BENCH_OVERHEAD.json"
SERVICE_PATH = REPO_ROOT / "BENCH_SERVICE.json"
PARALLEL_PATH = REPO_ROOT / "BENCH_PARALLEL.json"

PLATFORMS = ("SysNF", "SysNFF", "SysHK")
N_FRAMES = 40
CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)

SERVICE_STREAMS = 4
SERVICE_FRAMES = 8

REGRESSION_TOL = 0.25

# Process-backend smoke: a clip small enough that the full worker sweep
# stays under a minute on one core, big enough that every device's band
# splits into several MB-row chunks per worker.
PARALLEL_CFG = CodecConfig(
    width=256, height=144, search_range=16, num_ref_frames=1
)
PARALLEL_FRAMES = 6
PARALLEL_WORKERS = (1, 2, 4, 8)
#: Acceptance floor: 4 workers must be ≥2x the serial encoder — only
#: enforceable on hosts that actually have ≥4 cores to run them on.
SPEEDUP_FLOOR_AT_4 = 2.0
#: Calibrated LP predictions that miss the measured makespan by >300%
#: mean the calibration loop is feeding garbage (wrong units, wrong
#: spans), not that the host is noisy: steady-state error is measured
#: in single-digit percent, and even the worst first-LP-frame
#: misprediction on an oversubscribed 1-core host stays under ~1x.
MAKESPAN_ERROR_CEILING = 3.0


#: Repetitions per (platform, config); the minimum is kept. Wall-clock
#: noise only ever inflates a measurement, so min-of-N is the stable
#: estimator — a single run can jitter ±30% and trip the 25% gate.
N_REPS = 3


def _run(platform: str, fw_cfg: FrameworkConfig) -> FevesFramework:
    fw = FevesFramework(get_platform(platform), CFG, fw_cfg)
    fw.run_model(N_FRAMES)
    return fw


def _best_overhead(
    platform: str, fw_cfg: FrameworkConfig
) -> tuple[float, FevesFramework]:
    best_ms, best_fw = float("inf"), None
    for _ in range(N_REPS):
        fw = _run(platform, fw_cfg)
        if fw.scheduling_overhead_ms < best_ms:
            best_ms, best_fw = fw.scheduling_overhead_ms, fw
    assert best_fw is not None
    return best_ms, best_fw


def measure_overhead() -> dict:
    out: dict[str, dict] = {}
    for platform in PLATFORMS:
        cold_ms, cold = _best_overhead(platform, FrameworkConfig(
            lb_cache_rtol=0.0, lp_warm_start=False, char_cache=False,
            des_fast=False,
        ))
        fast_ms, fast = _best_overhead(platform, FrameworkConfig(
            lb_cache_rtol=0.0, lp_warm_start=True, char_cache=True,
            des_fast=True,
        ))
        out[platform] = {
            "cold_ms_per_frame": round(cold_ms, 4),
            "fast_ms_per_frame": round(fast_ms, 4),
            "speedup": round(cold_ms / fast_ms, 2) if fast_ms > 0 else None,
            "relative_overhead": (
                round(fast_ms / cold_ms, 4) if cold_ms > 0 else None
            ),
            "timelines_identical": (
                cold.frame_times_ms() == fast.frame_times_ms()
            ),
        }
    return {
        "benchmark": "scheduling overhead, cold vs fast path (rtol=0)",
        "config": "1080p, 32x32 SA, 1 RF",
        "n_frames": N_FRAMES,
        "platforms": out,
    }


def _service_point(n_streams: int, workload: list) -> dict:
    service = EncodingService(
        ServiceConfig(platform="SysHK", headroom=4.0, max_queue=2 * n_streams)
    )
    t0 = time.perf_counter()
    metrics = service.run(workload)
    wall_s = time.perf_counter() - t0
    return {
        "streams": n_streams,
        "frames_per_stream": SERVICE_FRAMES,
        "rounds": metrics.rounds,
        "frames": sum(m.frames for m in metrics.streams),
        "lp_cache_hits": service.lp_batch.hits,
        "lp_cache_misses": service.lp_batch.misses,
        "lp_cache_hit_rate": round(service.lp_batch.hit_rate, 4),
        "p95_ms": round(metrics.p95_ms, 3),
        "deadline_miss_rate": round(metrics.deadline_miss_rate, 4),
        "class_miss_rates": {
            name: round(c["deadline_miss_rate"], 4)
            for name, c in metrics.classes.items()
        },
        "wall_s": round(wall_s, 3),
    }


def measure_service() -> dict:
    # Two operating points: a saturated mixed-class load (the broadcast
    # mix oversubscribes SysHK, so per-class miss rates separate the
    # deadline tiers) and a light uniform load below the platform's
    # sustainable throughput, which must stay miss-free.
    saturated = _service_point(SERVICE_STREAMS, build_workload(
        SERVICE_STREAMS, n_frames=SERVICE_FRAMES, mix="broadcast"
    ))
    light = _service_point(2, build_workload(
        2, n_frames=SERVICE_FRAMES, fps_target=12.0
    ))
    return {
        "benchmark": "multi-stream service smoke (shared LP cache)",
        "platform": "SysHK",
        "workloads": {"saturated": saturated, "light": light},
    }


def host_cores() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _encoded_identical(ref_out: list, outcomes: list) -> bool:
    import numpy as np

    if len(ref_out) != len(outcomes):
        return False
    for r, o in zip(ref_out, outcomes, strict=True):
        e = o.encoded
        if e is None or r.bits != e.bits or r.mode_histogram != e.mode_histogram:
            return False
        if not (
            np.array_equal(r.recon.y, e.recon.y)
            and np.array_equal(r.recon.u, e.recon.u)
            and np.array_equal(r.recon.v, e.recon.v)
        ):
            return False
    return True


def measure_parallel(
    worker_counts: tuple[int, ...] = PARALLEL_WORKERS
) -> dict:
    """Serial encoder vs the process backend across worker counts."""
    from repro.codec.encoder import ReferenceEncoder
    from repro.video.generator import SyntheticSequence

    cfg = PARALLEL_CFG
    frames = SyntheticSequence(
        width=cfg.width, height=cfg.height, seed=7
    ).frames(PARALLEL_FRAMES)

    t0 = time.perf_counter()
    ref_out = ReferenceEncoder(cfg).encode_sequence(frames)
    serial_s = time.perf_counter() - t0

    points: dict[str, dict] = {}
    for workers in worker_counts:
        fw = FevesFramework(
            get_platform("SysHK"), cfg,
            FrameworkConfig(
                compute="real", backend="process", exec_workers=workers
            ),
        )
        # The backend inherits $REPRO_SANITIZE; never journal shared-
        # memory accesses on the timed path (it would skew the points).
        fw.manager.sanitize = False
        with fw:
            t0 = time.perf_counter()
            outcomes = fw.encode(frames)
            wall_s = time.perf_counter() - t0
            acc = fw.accuracy_report().summary()
        points[str(workers)] = {
            "fps": round(len(frames) / wall_s, 3),
            "wall_s": round(wall_s, 3),
            "speedup": round(serial_s / wall_s, 3),
            "bit_identical": _encoded_identical(ref_out, outcomes),
            "lp_frames": acc.get("frames", 0),
            "makespan_error_mean": round(
                acc.get("makespan_error_mean", 0.0), 4
            ),
            "makespan_error_max": round(acc.get("makespan_error_max", 0.0), 4),
        }
    return {
        "benchmark": "true-parallel process backend vs serial encoder",
        "platform": "SysHK",
        "config": (
            f"{cfg.width}x{cfg.height}, "
            f"{2 * cfg.search_range}x{2 * cfg.search_range} SA, "
            f"{cfg.num_ref_frames} RF"
        ),
        "n_frames": PARALLEL_FRAMES,
        "host_cores": host_cores(),
        "serial_fps": round(PARALLEL_FRAMES / serial_s, 3),
        "serial_wall_s": round(serial_s, 3),
        "workers": points,
    }


def check_parallel(parallel: dict, snap: dict | None = None) -> list[str]:
    """Gate the process-backend smoke (machine-normalized, see module doc).

    ``snap`` overrides the committed ``BENCH_PARALLEL.json`` (the pytest
    sweep captures the snapshot before rewriting it).
    """
    failures: list[str] = []
    cores = parallel["host_cores"]
    for w, cur in parallel["workers"].items():
        if not cur["bit_identical"]:
            failures.append(
                f"parallel[{w} workers]: encoded output diverged from the "
                "serial reference encoder"
            )
        if cur["lp_frames"] and cur["makespan_error_mean"] > MAKESPAN_ERROR_CEILING:
            failures.append(
                f"parallel[{w} workers]: calibrated makespan error "
                f"{cur['makespan_error_mean']:.0%} exceeds the "
                f"{MAKESPAN_ERROR_CEILING:.0%} sanity ceiling "
                "(calibration loop feeding bad rates?)"
            )
    at4 = parallel["workers"].get("4")
    if at4 is not None and cores >= 4 and at4["speedup"] < SPEEDUP_FLOOR_AT_4:
        failures.append(
            f"parallel[4 workers]: speedup {at4['speedup']:.2f}x is below "
            f"the {SPEEDUP_FLOOR_AT_4:.1f}x floor on a {cores}-core host"
        )
    if snap is None:
        if not PARALLEL_PATH.exists():
            return failures
        snap = json.loads(PARALLEL_PATH.read_text())
    if snap.get("host_cores") != cores:
        return failures  # speedups are only comparable core-for-core
    for w, cur in parallel["workers"].items():
        ref = snap.get("workers", {}).get(w)
        if ref is None:
            continue
        if cur["speedup"] < ref["speedup"] * (1 - REGRESSION_TOL):
            failures.append(
                f"parallel[{w} workers]: speedup {cur['speedup']:.2f}x "
                f"regressed >{REGRESSION_TOL:.0%} vs snapshot "
                f"{ref['speedup']:.2f}x"
            )
    return failures


def write(
    overhead: dict | None, service: dict | None, parallel: dict | None
) -> None:
    wrote = []
    for blob, path in (
        (overhead, OVERHEAD_PATH),
        (service, SERVICE_PATH),
        (parallel, PARALLEL_PATH),
    ):
        if blob is not None:
            path.write_text(json.dumps(blob, indent=1) + "\n")
            wrote.append(path.name)
    print(f"wrote {', '.join(wrote)}")


def check(overhead: dict | None, service: dict | None) -> list[str]:
    """Compare fresh measurements against the committed snapshots."""
    failures: list[str] = []
    if overhead is not None and not OVERHEAD_PATH.exists():
        return ["missing committed BENCH_OVERHEAD.json "
                "(run with --write and commit the output)"]
    if service is not None and not SERVICE_PATH.exists():
        return ["missing committed BENCH_SERVICE.json "
                "(run with --write and commit the output)"]
    snap_o = json.loads(OVERHEAD_PATH.read_text()) if overhead else {}
    snap_s = json.loads(SERVICE_PATH.read_text()) if service else {}

    for platform, cur in (overhead or {"platforms": {}})["platforms"].items():
        if not cur["timelines_identical"]:
            failures.append(
                f"{platform}: fast-path timelines diverge from cold path"
            )
        snap = snap_o.get("platforms", {}).get(platform)
        if snap is None:
            continue
        rel, snap_rel = cur["relative_overhead"], snap.get("relative_overhead")
        if rel is not None and snap_rel:
            if rel > snap_rel * (1 + REGRESSION_TOL):
                failures.append(
                    f"{platform}: relative overhead {rel:.4f} regressed "
                    f">{REGRESSION_TOL:.0%} vs snapshot {snap_rel:.4f}"
                )

    for point, cur in (service or {"workloads": {}})["workloads"].items():
        snap = snap_s.get("workloads", {}).get(point)
        if snap is None:
            continue
        for key in ("rounds", "frames", "deadline_miss_rate"):
            if key in snap and cur[key] != snap[key]:
                failures.append(
                    f"service[{point}] {key} changed: {snap[key]} -> "
                    f"{cur[key]} (deterministic metric should not move "
                    "without a model change)"
                )
        snap_hr = snap.get("lp_cache_hit_rate")
        if snap_hr:
            if cur["lp_cache_hit_rate"] < snap_hr * (1 - REGRESSION_TOL):
                failures.append(
                    f"service[{point}] LP-cache hit rate "
                    f"{cur['lp_cache_hit_rate']:.4f} regressed "
                    f">{REGRESSION_TOL:.0%} vs snapshot {snap_hr:.4f}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and write the root-level snapshots")
    mode.add_argument("--check", action="store_true",
                      help="measure, compare vs committed snapshots "
                           "(exit 1 on regression), then rewrite them")
    ap.add_argument("--only", choices=("overhead", "service", "parallel"),
                    help="run a single section instead of all three")
    ap.add_argument("--workers", type=int, metavar="N",
                    help="cap the parallel sweep at N workers (pin to the "
                         "runner's vCPU count for reproducible CI numbers)")
    args = ap.parse_args(argv)

    run_all = args.only is None
    overhead = measure_overhead() if run_all or args.only == "overhead" else None
    service = measure_service() if run_all or args.only == "service" else None
    parallel = None
    if run_all or args.only == "parallel":
        counts = PARALLEL_WORKERS
        if args.workers:
            counts = tuple(w for w in PARALLEL_WORKERS if w <= args.workers)
            if not counts:
                counts = (args.workers,)
        parallel = measure_parallel(counts)

    for platform, v in (overhead or {"platforms": {}})["platforms"].items():
        print(f"{platform}: cold {v['cold_ms_per_frame']:.3f} ms -> fast "
              f"{v['fast_ms_per_frame']:.3f} ms ({v['speedup']}x), "
              f"identical={v['timelines_identical']}")
    for point, v in (service or {"workloads": {}})["workloads"].items():
        misses = ", ".join(
            f"{cls}={rate:.0%}" for cls, rate in v["class_miss_rates"].items()
        )
        print(f"service[{point}]: {v['frames']} frames / {v['rounds']} "
              f"rounds, LP-cache hit rate {v['lp_cache_hit_rate']:.2%}, "
              f"miss {misses or 'n/a'}, wall {v['wall_s']:.2f} s")
    if parallel is not None:
        print(f"parallel: serial {parallel['serial_fps']:.2f} fps on "
              f"{parallel['host_cores']} cores")
        for w, v in parallel["workers"].items():
            print(f"parallel[{w} workers]: {v['fps']:.2f} fps "
                  f"({v['speedup']:.2f}x), identical={v['bit_identical']}, "
                  f"makespan err mean {v['makespan_error_mean']:.1%} over "
                  f"{v['lp_frames']} LP frames")

    if args.check:
        failures = check(overhead, service)
        if parallel is not None:
            failures += check_parallel(parallel)
        write(overhead, service, parallel)
        if failures:
            for f in failures:
                print(f"PERF REGRESSION: {f}", file=sys.stderr)
            return 1
        print("perf smoke: no regression vs committed snapshots")
        return 0
    write(overhead, service, parallel)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
