"""Service throughput: sustained streams vs deadline-miss rate on SysHK.

Sweeps the number of concurrent 25 fps 1080p streams the encoding service
carries on SysHK and records the aggregate deadline-miss rate, p95 frame
latency, and device utilization at each level. The shape assertions pin
the capacity story: the platform sustains a small number of streams with
no misses, saturates, and degrades gracefully (misses grow monotonically,
utilization approaches 1) instead of collapsing. Results are persisted
both as the usual text table and as machine-readable JSON
(``benchmarks/results/service_throughput.json``), which CI uploads as an
artifact for run-over-run comparison.
"""

import json

import pytest

from conftest import RESULTS_DIR, save_result
from repro.report import format_table
from repro.service import EncodingService, ServiceConfig, build_workload

STREAM_COUNTS = (1, 2, 3, 4, 6, 8)
N_FRAMES = 12
FPS = 25.0


def serve_level(n_streams: int) -> dict:
    service = EncodingService(
        ServiceConfig(platform="SysHK", headroom=4.0, max_queue=2 * n_streams)
    )
    metrics = service.run(
        build_workload(n_streams, n_frames=N_FRAMES, fps_target=FPS)
    )
    return {
        "streams": n_streams,
        "p50_ms": metrics.p50_ms,
        "p95_ms": metrics.p95_ms,
        "p99_ms": metrics.p99_ms,
        "deadline_miss_rate": metrics.deadline_miss_rate,
        "cpu_utilization": metrics.device_utilization.get("CPU_H.compute", 0.0),
        "gpu_utilization": metrics.device_utilization.get("GPU_K.compute", 0.0),
        "admitted": metrics.admission["admitted"],
        "rejected": metrics.admission["rejected"],
    }


@pytest.fixture(scope="module")
def sweep():
    return [serve_level(n) for n in STREAM_COUNTS]


def test_throughput_table(sweep, emit, benchmark):
    benchmark.pedantic(serve_level, args=(2,), rounds=2, iterations=1)
    rows = [
        [
            r["streams"],
            f"{r['p50_ms']:.1f}",
            f"{r['p95_ms']:.1f}",
            f"{100 * r['deadline_miss_rate']:.0f}%",
            f"{100 * r['cpu_utilization']:.0f}%",
            f"{100 * r['gpu_utilization']:.0f}%",
        ]
        for r in sweep
    ]
    emit(
        "service_throughput",
        format_table(
            ["streams", "p50 ms", "p95 ms", "miss", "CPU util", "GPU util"],
            rows,
            title=(
                f"Encoding service on SysHK — {FPS:g} fps 1080p streams, "
                f"{N_FRAMES} frames each"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_throughput.json").write_text(
        json.dumps(
            {
                "platform": "SysHK",
                "fps_target": FPS,
                "n_frames": N_FRAMES,
                "levels": sweep,
            },
            indent=1,
        )
        + "\n"
    )


def test_light_load_meets_deadlines(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert sweep[0]["deadline_miss_rate"] == 0.0  # one stream: no misses


def test_miss_rate_monotone_in_load(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    misses = [r["deadline_miss_rate"] for r in sweep]
    assert all(b >= a - 1e-9 for a, b in zip(misses, misses[1:]))
    assert misses[-1] > 0  # 8 streams oversubscribe SysHK


def test_latency_grows_with_load(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert sweep[-1]["p95_ms"] > 2 * sweep[0]["p95_ms"]


def test_saturation_drives_utilization(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    heavy = sweep[-1]
    assert heavy["cpu_utilization"] > 0.5
    assert heavy["gpu_utilization"] > 0.5
    for r in sweep:
        assert r["cpu_utilization"] <= 1.0 + 1e-9
        assert r["gpu_utilization"] <= 1.0 + 1e-9
