"""Parallel-backend smoke: serial vs process encode, gate vs BENCH_PARALLEL.json.

Encodes the same synthetic clip with the sequential reference encoder
and with the ``process`` execution backend at 1/2/4/8 workers, recording
per point: encode fps, speedup over serial, bitstream bit-identity, and
the calibrated LP's predicted-vs-measured makespan error. Results land
in ``benchmarks/results`` *and* as the committed root-level
``BENCH_PARALLEL.json`` snapshot that CI uploads.

Gating follows ``perf_smoke.py`` (the CI ``parallel-smoke`` job runs
``perf_smoke.py --check --only parallel --workers 2`` for a pinned,
2-vCPU-reproducible subset; this pytest sweep is the full local run):

- ``bit_identical`` must hold at every worker count — a parallel run
  that changes one bit of the bitstream is wrong, not slow;
- the ≥2x-at-4-workers speedup floor applies only on hosts with ≥4
  cores (a 1-core container physically cannot parallelize);
- speedups are compared against the committed snapshot only when the
  host core count matches (they are meaningless across different
  parallel budgets); the tolerance is the usual 25%;
- the calibrated makespan error has a loose 150% sanity ceiling that
  catches a broken calibration loop, not machine noise.
"""

import json
from pathlib import Path

import pytest

import perf_smoke
from conftest import RESULTS_DIR
from repro.report import format_table

pytestmark = pytest.mark.timeout_guarded

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_PARALLEL.json"


@pytest.fixture(scope="module")
def committed():
    """The snapshot as committed, captured before any test rewrites it."""
    if not SNAPSHOT.exists():
        return None
    return json.loads(SNAPSHOT.read_text())


@pytest.fixture(scope="module")
def sweep(committed):
    # Depending on ``committed`` pins the snapshot capture before the
    # table test rewrites the file.
    return perf_smoke.measure_parallel()


def test_parallel_table_and_snapshot(sweep, emit):
    rows = [
        [
            w,
            f"{v['fps']:.2f}",
            f"{v['speedup']:.2f}x",
            "yes" if v["bit_identical"] else "NO",
            v["lp_frames"],
            f"{100 * v['makespan_error_mean']:.1f}%",
            f"{100 * v['makespan_error_max']:.1f}%",
        ]
        for w, v in sweep["workers"].items()
    ]
    table = format_table(
        ["workers", "fps", "speedup", "identical", "LP frames",
         "mk err mean", "mk err max"],
        rows,
        title=(
            f"process backend vs serial ({sweep['serial_fps']:.2f} fps) — "
            f"{sweep['config']}, {sweep['n_frames']} frames, "
            f"{sweep['host_cores']}-core host"
        ),
    )
    emit("parallel_backend", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_backend.json").write_text(
        json.dumps(sweep, indent=1) + "\n"
    )
    SNAPSHOT.write_text(json.dumps(sweep, indent=1) + "\n")


def test_bit_identical_at_every_worker_count(sweep):
    diverged = [
        w for w, v in sweep["workers"].items() if not v["bit_identical"]
    ]
    assert not diverged, (
        f"process backend diverged from the serial encoder at worker "
        f"counts {diverged}"
    )


def test_speedup_floor_on_multicore_hosts(sweep):
    at4 = sweep["workers"].get("4")
    if sweep["host_cores"] < 4 or at4 is None:
        pytest.skip(
            f"{sweep['host_cores']}-core host cannot demonstrate the "
            "4-worker speedup floor"
        )
    assert at4["speedup"] >= perf_smoke.SPEEDUP_FLOOR_AT_4, (
        f"4-worker speedup {at4['speedup']:.2f}x below the "
        f"{perf_smoke.SPEEDUP_FLOOR_AT_4:.1f}x floor on a "
        f"{sweep['host_cores']}-core host"
    )


def test_calibration_reports_makespan_error(sweep):
    # The calibration loop must produce an accuracy report: once the LP
    # engages, every scheduled frame carries a prediction to compare.
    lp_frames = [v["lp_frames"] for v in sweep["workers"].values()]
    assert any(n > 0 for n in lp_frames), sweep["workers"]
    for v in sweep["workers"].values():
        if v["lp_frames"]:
            assert v["makespan_error_mean"] <= perf_smoke.MAKESPAN_ERROR_CEILING
            assert v["makespan_error_max"] >= v["makespan_error_mean"]


def test_no_regression_vs_committed_snapshot(sweep, committed):
    """The 25% machine-normalized gate (same-core-count hosts only)."""
    if committed is None:
        pytest.skip("no committed BENCH_PARALLEL.json yet (run once and commit)")
    failures = perf_smoke.check_parallel(sweep, snap=committed)
    assert not failures, "\n".join(failures)
