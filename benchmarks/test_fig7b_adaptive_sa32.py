"""Paper Fig. 7(b): per-frame time, SysHK, 32×32 SA, RFs 1..5, with the
paper's load-perturbation events.

Paper-reported shape:

- warm-up ramp: with R references configured, frames 2..R climb as the
  reference window fills, then the curve flattens;
- real-time (≤40 ms) for up to 4 RFs; the 5-RF curve sits above the line;
- sudden system-load spikes at frames 76/81 (1 RF) and 31/71/92 (2 RF)
  produce a single-frame excursion and the load balancer recovers within
  one inter-frame.
"""

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import NoiseModel, PerturbationSchedule
from repro.hw.presets import get_platform
from repro.report import ascii_series

N_FRAMES = 100
RFS = (1, 2, 3, 4, 5)


def trace_ms(num_refs: int, n_frames: int = N_FRAMES) -> list[float]:
    cfg = CodecConfig(
        width=1920, height=1088, search_range=16, num_ref_frames=num_refs
    )
    noise = NoiseModel(
        schedule=PerturbationSchedule.paper_fig7b("CPU_H", num_refs)
    )
    fw = FevesFramework(
        get_platform("SysHK"), cfg, FrameworkConfig(noise=noise)
    )
    fw.run_model(n_frames)
    return fw.frame_times_ms()


@pytest.fixture(scope="module")
def fig7b_data():
    return {rf: trace_ms(rf) for rf in RFS}


def test_fig7b_chart(fig7b_data, emit, benchmark):
    benchmark.pedantic(trace_ms, args=(1, 20), rounds=2, iterations=1)
    chart = ascii_series(
        {f"{rf}RF": fig7b_data[rf] for rf in RFS},
        hline=40.0,
        hline_label="real-time (40 ms)",
        y_label="Fig 7(b): per-frame time [ms], SysHK, 32x32 SA, "
        "perturbations at 76/81 (1RF) and 31/71/92 (2RF)",
        height=18,
    )
    emit("fig7b_adaptive_sa32", chart)


def test_warmup_ramp(fig7b_data, benchmark):
    """Frames 2..R climb while the reference window fills (paper: 'the
    encoding time is increasing ... until reaching the specified number of
    RFs')."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t5 = fig7b_data[5]
    assert t5[1] < t5[2] < t5[3] < t5[4]
    steady = t5[6:30]
    assert (max(steady) - min(steady)) / max(steady) < 0.03


def test_realtime_up_to_4rf(fig7b_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rf in (1, 2, 3, 4):
        tail = fig7b_data[rf][rf + 1 :]
        clean = [t for i, t in enumerate(tail)]
        # Aside from perturbation frames, the curve stays under 40 ms.
        under = sum(1 for t in clean if t < 40.0)
        assert under >= len(clean) - 3
    assert min(fig7b_data[5][6:]) > 40.0


def test_perturbations_visible_and_recovered(fig7b_data, benchmark):
    """Each event produces a spike at its frame and full recovery within
    one subsequent frame (paper: 'required a single inter-frame to
    converge')."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    events = {1: (76, 81), 2: (31, 71, 92)}
    for rf, frames in events.items():
        t = fig7b_data[rf]
        for ev in frames:
            idx = ev - 1  # frame numbers are 1-based
            baseline = t[idx - 2]
            assert t[idx] > 1.15 * baseline, f"{rf}RF: no spike at frame {ev}"
            assert t[idx + 2] == pytest.approx(baseline, rel=0.05), (
                f"{rf}RF: no recovery after frame {ev}"
            )


def test_clean_curves_have_no_spikes(fig7b_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rf in (3, 4, 5):
        tail = fig7b_data[rf][rf + 2 :]
        assert (max(tail) - min(tail)) / max(tail) < 0.03
