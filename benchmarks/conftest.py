"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's figures/tables in model mode
(1080p geometry, simulated platform) and:

1. prints the paper-style table/chart (run with ``-s`` to see it, or read
   ``benchmarks/results/*.txt`` afterwards);
2. asserts the *shape* properties the paper reports (who wins, rough
   ratios, where real-time crossovers fall);
3. times the harness itself through pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform

#: Platforms of the paper's Fig. 6, in its legend order.
FIG6_CONFIGS = ("CPU_N", "CPU_H", "GPU_F", "GPU_K", "SysNF", "SysNFF", "SysHK")

RESULTS_DIR = Path(__file__).parent / "results"


def encode_fps(
    platform_name: str,
    sa_side: int = 32,
    num_refs: int = 1,
    n_frames: int = 15,
    fw_cfg: FrameworkConfig | None = None,
) -> float:
    """Steady-state fps of FEVES on a platform at 1080p."""
    cfg = CodecConfig(
        width=1920, height=1088, search_range=sa_side // 2, num_ref_frames=num_refs
    )
    fw = FevesFramework(get_platform(platform_name), cfg, fw_cfg or FrameworkConfig())
    fw.run_model(n_frames)
    return fw.steady_state_fps(warmup=max(3, num_refs + 1))


def save_result(name: str, text: str) -> None:
    """Persist a benchmark's table/chart under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


#: Wall-clock ceiling for ``timeout_guarded`` benchmarks (the process
#: backend's worker pools must fail fast instead of hanging a runner).
GUARD_S = 600


@pytest.fixture(autouse=True)
def _wallclock_guard(request):
    """SIGALRM guard for tests marked ``timeout_guarded``.

    Mirrors ``tests/exec/conftest.py``: no pytest-timeout dependency, a
    hard alarm on POSIX, a no-op elsewhere (the backend's own per-task
    timeout still applies).
    """
    import signal

    sigalrm = getattr(signal, "SIGALRM", None)
    if sigalrm is None or request.node.get_closest_marker("timeout_guarded") is None:
        yield
        return

    def _fire(signum, frame):
        raise RuntimeError(
            f"benchmark exceeded the {GUARD_S}s wall-clock guard "
            "(deadlocked worker pool?)"
        )

    previous = signal.signal(sigalrm, _fire)
    signal.alarm(GUARD_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(sigalrm, previous)


@pytest.fixture
def emit(capsys):
    """Print a result block unconditionally and persist it."""

    def _emit(name: str, text: str) -> None:
        save_result(name, text)
        with capsys.disabled():
            print(f"\n=== {name} ===\n{text}\n")

    return _emit
