"""Paper Fig. 6(a): fps vs search-area size (1 RF, 1080p).

Paper-reported shape (ICPP'14, §IV):

- fps drops steeply between successive SA sizes (ME load quadruples);
- real-time (≥25 fps) at 32×32/1 RF on both GPUs and on every CPU+GPU
  system;
- SysHK stays real-time even at 64×64 — "not attainable with the
  state-of-the-art approaches";
- every heterogeneous system beats its constituent devices at every SA.
"""

import pytest

from conftest import FIG6_CONFIGS, encode_fps
from repro.report import format_table

SA_SIDES = (32, 64, 128, 256)


@pytest.fixture(scope="module")
def fig6a_data():
    return {
        name: {sa: encode_fps(name, sa_side=sa) for sa in SA_SIDES}
        for name in FIG6_CONFIGS
    }


def test_fig6a_table(fig6a_data, emit, benchmark):
    benchmark.pedantic(
        encode_fps, args=("SysHK",), kwargs={"sa_side": 32}, rounds=2, iterations=1
    )
    rows = [
        [name] + [f"{fig6a_data[name][sa]:.1f}" for sa in SA_SIDES]
        for name in FIG6_CONFIGS
    ]
    emit(
        "fig6a_sa_sweep",
        format_table(
            ["config"] + [f"{sa}x{sa}" for sa in SA_SIDES],
            rows,
            title="Fig 6(a): fps vs search-area size, 1 RF, 1080p "
            "(paper: real-time at 32x32 on GPUs+systems, 64x64 on SysHK)",
        ),
    )


def test_fps_decreases_with_sa(fig6a_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in FIG6_CONFIGS:
        series = [fig6a_data[name][sa] for sa in SA_SIDES]
        assert series == sorted(series, reverse=True)
        # ME quadruples per step: fps must fall by >2x each step at the
        # largest sizes where ME dominates.
        assert series[2] / series[3] > 2.0


def test_realtime_claims(fig6a_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    at32 = {n: fig6a_data[n][32] for n in FIG6_CONFIGS}
    # both GPUs and all systems real-time at 32x32 / 1 RF.
    for name in ("GPU_F", "GPU_K", "SysNF", "SysNFF", "SysHK"):
        assert at32[name] >= 25.0, f"{name} not real-time at 32x32"
    # CPUs alone are not.
    assert at32["CPU_N"] < 25.0 and at32["CPU_H"] < 25.0
    # SysHK is the only configuration real-time at 64x64.
    at64 = {n: fig6a_data[n][64] for n in FIG6_CONFIGS}
    assert at64["SysHK"] >= 25.0
    for name in FIG6_CONFIGS:
        if name != "SysHK":
            assert at64[name] < 25.0, f"only SysHK should be real-time at 64"


def test_systems_beat_components(fig6a_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pairs = {
        "SysNF": ("CPU_N", "GPU_F"),
        "SysNFF": ("CPU_N", "GPU_F"),
        "SysHK": ("CPU_H", "GPU_K"),
    }
    for sys_name, (cpu, gpu) in pairs.items():
        for sa in SA_SIDES:
            assert fig6a_data[sys_name][sa] > fig6a_data[gpu][sa]
            assert fig6a_data[sys_name][sa] > fig6a_data[cpu][sa]


def test_device_generation_ratios(fig6a_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sa in SA_SIDES:
        d = fig6a_data
        assert 1.4 <= d["CPU_H"][sa] / d["CPU_N"][sa] <= 2.0   # paper ~1.7
        assert 1.6 <= d["GPU_K"][sa] / d["GPU_F"][sa] <= 2.4   # paper ~2
