"""Robustness ablation: device parking on hostile platforms.

Extension experiment (DESIGN.md → device parking): on a platform with an
accelerator behind a nearly dead interconnect, the paper's
always-participating data management collapses — the SF-mirror maintenance
of the useless device dominates τ1. The activity-subset LP detects this and
parks the device, recovering CPU-only throughput. On healthy platforms the
parking machinery must be a no-op.
"""

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.device import DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.presets import CPU_N, GPU_K, get_platform
from repro.hw.topology import Platform
from repro.report import format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def dead_link_platform() -> Platform:
    gpu = DeviceSpec(
        name="farGPU",
        kind="gpu",
        rates=GPU_K.rates,  # a fast GPU...
        link=LinkSpec(h2d_gbps=0.05, d2h_gbps=0.05, latency_s=1e-3),  # ...marooned
    )
    return Platform(name="deadlink", specs=[gpu, CPU_N])


def fps(platform: Platform, parking: bool) -> float:
    fw = FevesFramework(
        platform, CFG,
        FrameworkConfig(centric="cpu", enable_parking=parking),
    )
    fw.run_model(12)
    return fw.steady_state_fps(warmup=4)


@pytest.fixture(scope="module")
def results():
    cpu_only = FevesFramework(get_platform("CPU_N"), CFG, FrameworkConfig())
    cpu_only.run_model(12)
    return {
        "CPU_N alone": cpu_only.steady_state_fps(),
        "dead-link GPU, parking ON": fps(dead_link_platform(), True),
        "dead-link GPU, parking OFF": fps(dead_link_platform(), False),
    }


def test_robustness_table(results, emit, benchmark):
    benchmark.pedantic(fps, args=(dead_link_platform(), True), rounds=2,
                       iterations=1)
    emit(
        "ablation_parking",
        format_table(
            ["configuration", "fps"],
            [[k, f"{v:.1f}"] for k, v in results.items()],
            title="Robustness: fast GPU behind a 0.05 GB/s link (1080p)",
        ),
    )


def test_parking_recovers_cpu_throughput(results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert results["dead-link GPU, parking ON"] == pytest.approx(
        results["CPU_N alone"], rel=0.03
    )


def test_without_parking_collapse(results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert results["dead-link GPU, parking OFF"] < 0.3 * results["CPU_N alone"]


def faulted_fps(platform: str, events, n_frames: int = 30) -> float:
    from repro.hw.noise import FaultSchedule

    fw = FevesFramework(
        get_platform(platform), CFG,
        FrameworkConfig(faults=FaultSchedule(events)),
    )
    fw.run_model(n_frames)
    # steady state AFTER the fault settles
    return fw.steady_state_fps(warmup=20)


@pytest.fixture(scope="module")
def fault_results():
    from repro.hw.noise import FaultEvent

    oracle_2dev = FevesFramework(get_platform("SysNF"), CFG, FrameworkConfig())
    oracle_2dev.run_model(15)
    return {
        "SysNFF healthy": faulted_fps("SysNFF", []),
        "SysNFF, GPU dropout @10": faulted_fps(
            "SysNFF", [FaultEvent(frame=10, device="GPU_F2", kind="dropout")]
        ),
        "SysNFF, GPU 2x degrade @10": faulted_fps(
            "SysNFF",
            [FaultEvent(frame=10, device="GPU_F2", kind="degrade", factor=2.0)],
        ),
        "SysNF from scratch (oracle)": oracle_2dev.steady_state_fps(),
    }


def test_fault_degradation_table(fault_results, emit, benchmark):
    from repro.hw.noise import FaultEvent

    benchmark.pedantic(
        faulted_fps,
        args=("SysNFF", [FaultEvent(frame=10, device="GPU_F2", kind="dropout")]),
        rounds=2, iterations=1,
    )
    oracle = fault_results["SysNF from scratch (oracle)"]
    rows = [
        [k, f"{v:.1f}", f"{v / oracle:.2f}x"]
        for k, v in fault_results.items()
    ]
    emit(
        "fault_degradation",
        format_table(
            ["configuration", "fps", "vs 2-device oracle"],
            rows,
            title="Graceful degradation: GPU_F2 faults mid-encode (1080p)",
        ),
    )


def test_dropout_converges_to_oracle(fault_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Post-dropout throughput must match a from-scratch run on the
    # surviving platform to within 10% (ISSUE acceptance criterion).
    assert fault_results["SysNFF, GPU dropout @10"] == pytest.approx(
        fault_results["SysNF from scratch (oracle)"], rel=0.10
    )


def test_degrade_lands_between_healthy_and_dropout(fault_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    healthy = fault_results["SysNFF healthy"]
    degraded = fault_results["SysNFF, GPU 2x degrade @10"]
    dropped = fault_results["SysNFF, GPU dropout @10"]
    assert dropped < degraded < healthy


def test_parking_noop_on_healthy_platforms(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ("SysNF", "SysNFF", "SysHK"):
        on = FevesFramework(get_platform(name), CFG,
                            FrameworkConfig(enable_parking=True))
        on.run_model(10)
        off = FevesFramework(get_platform(name), CFG,
                             FrameworkConfig(enable_parking=False))
        off.run_model(10)
        assert on.steady_state_fps() == pytest.approx(
            off.steady_state_fps(), rel=0.02
        ), name
