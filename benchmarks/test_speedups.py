"""Paper §IV headline speedups (derived from the Fig. 6(b) sweep).

Paper numbers, averaged / maximized over RF counts at 32×32 SA:

- SysHK: ≈1.3× over single GPU_K, ≈3× over quad-core CPU_H;
- SysNFF: up to 2.2× over GPU_F, up to 5× over CPU_N;
- abstract: CPU+GPU systems outperform individual GPU and quad-core CPU
  executions by more than 2× and 5× respectively (SysNFF case).
"""

import statistics

import pytest

from conftest import encode_fps
from repro.report import format_table

RFS = (1, 2, 3, 4, 5, 6, 7, 8)


@pytest.fixture(scope="module")
def sweep():
    configs = ("CPU_N", "CPU_H", "GPU_F", "GPU_K", "SysNFF", "SysHK")
    return {
        name: {rf: encode_fps(name, num_refs=rf, n_frames=rf + 12) for rf in RFS}
        for name in configs
    }


def _ratios(sweep, system, base):
    return [sweep[system][rf] / sweep[base][rf] for rf in RFS]


def test_speedup_table(sweep, emit, benchmark):
    benchmark.pedantic(
        encode_fps, args=("SysNFF",), kwargs={"num_refs": 2}, rounds=2, iterations=1
    )
    rows = []
    for system, base, paper in (
        ("SysHK", "GPU_K", "avg ~1.3"),
        ("SysHK", "CPU_H", "avg ~3"),
        ("SysNFF", "GPU_F", "up to 2.2"),
        ("SysNFF", "CPU_N", "up to 5"),
    ):
        r = _ratios(sweep, system, base)
        rows.append(
            [
                f"{system} vs {base}",
                paper,
                f"{statistics.mean(r):.2f}",
                f"{max(r):.2f}",
            ]
        )
    emit(
        "speedups",
        format_table(
            ["comparison", "paper", "measured avg", "measured max"],
            rows,
            title="§IV speedups over single-device execution "
            "(32x32 SA, RFs 1..8)",
        ),
    )


def test_syshk_vs_gpu_k(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    avg = statistics.mean(_ratios(sweep, "SysHK", "GPU_K"))
    assert 1.15 <= avg <= 1.45  # paper: "about 1.3"


def test_syshk_vs_cpu_h(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    avg = statistics.mean(_ratios(sweep, "SysHK", "CPU_H"))
    assert 2.5 <= avg <= 3.9  # paper: "about 3"


def test_sysnff_vs_gpu_f(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    best = max(_ratios(sweep, "SysNFF", "GPU_F"))
    assert 1.9 <= best <= 2.6  # paper: "up to 2.2"


def test_sysnff_vs_cpu_n(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    best = max(_ratios(sweep, "SysNFF", "CPU_N"))
    assert 4.2 <= best <= 5.8  # paper: "up to 5"


def test_abstract_claim(sweep, benchmark):
    """Abstract: 'outperforming individual GPU and quad-core CPU executions
    for more than 2 and 5 times, respectively'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert max(_ratios(sweep, "SysNFF", "GPU_F")) > 2.0
    assert max(_ratios(sweep, "SysNFF", "CPU_N")) > 4.5
