"""Ablation: FSBM vs diamond-search ME (real compute, small frames).

The paper chooses Full-Search Block-Matching and notes that encoding time
"does not significantly vary for different video sequences (due to FSBM
ME)". This bench quantifies the trade-off that motivates the choice for a
*load-balanced* encoder:

- DS needs 10–50× fewer SAD evaluations (why single-device encoders love
  it), at a small quality cost;
- but DS's per-MB-row workload varies with content, which would invalidate
  the K^m "seconds per row" device characterization the Algorithm-2 LP is
  built on. FSBM's per-row workload variance is exactly zero.
"""

import numpy as np
import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.codec.fastme import diamond_search_rows
from repro.codec.me import motion_estimate_rows
from repro.report import format_table
from repro.video.generator import SyntheticSequence

CFG = CodecConfig(width=192, height=160, search_range=12, num_ref_frames=1)


@pytest.fixture(scope="module")
def frames():
    seq = SyntheticSequence(width=192, height=160, seed=31, noise_sigma=1.0)
    return seq.frames(3)


@pytest.fixture(scope="module")
def comparison(frames):
    cur, ref = frames[1].y, frames[0].y
    n = CFG.mb_rows
    fs = motion_estimate_rows(cur, [ref], 0, n, CFG)
    ds, stats = diamond_search_rows(cur, [ref], 0, n, CFG)
    fsbm_per_row = CFG.mb_cols * (2 * CFG.search_range + 1) ** 2
    return fs, ds, stats, fsbm_per_row


def test_ablation_table(comparison, emit, benchmark):
    fs, ds, stats, fsbm_per_row = comparison
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sad_gap = (
        ds.sads[(16, 16)].sum() / max(1, fs.sads[(16, 16)].sum()) - 1
    ) * 100
    emit(
        "ablation_fsbm_vs_ds",
        format_table(
            ["metric", "FSBM", "diamond search"],
            [
                ["SAD evals / MB row", f"{fsbm_per_row}",
                 f"{np.mean(stats.candidates_per_row):.0f} (mean)"],
                ["per-row workload variation", "0% (exact)",
                 f"{stats.row_variation():.0%}"],
                ["16x16 total SAD vs optimum", "+0%", f"+{sad_gap:.1f}%"],
            ],
            title="Why FEVES uses FSBM: predictable per-row load "
            "(K^m characterization) at full search quality",
        ),
    )


def test_ds_much_cheaper(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, stats, fsbm_per_row = comparison
    assert np.mean(stats.candidates_per_row) < fsbm_per_row / 10


def test_ds_quality_close_but_not_optimal(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fs, ds, _, _ = comparison
    assert (ds.sads[(16, 16)] >= fs.sads[(16, 16)]).all()
    # On coherent synthetic motion DS stays within 2x of the optimum SAD.
    assert ds.sads[(16, 16)].sum() <= 2.0 * max(1, fs.sads[(16, 16)].sum())


def test_fsbm_constant_vs_ds_variable_load(frames, benchmark):
    """The load-model argument, directly."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cur, ref = frames[2].y, frames[1].y
    _, stats = diamond_search_rows(cur, [ref], 0, CFG.mb_rows, CFG)
    rows = np.array(stats.candidates_per_row, dtype=float)
    # FSBM: identical by construction. DS: measurably content-dependent.
    assert rows.std() > 0
