"""Paper Fig. 7(a): per-frame encoding time, SysHK, 64×64 SA, 100 frames.

Paper-reported shape:

- frame 1 (equidistant initialization) is visibly slower;
- from frame 2 on, the adaptive LP yields near-constant per-frame times;
- the 1-RF curve sits below the 40 ms real-time line, 2-RF above it.
"""

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.report import ascii_series

N_FRAMES = 100


def trace_ms(num_refs: int, n_frames: int = N_FRAMES) -> list[float]:
    cfg = CodecConfig(
        width=1920, height=1088, search_range=32, num_ref_frames=num_refs
    )
    fw = FevesFramework(get_platform("SysHK"), cfg, FrameworkConfig())
    fw.run_model(n_frames)
    return fw.frame_times_ms()


@pytest.fixture(scope="module")
def fig7a_data():
    return {rf: trace_ms(rf) for rf in (1, 2)}


def test_fig7a_chart(fig7a_data, emit, benchmark):
    benchmark.pedantic(trace_ms, args=(1, 20), rounds=2, iterations=1)
    chart = ascii_series(
        {f"{rf}RF": fig7a_data[rf] for rf in (1, 2)},
        hline=40.0,
        hline_label="real-time (40 ms)",
        y_label="Fig 7(a): per-frame time [ms], SysHK, 64x64 SA, 100 frames",
    )
    emit("fig7a_adaptive_sa64", chart)


def test_initialization_frame_slower(fig7a_data, benchmark):
    """Frame 1 runs the equidistant split with a single active reference;
    compare it against the LP-balanced steady state of the 1-RF curve
    (same ME load) — the paper's 'real-time ... not achievable with an
    equidistant partitioning'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lp_steady_1rf = fig7a_data[1][2]
    for rf in (1, 2):
        assert fig7a_data[rf][0] > 1.3 * lp_steady_1rf
    # And the equidistant frame misses real-time while the LP makes it.
    assert fig7a_data[1][0] > 40.0 > fig7a_data[1][2]


def test_near_constant_after_adaptation(fig7a_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rf in (1, 2):
        tail = fig7a_data[rf][rf + 1 :]
        assert (max(tail) - min(tail)) / max(tail) < 0.03


def test_realtime_boundary(fig7a_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # 1 RF below the 40 ms line from frame 2; 2 RF above it.
    assert max(fig7a_data[1][1:]) < 40.0
    assert min(fig7a_data[2][2:]) > 40.0
