"""Multi-GPU scalability (extension of the paper's SysNF→SysNFF step).

The paper's §II criticizes single-module offloading because "only one GPU
device can be efficiently employed"; FEVES's whole-loop distribution is
claimed to scale. This bench sweeps 1–4 identical GPU_F accelerators
(+CPU_N) and checks near-linear scaling until the non-distributable parts
(R*, transfers, SME sync) start to bite — a classic Amdahl curve.
"""

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import multi_gpu_platform
from repro.report import format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)
GPU_COUNTS = (1, 2, 3, 4)


def fps_with_gpus(n_gpus: int, sa: int = 32) -> float:
    cfg = CodecConfig(
        width=1920, height=1088, search_range=sa // 2, num_ref_frames=1
    )
    fw = FevesFramework(multi_gpu_platform(n_gpus), cfg, FrameworkConfig())
    fw.run_model(12)
    return fw.steady_state_fps()


@pytest.fixture(scope="module")
def scaling():
    return {
        sa: {n: fps_with_gpus(n, sa) for n in GPU_COUNTS} for sa in (32, 64)
    }


def test_scalability_table(scaling, emit, benchmark):
    benchmark.pedantic(fps_with_gpus, args=(2,), rounds=2, iterations=1)
    rows = []
    for sa, by_n in scaling.items():
        base = by_n[1]
        rows += [
            [f"{sa}x{sa}", n, f"{fps:.1f}", f"{fps / base:.2f}x"]
            for n, fps in by_n.items()
        ]
    emit(
        "scalability",
        format_table(
            ["SA", "GPUs (+CPU_N)", "fps", "vs 1 GPU"],
            rows,
            title="Multi-GPU scaling of FEVES (1080p, GPU_F class)",
        ),
    )


def test_monotone_scaling(scaling, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sa, by_n in scaling.items():
        fps = [by_n[n] for n in GPU_COUNTS]
        assert fps == sorted(fps)


def test_second_gpu_near_linear(scaling, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sa in (32, 64):
        ratio = scaling[sa][2] / scaling[sa][1]
        assert ratio > 1.35  # 2nd GPU must contribute substantially


def test_amdahl_saturation(scaling, benchmark):
    """Marginal gains shrink with every added GPU (non-distributable R*,
    synchronization and transfer floor)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sa in (32, 64):
        by_n = scaling[sa]
        gains = [by_n[n + 1] / by_n[n] for n in (1, 2, 3)]
        assert gains[0] > gains[1] > 0.99
        assert gains[1] >= gains[2] * 0.98


def test_larger_sa_scales_better(scaling, benchmark):
    """At 64×64 the distributable ME dominates more ⇒ better scaling."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    s32 = scaling[32][4] / scaling[32][1]
    s64 = scaling[64][4] / scaling[64][1]
    assert s64 > s32
