"""Kernel microbenchmarks: wall-clock throughput of the NumPy codec kernels.

Not a paper figure — the simulator supplies the *modelled* device speeds —
but the practical numbers a contributor watches when optimizing the
vectorized kernels (and the reason real mode is kept to small geometries).
Uses pytest-benchmark's statistics properly: each kernel is timed on a CIF
(352×288) workload.
"""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.deblock import BlockInfo, deblock_plane
from repro.codec.interpolation import interpolate_plane
from repro.codec.me import motion_estimate_rows
from repro.codec.residual import code_luma_plane
from repro.codec.sme import subpel_refine_rows
from repro.video.generator import SyntheticSequence

W, H = 352, 288
CFG = CodecConfig(width=W, height=H, search_range=8, num_ref_frames=1)


@pytest.fixture(scope="module")
def frames():
    seq = SyntheticSequence(width=W, height=H, seed=5, noise_sigma=1.5)
    return seq.frame(0), seq.frame(1)


def _mpps(benchmark, pixels: int) -> None:
    """Attach a megapixels/s metric to the benchmark stats."""
    benchmark.extra_info["mpixel_per_s"] = pixels / 1e6 / benchmark.stats["mean"]


def test_kernel_me_fsbm(benchmark, frames):
    ref, cur = frames
    result = benchmark(
        motion_estimate_rows, cur.y, [ref.y], 0, CFG.mb_rows, CFG
    )
    assert result.nrows == CFG.mb_rows
    _mpps(benchmark, W * H)


def test_kernel_interpolation(benchmark, frames):
    ref, _ = frames
    sf = benchmark(interpolate_plane, ref.y)
    assert sf.shape == (4 * H, 4 * W)
    _mpps(benchmark, W * H)


def test_kernel_sme(benchmark, frames):
    ref, cur = frames
    me = motion_estimate_rows(cur.y, [ref.y], 0, CFG.mb_rows, CFG)
    sf = interpolate_plane(ref.y)
    result = benchmark(
        subpel_refine_rows, cur.y, [sf], me, 0, CFG.mb_rows, CFG
    )
    assert result.nrows == CFG.mb_rows
    _mpps(benchmark, W * H)


def test_kernel_tq(benchmark, frames):
    ref, cur = frames
    residual = cur.y.astype(np.int64) - ref.y.astype(np.int64)
    coded = benchmark(code_luma_plane, residual, 28, False)
    assert coded.levels.shape[0] == (H // 4) * (W // 4)
    _mpps(benchmark, W * H)


def test_kernel_deblock(benchmark, frames):
    ref, _ = frames
    rng = np.random.default_rng(0)
    info = BlockInfo(
        mv=rng.integers(-8, 9, (H // 4, W // 4, 2)).astype(np.int32),
        ref=np.zeros((H // 4, W // 4), dtype=np.int32),
        cnz=rng.random((H // 4, W // 4)) < 0.4,
        intra=np.zeros((H // 4, W // 4), dtype=bool),
    )
    out = benchmark(deblock_plane, ref.y, info, 36)
    assert out.shape == ref.y.shape
    _mpps(benchmark, W * H)


def test_kernel_relative_costs(frames):
    """Sanity: FSBM dominates, matching the paper's 90 % ME+INT+SME split."""
    import time

    ref, cur = frames

    def clock(fn, *args):
        t0 = time.perf_counter()
        fn(*args)
        return time.perf_counter() - t0

    t_me = clock(motion_estimate_rows, cur.y, [ref.y], 0, CFG.mb_rows, CFG)
    t_int = clock(interpolate_plane, ref.y)
    residual = cur.y.astype(np.int64) - ref.y.astype(np.int64)
    t_tq = clock(code_luma_plane, residual, 28, False)
    assert t_me > t_int
    assert t_me > t_tq
